//! A path-aware network (PAN) simulator in the style of SCION.
//!
//! §II of Scherrer et al. (DSN 2021) rests on one property of PAN
//! architectures: **packets are forwarded along the path embedded in
//! their header**, so the next-hop principle of BGP — and with it the
//! need for the Gao–Rexford conditions — disappears. This crate builds
//! the substrate demonstrating that property:
//!
//! - [`beaconing`]: path-segment construction beaconing (PCBs originate
//!   at the provider-free core and flow down provider–customer links),
//!   yielding up-/down-segments.
//! - [`Segment`] and [`PathRegistry`]: segment registration and lookup —
//!   segments live once in an arena keyed by [`SegmentId`], with dense
//!   per-node id lists for lookup.
//! - [`AuthorizationTable`]: per-AS forwarding authorization. By default
//!   an AS forwards only GRC-conforming (valley-free) transit; concluding
//!   an [`Agreement`](pan_core::Agreement) authorizes exactly the new
//!   segments it creates. [`AuthorizationIndex`] is its compiled dense
//!   form, which the forwarding hot loop queries.
//! - [`Network`] forwarding: packets carry their full AS path; each hop
//!   checks authorization and advances the path cursor — forwarding
//!   provably terminates and never loops, even on GRC-violating paths.
//!
//! # Example: the paper's D–E–B path
//!
//! ```
//! use pan_core::Agreement;
//! use pan_sim::{Network, ForwardingError};
//! use pan_topology::fixtures::{asn, fig1};
//!
//! let graph = fig1();
//! let mut network = Network::new(graph);
//!
//! // Without an agreement, E refuses to carry D's traffic to its
//! // provider B (a GRC violation, economically irrational for E alone).
//! let path = [asn('D'), asn('E'), asn('B')];
//! assert!(matches!(
//!     network.send(&path),
//!     Err(ForwardingError::NotAuthorized { at, .. }) if at == asn('E')
//! ));
//!
//! // Concluding the Eq. (6) mutuality-based agreement authorizes it.
//! let ma = Agreement::mutuality(network.graph(), asn('D'), asn('E'))?;
//! network.authorize_agreement(&ma);
//! let delivery = network.send(&path)?;
//! assert_eq!(delivery.hops_traversed, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod authorization;
mod error;
mod forwarding;
mod registry;
mod segment;

pub mod beaconing;

pub use authorization::{AuthorizationIndex, AuthorizationTable};
pub use error::{ForwardingError, PanError};
pub use forwarding::{Delivery, Network, Packet};
pub use registry::{PathRegistry, SegmentId};
pub use segment::{Segment, SegmentKind};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, PanError>;
