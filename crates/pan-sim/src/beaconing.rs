//! Path-segment construction beaconing.
//!
//! Core (provider-free) ASes originate path-construction beacons (PCBs)
//! that flow down provider→customer links; each AS appends itself and
//! re-propagates. Reversing a received beacon yields the AS's
//! **up-segment** towards that core AS. This mirrors SCION's intra-ISD
//! beaconing closely enough for the paper's purposes: it discovers the
//! provider-acknowledged paths that exist *without* any novel agreements.

use std::collections::VecDeque;

use pan_topology::{AsGraph, Asn};

use crate::{PathRegistry, Segment, SegmentKind};

/// Runs beaconing to completion and returns the registry of discovered
/// up-segments (registered under the non-core AS, pointing towards the
/// core) plus core-segments between core ASes.
///
/// `max_len` bounds the segment length in ASes (beacons longer than that
/// are not re-propagated), and each AS keeps at most `max_per_pair`
/// segments towards the same core AS (shortest first), mirroring real
/// beacon-selection policies.
#[must_use]
pub fn run_beaconing(graph: &AsGraph, max_len: usize, max_per_pair: usize) -> PathRegistry {
    let mut registry = PathRegistry::for_graph(graph);
    let cores: Vec<Asn> = graph.provider_free_ases().collect();

    // Breadth-first beacon propagation down provider→customer links.
    // Queue entries are beacon paths core-first.
    let mut queue: VecDeque<Vec<Asn>> = cores.iter().map(|&c| vec![c]).collect();
    while let Some(beacon) = queue.pop_front() {
        let head = *beacon.last().expect("beacons are non-empty");
        if beacon.len() >= 2 {
            // The receiving AS's up-segment is the reversed beacon.
            let mut up = beacon.clone();
            up.reverse();
            if let Ok(segment) = Segment::new(graph, SegmentKind::Up, up) {
                let owner = segment.first();
                let core = segment.last();
                let kept = registry
                    .segments_of_kind(graph, owner, SegmentKind::Up)
                    .filter(|s| s.last() == core)
                    .count();
                if kept < max_per_pair {
                    registry.register(graph, segment);
                }
            }
        }
        if beacon.len() >= max_len {
            continue;
        }
        for customer in graph.customers(head) {
            if !beacon.contains(&customer) {
                let mut extended = beacon.clone();
                extended.push(customer);
                queue.push_back(extended);
            }
        }
    }

    // Core segments: direct peering links between core ASes.
    for (i, &a) in cores.iter().enumerate() {
        for &b in cores.iter().skip(i + 1) {
            if graph.link_between(a, b).is_some() {
                if let Ok(segment) = Segment::new(graph, SegmentKind::Core, vec![a, b]) {
                    registry.register(graph, segment.reversed());
                    registry.register(graph, segment);
                }
            }
        }
    }
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use pan_topology::fixtures::{asn, diamond, fig1};

    #[test]
    fn every_non_core_as_discovers_an_up_segment() {
        let g = fig1();
        let registry = run_beaconing(&g, 6, 4);
        for label in ['D', 'E', 'G', 'H', 'I'] {
            assert!(
                registry
                    .segments_of_kind(&g, asn(label), SegmentKind::Up)
                    .count()
                    > 0,
                "{label} has no up-segment"
            );
        }
    }

    #[test]
    fn up_segments_end_at_core_ases() {
        let g = fig1();
        let registry = run_beaconing(&g, 6, 4);
        let cores: Vec<_> = g.provider_free_ases().collect();
        for asn_ in g.ases() {
            for s in registry.segments_of_kind(&g, asn_, SegmentKind::Up) {
                assert!(cores.contains(&s.last()), "{s} does not end at a core");
            }
        }
    }

    #[test]
    fn core_segments_connect_the_core() {
        let g = fig1();
        let registry = run_beaconing(&g, 6, 4);
        // A and B peer → both directions registered.
        assert_eq!(
            registry
                .segments_of_kind(&g, asn('A'), SegmentKind::Core)
                .count(),
            1
        );
        assert_eq!(
            registry
                .segments_of_kind(&g, asn('B'), SegmentKind::Core)
                .count(),
            1
        );
    }

    #[test]
    fn multipath_discovery_in_diamond() {
        let g = diamond();
        let registry = run_beaconing(&g, 6, 4);
        // The stub (AS 4) reaches the core (AS 1) via both L and R.
        let stub = pan_topology::Asn::new(4);
        let ups: Vec<_> = registry
            .segments_of_kind(&g, stub, SegmentKind::Up)
            .collect();
        assert_eq!(ups.len(), 2, "diamond should yield two up-segments");
    }

    #[test]
    fn beacon_length_bound_is_respected() {
        let g = pan_topology::fixtures::chain(6);
        let registry = run_beaconing(&g, 3, 4);
        for asn_ in g.ases() {
            for s in registry.segments_of(&g, asn_) {
                assert!(s.len() <= 3);
            }
        }
        // AS 4 is 3 hops from the core (1 → 2 → 3 → 4): no segment.
        assert_eq!(
            registry.segments_of(&g, pan_topology::Asn::new(5)).count(),
            0
        );
    }

    #[test]
    fn per_pair_cap_limits_segments() {
        let g = diamond();
        let registry = run_beaconing(&g, 6, 1);
        let stub = pan_topology::Asn::new(4);
        assert_eq!(
            registry.segments_of_kind(&g, stub, SegmentKind::Up).count(),
            1,
            "cap of one segment per (AS, core) pair"
        );
    }

    #[test]
    fn end_to_end_lookup_through_beaconed_segments() {
        let g = fig1();
        let registry = run_beaconing(&g, 6, 4);
        // H's up-segments end at core A, G's at core B; the A–B core
        // peering segment splices them into H → D → A → B → G.
        let paths = registry.lookup_paths(&g, asn('H'), asn('G'));
        assert!(
            paths.contains(&vec![asn('H'), asn('D'), asn('A'), asn('B'), asn('G')]),
            "up ⋈ core ⋈ down combination missing: {paths:?}"
        );
        // Every constructed path is GRC-conforming and deliverable
        // without any agreement.
        let network = crate::Network::new(g);
        for path in &paths {
            network.send(path).expect("beaconed paths deliver");
        }
    }
}
