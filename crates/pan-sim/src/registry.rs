use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use pan_topology::Asn;

use crate::{Segment, SegmentKind};

/// A path-server registry: segments registered per destination AS, as
/// SCION path servers store up-/down-segments for lookup by end-hosts.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PathRegistry {
    /// Segments keyed by their **first** AS (the AS they are registered
    /// for), in deterministic order.
    by_as: BTreeMap<Asn, Vec<Segment>>,
}

impl PathRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a segment under its first AS. Duplicate registrations
    /// are ignored.
    pub fn register(&mut self, segment: Segment) {
        let entry = self.by_as.entry(segment.first()).or_default();
        if !entry.contains(&segment) {
            entry.push(segment);
        }
    }

    /// All segments registered for `asn` (those starting at `asn`).
    #[must_use]
    pub fn segments_of(&self, asn: Asn) -> &[Segment] {
        self.by_as.get(&asn).map_or(&[], Vec::as_slice)
    }

    /// Segments of `asn` with the given kind.
    pub fn segments_of_kind(
        &self,
        asn: Asn,
        kind: SegmentKind,
    ) -> impl Iterator<Item = &Segment> + '_ {
        self.segments_of(asn)
            .iter()
            .filter(move |s| s.kind() == kind)
    }

    /// Total number of registered segments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_as.values().map(Vec::len).sum()
    }

    /// Returns `true` if the registry holds no segments.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_as.is_empty()
    }

    /// Joins an up-segment of `src` with a (reversed) up-segment of `dst`
    /// that ends at the same core AS — or, if their core ASes differ but
    /// are connected by a registered core-segment, splices that
    /// core-segment in between (the standard SCION up ⋈ core ⋈ down
    /// combination). Agreement segments reaching `dst` directly are also
    /// returned.
    ///
    /// Returns all distinct loop-free joined paths, shortest first.
    #[must_use]
    pub fn lookup_paths(&self, src: Asn, dst: Asn) -> Vec<Vec<Asn>> {
        let mut paths: Vec<Vec<Asn>> = Vec::new();
        // Direct agreement/up segments from src to dst.
        for segment in self.segments_of(src) {
            if segment.last() == dst {
                paths.push(segment.hops().to_vec());
            }
        }
        for up in self.segments_of_kind(src, SegmentKind::Up) {
            for dst_up in self.segments_of_kind(dst, SegmentKind::Up) {
                if up.last() == dst_up.last() {
                    // Shared core AS: up ⋈ down.
                    let mut joined = up.hops().to_vec();
                    joined.extend(dst_up.hops().iter().rev().skip(1));
                    push_if_loop_free(&mut paths, joined);
                } else {
                    // Distinct cores: splice a registered core-segment.
                    for core in self.segments_of_kind(up.last(), SegmentKind::Core) {
                        if core.last() != dst_up.last() {
                            continue;
                        }
                        let mut joined = up.hops().to_vec();
                        joined.extend(core.hops().iter().skip(1));
                        joined.extend(dst_up.hops().iter().rev().skip(1));
                        push_if_loop_free(&mut paths, joined);
                    }
                }
            }
        }
        paths.sort_by_key(|p| (p.len(), p.clone()));
        paths.dedup();
        paths
    }
}

/// Appends `joined` to `paths` if it revisits no AS.
fn push_if_loop_free(paths: &mut Vec<Vec<Asn>>, joined: Vec<Asn>) {
    let mut sorted = joined.clone();
    sorted.sort_unstable();
    if sorted.windows(2).all(|w| w[0] != w[1]) {
        paths.push(joined);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pan_topology::fixtures::{asn, fig1};

    fn seg(kind: SegmentKind, hops: &[char]) -> Segment {
        let g = fig1();
        Segment::new(&g, kind, hops.iter().map(|&c| asn(c)).collect()).unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = PathRegistry::new();
        let s = seg(SegmentKind::Up, &['H', 'D', 'A']);
        reg.register(s.clone());
        reg.register(s.clone());
        assert_eq!(reg.len(), 1, "duplicates ignored");
        assert_eq!(reg.segments_of(asn('H')), &[s]);
        assert!(reg.segments_of(asn('D')).is_empty());
    }

    #[test]
    fn join_over_shared_core() {
        let mut reg = PathRegistry::new();
        reg.register(seg(SegmentKind::Up, &['H', 'D', 'A']));
        reg.register(seg(SegmentKind::Up, &['G', 'B', 'A']));
        let paths = reg.lookup_paths(asn('H'), asn('G'));
        assert_eq!(paths.len(), 1);
        assert_eq!(
            paths[0],
            vec![asn('H'), asn('D'), asn('A'), asn('B'), asn('G')]
        );
    }

    #[test]
    fn no_shared_core_no_path() {
        let mut reg = PathRegistry::new();
        reg.register(seg(SegmentKind::Up, &['H', 'D', 'A']));
        reg.register(seg(SegmentKind::Up, &['I', 'E', 'B']));
        assert!(reg.lookup_paths(asn('H'), asn('I')).is_empty());
    }

    #[test]
    fn core_segment_splices_distinct_cores() {
        let mut reg = PathRegistry::new();
        reg.register(seg(SegmentKind::Up, &['H', 'D', 'A']));
        reg.register(seg(SegmentKind::Up, &['I', 'E', 'B']));
        reg.register(seg(SegmentKind::Core, &['A', 'B']));
        reg.register(seg(SegmentKind::Core, &['B', 'A']));
        let paths = reg.lookup_paths(asn('H'), asn('I'));
        assert_eq!(
            paths,
            vec![vec![
                asn('H'),
                asn('D'),
                asn('A'),
                asn('B'),
                asn('E'),
                asn('I')
            ]]
        );
        // And the reverse direction works symmetrically.
        let back = reg.lookup_paths(asn('I'), asn('H'));
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].first(), Some(&asn('I')));
        assert_eq!(back[0].last(), Some(&asn('H')));
    }

    #[test]
    fn agreement_segments_are_direct_paths() {
        let mut reg = PathRegistry::new();
        reg.register(seg(SegmentKind::Agreement, &['D', 'E', 'B']));
        let paths = reg.lookup_paths(asn('D'), asn('B'));
        assert_eq!(paths, vec![vec![asn('D'), asn('E'), asn('B')]]);
    }

    #[test]
    fn kind_filter() {
        let mut reg = PathRegistry::new();
        reg.register(seg(SegmentKind::Up, &['H', 'D', 'A']));
        reg.register(seg(SegmentKind::Agreement, &['H', 'D', 'C']));
        assert_eq!(reg.segments_of_kind(asn('H'), SegmentKind::Up).count(), 1);
        assert_eq!(
            reg.segments_of_kind(asn('H'), SegmentKind::Agreement)
                .count(),
            1
        );
        assert_eq!(reg.len(), 2);
    }
}
