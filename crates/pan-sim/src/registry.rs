use serde::{Deserialize, Serialize};

use pan_topology::{AsGraph, Asn};

use crate::{Segment, SegmentKind};

/// Stable identifier of a segment registered in a [`PathRegistry`]
/// (its index in the registry's arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SegmentId(u32);

impl SegmentId {
    /// The numeric arena index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// A path-server registry: segments stored once in an arena and indexed
/// per AS, as SCION path servers store up-/down-segments for lookup by
/// end-hosts.
///
/// Lookup state is **dense**: per graph-node segment-id lists (indexed
/// by the [`AsGraph`] node index of a segment's first AS), mirroring the
/// per-`LinkId` tables of the geodistance/bandwidth analyses — a lookup
/// is one indexed load, not a `BTreeMap` descent. Registration resolves
/// the owning AS through the graph once; everything after is id-keyed.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PathRegistry {
    /// All registered segments, in registration order.
    segments: Vec<Segment>,
    /// Per-node id lists (grown on demand to the owning node's index).
    by_node: Vec<Vec<SegmentId>>,
}

impl PathRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty registry with per-node tables pre-sized for
    /// `graph` (avoids growth during beaconing).
    #[must_use]
    pub fn for_graph(graph: &AsGraph) -> Self {
        PathRegistry {
            segments: Vec::new(),
            by_node: vec![Vec::new(); graph.node_count()],
        }
    }

    /// Registers a segment under its first AS, returning its id.
    /// Duplicate registrations and segments whose first AS is unknown to
    /// `graph` are ignored (returning the existing id or `None`).
    pub fn register(&mut self, graph: &AsGraph, segment: Segment) -> Option<SegmentId> {
        let node = graph.index_of(segment.first()).ok()? as usize;
        if node >= self.by_node.len() {
            self.by_node.resize_with(node + 1, Vec::new);
        }
        if let Some(&existing) = self.by_node[node]
            .iter()
            .find(|id| self.segments[id.index()] == segment)
        {
            return Some(existing);
        }
        let id = SegmentId(self.segments.len() as u32);
        self.segments.push(segment);
        self.by_node[node].push(id);
        Some(id)
    }

    /// Resolves a segment id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this registry.
    #[must_use]
    pub fn segment(&self, id: SegmentId) -> &Segment {
        &self.segments[id.index()]
    }

    /// The ids of all segments registered for the AS at `node` (those
    /// starting there), in registration order.
    #[must_use]
    pub fn ids_of_index(&self, node: u32) -> &[SegmentId] {
        self.by_node.get(node as usize).map_or(&[], Vec::as_slice)
    }

    /// All segments registered for the AS at dense index `node`.
    pub fn segments_of_index(&self, node: u32) -> impl Iterator<Item = &Segment> + '_ {
        self.ids_of_index(node)
            .iter()
            .map(|id| &self.segments[id.index()])
    }

    /// All segments registered for `asn` (empty for unknown ASes).
    pub fn segments_of<'a>(
        &'a self,
        graph: &AsGraph,
        asn: Asn,
    ) -> impl Iterator<Item = &'a Segment> + 'a {
        let node = graph.index_of(asn).unwrap_or(u32::MAX);
        self.segments_of_index(node)
    }

    /// Segments of `asn` with the given kind.
    pub fn segments_of_kind<'a>(
        &'a self,
        graph: &AsGraph,
        asn: Asn,
        kind: SegmentKind,
    ) -> impl Iterator<Item = &'a Segment> + 'a {
        self.segments_of(graph, asn)
            .filter(move |s| s.kind() == kind)
    }

    /// Total number of registered segments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Returns `true` if the registry holds no segments.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Joins an up-segment of `src` with a (reversed) up-segment of `dst`
    /// that ends at the same core AS — or, if their core ASes differ but
    /// are connected by a registered core-segment, splices that
    /// core-segment in between (the standard SCION up ⋈ core ⋈ down
    /// combination). Agreement segments reaching `dst` directly are also
    /// returned.
    ///
    /// Returns all distinct loop-free joined paths, shortest first.
    #[must_use]
    pub fn lookup_paths(&self, graph: &AsGraph, src: Asn, dst: Asn) -> Vec<Vec<Asn>> {
        let mut paths: Vec<Vec<Asn>> = Vec::new();
        // Direct agreement/up segments from src to dst.
        for segment in self.segments_of(graph, src) {
            if segment.last() == dst {
                paths.push(segment.hops().to_vec());
            }
        }
        for up in self.segments_of_kind(graph, src, SegmentKind::Up) {
            for dst_up in self.segments_of_kind(graph, dst, SegmentKind::Up) {
                if up.last() == dst_up.last() {
                    // Shared core AS: up ⋈ down.
                    let mut joined = up.hops().to_vec();
                    joined.extend(dst_up.hops().iter().rev().skip(1));
                    push_if_loop_free(&mut paths, joined);
                } else {
                    // Distinct cores: splice a registered core-segment.
                    for core in self.segments_of_kind(graph, up.last(), SegmentKind::Core) {
                        if core.last() != dst_up.last() {
                            continue;
                        }
                        let mut joined = up.hops().to_vec();
                        joined.extend(core.hops().iter().skip(1));
                        joined.extend(dst_up.hops().iter().rev().skip(1));
                        push_if_loop_free(&mut paths, joined);
                    }
                }
            }
        }
        paths.sort_by_key(|p| (p.len(), p.clone()));
        paths.dedup();
        paths
    }
}

/// Appends `joined` to `paths` if it revisits no AS.
fn push_if_loop_free(paths: &mut Vec<Vec<Asn>>, joined: Vec<Asn>) {
    let mut sorted = joined.clone();
    sorted.sort_unstable();
    if sorted.windows(2).all(|w| w[0] != w[1]) {
        paths.push(joined);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pan_topology::fixtures::{asn, fig1};

    fn seg(kind: SegmentKind, hops: &[char]) -> Segment {
        let g = fig1();
        Segment::new(&g, kind, hops.iter().map(|&c| asn(c)).collect()).unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let g = fig1();
        let mut reg = PathRegistry::for_graph(&g);
        let s = seg(SegmentKind::Up, &['H', 'D', 'A']);
        let id = reg.register(&g, s.clone()).unwrap();
        let dup = reg.register(&g, s.clone()).unwrap();
        assert_eq!(reg.len(), 1, "duplicates ignored");
        assert_eq!(id, dup, "duplicate registration returns the same id");
        assert_eq!(reg.segment(id), &s);
        let of_h: Vec<_> = reg.segments_of(&g, asn('H')).collect();
        assert_eq!(of_h, vec![&s]);
        assert_eq!(reg.segments_of(&g, asn('D')).count(), 0);
        let h = g.index_of(asn('H')).unwrap();
        assert_eq!(reg.ids_of_index(h), &[id]);
        assert_eq!(reg.segments_of_index(h).count(), 1);
    }

    #[test]
    fn unknown_owner_is_rejected_and_queries_are_empty() {
        let g = fig1();
        // A segment of a different graph whose first AS fig1 lacks.
        let mut b = pan_topology::AsGraphBuilder::new();
        b.add_link(
            Asn::new(100),
            Asn::new(101),
            pan_topology::Relationship::ProviderToCustomer,
        )
        .unwrap();
        let other = b.build().unwrap();
        let mut reg = PathRegistry::for_graph(&g);
        let foreign =
            Segment::new(&other, SegmentKind::Up, vec![Asn::new(101), Asn::new(100)]).unwrap();
        assert_eq!(reg.register(&g, foreign), None);
        assert!(reg.is_empty());
        assert_eq!(reg.segments_of(&g, Asn::new(999)).count(), 0);
        assert_eq!(reg.ids_of_index(10_000), &[] as &[SegmentId]);
    }

    #[test]
    fn join_over_shared_core() {
        let g = fig1();
        let mut reg = PathRegistry::for_graph(&g);
        reg.register(&g, seg(SegmentKind::Up, &['H', 'D', 'A']));
        reg.register(&g, seg(SegmentKind::Up, &['G', 'B', 'A']));
        let paths = reg.lookup_paths(&g, asn('H'), asn('G'));
        assert_eq!(paths.len(), 1);
        assert_eq!(
            paths[0],
            vec![asn('H'), asn('D'), asn('A'), asn('B'), asn('G')]
        );
    }

    #[test]
    fn no_shared_core_no_path() {
        let g = fig1();
        let mut reg = PathRegistry::for_graph(&g);
        reg.register(&g, seg(SegmentKind::Up, &['H', 'D', 'A']));
        reg.register(&g, seg(SegmentKind::Up, &['I', 'E', 'B']));
        assert!(reg.lookup_paths(&g, asn('H'), asn('I')).is_empty());
    }

    #[test]
    fn core_segment_splices_distinct_cores() {
        let g = fig1();
        let mut reg = PathRegistry::for_graph(&g);
        reg.register(&g, seg(SegmentKind::Up, &['H', 'D', 'A']));
        reg.register(&g, seg(SegmentKind::Up, &['I', 'E', 'B']));
        reg.register(&g, seg(SegmentKind::Core, &['A', 'B']));
        reg.register(&g, seg(SegmentKind::Core, &['B', 'A']));
        let paths = reg.lookup_paths(&g, asn('H'), asn('I'));
        assert_eq!(
            paths,
            vec![vec![
                asn('H'),
                asn('D'),
                asn('A'),
                asn('B'),
                asn('E'),
                asn('I')
            ]]
        );
        // And the reverse direction works symmetrically.
        let back = reg.lookup_paths(&g, asn('I'), asn('H'));
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].first(), Some(&asn('I')));
        assert_eq!(back[0].last(), Some(&asn('H')));
    }

    #[test]
    fn agreement_segments_are_direct_paths() {
        let g = fig1();
        let mut reg = PathRegistry::for_graph(&g);
        reg.register(&g, seg(SegmentKind::Agreement, &['D', 'E', 'B']));
        let paths = reg.lookup_paths(&g, asn('D'), asn('B'));
        assert_eq!(paths, vec![vec![asn('D'), asn('E'), asn('B')]]);
    }

    #[test]
    fn kind_filter() {
        let g = fig1();
        let mut reg = PathRegistry::for_graph(&g);
        reg.register(&g, seg(SegmentKind::Up, &['H', 'D', 'A']));
        reg.register(&g, seg(SegmentKind::Agreement, &['H', 'D', 'C']));
        assert_eq!(
            reg.segments_of_kind(&g, asn('H'), SegmentKind::Up).count(),
            1
        );
        assert_eq!(
            reg.segments_of_kind(&g, asn('H'), SegmentKind::Agreement)
                .count(),
            1
        );
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let g = fig1();
        let mut reg = PathRegistry::for_graph(&g);
        reg.register(&g, seg(SegmentKind::Up, &['H', 'D', 'A']));
        let json = serde_json::to_string(&reg).unwrap();
        let back: PathRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, reg);
    }
}
