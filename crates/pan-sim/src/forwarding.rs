//! Header-embedded packet forwarding — the property that makes PANs
//! stable without the Gao–Rexford conditions (§II).
//!
//! A [`Packet`] carries its complete AS-level path; every transit AS
//! checks its [`AuthorizationTable`] and, if the `(ingress, egress)`
//! pair is allowed, advances the packet's cursor. Because the cursor
//! **strictly increases**, forwarding terminates after exactly
//! `path.len() − 1` hops and can never loop — in contrast to BGP, where
//! a transit AS's deviation from the advertised route can create loops.

use serde::{Deserialize, Serialize};

use pan_core::Agreement;
use pan_topology::{AsGraph, Asn};

use crate::{AuthorizationTable, ForwardingError};

/// A data packet with its header-embedded forwarding path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    path: Vec<Asn>,
    cursor: usize,
}

impl Packet {
    /// Creates a packet for the given AS-level path (source first).
    #[must_use]
    pub fn new(path: Vec<Asn>) -> Self {
        Packet { path, cursor: 0 }
    }

    /// The embedded path.
    #[must_use]
    pub fn path(&self) -> &[Asn] {
        &self.path
    }

    /// The AS currently holding the packet.
    #[must_use]
    pub fn current(&self) -> Option<Asn> {
        self.path.get(self.cursor).copied()
    }

    /// Returns `true` once the packet reached the destination.
    #[must_use]
    pub fn delivered(&self) -> bool {
        !self.path.is_empty() && self.cursor == self.path.len() - 1
    }
}

/// A successful delivery report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delivery {
    /// Number of inter-AS hops traversed (`path.len() − 1`).
    pub hops_traversed: usize,
}

/// The forwarding plane: a topology plus the authorization state of all
/// ASes.
#[derive(Debug, Clone)]
pub struct Network {
    graph: AsGraph,
    authorization: AuthorizationTable,
}

impl Network {
    /// Creates a network with default (GRC-conforming) authorization.
    #[must_use]
    pub fn new(graph: AsGraph) -> Self {
        Network {
            graph,
            authorization: AuthorizationTable::new(),
        }
    }

    /// The underlying topology.
    #[must_use]
    pub fn graph(&self) -> &AsGraph {
        &self.graph
    }

    /// The authorization table.
    #[must_use]
    pub fn authorization(&self) -> &AuthorizationTable {
        &self.authorization
    }

    /// Mutable access to the authorization table.
    pub fn authorization_mut(&mut self) -> &mut AuthorizationTable {
        &mut self.authorization
    }

    /// Authorizes all new segments of a concluded agreement.
    pub fn authorize_agreement(&mut self, agreement: &Agreement) {
        self.authorization.grant_agreement(&self.graph, agreement);
    }

    /// Validates a header path: at least two hops, loop-free, and every
    /// consecutive pair adjacent.
    ///
    /// # Errors
    ///
    /// Returns [`ForwardingError::MalformedPath`] describing the defect.
    pub fn validate_path(&self, path: &[Asn]) -> Result<(), ForwardingError> {
        if path.len() < 2 {
            return Err(ForwardingError::MalformedPath {
                reason: "paths need at least a source and a destination".to_owned(),
            });
        }
        let mut sorted = path.to_vec();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(ForwardingError::MalformedPath {
                reason: "header paths must be loop-free".to_owned(),
            });
        }
        for pair in path.windows(2) {
            if self.graph.link_between(pair[0], pair[1]).is_none() {
                return Err(ForwardingError::MalformedPath {
                    reason: format!("{} and {} are not adjacent", pair[0], pair[1]),
                });
            }
        }
        Ok(())
    }

    /// Forwards a packet one hop.
    ///
    /// # Errors
    ///
    /// Returns [`ForwardingError::NotAuthorized`] if the current transit
    /// AS refuses the (ingress, egress) pair, and
    /// [`ForwardingError::MalformedPath`] if the packet is already
    /// delivered or empty.
    pub fn step(&self, packet: &mut Packet) -> Result<(), ForwardingError> {
        if packet.delivered() || packet.path.is_empty() {
            return Err(ForwardingError::MalformedPath {
                reason: "packet has no next hop".to_owned(),
            });
        }
        let here = packet.path[packet.cursor];
        let next = packet.path[packet.cursor + 1];
        // Transit authorization applies to intermediate ASes only: the
        // source emits its own traffic; the destination consumes it.
        if packet.cursor > 0 {
            let prev = packet.path[packet.cursor - 1];
            if !self.authorization.allows(&self.graph, here, prev, next) {
                return Err(ForwardingError::NotAuthorized {
                    at: here,
                    from: prev,
                    to: next,
                });
            }
        }
        packet.cursor += 1;
        Ok(())
    }

    /// Sends a packet along `path`, validating the header first and
    /// stepping until delivery.
    ///
    /// # Errors
    ///
    /// Returns the first validation or authorization error encountered.
    pub fn send(&self, path: &[Asn]) -> Result<Delivery, ForwardingError> {
        self.validate_path(path)?;
        let mut packet = Packet::new(path.to_vec());
        let mut hops = 0usize;
        while !packet.delivered() {
            self.step(&mut packet)?;
            hops += 1;
            debug_assert!(hops <= path.len(), "cursor strictly advances");
        }
        Ok(Delivery {
            hops_traversed: hops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pan_topology::fixtures::{asn, fig1};

    fn network() -> Network {
        Network::new(fig1())
    }

    #[test]
    fn grc_conforming_paths_deliver() {
        let net = network();
        // H up D up A down? A–B peer… H → D → A → B → E → I is valley-free.
        let path = [asn('H'), asn('D'), asn('A'), asn('B'), asn('E'), asn('I')];
        let delivery = net.send(&path).unwrap();
        assert_eq!(delivery.hops_traversed, 5);
    }

    #[test]
    fn valley_paths_are_refused_without_agreements() {
        let net = network();
        let err = net.send(&[asn('D'), asn('E'), asn('B')]).unwrap_err();
        assert_eq!(
            err,
            ForwardingError::NotAuthorized {
                at: asn('E'),
                from: asn('D'),
                to: asn('B'),
            }
        );
    }

    #[test]
    fn agreement_authorizes_the_papers_paths() {
        let mut net = network();
        let ma = Agreement::mutuality(net.graph(), asn('D'), asn('E')).unwrap();
        net.authorize_agreement(&ma);
        for path in [
            vec![asn('D'), asn('E'), asn('B')],
            vec![asn('D'), asn('E'), asn('F')],
            vec![asn('E'), asn('D'), asn('A')],
            vec![asn('E'), asn('D'), asn('C')],
        ] {
            assert!(net.send(&path).is_ok(), "path {path:?} should deliver");
        }
        // Extended by the customer: H → D → E → B (H is D's customer, so
        // D's hop is GRC-fine; E's hop is agreement-authorized).
        assert!(net.send(&[asn('H'), asn('D'), asn('E'), asn('B')]).is_ok());
    }

    #[test]
    fn malformed_paths_are_rejected() {
        let net = network();
        assert!(matches!(
            net.send(&[asn('D')]),
            Err(ForwardingError::MalformedPath { .. })
        ));
        assert!(matches!(
            net.send(&[asn('D'), asn('E'), asn('D')]),
            Err(ForwardingError::MalformedPath { .. })
        ));
        assert!(matches!(
            net.send(&[asn('H'), asn('I')]),
            Err(ForwardingError::MalformedPath { .. })
        ));
    }

    #[test]
    fn forwarding_terminates_in_path_length_hops() {
        // The anti-loop theorem: delivery always takes exactly
        // path.len() − 1 steps, regardless of policies.
        let mut net = network();
        let ma = Agreement::mutuality(net.graph(), asn('D'), asn('E')).unwrap();
        net.authorize_agreement(&ma);
        let path = [asn('H'), asn('D'), asn('E'), asn('B'), asn('G')];
        let delivery = net.send(&path).unwrap();
        assert_eq!(delivery.hops_traversed, path.len() - 1);
    }

    #[test]
    fn packet_cursor_reports_position() {
        let net = network();
        let mut packet = Packet::new(vec![asn('H'), asn('D'), asn('A')]);
        assert_eq!(packet.current(), Some(asn('H')));
        assert!(!packet.delivered());
        net.step(&mut packet).unwrap();
        assert_eq!(packet.current(), Some(asn('D')));
        net.step(&mut packet).unwrap();
        assert!(packet.delivered());
        assert!(
            net.step(&mut packet).is_err(),
            "no forwarding past delivery"
        );
    }

    #[test]
    fn revoking_an_agreement_stops_its_paths() {
        let mut net = network();
        let ma = Agreement::mutuality(net.graph(), asn('D'), asn('E')).unwrap();
        net.authorize_agreement(&ma);
        assert!(net.send(&[asn('D'), asn('E'), asn('B')]).is_ok());
        net.authorization_mut().revoke(asn('E'), asn('D'), asn('B'));
        assert!(net.send(&[asn('D'), asn('E'), asn('B')]).is_err());
    }
}
