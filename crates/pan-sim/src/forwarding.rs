//! Header-embedded packet forwarding — the property that makes PANs
//! stable without the Gao–Rexford conditions (§II).
//!
//! A [`Packet`] carries its complete AS-level path; every transit AS
//! checks its [`AuthorizationTable`] and, if the `(ingress, egress)`
//! pair is allowed, advances the packet's cursor. Because the cursor
//! **strictly increases**, forwarding terminates after exactly
//! `path.len() − 1` hops and can never loop — in contrast to BGP, where
//! a transit AS's deviation from the advertised route can create loops.

use serde::{Deserialize, Serialize};

use pan_core::Agreement;
use pan_topology::{AsGraph, Asn};

use crate::{AuthorizationIndex, AuthorizationTable, ForwardingError};

/// A data packet with its header-embedded forwarding path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    path: Vec<Asn>,
    cursor: usize,
}

impl Packet {
    /// Creates a packet for the given AS-level path (source first).
    #[must_use]
    pub fn new(path: Vec<Asn>) -> Self {
        Packet { path, cursor: 0 }
    }

    /// The embedded path.
    #[must_use]
    pub fn path(&self) -> &[Asn] {
        &self.path
    }

    /// The AS currently holding the packet.
    #[must_use]
    pub fn current(&self) -> Option<Asn> {
        self.path.get(self.cursor).copied()
    }

    /// Returns `true` once the packet reached the destination.
    #[must_use]
    pub fn delivered(&self) -> bool {
        !self.path.is_empty() && self.cursor == self.path.len() - 1
    }
}

/// A successful delivery report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delivery {
    /// Number of inter-AS hops traversed (`path.len() − 1`).
    pub hops_traversed: usize,
}

/// The forwarding plane: a topology plus the authorization state of all
/// ASes.
///
/// The ASN-keyed [`AuthorizationTable`] is the canonical state; every
/// mutation recompiles the dense [`AuthorizationIndex`] the per-hop
/// checks run on, so forwarding itself never hashes an ASN or walks a
/// `BTreeSet`.
#[derive(Debug, Clone)]
pub struct Network {
    graph: AsGraph,
    authorization: AuthorizationTable,
    index: AuthorizationIndex,
}

impl Network {
    /// Creates a network with default (GRC-conforming) authorization.
    #[must_use]
    pub fn new(graph: AsGraph) -> Self {
        let authorization = AuthorizationTable::new();
        let index = AuthorizationIndex::compile(&graph, &authorization);
        Network {
            graph,
            authorization,
            index,
        }
    }

    /// The underlying topology.
    #[must_use]
    pub fn graph(&self) -> &AsGraph {
        &self.graph
    }

    /// The authorization table.
    #[must_use]
    pub fn authorization(&self) -> &AuthorizationTable {
        &self.authorization
    }

    /// The compiled authorization index the hot path queries.
    #[must_use]
    pub fn authorization_index(&self) -> &AuthorizationIndex {
        &self.index
    }

    /// Authorizes transit through `transit` between `a` and `b`.
    pub fn grant(&mut self, transit: Asn, a: Asn, b: Asn) {
        self.authorization.grant(transit, a, b);
        self.recompile();
    }

    /// Revokes a previously granted triple.
    pub fn revoke(&mut self, transit: Asn, a: Asn, b: Asn) {
        self.authorization.revoke(transit, a, b);
        self.recompile();
    }

    /// Authorizes all new segments of a concluded agreement.
    pub fn authorize_agreement(&mut self, agreement: &Agreement) {
        self.authorization.grant_agreement(&self.graph, agreement);
        self.recompile();
    }

    fn recompile(&mut self) {
        self.index = AuthorizationIndex::compile(&self.graph, &self.authorization);
    }

    /// Validates a header path: at least two hops, loop-free, and every
    /// consecutive pair adjacent.
    ///
    /// # Errors
    ///
    /// Returns [`ForwardingError::MalformedPath`] describing the defect.
    pub fn validate_path(&self, path: &[Asn]) -> Result<(), ForwardingError> {
        self.resolve_path(path).map(|_| ())
    }

    /// Resolves a header path to dense node indices, validating it along
    /// the way (length, loop-freeness, adjacency) — one ASN lookup per
    /// hop; everything downstream is index arithmetic.
    fn resolve_path(&self, path: &[Asn]) -> Result<Vec<u32>, ForwardingError> {
        if path.len() < 2 {
            return Err(ForwardingError::MalformedPath {
                reason: "paths need at least a source and a destination".to_owned(),
            });
        }
        let mut indices = Vec::with_capacity(path.len());
        for &asn in path {
            let Ok(idx) = self.graph.index_of(asn) else {
                return Err(ForwardingError::MalformedPath {
                    reason: format!("{asn} is not part of the topology"),
                });
            };
            indices.push(idx);
        }
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(ForwardingError::MalformedPath {
                reason: "header paths must be loop-free".to_owned(),
            });
        }
        for (k, pair) in indices.windows(2).enumerate() {
            if self
                .graph
                .neighbor_kind_by_index(pair[0], pair[1])
                .is_none()
            {
                return Err(ForwardingError::MalformedPath {
                    reason: format!("{} and {} are not adjacent", path[k], path[k + 1]),
                });
            }
        }
        Ok(indices)
    }

    /// Forwards a packet one hop.
    ///
    /// # Errors
    ///
    /// Returns [`ForwardingError::NotAuthorized`] if the current transit
    /// AS refuses the (ingress, egress) pair, and
    /// [`ForwardingError::MalformedPath`] if the packet is already
    /// delivered or empty.
    pub fn step(&self, packet: &mut Packet) -> Result<(), ForwardingError> {
        if packet.delivered() || packet.path.is_empty() {
            return Err(ForwardingError::MalformedPath {
                reason: "packet has no next hop".to_owned(),
            });
        }
        let here = packet.path[packet.cursor];
        let next = packet.path[packet.cursor + 1];
        // Transit authorization applies to intermediate ASes only: the
        // source emits its own traffic; the destination consumes it.
        if packet.cursor > 0 {
            let prev = packet.path[packet.cursor - 1];
            if !self.authorization.allows(&self.graph, here, prev, next) {
                return Err(ForwardingError::NotAuthorized {
                    at: here,
                    from: prev,
                    to: next,
                });
            }
        }
        packet.cursor += 1;
        Ok(())
    }

    /// Sends a packet along `path`, validating the header first and
    /// stepping until delivery.
    ///
    /// The path is resolved to node indices once; every hop then runs on
    /// the compiled [`AuthorizationIndex`] (CSR membership tests plus a
    /// binary search), the batch-friendly fast path of the simulator.
    ///
    /// # Errors
    ///
    /// Returns the first validation or authorization error encountered.
    pub fn send(&self, path: &[Asn]) -> Result<Delivery, ForwardingError> {
        let indices = self.resolve_path(path)?;
        for cursor in 1..indices.len() - 1 {
            let (prev, here, next) = (indices[cursor - 1], indices[cursor], indices[cursor + 1]);
            if !self.index.allows(&self.graph, here, prev, next) {
                return Err(ForwardingError::NotAuthorized {
                    at: path[cursor],
                    from: path[cursor - 1],
                    to: path[cursor + 1],
                });
            }
        }
        Ok(Delivery {
            hops_traversed: path.len() - 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pan_topology::fixtures::{asn, fig1};

    fn network() -> Network {
        Network::new(fig1())
    }

    #[test]
    fn grc_conforming_paths_deliver() {
        let net = network();
        // H up D up A down? A–B peer… H → D → A → B → E → I is valley-free.
        let path = [asn('H'), asn('D'), asn('A'), asn('B'), asn('E'), asn('I')];
        let delivery = net.send(&path).unwrap();
        assert_eq!(delivery.hops_traversed, 5);
    }

    #[test]
    fn valley_paths_are_refused_without_agreements() {
        let net = network();
        let err = net.send(&[asn('D'), asn('E'), asn('B')]).unwrap_err();
        assert_eq!(
            err,
            ForwardingError::NotAuthorized {
                at: asn('E'),
                from: asn('D'),
                to: asn('B'),
            }
        );
    }

    #[test]
    fn agreement_authorizes_the_papers_paths() {
        let mut net = network();
        let ma = Agreement::mutuality(net.graph(), asn('D'), asn('E')).unwrap();
        net.authorize_agreement(&ma);
        for path in [
            vec![asn('D'), asn('E'), asn('B')],
            vec![asn('D'), asn('E'), asn('F')],
            vec![asn('E'), asn('D'), asn('A')],
            vec![asn('E'), asn('D'), asn('C')],
        ] {
            assert!(net.send(&path).is_ok(), "path {path:?} should deliver");
        }
        // Extended by the customer: H → D → E → B (H is D's customer, so
        // D's hop is GRC-fine; E's hop is agreement-authorized).
        assert!(net.send(&[asn('H'), asn('D'), asn('E'), asn('B')]).is_ok());
    }

    #[test]
    fn malformed_paths_are_rejected() {
        let net = network();
        assert!(matches!(
            net.send(&[asn('D')]),
            Err(ForwardingError::MalformedPath { .. })
        ));
        assert!(matches!(
            net.send(&[asn('D'), asn('E'), asn('D')]),
            Err(ForwardingError::MalformedPath { .. })
        ));
        assert!(matches!(
            net.send(&[asn('H'), asn('I')]),
            Err(ForwardingError::MalformedPath { .. })
        ));
    }

    #[test]
    fn forwarding_terminates_in_path_length_hops() {
        // The anti-loop theorem: delivery always takes exactly
        // path.len() − 1 steps, regardless of policies.
        let mut net = network();
        let ma = Agreement::mutuality(net.graph(), asn('D'), asn('E')).unwrap();
        net.authorize_agreement(&ma);
        let path = [asn('H'), asn('D'), asn('E'), asn('B'), asn('G')];
        let delivery = net.send(&path).unwrap();
        assert_eq!(delivery.hops_traversed, path.len() - 1);
    }

    #[test]
    fn packet_cursor_reports_position() {
        let net = network();
        let mut packet = Packet::new(vec![asn('H'), asn('D'), asn('A')]);
        assert_eq!(packet.current(), Some(asn('H')));
        assert!(!packet.delivered());
        net.step(&mut packet).unwrap();
        assert_eq!(packet.current(), Some(asn('D')));
        net.step(&mut packet).unwrap();
        assert!(packet.delivered());
        assert!(
            net.step(&mut packet).is_err(),
            "no forwarding past delivery"
        );
    }

    #[test]
    fn revoking_an_agreement_stops_its_paths() {
        let mut net = network();
        let ma = Agreement::mutuality(net.graph(), asn('D'), asn('E')).unwrap();
        net.authorize_agreement(&ma);
        assert!(net.send(&[asn('D'), asn('E'), asn('B')]).is_ok());
        net.revoke(asn('E'), asn('D'), asn('B'));
        assert!(net.send(&[asn('D'), asn('E'), asn('B')]).is_err());
        // Re-granting recompiles the index too.
        net.grant(asn('E'), asn('D'), asn('B'));
        assert!(net.send(&[asn('D'), asn('E'), asn('B')]).is_ok());
    }

    #[test]
    fn indexed_send_agrees_with_stepwise_forwarding() {
        let mut net = network();
        let ma = Agreement::mutuality(net.graph(), asn('D'), asn('E')).unwrap();
        net.authorize_agreement(&ma);
        let ases: Vec<_> = net.graph().ases().collect();
        // Every 3-hop header path: `send` (dense index) and manual
        // `step`s (ASN-keyed table) must agree on deliverability.
        for &a in &ases {
            for &b in &ases {
                for &c in &ases {
                    let path = [a, b, c];
                    let by_send = net.send(&path).is_ok();
                    let stepwise = net.validate_path(&path).is_ok() && {
                        let mut packet = Packet::new(path.to_vec());
                        let mut ok = true;
                        while !packet.delivered() {
                            if net.step(&mut packet).is_err() {
                                ok = false;
                                break;
                            }
                        }
                        ok
                    };
                    assert_eq!(by_send, stepwise, "divergence on {path:?}");
                }
            }
        }
    }
}
