use std::fmt;

use pan_topology::Asn;

/// Errors produced while constructing PAN state (segments, registries).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PanError {
    /// A segment is structurally invalid.
    InvalidSegment {
        /// Human-readable reason.
        reason: String,
    },
    /// A path could not be constructed between two ASes.
    NoPath {
        /// Source AS.
        src: Asn,
        /// Destination AS.
        dst: Asn,
    },
}

impl fmt::Display for PanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PanError::InvalidSegment { reason } => write!(f, "invalid segment: {reason}"),
            PanError::NoPath { src, dst } => write!(f, "no path from {src} to {dst}"),
        }
    }
}

impl std::error::Error for PanError {}

/// Errors surfaced while forwarding a packet.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ForwardingError {
    /// The packet's header path is malformed (too short, repeated hops,
    /// or non-adjacent consecutive ASes).
    MalformedPath {
        /// Human-readable reason.
        reason: String,
    },
    /// A transit AS refused the (ingress, egress) pair: no GRC-conforming
    /// rationale and no authorizing agreement.
    NotAuthorized {
        /// The refusing AS.
        at: Asn,
        /// The ingress neighbor.
        from: Asn,
        /// The requested egress neighbor.
        to: Asn,
    },
}

impl fmt::Display for ForwardingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForwardingError::MalformedPath { reason } => {
                write!(f, "malformed header path: {reason}")
            }
            ForwardingError::NotAuthorized { at, from, to } => {
                write!(f, "{at} refuses to forward {from} → {to}")
            }
        }
    }
}

impl std::error::Error for ForwardingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let err = ForwardingError::NotAuthorized {
            at: Asn::new(5),
            from: Asn::new(4),
            to: Asn::new(2),
        };
        let text = err.to_string();
        assert!(text.contains("AS5") && text.contains("AS4") && text.contains("AS2"));
        assert!(PanError::NoPath {
            src: Asn::new(1),
            dst: Asn::new(2)
        }
        .to_string()
        .contains("AS1"));
    }
}
