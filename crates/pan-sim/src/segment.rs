use std::fmt;

use serde::{Deserialize, Serialize};

use pan_topology::{AsGraph, Asn};

use crate::{PanError, Result};

/// The provenance of a path segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SegmentKind {
    /// From a non-core AS up to a core (provider-free) AS, discovered by
    /// beaconing.
    Up,
    /// From a core AS down to a non-core AS (an up-segment reversed).
    Down,
    /// Between two core ASes over core peering links.
    Core,
    /// Created and authorized by an interconnection agreement
    /// (mutuality-based or classic peering).
    Agreement,
}

impl fmt::Display for SegmentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentKind::Up => write!(f, "up"),
            SegmentKind::Down => write!(f, "down"),
            SegmentKind::Core => write!(f, "core"),
            SegmentKind::Agreement => write!(f, "agreement"),
        }
    }
}

/// A provider-acknowledged path segment: a loop-free sequence of adjacent
/// ASes that end-hosts may combine into end-to-end paths.
///
/// In SCION terms this corresponds to a path-segment of hop fields; the
/// cryptographic MACs that make hop fields unforgeable are out of scope
/// here — authorization is checked explicitly by the
/// [`AuthorizationTable`](crate::AuthorizationTable) at forwarding time.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Segment {
    kind: SegmentKind,
    hops: Vec<Asn>,
}

impl Segment {
    /// Creates a segment after validating adjacency and loop-freeness
    /// against `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`PanError::InvalidSegment`] for paths that are shorter
    /// than two hops, revisit an AS, or jump between non-adjacent ASes.
    pub fn new(graph: &AsGraph, kind: SegmentKind, hops: Vec<Asn>) -> Result<Self> {
        if hops.len() < 2 {
            return Err(PanError::InvalidSegment {
                reason: "segments need at least two hops".to_owned(),
            });
        }
        let mut sorted = hops.clone();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(PanError::InvalidSegment {
                reason: "segments must be loop-free".to_owned(),
            });
        }
        for pair in hops.windows(2) {
            if graph.link_between(pair[0], pair[1]).is_none() {
                return Err(PanError::InvalidSegment {
                    reason: format!("{} and {} are not adjacent", pair[0], pair[1]),
                });
            }
        }
        Ok(Segment { kind, hops })
    }

    /// The segment kind.
    #[must_use]
    pub fn kind(&self) -> SegmentKind {
        self.kind
    }

    /// The hops, first AS first.
    #[must_use]
    pub fn hops(&self) -> &[Asn] {
        &self.hops
    }

    /// First AS of the segment.
    #[must_use]
    pub fn first(&self) -> Asn {
        self.hops[0]
    }

    /// Last AS of the segment.
    #[must_use]
    pub fn last(&self) -> Asn {
        *self.hops.last().expect("segments are non-empty")
    }

    /// Number of ASes on the segment.
    #[must_use]
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Segments always have at least two hops.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The segment reversed (an up-segment becomes a down-segment and
    /// vice versa; core and agreement segments keep their kind).
    #[must_use]
    pub fn reversed(&self) -> Segment {
        let kind = match self.kind {
            SegmentKind::Up => SegmentKind::Down,
            SegmentKind::Down => SegmentKind::Up,
            other => other,
        };
        let mut hops = self.hops.clone();
        hops.reverse();
        Segment { kind, hops }
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.hops.iter().map(ToString::to_string).collect();
        write!(f, "[{} {}]", self.kind, parts.join(" → "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pan_topology::fixtures::{asn, fig1};

    #[test]
    fn validation() {
        let g = fig1();
        assert!(Segment::new(&g, SegmentKind::Up, vec![asn('H')]).is_err());
        assert!(Segment::new(&g, SegmentKind::Up, vec![asn('H'), asn('E')]).is_err());
        assert!(Segment::new(&g, SegmentKind::Up, vec![asn('H'), asn('D'), asn('H')]).is_err());
        assert!(Segment::new(&g, SegmentKind::Up, vec![asn('H'), asn('D'), asn('A')]).is_ok());
    }

    #[test]
    fn accessors() {
        let g = fig1();
        let s = Segment::new(&g, SegmentKind::Up, vec![asn('H'), asn('D'), asn('A')]).unwrap();
        assert_eq!(s.first(), asn('H'));
        assert_eq!(s.last(), asn('A'));
        assert_eq!(s.len(), 3);
        assert_eq!(s.kind(), SegmentKind::Up);
        assert!(s.to_string().contains("up"));
    }

    #[test]
    fn reversal_flips_direction_and_kind() {
        let g = fig1();
        let up = Segment::new(&g, SegmentKind::Up, vec![asn('H'), asn('D'), asn('A')]).unwrap();
        let down = up.reversed();
        assert_eq!(down.kind(), SegmentKind::Down);
        assert_eq!(down.hops(), &[asn('A'), asn('D'), asn('H')]);
        assert_eq!(down.reversed(), up);
        let core = Segment::new(&g, SegmentKind::Core, vec![asn('A'), asn('B')]).unwrap();
        assert_eq!(core.reversed().kind(), SegmentKind::Core);
    }
}
