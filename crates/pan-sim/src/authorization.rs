use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use pan_core::Agreement;
use pan_topology::{AsGraph, Asn, NeighborKind};

/// Per-AS forwarding authorization.
///
/// A transit AS `X` forwards a packet from ingress neighbor `F` to egress
/// neighbor `T` iff:
///
/// - the transit is **GRC-conforming**: at least one of `F`, `T` is a
///   customer of `X` (the economically rational default — the cost of
///   forwarding is recuperated from the customer), or
/// - an **agreement authorizes it**: an explicit `(X, F, T)` triple was
///   added, as concluded agreements do for exactly the new segments they
///   create (§III-B2). Authorized triples are direction-independent:
///   authorizing `F → T` at `X` also authorizes `T → F`.
///
/// Source and destination ASes always accept their own traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuthorizationTable {
    /// Direction-normalized `(transit, low, high)` triples.
    grants: BTreeSet<(Asn, Asn, Asn)>,
}

impl AuthorizationTable {
    /// Creates an empty table (GRC-conforming transit only).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn key(transit: Asn, a: Asn, b: Asn) -> (Asn, Asn, Asn) {
        if a <= b {
            (transit, a, b)
        } else {
            (transit, b, a)
        }
    }

    /// Authorizes transit through `transit` between neighbors `a` and `b`
    /// (both directions).
    pub fn grant(&mut self, transit: Asn, a: Asn, b: Asn) {
        self.grants.insert(Self::key(transit, a, b));
    }

    /// Revokes a previously granted triple.
    pub fn revoke(&mut self, transit: Asn, a: Asn, b: Asn) {
        self.grants.remove(&Self::key(transit, a, b));
    }

    /// Returns `true` if an explicit grant covers the triple.
    #[must_use]
    pub fn is_granted(&self, transit: Asn, a: Asn, b: Asn) -> bool {
        self.grants.contains(&Self::key(transit, a, b))
    }

    /// Number of explicit grants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.grants.len()
    }

    /// Returns `true` if there are no explicit grants.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.grants.is_empty()
    }

    /// The full authorization check: GRC-conforming transit or an
    /// explicit grant.
    #[must_use]
    pub fn allows(&self, graph: &AsGraph, transit: Asn, from: Asn, to: Asn) -> bool {
        let from_kind = graph.neighbor_kind(transit, from);
        let to_kind = graph.neighbor_kind(transit, to);
        // Both must actually be neighbors for transit to be physical.
        if from_kind.is_none() || to_kind.is_none() {
            return false;
        }
        if from_kind == Some(NeighborKind::Customer) || to_kind == Some(NeighborKind::Customer) {
            return true;
        }
        self.is_granted(transit, from, to)
    }

    /// Adds the grants of a concluded agreement: for every new segment
    /// `beneficiary → via → target`, the `via` AS authorizes the
    /// `(beneficiary, target)` pair.
    pub fn grant_agreement(&mut self, graph: &AsGraph, agreement: &Agreement) {
        for segment in agreement.new_segments(graph) {
            self.grant(segment.via, segment.beneficiary, segment.target);
        }
    }

    /// Iterates over the normalized `(transit, low, high)` grant triples.
    pub fn triples(&self) -> impl Iterator<Item = (Asn, Asn, Asn)> + '_ {
        self.grants.iter().copied()
    }
}

/// The compiled, dense form of an [`AuthorizationTable`]: per transit
/// **node index**, a sorted list of normalized neighbor-index pairs.
///
/// The ASN-keyed table stays the canonical (serializable, mutable)
/// representation; the index is what the forwarding hot loop queries —
/// the per-hop check is CSR customer tests plus one binary search over a
/// short pair list, with no `Asn → index` hashing and no `BTreeSet`
/// walk. Rebuild with [`compile`](Self::compile) after table mutations
/// ([`Network`](crate::Network) does this automatically).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuthorizationIndex {
    /// `grants[transit]` = sorted `(low, high)` neighbor-index pairs.
    grants: Vec<Vec<(u32, u32)>>,
}

impl AuthorizationIndex {
    /// Compiles the table against a topology. Triples mentioning ASes
    /// unknown to `graph` are dropped (they can never authorize a
    /// physical forwarding step).
    #[must_use]
    pub fn compile(graph: &AsGraph, table: &AuthorizationTable) -> Self {
        let mut grants = vec![Vec::new(); graph.node_count()];
        for (transit, a, b) in table.triples() {
            let (Ok(t), Ok(i), Ok(j)) = (
                graph.index_of(transit),
                graph.index_of(a),
                graph.index_of(b),
            ) else {
                continue;
            };
            let pair = (i.min(j), i.max(j));
            grants[t as usize].push(pair);
        }
        for list in &mut grants {
            list.sort_unstable();
            list.dedup();
        }
        AuthorizationIndex { grants }
    }

    /// Returns `true` if an explicit grant covers the (direction-
    /// normalized) triple of node indices.
    #[must_use]
    pub fn is_granted(&self, transit: u32, from: u32, to: u32) -> bool {
        let pair = (from.min(to), from.max(to));
        self.grants
            .get(transit as usize)
            .is_some_and(|list| list.binary_search(&pair).is_ok())
    }

    /// The full authorization check on node indices: GRC-conforming
    /// transit (at least one side is a customer) or an explicit grant.
    /// Non-neighbors never transit.
    #[must_use]
    pub fn allows(&self, graph: &AsGraph, transit: u32, from: u32, to: u32) -> bool {
        let from_kind = graph.neighbor_kind_by_index(transit, from);
        let to_kind = graph.neighbor_kind_by_index(transit, to);
        if from_kind.is_none() || to_kind.is_none() {
            return false;
        }
        if from_kind == Some(NeighborKind::Customer) || to_kind == Some(NeighborKind::Customer) {
            return true;
        }
        self.is_granted(transit, from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pan_topology::fixtures::{asn, fig1};

    #[test]
    fn grc_transit_is_always_allowed() {
        let g = fig1();
        let table = AuthorizationTable::new();
        // D forwards H (customer) ↔ anyone.
        assert!(table.allows(&g, asn('D'), asn('H'), asn('A')));
        assert!(table.allows(&g, asn('D'), asn('A'), asn('H')));
        assert!(table.allows(&g, asn('D'), asn('E'), asn('H')));
    }

    #[test]
    fn valley_transit_is_refused_by_default() {
        let g = fig1();
        let table = AuthorizationTable::new();
        // E carrying D (peer) → B (provider): the paper's example of an
        // economically irrational forwarding without an agreement.
        assert!(!table.allows(&g, asn('E'), asn('D'), asn('B')));
        // D carrying C (peer) → A (provider).
        assert!(!table.allows(&g, asn('D'), asn('C'), asn('A')));
    }

    #[test]
    fn non_neighbors_never_transit() {
        let g = fig1();
        let mut table = AuthorizationTable::new();
        table.grant(asn('E'), asn('H'), asn('B')); // H is not E's neighbor
        assert!(!table.allows(&g, asn('E'), asn('H'), asn('B')));
    }

    #[test]
    fn grants_are_bidirectional_and_revocable() {
        let g = fig1();
        let mut table = AuthorizationTable::new();
        table.grant(asn('E'), asn('D'), asn('B'));
        assert!(table.allows(&g, asn('E'), asn('D'), asn('B')));
        assert!(table.allows(&g, asn('E'), asn('B'), asn('D')));
        table.revoke(asn('E'), asn('B'), asn('D'));
        assert!(!table.allows(&g, asn('E'), asn('D'), asn('B')));
        assert!(table.is_empty());
    }

    #[test]
    fn compiled_index_matches_table_everywhere() {
        let g = fig1();
        let mut table = AuthorizationTable::new();
        table.grant_agreement(&g, &Agreement::mutuality(&g, asn('D'), asn('E')).unwrap());
        table.grant(asn('E'), asn('D'), asn('B'));
        table.grant(Asn::new(999), asn('D'), asn('B')); // unknown transit: dropped
        let index = AuthorizationIndex::compile(&g, &table);
        for t in g.ases() {
            for f in g.ases() {
                for to in g.ases() {
                    let (ti, fi, toi) = (
                        g.index_of(t).unwrap(),
                        g.index_of(f).unwrap(),
                        g.index_of(to).unwrap(),
                    );
                    assert_eq!(
                        table.allows(&g, t, f, to),
                        index.allows(&g, ti, fi, toi),
                        "divergence at ({t}, {f}, {to})"
                    );
                }
            }
        }
    }

    #[test]
    fn agreement_grants_exactly_its_segments() {
        let g = fig1();
        let ma = Agreement::mutuality(&g, asn('D'), asn('E')).unwrap();
        let mut table = AuthorizationTable::new();
        table.grant_agreement(&g, &ma);
        // E authorizes D → B (E's provider) and D → F (E's peer).
        assert!(table.allows(&g, asn('E'), asn('D'), asn('B')));
        assert!(table.allows(&g, asn('E'), asn('D'), asn('F')));
        // D authorizes E → A and E → C.
        assert!(table.allows(&g, asn('D'), asn('E'), asn('A')));
        assert!(table.allows(&g, asn('D'), asn('E'), asn('C')));
        // But C → A through D for third parties stays refused.
        assert!(!table.allows(&g, asn('D'), asn('C'), asn('A')));
    }
}
