//! Property tests for `datasets::internet` invariants **at scale**: the
//! generator must hold its structural promises on the ≥10k-AS topologies
//! the discovery engine sweeps, not just on the few-hundred-AS fixtures
//! the unit tests use, and regeneration must be byte-identical per seed.

use proptest::prelude::*;

use pan_datasets::{InternetConfig, SyntheticInternet, Tier};
use pan_topology::caida;

fn scale_config(num_ases: usize) -> InternetConfig {
    InternetConfig {
        num_ases,
        ..InternetConfig::default()
    }
}

/// Every AS can reach the provider-free core by climbing provider links,
/// and the core is a full peering clique — together these guarantee a
/// valley-free (customer ↑ … core peer … ↓ customer) path between any
/// two ASes.
fn assert_valley_free_connected(net: &SyntheticInternet) {
    let graph = &net.graph;
    let n = graph.node_count();
    // ASNs are assigned in placement order and providers are always
    // placed earlier, so one forward pass settles reachability.
    let mut reaches_core = vec![false; n];
    for i in 0..n as u32 {
        let providers = graph.provider_indices(i);
        if providers.is_empty() {
            reaches_core[i as usize] = true;
            continue;
        }
        reaches_core[i as usize] = providers.iter().any(|&p| {
            assert!(p < i, "provider hierarchy must point to earlier ASes");
            reaches_core[p as usize]
        });
    }
    let unreachable = reaches_core.iter().filter(|r| !**r).count();
    assert_eq!(unreachable, 0, "{unreachable} ASes cannot reach the core");

    let core: Vec<u32> = (0..n as u32)
        .filter(|&i| graph.provider_indices(i).is_empty())
        .collect();
    for (k, &a) in core.iter().enumerate() {
        for &b in core.iter().skip(k + 1) {
            assert!(
                graph.has_neighbor_kind(a, b, pan_topology::NeighborKind::Peer),
                "core ASes {a} and {b} must peer (clique)"
            );
        }
    }
}

/// Tier table and topology agree: the provider-free core is exactly the
/// tier-1 set, stubs sell no transit, and transit ASes both buy and
/// (in aggregate) sell it.
fn assert_tier_consistent(net: &SyntheticInternet) {
    let graph = &net.graph;
    let mut transit_with_customers = 0usize;
    let mut transit_total = 0usize;
    for asn in graph.ases() {
        let providers = graph.providers(asn).count();
        let customers = graph.customers(asn).count();
        match net.tier(asn) {
            Tier::Tier1 => assert_eq!(providers, 0, "tier-1 {asn} has a provider"),
            Tier::Transit => {
                assert!(providers >= 1, "transit {asn} has no provider");
                transit_total += 1;
                transit_with_customers += usize::from(customers > 0);
            }
            Tier::Stub => {
                assert!(providers >= 1, "stub {asn} has no provider");
                assert_eq!(customers, 0, "stub {asn} sells transit");
            }
        }
        if providers == 0 {
            assert_eq!(
                net.tier(asn),
                Tier::Tier1,
                "{asn} is provider-free non-tier-1"
            );
        }
    }
    assert!(
        transit_with_customers * 2 > transit_total,
        "most transit ASes should actually sell transit \
         ({transit_with_customers}/{transit_total})"
    );
}

proptest! {
    // Each case generates a >=10k-AS internet (~0.2 s); keep the case
    // count small so the suite stays CI-friendly.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn scale_invariants_hold(
        num_ases in 10_000usize..13_000,
        seed in 0u64..1_000,
    ) {
        let config = scale_config(num_ases);
        let net = SyntheticInternet::generate(&config, seed).expect("valid config");
        prop_assert_eq!(net.graph.node_count(), num_ases);
        assert_valley_free_connected(&net);
        assert_tier_consistent(&net);
    }

    #[test]
    fn regeneration_is_byte_identical(seed in 0u64..1_000) {
        let config = scale_config(10_000);
        let a = SyntheticInternet::generate(&config, seed).expect("valid config");
        let b = SyntheticInternet::generate(&config, seed).expect("valid config");
        // The CAIDA serial-2 serialization is the canonical byte form.
        prop_assert_eq!(caida::to_string(&a.graph), caida::to_string(&b.graph));
        prop_assert_eq!(a.tiers, b.tiers);
        prop_assert_eq!(a.as_region, b.as_region);
        // And a different seed diverges.
        let c = SyntheticInternet::generate(&config, seed.wrapping_add(1)).expect("valid config");
        assert_ne!(caida::to_string(&a.graph), caida::to_string(&c.graph));
    }
}

/// The heavy-tailed degree distribution survives at scale: the best-
/// connected providers hold a disproportionate share of customer links,
/// and open-peering hubs dominate the peering mesh (the property the
/// §VI mutuality reach depends on).
#[test]
fn scale_degree_distribution_is_heavy_tailed() {
    let net = SyntheticInternet::generate(&scale_config(10_000), 42).expect("valid config");
    let graph = &net.graph;
    let mut customer_degrees: Vec<usize> = (0..graph.node_count() as u32)
        .map(|i| graph.customer_indices(i).len())
        .collect();
    customer_degrees.sort_unstable_by(|a, b| b.cmp(a));
    let total: usize = customer_degrees.iter().sum();
    let top20: usize = customer_degrees.iter().take(20).sum();
    let providers = customer_degrees.iter().filter(|&&d| d > 0).count();
    // The top 20 of ~1,500 providers must be over-represented by an
    // order of magnitude relative to a uniform split.
    let uniform_share = 20.0 / providers as f64;
    let top_share = top20 as f64 / total as f64;
    assert!(
        top_share > 10.0 * uniform_share,
        "top-20 share {top_share:.4} vs uniform {uniform_share:.4}: not heavy-tailed"
    );
    let mut peer_degrees: Vec<usize> = (0..graph.node_count() as u32)
        .map(|i| graph.peer_indices(i).len())
        .collect();
    peer_degrees.sort_unstable_by(|a, b| b.cmp(a));
    assert!(
        peer_degrees[0] > 1_000,
        "open hubs should peer with thousands of ASes, max is {}",
        peer_degrees[0]
    );
}
