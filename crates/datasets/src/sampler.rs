//! Sublinear weighted sampling for the topology generator.
//!
//! Preferential attachment needs "sample a provider proportionally to
//! (customer degree + 1)" with weights that change after every link.
//! The naive approach — rebuild a weight vector and scan it per sample —
//! is `O(n · pool)` over the generation run and was the quadratic pass
//! that kept the generator from internet scale. [`WeightedSampler`] is a
//! Fenwick (binary indexed) tree over the candidate weights:
//! activation, weight updates, and samples are all `O(log n)`.

use rand::Rng;

/// A dynamic weighted sampler over indices `0..len`, backed by a Fenwick
/// tree of cumulative weights.
///
/// Entries start at weight zero ("inactive") and never go negative.
#[derive(Debug, Clone)]
pub struct WeightedSampler {
    /// 1-based Fenwick tree of partial sums.
    tree: Vec<f64>,
    len: usize,
    /// Largest power of two ≤ `len`, for the top-down descent.
    top_bit: usize,
}

impl WeightedSampler {
    /// Creates a sampler over `len` indices, all with weight zero.
    #[must_use]
    pub fn new(len: usize) -> Self {
        let mut top_bit = 1;
        while top_bit * 2 <= len {
            top_bit *= 2;
        }
        WeightedSampler {
            tree: vec![0.0; len + 1],
            len,
            top_bit,
        }
    }

    /// Number of indices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the sampler covers no indices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds `delta` to the weight of `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range. Negative deltas are allowed as
    /// long as the resulting weight stays non-negative (the caller's
    /// responsibility; violations skew later samples).
    pub fn add(&mut self, index: usize, delta: f64) {
        assert!(index < self.len, "index {index} out of range {}", self.len);
        let mut i = index + 1;
        while i <= self.len {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Total weight over all indices.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.prefix_sum(self.len)
    }

    /// Sum of weights over `0..end`.
    #[must_use]
    pub fn prefix_sum(&self, end: usize) -> f64 {
        let mut i = end.min(self.len);
        let mut sum = 0.0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Samples an index proportionally to its weight, or `None` if the
    /// total weight is not positive.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<usize> {
        let total = self.total();
        if total <= 0.0 {
            return None;
        }
        let target = rng.gen_range(0.0..total);
        Some(self.find(target))
    }

    /// The smallest index whose cumulative weight exceeds `target`
    /// (standard Fenwick descent).
    fn find(&self, mut target: f64) -> usize {
        let mut pos = 0usize;
        let mut bit = self.top_bit;
        while bit > 0 {
            let next = pos + bit;
            if next <= self.len && self.tree[next] <= target {
                target -= self.tree[next];
                pos = next;
            }
            bit /= 2;
        }
        // `pos` is the count of fully covered entries; the sampled index
        // is the next one. Clamp for the all-consumed edge case.
        pos.min(self.len - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn respects_weights() {
        let mut s = WeightedSampler::new(3);
        s.add(2, 1.0);
        let mut rng = rng::seeded(1);
        for _ in 0..32 {
            assert_eq!(s.sample(&mut rng), Some(2));
        }
    }

    #[test]
    fn empty_and_zero_weight_yield_none() {
        let s = WeightedSampler::new(0);
        assert!(s.is_empty());
        assert_eq!(s.sample(&mut rng::seeded(1)), None);
        let s = WeightedSampler::new(4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.sample(&mut rng::seeded(1)), None);
    }

    #[test]
    fn prefix_sums_match_naive() {
        let weights = [0.5, 0.0, 2.0, 1.25, 0.0, 3.0, 0.75];
        let mut s = WeightedSampler::new(weights.len());
        for (i, &w) in weights.iter().enumerate() {
            s.add(i, w);
        }
        let mut acc = 0.0;
        for end in 0..=weights.len() {
            assert!((s.prefix_sum(end) - acc).abs() < 1e-12, "prefix {end}");
            if end < weights.len() {
                acc += weights[end];
            }
        }
        assert!((s.total() - acc).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_roughly_proportional() {
        let mut s = WeightedSampler::new(4);
        s.add(0, 1.0);
        s.add(2, 3.0);
        let mut rng = rng::seeded(7);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[s.sample(&mut rng).unwrap()] += 1;
        }
        assert_eq!(counts[1] + counts[3], 0, "zero-weight entries never drawn");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.0..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn updates_shift_the_distribution() {
        let mut s = WeightedSampler::new(2);
        s.add(0, 1.0);
        s.add(1, 1.0);
        s.add(0, -1.0); // deactivate 0 again
        let mut rng = rng::seeded(3);
        for _ in 0..32 {
            assert_eq!(s.sample(&mut rng), Some(1));
        }
    }

    #[test]
    fn matches_linear_scan_distributionally() {
        // Same weights, many draws: the Fenwick sampler and the O(n)
        // scan must agree on the induced distribution (not the draws).
        let weights = [1.0, 5.0, 0.0, 2.0, 8.0, 0.5];
        let mut fenwick = WeightedSampler::new(weights.len());
        for (i, &w) in weights.iter().enumerate() {
            fenwick.add(i, w);
        }
        let trials = 20_000;
        let mut rng_a = rng::seeded(11);
        let mut rng_b = rng::seeded(12);
        let mut counts_f = vec![0usize; weights.len()];
        let mut counts_l = vec![0usize; weights.len()];
        for _ in 0..trials {
            counts_f[fenwick.sample(&mut rng_a).unwrap()] += 1;
            counts_l[rng::weighted_index(&mut rng_b, &weights).unwrap()] += 1;
        }
        let total: f64 = weights.iter().sum();
        for i in 0..weights.len() {
            let expected = weights[i] / total;
            let got_f = counts_f[i] as f64 / trials as f64;
            let got_l = counts_l[i] as f64 / trials as f64;
            assert!(
                (got_f - expected).abs() < 0.02,
                "fenwick {i}: {got_f} vs {expected}"
            );
            assert!(
                (got_l - expected).abs() < 0.02,
                "linear {i}: {got_l} vs {expected}"
            );
        }
    }
}
