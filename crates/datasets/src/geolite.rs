//! Synthetic prefix geolocation (GeoLite2 stand-in) and the AS-centroid join.
//!
//! The paper determines an AS's location by geolocating each of its
//! prefixes with MaxMind's GeoLite2 database and averaging the coordinates
//! into a "center of gravity" (§VI-B). `locate_prefixes` is the
//! synthetic GeoLite2: each prefix of an AS is placed near the AS's home
//! location with a spread that grows with the AS's tier, reproducing the
//! paper's observation that geographically distributed top-tier ASes end
//! up with averaged, inland centroids. [`as_centroids`] performs the same
//! join as the paper.

use std::collections::HashMap;

use pan_topology::geo::{GeoAnnotations, GeoPoint};

use crate::internet::{jitter, Skeleton, Tier};
use crate::prefix::{Ipv4Prefix, PrefixTable};
use crate::rng::DeterministicRng;

/// A synthetic per-prefix geolocation database.
pub type PrefixLocations = HashMap<Ipv4Prefix, GeoPoint>;

/// Geolocates every prefix of the table near its origin AS's home.
///
/// Spread by tier: tier-1 prefixes scatter over ±25° (global backbones),
/// transit ASes over ±6° (regional footprints), stubs over ±1.5°
/// (metropolitan footprints).
#[must_use]
pub(crate) fn locate_prefixes(
    skeleton: &Skeleton,
    prefixes: &PrefixTable,
    rng: &mut DeterministicRng,
) -> PrefixLocations {
    let mut locations = PrefixLocations::new();
    // Iterate ASes in graph order for determinism (HashMap iteration of
    // `prefixes.ases()` would be platform-dependent).
    for asn in skeleton.graph.ases() {
        let home = skeleton.homes[&asn];
        let spread = match skeleton.tiers[&asn] {
            Tier::Tier1 => 25.0,
            Tier::Transit => 6.0,
            Tier::Stub => 1.5,
        };
        for &prefix in prefixes.prefixes_of(asn) {
            locations.insert(prefix, jitter(home, spread, rng));
        }
    }
    locations
}

/// Joins prefixes with their locations into per-AS centroids, exactly as
/// the paper does: the center of gravity of an AS is the arithmetic mean
/// of its prefix coordinates.
///
/// ASes without any located prefix receive no annotation.
#[must_use]
pub fn as_centroids(prefixes: &PrefixTable, locations: &PrefixLocations) -> GeoAnnotations {
    let mut geo = GeoAnnotations::new();
    for asn in prefixes.ases() {
        let points: Vec<GeoPoint> = prefixes
            .prefixes_of(asn)
            .iter()
            .filter_map(|p| locations.get(p).copied())
            .collect();
        if let Some(centroid) = GeoPoint::centroid(&points) {
            geo.set_as_location(asn, centroid);
        }
    }
    geo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::internet::generate_topology;
    use crate::rng;
    use crate::InternetConfig;
    use pan_topology::Asn;

    fn skeleton() -> Skeleton {
        let config = InternetConfig {
            num_ases: 150,
            tier1_count: 5,
            ..InternetConfig::default()
        };
        generate_topology(&config, 17).unwrap()
    }

    #[test]
    fn every_prefix_gets_a_location() {
        let sk = skeleton();
        let prefixes = crate::prefix::generate(&sk, &mut rng::substream(17, "prefixes"));
        let locations = locate_prefixes(&sk, &prefixes, &mut rng::substream(17, "geolite"));
        assert_eq!(locations.len(), prefixes.len());
    }

    #[test]
    fn centroids_are_near_home_for_stubs() {
        let sk = skeleton();
        let prefixes = crate::prefix::generate(&sk, &mut rng::substream(17, "prefixes"));
        let locations = locate_prefixes(&sk, &prefixes, &mut rng::substream(17, "geolite"));
        let geo = as_centroids(&prefixes, &locations);
        // The last AS is a stub; its prefix cloud is tight (±1.5°), so the
        // centroid must lie within a few hundred km of home.
        let stub = Asn::new(150);
        let home = sk.homes[&stub];
        let centroid = geo.as_location(stub).unwrap();
        assert!(
            home.distance_km(centroid) < 400.0,
            "stub centroid {:?} too far from home {:?}",
            centroid,
            home
        );
    }

    #[test]
    fn tier1_prefix_cloud_is_wider_than_stub_cloud() {
        let sk = skeleton();
        let prefixes = crate::prefix::generate(&sk, &mut rng::substream(17, "prefixes"));
        let locations = locate_prefixes(&sk, &prefixes, &mut rng::substream(17, "geolite"));
        let spread_of = |asn: Asn| {
            let points: Vec<GeoPoint> = prefixes
                .prefixes_of(asn)
                .iter()
                .map(|p| locations[p])
                .collect();
            let c = GeoPoint::centroid(&points).unwrap();
            points.iter().map(|p| c.distance_km(*p)).sum::<f64>() / points.len() as f64
        };
        let tier1_spread = spread_of(Asn::new(1));
        let stub_spread = spread_of(Asn::new(150));
        assert!(
            tier1_spread > stub_spread,
            "tier-1 spread {tier1_spread} should exceed stub spread {stub_spread}"
        );
    }

    #[test]
    fn join_is_deterministic() {
        let sk = skeleton();
        let p1 = crate::prefix::generate(&sk, &mut rng::substream(17, "prefixes"));
        let l1 = locate_prefixes(&sk, &p1, &mut rng::substream(17, "geolite"));
        let p2 = crate::prefix::generate(&sk, &mut rng::substream(17, "prefixes"));
        let l2 = locate_prefixes(&sk, &p2, &mut rng::substream(17, "geolite"));
        let g1 = as_centroids(&p1, &l1);
        let g2 = as_centroids(&p2, &l2);
        for asn in sk.graph.ases() {
            assert_eq!(g1.as_location(asn), g2.as_location(asn));
        }
    }

    #[test]
    fn ases_without_prefixes_get_no_annotation() {
        let prefixes = PrefixTable::new();
        let locations = PrefixLocations::new();
        let geo = as_centroids(&prefixes, &locations);
        assert_eq!(geo.annotated_as_count(), 0);
    }
}
