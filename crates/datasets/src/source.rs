//! Unified market-ingestion layer: every way to obtain a market topology.
//!
//! [`MarketSource`] is the single entry point serve, bench, and tests use
//! to construct a market's input data. Both variants produce the same
//! [`SyntheticInternet`]-shaped output:
//!
//! - [`MarketSource::Synthetic`] runs the full generator pipeline —
//!   byte-identical to calling [`SyntheticInternet::generate`] directly.
//! - [`MarketSource::Caida`] loads a real-internet snapshot directory
//!   (CAIDA serial-2 relationships plus optional prefix/geo sidecars, see
//!   [`pan_topology::snapshot`]) and fills whatever the snapshot lacks with
//!   the synthetic generators: tiers are derived from the provider
//!   hierarchy, regions/home locations from the geo sidecar (or
//!   weighted-sampled like the generator), prefix portfolios from the
//!   sidecar (or generated), and facilities/capacities always
//!   synthetically.
//!
//! Construction is deterministic given the source and a seed, independent
//! of thread count and cache temperature: the graph cache stores the exact
//! serde form of the parsed graph, and all synthetic fill runs on labelled
//! substreams of the seed.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use pan_topology::geo::GeoPoint;
use pan_topology::snapshot::{self, CacheStatus};
use pan_topology::Asn;

use crate::internet::{default_regions, Skeleton, Tier};
use crate::{prefix, rng, DatasetError, InternetConfig, Result, SyntheticInternet};

/// Where a market's topology, geography, and prefix data come from.
#[derive(Debug, Clone, PartialEq)]
pub enum MarketSource {
    /// The synthetic generator pipeline with the given configuration.
    Synthetic(InternetConfig),
    /// A real-internet snapshot directory.
    Caida {
        /// Directory holding either one snapshot (a `relationships.txt`
        /// directly inside) or a family of them (one subdirectory per
        /// snapshot, e.g. per year).
        dir: PathBuf,
        /// Snapshot name (subdirectory) to load; `None` picks `dir` itself
        /// when it is a single snapshot, otherwise the lexicographically
        /// last (newest) snapshot under it.
        snapshot: Option<String>,
    },
}

/// How a [`MarketSource::build_with_status`] call obtained its data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceStatus {
    /// Graph-cache temperature, `None` for synthetic builds.
    pub cache: Option<CacheStatus>,
    /// Resolved snapshot directory, `None` for synthetic builds.
    pub snapshot_dir: Option<PathBuf>,
    /// Whether a prefix-to-AS sidecar supplied the prefix table.
    pub prefix_sidecar: bool,
    /// Whether a geolocation sidecar supplied AS locations.
    pub geo_sidecar: bool,
}

impl SourceStatus {
    fn synthetic() -> Self {
        SourceStatus {
            cache: None,
            snapshot_dir: None,
            prefix_sidecar: false,
            geo_sidecar: false,
        }
    }
}

impl MarketSource {
    /// Builds the market input data for this source.
    ///
    /// # Errors
    ///
    /// [`DatasetError::InvalidConfig`] for infeasible synthetic
    /// configurations; [`DatasetError::Snapshot`],
    /// [`DatasetError::MalformedPrefixLine`], and wrapped
    /// [`TopologyError`](pan_topology::TopologyError)s for snapshot
    /// problems.
    pub fn build(&self, seed: u64) -> Result<SyntheticInternet> {
        self.build_with_status(seed).map(|(net, _)| net)
    }

    /// Like [`build`](Self::build), but also reports where the data came
    /// from (cache temperature, resolved snapshot, sidecar usage) — the
    /// longitudinal driver surfaces this in its bench records.
    pub fn build_with_status(&self, seed: u64) -> Result<(SyntheticInternet, SourceStatus)> {
        match self {
            MarketSource::Synthetic(config) => {
                let net = SyntheticInternet::generate(config, seed)?;
                Ok((net, SourceStatus::synthetic()))
            }
            MarketSource::Caida { dir, snapshot } => build_caida(dir, snapshot.as_deref(), seed),
        }
    }

    /// A short human-readable label for reports and serve session names.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            MarketSource::Synthetic(config) => format!("synthetic:{}-as", config.num_ases),
            MarketSource::Caida { dir, snapshot } => match snapshot {
                Some(name) => format!("caida:{}/{name}", dir.display()),
                None => format!("caida:{}", dir.display()),
            },
        }
    }
}

/// Resolves the directory a [`MarketSource::Caida`] actually loads:
/// an explicit snapshot name, the directory itself when it directly holds
/// a relationships file, or the newest snapshot subdirectory.
pub fn resolve_snapshot_dir(dir: &Path, snapshot: Option<&str>) -> Result<PathBuf> {
    let chosen = match snapshot {
        Some(name) => dir.join(name),
        None if dir.join(snapshot::RELATIONSHIPS_FILE).is_file() => dir.to_path_buf(),
        None => {
            let names = snapshot::list_snapshots(dir)?;
            let newest = names.last().expect("list_snapshots never returns empty");
            dir.join(newest)
        }
    };
    if !chosen.join(snapshot::RELATIONSHIPS_FILE).is_file() {
        return Err(DatasetError::Snapshot {
            path: chosen.display().to_string(),
            reason: format!("no {} file", snapshot::RELATIONSHIPS_FILE),
        });
    }
    Ok(chosen)
}

fn read_sidecar(path: &Path) -> Result<Option<String>> {
    if !path.is_file() {
        return Ok(None);
    }
    std::fs::read_to_string(path)
        .map(Some)
        .map_err(|e| DatasetError::Snapshot {
            path: path.display().to_string(),
            reason: e.to_string(),
        })
}

fn build_caida(
    dir: &Path,
    snapshot_name: Option<&str>,
    seed: u64,
) -> Result<(SyntheticInternet, SourceStatus)> {
    let snap_dir = resolve_snapshot_dir(dir, snapshot_name)?;
    let (graph, cache) =
        snapshot::load_relationships(&snap_dir.join(snapshot::RELATIONSHIPS_FILE))?;

    // Tiers fall out of the provider hierarchy: provider-free ASes are the
    // core (real snapshots: the tier-1 clique plus a few oddballs), ASes
    // that sell transit are the middle, pure customers are stubs.
    let mut tiers: HashMap<Asn, Tier> = HashMap::with_capacity(graph.node_count());
    for asn in graph.ases() {
        let tier = if graph.providers(asn).count() == 0 {
            Tier::Tier1
        } else if graph.customers(asn).count() > 0 {
            Tier::Transit
        } else {
            Tier::Stub
        };
        tiers.insert(asn, tier);
    }

    // Geo sidecar: measured AS locations override the prefix-join
    // centroids and anchor region assignment.
    let geo_path = snap_dir.join(snapshot::GEO_FILE);
    let sidecar_geo: Option<Vec<(Asn, GeoPoint)>> = match read_sidecar(&geo_path)? {
        Some(text) => {
            let entries = snapshot::parse_geo(&text)?;
            for &(asn, _) in &entries {
                if !graph.contains(asn) {
                    return Err(DatasetError::Snapshot {
                        path: geo_path.display().to_string(),
                        reason: format!("{asn} is not in the relationships graph"),
                    });
                }
            }
            Some(entries)
        }
        None => None,
    };
    let located: HashMap<Asn, GeoPoint> = sidecar_geo.iter().flatten().copied().collect();

    // Regions and home locations: a located AS homes at its measured
    // point and belongs to the nearest hub's region; the rest sample a
    // region by weight and home near its hub, exactly like the synthetic
    // generator — on snapshot-specific substreams so synthetic output is
    // untouched.
    let regions = default_regions();
    let region_weights: Vec<f64> = regions.iter().map(|r| r.weight).collect();
    let mut region_rng = rng::substream(seed, "caida-regions");
    let mut home_rng = rng::substream(seed, "caida-homes");
    let mut as_region: HashMap<Asn, usize> = HashMap::with_capacity(graph.node_count());
    let mut homes: HashMap<Asn, GeoPoint> = HashMap::with_capacity(graph.node_count());
    for asn in graph.ases() {
        if let Some(&point) = located.get(&asn) {
            let nearest = regions
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    point
                        .distance_km(a.hub)
                        .total_cmp(&point.distance_km(b.hub))
                })
                .map(|(i, _)| i)
                .expect("region table is non-empty");
            as_region.insert(asn, nearest);
            homes.insert(asn, point);
        } else {
            let region = rng::weighted_index(&mut region_rng, &region_weights)
                .expect("region table is non-empty");
            let spread = match tiers[&asn] {
                Tier::Tier1 => 10.0,
                Tier::Transit => 5.0,
                Tier::Stub => 2.5,
            };
            as_region.insert(asn, region);
            homes.insert(
                asn,
                crate::internet::jitter(regions[region].hub, spread, &mut home_rng),
            );
        }
    }

    // Prefix sidecar, validated against the graph during parsing.
    let pfx_path = snap_dir.join(snapshot::PREFIXES_FILE);
    let sidecar_prefixes = match read_sidecar(&pfx_path)? {
        Some(text) => Some(prefix::parse_pfx2as(&text, &graph)?),
        None => None,
    };

    let status = SourceStatus {
        cache: Some(cache),
        snapshot_dir: Some(snap_dir),
        prefix_sidecar: sidecar_prefixes.is_some(),
        geo_sidecar: sidecar_geo.is_some(),
    };
    let skeleton = Skeleton {
        graph,
        tiers,
        as_region,
        regions,
        homes,
    };
    let net = SyntheticInternet::assemble(
        skeleton,
        sidecar_prefixes,
        sidecar_geo.as_deref(),
        seed,
        InternetConfig::default().capacity_scale,
    );
    Ok((net, status))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_source_matches_direct_generation() {
        let config = InternetConfig {
            num_ases: 200,
            tier1_count: 4,
            ..InternetConfig::default()
        };
        let direct = SyntheticInternet::generate(&config, 7).unwrap();
        let (sourced, status) = MarketSource::Synthetic(config)
            .build_with_status(7)
            .unwrap();
        let links_a: Vec<_> = direct.graph.links().collect();
        let links_b: Vec<_> = sourced.graph.links().collect();
        assert_eq!(links_a, links_b);
        assert_eq!(direct.prefixes.len(), sourced.prefixes.len());
        for asn in direct.graph.ases() {
            assert_eq!(direct.geo.as_location(asn), sourced.geo.as_location(asn));
        }
        assert_eq!(status, SourceStatus::synthetic());
    }

    #[test]
    fn labels_name_the_source() {
        let synthetic = MarketSource::Synthetic(InternetConfig::default());
        assert_eq!(synthetic.label(), "synthetic:4000-as");
        let caida = MarketSource::Caida {
            dir: PathBuf::from("/data/caida"),
            snapshot: Some("2024".to_owned()),
        };
        assert_eq!(caida.label(), "caida:/data/caida/2024");
    }

    #[test]
    fn missing_directory_is_a_snapshot_error() {
        let source = MarketSource::Caida {
            dir: PathBuf::from("/nonexistent-snapshots"),
            snapshot: None,
        };
        assert!(source.build(1).is_err());
    }
}
