use std::fmt;

use pan_topology::TopologyError;

/// Errors produced while generating or joining synthetic datasets.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DatasetError {
    /// A generator configuration is structurally impossible.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// An underlying topology operation failed.
    Topology(TopologyError),
    /// A prefix string could not be parsed.
    InvalidPrefix {
        /// The offending text.
        text: String,
    },
    /// A `addr<TAB>len<TAB>asn` prefix-to-AS sidecar line could not be
    /// parsed, or referenced an AS outside the snapshot graph.
    MalformedPrefixLine {
        /// 1-based line number.
        line: usize,
        /// The offending line content.
        text: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A snapshot directory could not be turned into a market (missing
    /// files, sidecar/graph mismatches, unresolvable snapshot names).
    Snapshot {
        /// Path of the offending snapshot directory or file.
        path: String,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::InvalidConfig { reason } => {
                write!(f, "invalid generator configuration: {reason}")
            }
            DatasetError::Topology(err) => write!(f, "topology error: {err}"),
            DatasetError::InvalidPrefix { text } => {
                write!(f, "cannot parse {text:?} as an IPv4 prefix")
            }
            DatasetError::MalformedPrefixLine { line, text, reason } => {
                write!(f, "malformed prefix-to-AS line {line} ({reason}): {text:?}")
            }
            DatasetError::Snapshot { path, reason } => {
                write!(f, "cannot load snapshot {path}: {reason}")
            }
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Topology(err) => Some(err),
            _ => None,
        }
    }
}

impl From<TopologyError> for DatasetError {
    fn from(err: TopologyError) -> Self {
        DatasetError::Topology(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_topology_errors() {
        let err: DatasetError = TopologyError::SelfLoop {
            asn: pan_topology::Asn::new(1),
        }
        .into();
        assert!(err.to_string().contains("AS1"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
