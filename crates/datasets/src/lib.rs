//! Synthetic Internet datasets.
//!
//! The paper's evaluation (§VI) combines four publicly available datasets:
//!
//! 1. the CAIDA AS-relationship dataset (serial-2),
//! 2. the CAIDA Routeviews prefix-to-AS dataset,
//! 3. MaxMind's GeoLite2 IP-geolocation database, and
//! 4. the CAIDA geographic AS-relationship dataset (link facilities).
//!
//! Those exact snapshots are not redistributable, so this crate generates
//! **synthetic equivalents with the same schemas and the structural
//! properties the analysis is sensitive to**: a tiered, heavy-tailed AS
//! topology with geography-biased peering ([`internet`]), per-AS prefix
//! tables ([`prefix`]), per-prefix geolocation ([`geolite`]), and per-link
//! interconnection facilities ([`georel`]). All generators are
//! deterministic given a seed.
//!
//! The one-stop entry point is [`SyntheticInternet::generate`], which runs
//! the full pipeline and performs the same dataset joins as the paper
//! (prefix → location → AS centroid). [`MarketSource`] generalizes it:
//! the same pipeline output built either synthetically or from a
//! real-internet snapshot directory ([`source`]), with the synthetic
//! generators filling any fields a snapshot lacks.
//!
//! ```
//! use pan_datasets::{InternetConfig, SyntheticInternet};
//!
//! let config = InternetConfig { num_ases: 200, ..InternetConfig::default() };
//! let internet = SyntheticInternet::generate(&config, 7)?;
//! assert_eq!(internet.graph.node_count(), 200);
//! // Every AS has a geolocated centroid derived from its prefixes.
//! assert_eq!(internet.geo.annotated_as_count(), 200);
//! # Ok::<(), pan_datasets::DatasetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod error;
pub mod geolite;
pub mod georel;
pub mod internet;
pub mod prefix;
pub mod rng;
pub mod sampler;
pub mod source;

pub use error::DatasetError;
pub use internet::{InternetConfig, SyntheticInternet, Tier};
pub use prefix::{Ipv4Prefix, PrefixTable};
pub use sampler::WeightedSampler;
pub use source::{MarketSource, SourceStatus};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, DatasetError>;
