//! Deterministic random-number utilities.
//!
//! Every generator in this crate is seeded explicitly so that figures and
//! tests are reproducible bit-for-bit across platforms. [`seeded`] creates
//! the base generator and [`substream`] derives independent generators for
//! pipeline stages, so adding randomness to one stage never perturbs
//! another.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// The deterministic RNG used throughout the workspace.
pub type DeterministicRng = ChaCha12Rng;

/// Creates the base deterministic generator for a seed.
#[must_use]
pub fn seeded(seed: u64) -> DeterministicRng {
    ChaCha12Rng::seed_from_u64(seed)
}

/// Derives an independent generator for a named pipeline stage.
///
/// The stream is identified by hashing `label`, so generators for distinct
/// labels are statistically independent and adding a new stage does not
/// shift the randomness consumed by existing ones.
#[must_use]
pub fn substream(seed: u64, label: &str) -> DeterministicRng {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    rng.set_stream(fnv1a(label.as_bytes()));
    rng
}

/// Samples an index in `0..weights.len()` proportionally to `weights`.
///
/// Zero-weight entries are never selected unless all weights are zero, in
/// which case the index is uniform. Returns `None` for an empty slice.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    if weights.is_empty() {
        return None;
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Some(rng.gen_range(0..weights.len()));
    }
    let mut target = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target < 0.0 {
            return Some(i);
        }
    }
    Some(weights.len() - 1)
}

/// 64-bit FNV-1a hash (stable across platforms and releases).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn substreams_differ_between_labels() {
        let mut a = substream(42, "alpha");
        let mut b = substream(42, "beta");
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn substreams_are_reproducible() {
        let mut a = substream(42, "alpha");
        let mut b = substream(42, "alpha");
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = seeded(1);
        let weights = [0.0, 0.0, 1.0];
        for _ in 0..32 {
            assert_eq!(weighted_index(&mut rng, &weights), Some(2));
        }
    }

    #[test]
    fn weighted_index_handles_degenerate_inputs() {
        let mut rng = seeded(1);
        assert_eq!(weighted_index(&mut rng, &[]), None);
        let idx = weighted_index(&mut rng, &[0.0, 0.0]).unwrap();
        assert!(idx < 2);
    }

    #[test]
    fn weighted_index_is_roughly_proportional() {
        let mut rng = seeded(7);
        let weights = [1.0, 3.0];
        let mut counts = [0usize; 2];
        for _ in 0..4000 {
            counts[weighted_index(&mut rng, &weights).unwrap()] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((2.0..4.5).contains(&ratio), "ratio {ratio}");
    }
}
