//! Synthetic Internet-topology generator.
//!
//! Generates tiered, heavy-tailed AS graphs whose structure mirrors the
//! properties of the CAIDA AS-relationship dataset that the paper's
//! path-diversity analysis (§VI) depends on:
//!
//! - a small clique of **tier-1** ASes with no providers,
//! - a layer of **transit** (tier-2) ASes attaching to providers by
//!   preferential attachment (producing a heavy-tailed customer-degree
//!   distribution),
//! - a majority of **stub** ASes purchasing transit from one to three
//!   providers,
//! - dense **peering** among transit ASes, biased towards geographic
//!   proximity (real peering requires co-location at an IXP), plus sparse
//!   stub-to-stub peering.
//!
//! The generator is deterministic given a seed, and its output round-trips
//! through the CAIDA serial-2 format of
//! [`pan_topology::caida`], so real snapshots can replace it directly.

use std::collections::HashMap;

use rand::Rng;
use serde::{Deserialize, Serialize};

use pan_topology::bandwidth::LinkCapacities;
use pan_topology::geo::{GeoAnnotations, GeoPoint};
use pan_topology::{AsGraph, AsGraphBuilder, Asn, Relationship};

use crate::rng::{self, DeterministicRng};
use crate::sampler::WeightedSampler;
use crate::{geolite, georel, prefix, DatasetError, Result};

/// The hierarchy layer of a synthetic AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Provider-free core AS (member of the tier-1 clique).
    Tier1,
    /// Transit AS: has providers and sells transit to others.
    Transit,
    /// Stub AS: purchases transit, has no customers of its own.
    Stub,
}

/// A geographic region with a population weight and an interconnection hub.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Human-readable name, e.g. `"europe-west"`.
    pub name: String,
    /// The region's main interconnection hub.
    pub hub: GeoPoint,
    /// Relative share of ASes homed in the region.
    pub weight: f64,
}

/// The built-in region table (continental interconnection hubs).
#[must_use]
pub fn default_regions() -> Vec<Region> {
    let p = |lat: f64, lon: f64| GeoPoint::new(lat, lon).expect("static coordinates are valid");
    vec![
        Region {
            name: "north-america-east".to_string(),
            hub: p(40.7, -74.0),
            weight: 0.18,
        },
        Region {
            name: "north-america-west".to_string(),
            hub: p(37.4, -122.1),
            weight: 0.10,
        },
        Region {
            name: "europe-west".to_string(),
            hub: p(50.1, 8.7),
            weight: 0.22,
        },
        Region {
            name: "europe-east".to_string(),
            hub: p(52.2, 21.0),
            weight: 0.10,
        },
        Region {
            name: "asia-east".to_string(),
            hub: p(35.7, 139.7),
            weight: 0.14,
        },
        Region {
            name: "asia-south".to_string(),
            hub: p(19.1, 72.9),
            weight: 0.10,
        },
        Region {
            name: "south-america".to_string(),
            hub: p(-23.5, -46.6),
            weight: 0.08,
        },
        Region {
            name: "oceania".to_string(),
            hub: p(-33.9, 151.2),
            weight: 0.04,
        },
        Region {
            name: "africa".to_string(),
            hub: p(6.5, 3.4),
            weight: 0.04,
        },
    ]
}

/// Configuration of the synthetic Internet generator.
///
/// The defaults produce a ~4,000-AS topology that is large enough for the
/// heavy-tailed effects the paper's evaluation relies on while keeping the
/// full figure pipeline fast.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InternetConfig {
    /// Total number of ASes.
    pub num_ases: usize,
    /// Number of tier-1 ASes (full peering clique, no providers).
    pub tier1_count: usize,
    /// Fraction of ASes that are transit (tier-2) ASes.
    pub transit_fraction: f64,
    /// Mean number of providers beyond the first for multihomed ASes.
    pub mean_extra_providers: f64,
    /// Target mean peering degree of transit ASes.
    pub transit_peer_degree: f64,
    /// Target mean peering degree of stub ASes.
    pub stub_peer_degree: f64,
    /// Multiplier applied to peering probability for same-region pairs.
    pub same_region_bias: f64,
    /// Fraction of transit ASes acting as **open-peering hubs** (IXP
    /// route-server style networks that peer with a large share of all
    /// ASes, like Hurricane Electric in the real Internet). These hubs
    /// are what make mutuality-based agreements reach most AS pairs in
    /// the CAIDA topology.
    pub hub_fraction: f64,
    /// Probability that a same-region AS peers with an open hub.
    pub hub_same_region_attach: f64,
    /// Probability that a cross-region AS peers with an open hub.
    pub hub_cross_region_attach: f64,
    /// Scale factor of the degree-gravity capacity model.
    pub capacity_scale: f64,
}

impl Default for InternetConfig {
    fn default() -> Self {
        InternetConfig {
            num_ases: 4_000,
            tier1_count: 12,
            transit_fraction: 0.15,
            mean_extra_providers: 0.8,
            transit_peer_degree: 12.0,
            stub_peer_degree: 2.0,
            same_region_bias: 8.0,
            hub_fraction: 0.06,
            hub_same_region_attach: 0.6,
            hub_cross_region_attach: 0.08,
            capacity_scale: 1.0,
        }
    }
}

impl InternetConfig {
    /// Validates structural feasibility of the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] when the parameters cannot
    /// produce a well-formed topology.
    pub fn validate(&self) -> Result<()> {
        let fail = |reason: String| Err(DatasetError::InvalidConfig { reason });
        if self.num_ases < 4 {
            return fail(format!("need at least 4 ASes, got {}", self.num_ases));
        }
        if self.tier1_count < 2 || self.tier1_count >= self.num_ases {
            return fail(format!(
                "tier1_count must be in [2, num_ases), got {}",
                self.tier1_count
            ));
        }
        if !(0.0..=1.0).contains(&self.transit_fraction) {
            return fail(format!(
                "transit_fraction must be in [0, 1], got {}",
                self.transit_fraction
            ));
        }
        if self.tier1_count + self.transit_count() >= self.num_ases {
            return fail("tier-1 plus transit ASes exhaust the AS budget; no stubs left".into());
        }
        for (name, v) in [
            ("mean_extra_providers", self.mean_extra_providers),
            ("transit_peer_degree", self.transit_peer_degree),
            ("stub_peer_degree", self.stub_peer_degree),
        ] {
            if !v.is_finite() || v < 0.0 {
                return fail(format!("{name} must be non-negative and finite, got {v}"));
            }
        }
        if !self.same_region_bias.is_finite() || self.same_region_bias < 1.0 {
            return fail(format!(
                "same_region_bias must be >= 1, got {}",
                self.same_region_bias
            ));
        }
        for (name, v) in [
            ("hub_fraction", self.hub_fraction),
            ("hub_same_region_attach", self.hub_same_region_attach),
            ("hub_cross_region_attach", self.hub_cross_region_attach),
        ] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return fail(format!("{name} must be in [0, 1], got {v}"));
            }
        }
        if !self.capacity_scale.is_finite() || self.capacity_scale <= 0.0 {
            return fail(format!(
                "capacity_scale must be positive, got {}",
                self.capacity_scale
            ));
        }
        Ok(())
    }

    fn transit_count(&self) -> usize {
        ((self.num_ases as f64) * self.transit_fraction).round() as usize
    }
}

/// A fully generated synthetic Internet: topology plus every annotation the
/// paper's evaluation needs.
#[derive(Debug, Clone)]
pub struct SyntheticInternet {
    /// The AS-level topology.
    pub graph: AsGraph,
    /// Hierarchy tier of every AS.
    pub tiers: HashMap<Asn, Tier>,
    /// Region index (into [`SyntheticInternet::regions`]) of every AS.
    pub as_region: HashMap<Asn, usize>,
    /// The region table used during generation.
    pub regions: Vec<Region>,
    /// Synthetic prefix-to-AS table (CAIDA Routeviews stand-in).
    pub prefixes: prefix::PrefixTable,
    /// Geographic annotations: AS centroids (from the prefix join, as in
    /// the paper) and per-link interconnection facilities.
    pub geo: GeoAnnotations,
    /// Degree-gravity link capacities.
    pub capacities: LinkCapacities,
}

impl SyntheticInternet {
    /// Runs the full generation pipeline.
    ///
    /// Stages (each on an independent random substream of `seed`):
    /// topology → prefix table → prefix geolocation → AS centroids →
    /// link facilities → link capacities.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] for infeasible configurations.
    pub fn generate(config: &InternetConfig, seed: u64) -> Result<Self> {
        config.validate()?;

        let skeleton = generate_topology(config, seed)?;
        Ok(Self::assemble(
            skeleton,
            None,
            None,
            seed,
            config.capacity_scale,
        ))
    }

    /// Runs the annotation stages of the pipeline on a prepared skeleton:
    /// prefix table → prefix geolocation → AS centroids → link facilities →
    /// link capacities, each on an independent random substream of `seed`.
    ///
    /// This is the convergence point of every market source: the synthetic
    /// generator passes `None` for both sidecars, while snapshot loading
    /// passes whatever the snapshot directory provided (`prefixes` replaces
    /// the synthetic prefix portfolio, `geo_overrides` pins AS centroids to
    /// measured locations after the prefix join). The substream labels are
    /// part of the determinism contract — changing them changes every
    /// committed synthetic figure.
    pub(crate) fn assemble(
        skeleton: Skeleton,
        prefixes: Option<prefix::PrefixTable>,
        geo_overrides: Option<&[(Asn, GeoPoint)]>,
        seed: u64,
        capacity_scale: f64,
    ) -> Self {
        let prefixes = prefixes
            .unwrap_or_else(|| prefix::generate(&skeleton, &mut rng::substream(seed, "prefixes")));
        let locations =
            geolite::locate_prefixes(&skeleton, &prefixes, &mut rng::substream(seed, "geolite"));
        let mut geo = geolite::as_centroids(&prefixes, &locations);
        if let Some(overrides) = geo_overrides {
            for &(asn, point) in overrides {
                geo.set_as_location(asn, point);
            }
        }
        georel::add_facilities(
            &skeleton.graph,
            &mut geo,
            &mut rng::substream(seed, "facilities"),
        );
        let capacities = LinkCapacities::degree_gravity(&skeleton.graph, capacity_scale);

        SyntheticInternet {
            graph: skeleton.graph,
            tiers: skeleton.tiers,
            as_region: skeleton.as_region,
            regions: skeleton.regions,
            prefixes,
            geo,
            capacities,
        }
    }

    /// Tier of an AS (defaults to [`Tier::Stub`] for unknown ASes).
    #[must_use]
    pub fn tier(&self, asn: Asn) -> Tier {
        self.tiers.get(&asn).copied().unwrap_or(Tier::Stub)
    }
}

/// Intermediate product of stage 1: graph plus tier/region/home tables.
#[derive(Debug, Clone)]
pub(crate) struct Skeleton {
    pub(crate) graph: AsGraph,
    pub(crate) tiers: HashMap<Asn, Tier>,
    pub(crate) as_region: HashMap<Asn, usize>,
    pub(crate) regions: Vec<Region>,
    /// "Home" location of each AS (hub + jitter) — the ground truth the
    /// prefix clouds are sampled around. The analysis only ever sees the
    /// centroid reconstructed from prefixes, mirroring the paper.
    pub(crate) homes: HashMap<Asn, GeoPoint>,
}

pub(crate) fn generate_topology(config: &InternetConfig, seed: u64) -> Result<Skeleton> {
    let mut rng = rng::substream(seed, "topology");
    let regions = default_regions();
    let n = config.num_ases;
    let n_tier1 = config.tier1_count;
    let n_transit = config.transit_count();

    // ASNs are assigned 1..=n in placement order: tier-1 first, then
    // transit, then stubs. Providers are always drawn from earlier ASes,
    // which guarantees an acyclic provider hierarchy by construction.
    let asns: Vec<Asn> = (1..=n as u32).map(Asn::new).collect();
    let mut tiers = HashMap::with_capacity(n);
    for (i, &asn) in asns.iter().enumerate() {
        let tier = if i < n_tier1 {
            Tier::Tier1
        } else if i < n_tier1 + n_transit {
            Tier::Transit
        } else {
            Tier::Stub
        };
        tiers.insert(asn, tier);
    }

    // Region assignment: tier-1 ASes round-robin across the major regions
    // (they are global networks anyway); everyone else samples by weight.
    let region_weights: Vec<f64> = regions.iter().map(|r| r.weight).collect();
    let mut as_region = HashMap::with_capacity(n);
    for (i, &asn) in asns.iter().enumerate() {
        let region = if i < n_tier1 {
            i % regions.len()
        } else {
            rng::weighted_index(&mut rng, &region_weights).expect("regions are non-empty")
        };
        as_region.insert(asn, region);
    }

    // Home locations: hub plus jitter that grows with tier footprint.
    let mut homes = HashMap::with_capacity(n);
    for &asn in &asns {
        let hub = regions[as_region[&asn]].hub;
        let spread = match tiers[&asn] {
            Tier::Tier1 => 10.0,
            Tier::Transit => 5.0,
            Tier::Stub => 2.5,
        };
        homes.insert(asn, jitter(hub, spread, &mut rng));
    }

    let mut builder = AsGraphBuilder::with_capacity(n, n * 3);
    for &asn in &asns {
        builder.add_as(asn);
    }

    // Tier-1 clique.
    for i in 0..n_tier1 {
        for j in (i + 1)..n_tier1 {
            builder.add_link(asns[i], asns[j], Relationship::PeerToPeer)?;
        }
    }

    // Transit and stub ASes choose providers among earlier ASes by
    // region-biased preferential attachment on customer degree.
    //
    // Sampling is sublinear: two Fenwick trees hold the *region-free*
    // attachment weights — `(customer_degree + 1)`, and the same with the
    // 0.25 tier-1 discount stubs apply — and the same-region bias is
    // realized by rejection (same-region proposals always accepted,
    // cross-region ones with probability `1/bias`), which samples the
    // exact distribution the old `O(n · pool)` weight scan did. A
    // candidate enters the trees only once it is placed, so the "earlier
    // ASes only" pool restriction falls out of the activation order.
    let pool = n_tier1 + n_transit;
    let mut customer_degree = vec![0usize; n];
    let mut transit_pool = WeightedSampler::new(pool); // weights for transit placements
    let mut stub_pool = WeightedSampler::new(pool); // weights for stub placements
    let stub_factor = |c: usize| if c < n_tier1 { 0.25 } else { 1.0 };
    for c in 0..n_tier1 {
        transit_pool.add(c, 1.0);
        stub_pool.add(c, stub_factor(c));
    }
    let region_of: Vec<usize> = asns.iter().map(|a| as_region[a]).collect();
    let mut active = n_tier1;
    for (i, &asn) in asns.iter().enumerate().skip(n_tier1) {
        let is_transit = i < pool;
        let sampler = if is_transit {
            &transit_pool
        } else {
            &stub_pool
        };
        let provider_count = 1 + sample_geometric(config.mean_extra_providers, &mut rng);
        let mut chosen: Vec<usize> = Vec::with_capacity(provider_count);
        for _ in 0..provider_count.min(active) {
            // Rejection-sample distinct, region-accepted providers; the
            // pool is large relative to provider_count and the
            // acceptance probability is at least 1/bias, so the attempt
            // cap is almost never reached.
            for _ in 0..64 {
                let Some(pick) = sampler.sample(&mut rng) else {
                    break;
                };
                if region_of[pick] != region_of[i]
                    && rng.gen_range(0.0..1.0) > 1.0 / config.same_region_bias
                {
                    continue;
                }
                if !chosen.contains(&pick) {
                    chosen.push(pick);
                    break;
                }
            }
        }
        for provider in chosen {
            builder.add_link(asns[provider], asn, Relationship::ProviderToCustomer)?;
            customer_degree[provider] += 1;
            transit_pool.add(provider, 1.0);
            stub_pool.add(provider, stub_factor(provider));
        }
        if is_transit {
            // This transit AS becomes a candidate for everyone placed
            // after it.
            transit_pool.add(i, 1.0 + customer_degree[i] as f64);
            stub_pool.add(i, 1.0 + customer_degree[i] as f64);
            active += 1;
        }
    }

    // Peering among transit ASes: sample pairs with region bias until the
    // target mean degree is met.
    add_peering(
        &mut builder,
        &asns[n_tier1..n_tier1 + n_transit],
        &as_region,
        config.transit_peer_degree,
        config.same_region_bias,
        &mut rng,
    )?;
    // Sparse stub peering (IXP-style, same-region only in expectation).
    add_peering(
        &mut builder,
        &asns[n_tier1 + n_transit..],
        &as_region,
        config.stub_peer_degree,
        config.same_region_bias,
        &mut rng,
    )?;

    // Open-peering hubs: the best-connected transit ASes peer with a
    // large share of all other ASes, same-region preferentially — the
    // route-server/IXP effect that dominates real peering meshes.
    let hub_count = ((n_transit as f64) * config.hub_fraction).round() as usize;
    // Hubs are spread evenly across the transit tier: placement order
    // correlates with customer-cone size (preferential attachment), so
    // an even spread mixes HE-style giants (big transit *and* peering)
    // with IXP-route-server profiles (tiny cones, huge peering meshes) —
    // both exist in the real Internet and they affect valley-free paths
    // very differently.
    let hubs: Vec<Asn> = if hub_count > 0 && n_transit > 0 {
        (0..hub_count)
            .map(|k| {
                let offset = (k * n_transit) / hub_count;
                asns[n_tier1 + offset]
            })
            .collect()
    } else {
        Vec::new()
    };
    // Hub attachment walks each region's member list with geometric
    // gap-skipping: instead of flipping one Bernoulli(p) coin per AS
    // (quadratic in hubs × ASes), it samples the gap to the next success
    // directly, costing O(links created). The induced link distribution
    // is identical.
    let mut region_members: Vec<Vec<Asn>> = vec![Vec::new(); regions.len()];
    for &asn in asns.iter().skip(n_tier1) {
        region_members[as_region[&asn]].push(asn);
    }
    for &hub in &hubs {
        for (region, members) in region_members.iter().enumerate() {
            let p = if region == as_region[&hub] {
                config.hub_same_region_attach
            } else {
                config.hub_cross_region_attach
            };
            let mut idx = 0usize;
            while idx < members.len() {
                let Some(gap) = geometric_gap(p, &mut rng) else {
                    break;
                };
                let Some(at) = idx.checked_add(gap) else {
                    break;
                };
                if at >= members.len() {
                    break;
                }
                let other = members[at];
                idx = at + 1;
                if other == hub {
                    continue;
                }
                match builder.add_link(hub, other, Relationship::PeerToPeer) {
                    Ok(_) => {}
                    // A transit link already connects the pair — skip.
                    Err(pan_topology::TopologyError::ConflictingLink { .. }) => {}
                    Err(other_err) => return Err(other_err.into()),
                }
            }
        }
    }

    let graph = builder.build()?;
    Ok(Skeleton {
        graph,
        tiers,
        as_region,
        regions,
        homes,
    })
}

/// Adds peering links among `members` until the mean peering degree reaches
/// `target_degree`, preferring same-region pairs by `bias`.
fn add_peering(
    builder: &mut AsGraphBuilder,
    members: &[Asn],
    as_region: &HashMap<Asn, usize>,
    target_degree: f64,
    bias: f64,
    rng: &mut DeterministicRng,
) -> Result<()> {
    let m = members.len();
    if m < 2 || target_degree <= 0.0 {
        return Ok(());
    }
    let target_links = ((m as f64) * target_degree / 2.0).round() as usize;
    let mut added = 0usize;
    let mut attempts = 0usize;
    let max_attempts = target_links.saturating_mul(50) + 1000;
    while added < target_links && attempts < max_attempts {
        attempts += 1;
        let i = rng.gen_range(0..m);
        let j = rng.gen_range(0..m);
        if i == j {
            continue;
        }
        let same_region = as_region[&members[i]] == as_region[&members[j]];
        // Accept cross-region pairs with probability 1/bias.
        if !same_region && rng.gen_range(0.0..1.0) > 1.0 / bias {
            continue;
        }
        match builder.add_link(members[i], members[j], Relationship::PeerToPeer) {
            Ok(_) => added += 1,
            // A transit link already connects the pair — skip it.
            Err(pan_topology::TopologyError::ConflictingLink { .. }) => {}
            Err(other) => return Err(other.into()),
        }
    }
    Ok(())
}

/// The gap (number of failures) before the next success of a
/// Bernoulli(`p`) sequence, sampled directly via inversion —
/// `⌊ln(1 − u) / ln(1 − p)⌋`. `None` means "no further success"
/// (`p ≤ 0`). Replaces per-element coin flips in dense attachment loops.
fn geometric_gap(p: f64, rng: &mut DeterministicRng) -> Option<usize> {
    if p <= 0.0 {
        return None;
    }
    if p >= 1.0 {
        return Some(0);
    }
    let u: f64 = rng.gen_range(0.0..1.0);
    let gap = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
    // Float-to-int conversion saturates, so absurdly long gaps simply
    // overshoot the member list and end the walk.
    Some(gap as usize)
}

/// Samples from a geometric-like distribution with the given mean
/// (number of Bernoulli successes with p = mean/(1+mean), capped at 4).
fn sample_geometric(mean: f64, rng: &mut DeterministicRng) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let p = mean / (1.0 + mean);
    let mut count = 0;
    while count < 4 && rng.gen_range(0.0..1.0) < p {
        count += 1;
    }
    count
}

/// Jitters a point by a uniform offset of up to `spread_deg` degrees in
/// each coordinate, clamping into the valid range.
pub(crate) fn jitter(point: GeoPoint, spread_deg: f64, rng: &mut DeterministicRng) -> GeoPoint {
    let lat = (point.lat_deg() + rng.gen_range(-spread_deg..=spread_deg)).clamp(-89.0, 89.0);
    let lon_raw = point.lon_deg() + rng.gen_range(-spread_deg..=spread_deg);
    let lon = wrap_lon(lon_raw);
    GeoPoint::new(lat, lon).expect("clamped coordinates are valid")
}

fn wrap_lon(lon: f64) -> f64 {
    let mut l = lon;
    while l > 180.0 {
        l -= 360.0;
    }
    while l < -180.0 {
        l += 360.0;
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> InternetConfig {
        InternetConfig {
            num_ases: 300,
            tier1_count: 6,
            ..InternetConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let config = small_config();
        let a = SyntheticInternet::generate(&config, 11).unwrap();
        let b = SyntheticInternet::generate(&config, 11).unwrap();
        assert_eq!(a.graph.link_count(), b.graph.link_count());
        let la: Vec<_> = a.graph.links().collect();
        let lb: Vec<_> = b.graph.links().collect();
        assert_eq!(la, lb);
    }

    #[test]
    fn different_seeds_differ() {
        let config = small_config();
        let a = SyntheticInternet::generate(&config, 1).unwrap();
        let b = SyntheticInternet::generate(&config, 2).unwrap();
        let la: Vec<_> = a.graph.links().collect();
        let lb: Vec<_> = b.graph.links().collect();
        assert_ne!(la, lb);
    }

    #[test]
    fn tier1_forms_provider_free_clique() {
        let net = SyntheticInternet::generate(&small_config(), 3).unwrap();
        let tier1: Vec<Asn> = (1..=6).map(Asn::new).collect();
        for &a in &tier1 {
            assert_eq!(net.graph.providers(a).count(), 0, "{a} has a provider");
            for &b in &tier1 {
                if a != b {
                    assert!(net.graph.peers(a).any(|p| p == b), "{a} not peering {b}");
                }
            }
        }
    }

    #[test]
    fn every_non_tier1_as_has_a_provider() {
        let net = SyntheticInternet::generate(&small_config(), 3).unwrap();
        for asn in net.graph.ases() {
            if net.tier(asn) != Tier::Tier1 {
                assert!(
                    net.graph.providers(asn).count() >= 1,
                    "{asn} ({:?}) has no provider",
                    net.tier(asn)
                );
            }
        }
    }

    #[test]
    fn stubs_have_no_customers() {
        let net = SyntheticInternet::generate(&small_config(), 3).unwrap();
        for asn in net.graph.ases() {
            if net.tier(asn) == Tier::Stub {
                assert_eq!(net.graph.customers(asn).count(), 0, "{asn} has customers");
            }
        }
    }

    #[test]
    fn customer_degree_is_heavy_tailed() {
        let net = SyntheticInternet::generate(
            &InternetConfig {
                num_ases: 1_000,
                ..InternetConfig::default()
            },
            5,
        )
        .unwrap();
        let mut degrees: Vec<usize> = net
            .graph
            .ases()
            .map(|a| net.graph.customers(a).count())
            .collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = degrees.iter().sum();
        let top10: usize = degrees.iter().take(10).sum();
        // Preferential attachment concentrates customers on few providers.
        assert!(
            top10 as f64 > 0.2 * total as f64,
            "top-10 providers hold only {top10}/{total} customer links"
        );
    }

    #[test]
    fn every_as_has_geo_centroid_and_region() {
        let net = SyntheticInternet::generate(&small_config(), 3).unwrap();
        assert_eq!(net.geo.annotated_as_count(), 300);
        for asn in net.graph.ases() {
            assert!(net.as_region.contains_key(&asn));
            assert!(net.geo.as_location(asn).is_some());
        }
    }

    #[test]
    fn caida_round_trip() {
        let net = SyntheticInternet::generate(&small_config(), 3).unwrap();
        let text = pan_topology::caida::to_string(&net.graph);
        let back = pan_topology::caida::parse(&text).unwrap();
        assert_eq!(back.node_count(), net.graph.node_count());
        assert_eq!(back.link_count(), net.graph.link_count());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = [
            InternetConfig {
                num_ases: 2,
                ..InternetConfig::default()
            },
            InternetConfig {
                tier1_count: 1,
                ..InternetConfig::default()
            },
            InternetConfig {
                transit_fraction: 1.5,
                ..InternetConfig::default()
            },
            InternetConfig {
                same_region_bias: 0.5,
                ..InternetConfig::default()
            },
            InternetConfig {
                capacity_scale: 0.0,
                ..InternetConfig::default()
            },
            InternetConfig {
                num_ases: 100,
                tier1_count: 10,
                transit_fraction: 0.95,
                ..InternetConfig::default()
            },
        ];
        for config in bad {
            assert!(
                SyntheticInternet::generate(&config, 1).is_err(),
                "config {config:?} should be rejected"
            );
        }
    }

    #[test]
    fn region_bias_concentrates_peering() {
        let net = SyntheticInternet::generate(&small_config(), 9).unwrap();
        // Compare peering *rates* (links per opportunity pair), since
        // cross-region pairs vastly outnumber same-region ones and hubs
        // deliberately peer across regions.
        let mut same_links = 0usize;
        let mut cross_links = 0usize;
        for link in net.graph.links() {
            let clique = net.tier(link.a) == Tier::Tier1 && net.tier(link.b) == Tier::Tier1;
            if link.relationship.is_peering() && !clique {
                if net.as_region[&link.a] == net.as_region[&link.b] {
                    same_links += 1;
                } else {
                    cross_links += 1;
                }
            }
        }
        let mut same_pairs = 0usize;
        let mut cross_pairs = 0usize;
        let ases: Vec<Asn> = net.graph.ases().collect();
        for (i, &a) in ases.iter().enumerate() {
            for &b in ases.iter().skip(i + 1) {
                if net.as_region[&a] == net.as_region[&b] {
                    same_pairs += 1;
                } else {
                    cross_pairs += 1;
                }
            }
        }
        let same_rate = same_links as f64 / same_pairs as f64;
        let cross_rate = cross_links as f64 / cross_pairs as f64;
        assert!(
            same_rate > 2.0 * cross_rate,
            "same-region peering rate {same_rate:.5} should far exceed cross-region rate {cross_rate:.5}"
        );
    }

    #[test]
    fn wrap_lon_behaves() {
        assert!((wrap_lon(190.0) - -170.0).abs() < 1e-12);
        assert!((wrap_lon(-190.0) - 170.0).abs() < 1e-12);
        assert!((wrap_lon(0.0)).abs() < 1e-12);
    }

    #[test]
    fn sample_geometric_mean_is_plausible() {
        let mut rng = rng::seeded(7);
        let n = 4000;
        let sum: usize = (0..n).map(|_| sample_geometric(0.8, &mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((0.55..1.05).contains(&mean), "mean {mean}");
    }
}
