//! Synthetic prefix-to-AS table (CAIDA Routeviews stand-in).
//!
//! The paper geolocates an AS by looking up the IP prefixes originated by
//! the AS (CAIDA prefix-to-AS dataset) and averaging their locations. This
//! module provides the prefix side of that join: [`Ipv4Prefix`],
//! [`PrefixTable`], and a deterministic generator assigning larger prefix
//! portfolios to higher-tier ASes.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

use rand::Rng;
use serde::{Deserialize, Serialize};

use pan_topology::Asn;

use crate::internet::{Skeleton, Tier};
use crate::rng::DeterministicRng;
use crate::DatasetError;

/// An IPv4 prefix in CIDR notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    addr: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// Creates a prefix, masking host bits off `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    #[must_use]
    pub fn new(addr: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length must be at most 32, got {len}");
        let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
        Ipv4Prefix {
            addr: addr & mask,
            len,
        }
    }

    /// The network address as a 32-bit integer.
    #[must_use]
    pub const fn addr(self) -> u32 {
        self.addr
    }

    /// The prefix length in bits.
    ///
    /// (A "length" in the CIDR sense — an `is_empty` counterpart would be
    /// meaningless, hence the lint allowance.)
    #[allow(clippy::len_without_is_empty)]
    #[must_use]
    pub const fn len(self) -> u8 {
        self.len
    }

    /// Returns `true` for the zero-length (default-route) prefix.
    #[must_use]
    pub const fn is_default(self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `other` is fully contained in `self`.
    #[must_use]
    pub fn contains(self, other: Ipv4Prefix) -> bool {
        if other.len < self.len {
            return false;
        }
        let mask = if self.len == 0 {
            0
        } else {
            u32::MAX << (32 - self.len)
        };
        (other.addr & mask) == self.addr
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.addr;
        write!(
            f,
            "{}.{}.{}.{}/{}",
            a >> 24,
            (a >> 16) & 0xff,
            (a >> 8) & 0xff,
            a & 0xff,
            self.len
        )
    }
}

impl FromStr for Ipv4Prefix {
    type Err = DatasetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || DatasetError::InvalidPrefix { text: s.to_owned() };
        let (addr_part, len_part) = s.trim().split_once('/').ok_or_else(err)?;
        let len: u8 = len_part.parse().map_err(|_| err())?;
        if len > 32 {
            return Err(err());
        }
        let mut octets = addr_part.split('.');
        let mut addr: u32 = 0;
        for _ in 0..4 {
            let octet: u8 = octets.next().ok_or_else(err)?.parse().map_err(|_| err())?;
            addr = (addr << 8) | u32::from(octet);
        }
        if octets.next().is_some() {
            return Err(err());
        }
        Ok(Ipv4Prefix::new(addr, len))
    }
}

/// A prefix-to-AS mapping, the synthetic equivalent of the CAIDA
/// Routeviews prefix-to-AS dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PrefixTable {
    origin: HashMap<Ipv4Prefix, Asn>,
    by_as: HashMap<Asn, Vec<Ipv4Prefix>>,
}

impl PrefixTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `asn` originates `prefix`.
    ///
    /// A prefix can only have one origin; re-inserting an existing prefix
    /// replaces the previous origin.
    pub fn insert(&mut self, prefix: Ipv4Prefix, asn: Asn) {
        if let Some(prev) = self.origin.insert(prefix, asn) {
            if let Some(list) = self.by_as.get_mut(&prev) {
                list.retain(|p| *p != prefix);
            }
        }
        self.by_as.entry(asn).or_default().push(prefix);
    }

    /// The origin AS of a prefix, if known.
    #[must_use]
    pub fn origin(&self, prefix: Ipv4Prefix) -> Option<Asn> {
        self.origin.get(&prefix).copied()
    }

    /// All prefixes originated by an AS (possibly empty).
    #[must_use]
    pub fn prefixes_of(&self, asn: Asn) -> &[Ipv4Prefix] {
        self.by_as.get(&asn).map_or(&[], Vec::as_slice)
    }

    /// Number of prefixes in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.origin.len()
    }

    /// Returns `true` if the table contains no prefixes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.origin.is_empty()
    }

    /// Iterates over all ASes that originate at least one prefix.
    pub fn ases(&self) -> impl Iterator<Item = Asn> + '_ {
        self.by_as.keys().copied()
    }

    /// Longest-prefix match of a host address.
    #[must_use]
    pub fn lookup(&self, addr: u32) -> Option<(Ipv4Prefix, Asn)> {
        (0..=32u8)
            .rev()
            .map(|len| Ipv4Prefix::new(addr, len))
            .find_map(|candidate| self.origin(candidate).map(|asn| (candidate, asn)))
    }
}

/// Generates a prefix portfolio for every AS of a topology skeleton.
///
/// Portfolio sizes mirror real-world footprints: tier-1 ASes originate
/// tens of prefixes, transit ASes a handful, stubs one to four. Prefixes
/// are allocated from disjoint /16 blocks per AS, so the table never
/// contains duplicate origins.
/// Parses a Routeviews-style prefix-to-AS sidecar document into a
/// [`PrefixTable`].
///
/// Each data line is `address`, `length`, `origin-asn` separated by
/// whitespace (real pfx2as files use tabs); `#` comments and blank lines
/// are skipped. The parse is strict: bad addresses/lengths/ASNs, repeated
/// prefixes, and origins absent from `graph` are all rejected with 1-based
/// line numbers so a mismatched relationships/prefix pair fails loudly.
///
/// # Errors
///
/// Returns [`DatasetError::MalformedPrefixLine`] on any invalid row.
pub fn parse_pfx2as(text: &str, graph: &pan_topology::AsGraph) -> crate::Result<PrefixTable> {
    let mut table = PrefixTable::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let malformed = |reason: String| DatasetError::MalformedPrefixLine {
            line: lineno + 1,
            text: raw.to_owned(),
            reason,
        };
        let mut fields = line.split_whitespace();
        let (Some(addr), Some(len), Some(asn)) = (fields.next(), fields.next(), fields.next())
        else {
            return Err(malformed("expected <addr> <len> <origin-asn>".to_owned()));
        };
        if fields.next().is_some() {
            return Err(malformed("trailing fields after origin ASN".to_owned()));
        }
        let len: u8 = len
            .parse()
            .ok()
            .filter(|l| *l <= 32)
            .ok_or_else(|| malformed(format!("bad prefix length {len:?}")))?;
        let prefix: Ipv4Prefix = format!("{addr}/{len}")
            .parse()
            .map_err(|_| malformed(format!("bad address {addr:?}")))?;
        let asn: Asn = asn
            .parse()
            .map_err(|_| malformed(format!("bad AS number {asn:?}")))?;
        if !graph.contains(asn) {
            return Err(malformed(format!(
                "{asn} is not in the relationships graph"
            )));
        }
        if let Some(prev) = table.origin(prefix) {
            return Err(malformed(format!("{prefix} already originated by {prev}")));
        }
        table.insert(prefix, asn);
    }
    Ok(table)
}

pub(crate) fn generate(skeleton: &Skeleton, rng: &mut DeterministicRng) -> PrefixTable {
    let mut table = PrefixTable::new();
    for (block, asn) in skeleton.graph.ases().enumerate() {
        let count = match skeleton.tiers[&asn] {
            Tier::Tier1 => rng.gen_range(24..=64),
            Tier::Transit => rng.gen_range(4..=16),
            Tier::Stub => rng.gen_range(1..=4),
        };
        // Each AS owns the /16 block 10.<block>... shifted into unique space.
        let base = (block as u32) << 16;
        for slot in 0..count {
            // Distinct /24s inside the AS's /16.
            let prefix = Ipv4Prefix::new(base | ((slot as u32) << 8), 24);
            table.insert(prefix, asn);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_round_trip() {
        let p = Ipv4Prefix::new(0x0a00_0100, 24);
        assert_eq!(p.to_string(), "10.0.1.0/24");
        assert_eq!("10.0.1.0/24".parse::<Ipv4Prefix>().unwrap(), p);
    }

    #[test]
    fn new_masks_host_bits() {
        let p = Ipv4Prefix::new(0x0a00_01ff, 24);
        assert_eq!(p.addr(), 0x0a00_0100);
    }

    #[test]
    fn parse_rejects_garbage() {
        for text in [
            "",
            "10.0.0.0",
            "10.0.0/24",
            "10.0.0.0.0/24",
            "10.0.0.0/33",
            "a.b.c.d/8",
        ] {
            assert!(text.parse::<Ipv4Prefix>().is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn containment() {
        let wide: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let narrow: Ipv4Prefix = "10.1.2.0/24".parse().unwrap();
        let other: Ipv4Prefix = "11.0.0.0/8".parse().unwrap();
        assert!(wide.contains(narrow));
        assert!(!narrow.contains(wide));
        assert!(!wide.contains(other));
        assert!(wide.contains(wide));
    }

    #[test]
    fn default_prefix_contains_everything() {
        let default = Ipv4Prefix::new(0, 0);
        assert!(default.is_default());
        assert!(default.contains("203.0.113.0/24".parse().unwrap()));
    }

    #[test]
    fn table_insert_and_lookup() {
        let mut t = PrefixTable::new();
        let p: Ipv4Prefix = "10.1.0.0/16".parse().unwrap();
        t.insert(p, Asn::new(42));
        assert_eq!(t.origin(p), Some(Asn::new(42)));
        assert_eq!(t.prefixes_of(Asn::new(42)), &[p]);
        assert_eq!(t.lookup(0x0a01_1234), Some((p, Asn::new(42))));
        assert_eq!(t.lookup(0x0b00_0000), None);
    }

    #[test]
    fn reinsert_moves_origin() {
        let mut t = PrefixTable::new();
        let p: Ipv4Prefix = "10.1.0.0/16".parse().unwrap();
        t.insert(p, Asn::new(1));
        t.insert(p, Asn::new(2));
        assert_eq!(t.origin(p), Some(Asn::new(2)));
        assert!(t.prefixes_of(Asn::new(1)).is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn longest_prefix_match_prefers_specific() {
        let mut t = PrefixTable::new();
        t.insert("10.0.0.0/8".parse().unwrap(), Asn::new(1));
        t.insert("10.1.0.0/16".parse().unwrap(), Asn::new(2));
        let (p, asn) = t.lookup(0x0a01_0001).unwrap();
        assert_eq!(asn, Asn::new(2));
        assert_eq!(p.len(), 16);
        let (_, asn) = t.lookup(0x0a02_0001).unwrap();
        assert_eq!(asn, Asn::new(1));
    }

    #[test]
    fn parse_pfx2as_accepts_tabs_comments_and_blank_lines() {
        let graph = pan_topology::caida::parse("7|9|-1\n").unwrap();
        let table = parse_pfx2as("# pfx2as\n\n10.0.0.0\t24\t7\n10.1.0.0 16 9\n", &graph).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(
            table.origin("10.0.0.0/24".parse().unwrap()),
            Some(Asn::new(7))
        );
        assert_eq!(table.prefixes_of(Asn::new(9)).len(), 1);
    }

    #[test]
    fn parse_pfx2as_malformed_input_table() {
        let graph = pan_topology::caida::parse("7|9|-1\n").unwrap();
        for (doc, want_line, want_reason) in [
            ("10.0.0.0\t24", 1, "expected <addr> <len> <origin-asn>"),
            ("10.0.0.0\t24\t7\textra", 1, "trailing fields"),
            ("10.0.0\t24\t7", 1, "bad address"),
            ("10.0.0.0\t33\t7", 1, "bad prefix length"),
            ("10.0.0.0\t24\tx", 1, "bad AS number"),
            (
                "10.0.0.0\t24\t5",
                1,
                "AS5 is not in the relationships graph",
            ),
            (
                "10.0.0.0\t24\t7\n10.0.0.0\t24\t9",
                2,
                "already originated by AS7",
            ),
        ] {
            match parse_pfx2as(doc, &graph) {
                Err(DatasetError::MalformedPrefixLine { line, reason, .. }) => {
                    assert_eq!(line, want_line, "doc: {doc:?}");
                    assert!(
                        reason.contains(want_reason),
                        "doc: {doc:?}, reason: {reason}"
                    );
                }
                other => panic!("doc {doc:?}: expected prefix-line error, got {other:?}"),
            }
        }
    }

    #[test]
    fn generated_portfolios_scale_with_tier() {
        let config = crate::InternetConfig {
            num_ases: 120,
            tier1_count: 4,
            ..crate::InternetConfig::default()
        };
        let net = crate::SyntheticInternet::generate(&config, 5).unwrap();
        let tier1_mean: f64 = (1..=4)
            .map(|i| net.prefixes.prefixes_of(Asn::new(i)).len())
            .sum::<usize>() as f64
            / 4.0;
        let stub_count = net.prefixes.prefixes_of(Asn::new(120)).len();
        assert!(tier1_mean >= 24.0);
        assert!((1..=4).contains(&stub_count));
    }
}
