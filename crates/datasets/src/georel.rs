//! Synthetic geographic AS-relationship data (interconnection facilities).
//!
//! The paper obtains the geolocation of AS interconnections from the CAIDA
//! geographic AS-relationship dataset (§VI-B). This module generates the
//! synthetic equivalent: every link receives one or more facilities placed
//! along the great-ellipse segment between the endpoint AS centroids, with
//! better-connected AS pairs receiving more facilities (large networks
//! interconnect in several cities).

use pan_topology::geo::{GeoAnnotations, GeoPoint};
use pan_topology::AsGraph;

use crate::internet::jitter;
use crate::rng::DeterministicRng;

/// Adds interconnection facilities for every link of `graph` to `geo`.
///
/// Facility count scales with the smaller endpoint degree:
/// 1 facility for small pairs up to 4 for pairs of well-connected ASes.
/// Facilities are placed at interpolation points between the endpoint
/// centroids with ±2° jitter. Links whose endpoints have no centroid are
/// skipped (the geodistance analysis will fall back to midpoints).
pub fn add_facilities(graph: &AsGraph, geo: &mut GeoAnnotations, rng: &mut DeterministicRng) {
    for link in graph.links() {
        let (Some(pa), Some(pb)) = (geo.as_location(link.a), geo.as_location(link.b)) else {
            continue;
        };
        let min_degree = graph.degree(link.a).min(graph.degree(link.b));
        let count = facility_count(min_degree);
        for i in 0..count {
            // Interpolation fraction spreads facilities along the segment:
            // a single facility sits at the midpoint.
            let t = (i as f64 + 1.0) / (count as f64 + 1.0);
            let lat = pa.lat_deg() + t * (pb.lat_deg() - pa.lat_deg());
            let lon = pa.lon_deg() + t * lon_delta(pa.lon_deg(), pb.lon_deg());
            let base = GeoPoint::new(lat.clamp(-89.0, 89.0), normalize_lon(lon))
                .expect("clamped coordinates are valid");
            geo.add_facility(link.id, jitter(base, 2.0, rng));
        }
    }
}

/// Number of facilities for a link whose smaller endpoint degree is `d`.
fn facility_count(d: usize) -> usize {
    match d {
        0..=3 => 1,
        4..=10 => 2,
        11..=40 => 3,
        _ => 4,
    }
}

/// Signed longitude difference taking the short way around the globe.
fn lon_delta(from: f64, to: f64) -> f64 {
    let mut d = to - from;
    if d > 180.0 {
        d -= 360.0;
    } else if d < -180.0 {
        d += 360.0;
    }
    d
}

fn normalize_lon(lon: f64) -> f64 {
    let mut l = lon;
    while l > 180.0 {
        l -= 360.0;
    }
    while l < -180.0 {
        l += 360.0;
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use pan_topology::fixtures::{asn, fig1};

    fn annotated_fig1() -> (AsGraph, GeoAnnotations) {
        let g = fig1();
        let mut geo = GeoAnnotations::new();
        for (i, a) in g.ases().enumerate() {
            let p = GeoPoint::new(10.0 + i as f64, 10.0 + 2.0 * i as f64).unwrap();
            geo.set_as_location(a, p);
        }
        (g, geo)
    }

    #[test]
    fn every_link_gets_facilities() {
        let (g, mut geo) = annotated_fig1();
        add_facilities(&g, &mut geo, &mut rng::seeded(1));
        for link in g.links() {
            assert!(
                !geo.facilities(link.id).is_empty(),
                "link {} has no facility",
                link.id
            );
        }
    }

    #[test]
    fn facilities_lie_between_endpoints() {
        let (g, mut geo) = annotated_fig1();
        add_facilities(&g, &mut geo, &mut rng::seeded(1));
        let link = g.link_between(asn('A'), asn('D')).unwrap();
        let pa = geo.as_location(asn('A')).unwrap();
        let pb = geo.as_location(asn('D')).unwrap();
        let span = pa.distance_km(pb);
        for f in geo.facilities(link.id) {
            // Facility should be within the segment neighborhood
            // (segment length plus jitter allowance).
            assert!(pa.distance_km(*f) < span + 700.0);
            assert!(pb.distance_km(*f) < span + 700.0);
        }
    }

    #[test]
    fn unannotated_endpoints_are_skipped() {
        let g = fig1();
        let mut geo = GeoAnnotations::new();
        add_facilities(&g, &mut geo, &mut rng::seeded(1));
        for link in g.links() {
            assert!(geo.facilities(link.id).is_empty());
        }
    }

    #[test]
    fn facility_count_scales_with_degree() {
        assert_eq!(facility_count(1), 1);
        assert_eq!(facility_count(5), 2);
        assert_eq!(facility_count(20), 3);
        assert_eq!(facility_count(100), 4);
    }

    #[test]
    fn lon_delta_takes_short_way() {
        assert!((lon_delta(170.0, -170.0) - 20.0).abs() < 1e-12);
        assert!((lon_delta(-170.0, 170.0) + 20.0).abs() < 1e-12);
        assert!((lon_delta(0.0, 10.0) - 10.0).abs() < 1e-12);
    }
}
