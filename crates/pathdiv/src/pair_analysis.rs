//! Shared per-AS-pair comparison machinery for the geodistance (Fig. 5)
//! and bandwidth (Fig. 6) analyses.
//!
//! Both analyses follow the same §VI-B/§VI-C recipe: for every AS pair
//! connected by at least one GRC length-3 path, compute the best, median,
//! and worst metric over the GRC paths, then count how many MA paths beat
//! each of those thresholds, and record the best MA value for relative
//! improvement statistics.

use std::collections::HashMap;

use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use pan_runtime::{coordinator_rng, ThreadPool};
use pan_topology::{AsGraph, Asn};

use crate::length3::Length3Enumerator;

/// Whether smaller or larger metric values are better.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Smaller is better (geodistance).
    LowerIsBetter,
    /// Larger is better (bandwidth).
    HigherIsBetter,
}

impl Direction {
    fn beats(self, candidate: f64, reference: f64) -> bool {
        match self {
            Direction::LowerIsBetter => candidate < reference,
            Direction::HigherIsBetter => candidate > reference,
        }
    }
}

/// Comparison record of one `(source, destination)` AS pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairRecord {
    /// Source AS.
    pub src: Asn,
    /// Destination AS.
    pub dst: Asn,
    /// Number of GRC length-3 paths between the pair.
    pub grc_paths: usize,
    /// Best GRC metric (min geodistance / max bandwidth).
    pub grc_best: f64,
    /// Median GRC metric.
    pub grc_median: f64,
    /// Worst GRC metric (max geodistance / min bandwidth).
    pub grc_worst: f64,
    /// Number of MA paths for the pair.
    pub ma_paths: usize,
    /// MA paths strictly better than the best GRC value.
    pub ma_beating_best: usize,
    /// MA paths strictly better than the median GRC value.
    pub ma_beating_median: usize,
    /// MA paths strictly better than the worst GRC value.
    pub ma_beating_worst: usize,
    /// Best metric over the MA paths (`None` if the pair gained none).
    pub ma_best: Option<f64>,
}

impl PairRecord {
    /// Relative improvement of the best value thanks to MAs:
    /// geodistance reduction `(grc_min − ma_min)/grc_min` or bandwidth
    /// increase `(ma_max − grc_max)/grc_max`. `None` when no MA path
    /// improves on the best GRC path.
    #[must_use]
    pub fn relative_improvement(&self, direction: Direction) -> Option<f64> {
        let ma_best = self.ma_best?;
        if !direction.beats(ma_best, self.grc_best) {
            return None;
        }
        match direction {
            Direction::LowerIsBetter => Some((self.grc_best - ma_best) / self.grc_best),
            Direction::HigherIsBetter => Some((ma_best - self.grc_best) / self.grc_best),
        }
    }
}

/// Runs the pair analysis for a seeded sample of source ASes on a single
/// thread. Equivalent to [`analyze_pairs_pooled`] with a one-thread pool.
pub fn analyze_pairs(
    graph: &AsGraph,
    sample_size: usize,
    seed: u64,
    direction: Direction,
    metric: impl Fn(u32, u32, u32) -> Option<f64> + Sync,
) -> Vec<PairRecord> {
    analyze_pairs_pooled(
        graph,
        sample_size,
        seed,
        direction,
        &ThreadPool::new(1),
        metric,
    )
}

/// Runs the pair analysis for a seeded sample of source ASes, fanning
/// the per-source work out over `pool`.
///
/// `metric` maps a length-3 path (as dense indices `src, mid, dst`) to
/// its value; paths with `None` metric (missing annotations) are skipped.
///
/// The source sample is drawn by the sweep coordinator (identical to the
/// historical sequential sampling), each source is analyzed
/// independently, and the per-source record lists are concatenated in
/// sample order — so the result is bit-identical at any thread count.
pub fn analyze_pairs_pooled(
    graph: &AsGraph,
    sample_size: usize,
    seed: u64,
    direction: Direction,
    pool: &ThreadPool,
    metric: impl Fn(u32, u32, u32) -> Option<f64> + Sync,
) -> Vec<PairRecord> {
    let mut rng = coordinator_rng(seed);
    let mut sources: Vec<u32> = (0..graph.node_count() as u32).collect();
    sources.shuffle(&mut rng);
    sources.truncate(sample_size.min(graph.node_count()));

    pool.map_with(
        &sources,
        || Length3Enumerator::new(graph),
        |enumerator, _idx, &src| analyze_source(graph, enumerator, src, direction, &metric),
    )
    .into_iter()
    .flatten()
    .collect()
}

/// Analyzes one source AS: every GRC-connected destination yields one
/// [`PairRecord`].
fn analyze_source(
    graph: &AsGraph,
    enumerator: &Length3Enumerator<'_>,
    src: u32,
    direction: Direction,
    metric: &(impl Fn(u32, u32, u32) -> Option<f64> + Sync),
) -> Vec<PairRecord> {
    // Metric values per destination, GRC and MA families separately.
    let mut grc: HashMap<u32, Vec<f64>> = HashMap::new();
    enumerator.for_each_grc(src, |mid, dst| {
        if let Some(value) = metric(src, mid, dst) {
            grc.entry(dst).or_default().push(value);
        }
    });
    if grc.is_empty() {
        return Vec::new();
    }
    let mut ma: HashMap<u32, Vec<f64>> = HashMap::new();
    enumerator.for_each_ma_all(src, |mid, dst| {
        if let Some(value) = metric(src, mid, dst) {
            ma.entry(dst).or_default().push(value);
        }
    });

    let mut records = Vec::new();
    let mut dsts: Vec<u32> = grc.keys().copied().collect();
    dsts.sort_unstable();
    for dst in dsts {
        let mut values = grc.remove(&dst).expect("key from the map");
        values.sort_unstable_by(f64::total_cmp);
        let (best, worst) = match direction {
            Direction::LowerIsBetter => (values[0], values[values.len() - 1]),
            Direction::HigherIsBetter => (values[values.len() - 1], values[0]),
        };
        let median = values[(values.len() - 1) / 2];
        let ma_values = ma.get(&dst).map_or(&[][..], Vec::as_slice);
        let count_beating = |reference: f64| {
            ma_values
                .iter()
                .filter(|&&v| direction.beats(v, reference))
                .count()
        };
        let ma_best = ma_values.iter().copied().reduce(|a, b| match direction {
            Direction::LowerIsBetter => a.min(b),
            Direction::HigherIsBetter => a.max(b),
        });
        records.push(PairRecord {
            src: graph.asn_at(src),
            dst: graph.asn_at(dst),
            grc_paths: values.len(),
            grc_best: best,
            grc_median: median,
            grc_worst: worst,
            ma_paths: ma_values.len(),
            ma_beating_best: count_beating(best),
            ma_beating_median: count_beating(median),
            ma_beating_worst: count_beating(worst),
            ma_best,
        });
    }
    records
}

/// Fraction of records whose `field(record)` is at least `k`.
#[must_use]
pub fn fraction_with_at_least(
    records: &[PairRecord],
    k: usize,
    field: impl Fn(&PairRecord) -> usize,
) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    records.iter().filter(|r| field(r) >= k).count() as f64 / records.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pan_topology::fixtures::fig1;

    /// A fake metric: identity of the destination index — monotone so
    /// ordering assertions are easy.
    fn dst_metric(_src: u32, _mid: u32, dst: u32) -> Option<f64> {
        Some(dst as f64)
    }

    #[test]
    fn records_cover_grc_connected_pairs_only() {
        let g = fig1();
        let records = analyze_pairs(&g, 9, 1, Direction::LowerIsBetter, dst_metric);
        assert!(!records.is_empty());
        for r in &records {
            assert!(r.grc_paths >= 1);
            assert_ne!(r.src, r.dst);
        }
    }

    #[test]
    fn best_median_worst_ordering() {
        let g = fig1();
        for direction in [Direction::LowerIsBetter, Direction::HigherIsBetter] {
            let records = analyze_pairs(&g, 9, 1, direction, dst_metric);
            for r in &records {
                match direction {
                    Direction::LowerIsBetter => {
                        assert!(r.grc_best <= r.grc_median);
                        assert!(r.grc_median <= r.grc_worst);
                    }
                    Direction::HigherIsBetter => {
                        assert!(r.grc_best >= r.grc_median);
                        assert!(r.grc_median >= r.grc_worst);
                    }
                }
                // Beating the best is hardest.
                assert!(r.ma_beating_best <= r.ma_beating_median);
                assert!(r.ma_beating_median <= r.ma_beating_worst);
                assert!(r.ma_beating_worst <= r.ma_paths);
            }
        }
    }

    #[test]
    fn relative_improvement_requires_actual_improvement() {
        let record = PairRecord {
            src: Asn::new(1),
            dst: Asn::new(2),
            grc_paths: 1,
            grc_best: 100.0,
            grc_median: 100.0,
            grc_worst: 100.0,
            ma_paths: 1,
            ma_beating_best: 0,
            ma_beating_median: 0,
            ma_beating_worst: 0,
            ma_best: Some(120.0),
        };
        assert_eq!(record.relative_improvement(Direction::LowerIsBetter), None);
        let improvement = record
            .relative_improvement(Direction::HigherIsBetter)
            .unwrap();
        assert!((improvement - 0.2).abs() < 1e-12);
    }

    #[test]
    fn fraction_helper() {
        let g = fig1();
        let records = analyze_pairs(&g, 9, 1, Direction::LowerIsBetter, dst_metric);
        let all = fraction_with_at_least(&records, 0, |r| r.ma_beating_worst);
        assert_eq!(all, 1.0);
        let none = fraction_with_at_least(&records, usize::MAX, |r| r.ma_beating_worst);
        assert_eq!(none, 0.0);
    }

    #[test]
    fn analysis_is_deterministic() {
        let g = fig1();
        let a = analyze_pairs(&g, 5, 7, Direction::LowerIsBetter, dst_metric);
        let b = analyze_pairs(&g, 5, 7, Direction::LowerIsBetter, dst_metric);
        assert_eq!(a, b);
    }

    #[test]
    fn pooled_analysis_matches_sequential_at_any_thread_count() {
        let g = fig1();
        let reference = analyze_pairs(&g, 9, 3, Direction::HigherIsBetter, dst_metric);
        for threads in [2, 4, 16] {
            let pooled = analyze_pairs_pooled(
                &g,
                9,
                3,
                Direction::HigherIsBetter,
                &ThreadPool::new(threads),
                dst_metric,
            );
            assert_eq!(reference, pooled, "{threads} threads diverged");
        }
    }
}
