//! Statistics over the population of possible mutuality-based agreements
//! (§VI: "we generate all possible MAs for the whole topology: for every
//! pair (A, B) of peers…").
//!
//! Complements the per-AS path statistics of [`diversity`](crate::diversity)
//! with agreement-centric numbers: how many MAs exist, how large their
//! grants are, and how unevenly the negotiation opportunities are
//! distributed over ASes.

use serde::{Deserialize, Serialize};

use pan_topology::{AsGraph, Asn};

use crate::cdf::EmpiricalCdf;

/// Summary of one possible MA between a peer pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaSummary {
    /// First party.
    pub x: Asn,
    /// Second party.
    pub y: Asn,
    /// Number of ASes `x` grants `y` access to (providers + peers of `x`
    /// that are not customers of `y`).
    pub grant_by_x: usize,
    /// Number of ASes `y` grants `x` access to.
    pub grant_by_y: usize,
}

impl MaSummary {
    /// Total new segments the agreement creates.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.grant_by_x + self.grant_by_y
    }

    /// Absolute imbalance between the two grants — a proxy for how much
    /// balancing (via volume caps or cash) the negotiation will need.
    #[must_use]
    pub fn grant_imbalance(&self) -> usize {
        self.grant_by_x.abs_diff(self.grant_by_y)
    }
}

/// All possible MAs of a topology with aggregate statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaPopulation {
    /// One summary per peer pair, in link order.
    pub agreements: Vec<MaSummary>,
}

impl MaPopulation {
    /// Enumerates every possible MA (one per peering link) using the §VI
    /// grant rule, without materializing full `Agreement` objects.
    #[must_use]
    pub fn enumerate(graph: &AsGraph) -> Self {
        let grant_size = |grantor: Asn, grantee: Asn| -> usize {
            graph
                .providers(grantor)
                .chain(graph.peers(grantor))
                .filter(|&target| {
                    target != grantee
                        && graph.neighbor_kind(grantee, target)
                            != Some(pan_topology::NeighborKind::Customer)
                })
                .count()
        };
        let agreements = graph
            .links()
            .filter(|l| l.relationship.is_peering())
            .map(|l| MaSummary {
                x: l.a,
                y: l.b,
                grant_by_x: grant_size(l.a, l.b),
                grant_by_y: grant_size(l.b, l.a),
            })
            .collect();
        MaPopulation { agreements }
    }

    /// Number of possible MAs (equals the peering-link count).
    #[must_use]
    pub fn len(&self) -> usize {
        self.agreements.len()
    }

    /// Returns `true` if the topology admits no MAs (no peering links).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.agreements.is_empty()
    }

    /// Distribution of total segment counts per agreement.
    #[must_use]
    pub fn segment_count_cdf(&self) -> EmpiricalCdf {
        self.agreements
            .iter()
            .map(|a| a.segment_count() as f64)
            .collect()
    }

    /// Distribution of grant imbalances per agreement.
    #[must_use]
    pub fn imbalance_cdf(&self) -> EmpiricalCdf {
        self.agreements
            .iter()
            .map(|a| a.grant_imbalance() as f64)
            .collect()
    }

    /// Number of MAs each AS can conclude (its peering degree), as a
    /// distribution over all ASes of the graph.
    #[must_use]
    pub fn per_as_opportunity_cdf(&self, graph: &AsGraph) -> EmpiricalCdf {
        graph
            .ases()
            .map(|a| graph.peers(a).count() as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pan_core::Agreement;
    use pan_datasets::{InternetConfig, SyntheticInternet};
    use pan_topology::fixtures::{asn, fig1};

    #[test]
    fn fig1_population() {
        let g = fig1();
        let population = MaPopulation::enumerate(&g);
        // Four peering links: A–B, C–D, D–E, E–F.
        assert_eq!(population.len(), 4);
        // The D–E agreement: D grants {A, C}, E grants {B, F}.
        let de = population
            .agreements
            .iter()
            .find(|a| (a.x, a.y) == (asn('D'), asn('E')) || (a.x, a.y) == (asn('E'), asn('D')))
            .expect("D–E peer pair exists");
        assert_eq!(de.segment_count(), 4);
        assert_eq!(de.grant_imbalance(), 0);
    }

    #[test]
    fn summaries_match_agreement_objects() {
        let net = SyntheticInternet::generate(
            &InternetConfig {
                num_ases: 200,
                ..InternetConfig::default()
            },
            31,
        )
        .unwrap();
        let population = MaPopulation::enumerate(&net.graph);
        for summary in population.agreements.iter().take(50) {
            let ma = Agreement::mutuality(&net.graph, summary.x, summary.y)
                .expect("peer pairs form MAs");
            assert_eq!(summary.grant_by_x, ma.grant_by_x().len());
            assert_eq!(summary.grant_by_y, ma.grant_by_y().len());
            assert_eq!(summary.segment_count(), ma.new_segments(&net.graph).len());
        }
    }

    #[test]
    fn population_size_equals_peering_links() {
        let net = SyntheticInternet::generate(
            &InternetConfig {
                num_ases: 150,
                ..InternetConfig::default()
            },
            5,
        )
        .unwrap();
        let population = MaPopulation::enumerate(&net.graph);
        assert_eq!(population.len(), net.graph.peering_link_count());
        assert!(!population.is_empty());
    }

    #[test]
    fn cdfs_are_well_formed() {
        let net = SyntheticInternet::generate(
            &InternetConfig {
                num_ases: 150,
                ..InternetConfig::default()
            },
            6,
        )
        .unwrap();
        let population = MaPopulation::enumerate(&net.graph);
        let segments = population.segment_count_cdf();
        assert_eq!(segments.len(), population.len());
        assert!(segments.min().unwrap_or(0.0) >= 0.0);
        let imbalance = population.imbalance_cdf();
        assert!(imbalance.max().unwrap_or(0.0) <= segments.max().unwrap_or(0.0));
        let opportunity = population.per_as_opportunity_cdf(&net.graph);
        assert_eq!(opportunity.len(), net.graph.node_count());
        // Sum of peering degrees = 2 × peering links.
        let total: f64 = net
            .graph
            .ases()
            .map(|a| net.graph.peers(a).count() as f64)
            .sum();
        assert_eq!(total as usize, 2 * population.len());
    }

    #[test]
    fn empty_population_on_peerless_graph() {
        let g = pan_topology::fixtures::chain(5);
        let population = MaPopulation::enumerate(&g);
        assert!(population.is_empty());
        assert!(population.segment_count_cdf().is_empty());
    }
}
