//! Geodistance analysis of MA paths (§VI-B, Fig. 5).
//!
//! The geodistance of a length-3 path `(A₁, ℓ₁₂, A₂, ℓ₂₃, A₃)` is
//! `d(A₁,ℓ₁₂) + d(ℓ₁₂,ℓ₂₃) + d(ℓ₂₃,A₃)`, minimized over the known
//! interconnection facilities of the two links (with AS-centroid
//! midpoints as fallback). Geodistance is a proxy for path latency.

use serde::{Deserialize, Serialize};

use pan_runtime::ThreadPool;
use pan_topology::geo::{GeoAnnotations, GeoPoint};
use pan_topology::AsGraph;

use crate::cdf::EmpiricalCdf;
use crate::pair_analysis::{analyze_pairs_pooled, fraction_with_at_least, Direction, PairRecord};

/// Configuration of the geodistance analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeodistanceConfig {
    /// Number of sampled source ASes.
    pub sample_size: usize,
    /// RNG seed for the sample.
    pub seed: u64,
}

impl Default for GeodistanceConfig {
    fn default() -> Self {
        GeodistanceConfig {
            sample_size: 500,
            seed: 42,
        }
    }
}

/// The Fig. 5 report: per-pair comparison records plus derived series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeodistanceReport {
    /// Per-AS-pair records.
    pub pairs: Vec<PairRecord>,
}

impl GeodistanceReport {
    /// Fraction of AS pairs gaining at least `k` MA paths shorter than
    /// the **minimum** GRC geodistance (Fig. 5a, `< GRC Minimum`).
    #[must_use]
    pub fn fraction_below_min(&self, k: usize) -> f64 {
        fraction_with_at_least(&self.pairs, k, |r| r.ma_beating_best)
    }

    /// Fraction of AS pairs gaining at least `k` MA paths shorter than
    /// the **median** GRC geodistance (Fig. 5a, `< GRC Median`).
    #[must_use]
    pub fn fraction_below_median(&self, k: usize) -> f64 {
        fraction_with_at_least(&self.pairs, k, |r| r.ma_beating_median)
    }

    /// Fraction of AS pairs gaining at least `k` MA paths shorter than
    /// the **maximum** GRC geodistance (Fig. 5a, `< GRC Maximum`).
    #[must_use]
    pub fn fraction_below_max(&self, k: usize) -> f64 {
        fraction_with_at_least(&self.pairs, k, |r| r.ma_beating_worst)
    }

    /// CDF over AS pairs of the number of MA paths beating the minimum
    /// GRC geodistance (the `< GRC Minimum` curve of Fig. 5a).
    #[must_use]
    pub fn below_min_cdf(&self) -> EmpiricalCdf {
        self.pairs
            .iter()
            .map(|r| r.ma_beating_best as f64)
            .collect()
    }

    /// Relative geodistance reductions over the pairs that improved
    /// (the Fig. 5b distribution).
    #[must_use]
    pub fn reduction_cdf(&self) -> EmpiricalCdf {
        self.pairs
            .iter()
            .filter_map(|r| r.relative_improvement(Direction::LowerIsBetter))
            .collect()
    }
}

/// Precomputed geometry lookup tables for fast path-geodistance queries.
///
/// Candidate interconnection locations are stored densely per
/// [`LinkId`](pan_topology::LinkId); the hot path resolves `(node,
/// node)` pairs to links through the graph's CSR adjacency, so no hash
/// map is touched per enumerated path.
#[derive(Debug)]
pub struct GeodistanceIndex<'a> {
    graph: &'a AsGraph,
    /// AS centroid per dense node index.
    locations: Vec<Option<GeoPoint>>,
    /// Candidate interconnection locations per link id.
    link_candidates: Vec<Vec<GeoPoint>>,
}

impl<'a> GeodistanceIndex<'a> {
    /// Builds the index from geographic annotations.
    #[must_use]
    pub fn build(graph: &'a AsGraph, geo: &GeoAnnotations) -> Self {
        let locations: Vec<Option<GeoPoint>> = (0..graph.node_count() as u32)
            .map(|i| geo.as_location(graph.asn_at(i)))
            .collect();
        let mut link_candidates = vec![Vec::new(); graph.link_count()];
        for link in graph.links() {
            let ia = graph.index_of(link.a).expect("link endpoints are nodes");
            let ib = graph.index_of(link.b).expect("link endpoints are nodes");
            let facilities = geo.facilities(link.id);
            let candidates = if facilities.is_empty() {
                match (locations[ia as usize], locations[ib as usize]) {
                    (Some(pa), Some(pb)) => {
                        GeoPoint::centroid(&[pa, pb]).map_or_else(Vec::new, |m| vec![m])
                    }
                    _ => Vec::new(),
                }
            } else {
                facilities.to_vec()
            };
            link_candidates[link.id.index()] = candidates;
        }
        GeodistanceIndex {
            graph,
            locations,
            link_candidates,
        }
    }

    /// Geodistance of the length-3 path `src → mid → dst` (dense
    /// indices), or `None` if annotations are missing.
    #[must_use]
    pub fn path_geodistance(&self, src: u32, mid: u32, dst: u32) -> Option<f64> {
        let p_src = self.locations[src as usize]?;
        let p_dst = self.locations[dst as usize]?;
        let l1 = self.graph.link_id_between_indices(src, mid)?;
        let l2 = self.graph.link_id_between_indices(mid, dst)?;
        let c1 = &self.link_candidates[l1.index()];
        let c2 = &self.link_candidates[l2.index()];
        if c1.is_empty() || c2.is_empty() {
            return None;
        }
        let mut best = f64::INFINITY;
        for &f1 in c1 {
            let head = p_src.distance_km(f1);
            for &f2 in c2 {
                let d = head + f1.distance_km(f2) + f2.distance_km(p_dst);
                if d < best {
                    best = d;
                }
            }
        }
        Some(best)
    }
}

/// Runs the full Fig. 5 analysis on a single thread.
#[must_use]
pub fn analyze(
    graph: &AsGraph,
    geo: &GeoAnnotations,
    config: &GeodistanceConfig,
) -> GeodistanceReport {
    analyze_pooled(graph, geo, config, &ThreadPool::new(1))
}

/// Runs the full Fig. 5 analysis with the per-source sweep fanned out
/// over `pool`; bit-identical to [`analyze`] at any thread count.
#[must_use]
pub fn analyze_pooled(
    graph: &AsGraph,
    geo: &GeoAnnotations,
    config: &GeodistanceConfig,
    pool: &ThreadPool,
) -> GeodistanceReport {
    let index = GeodistanceIndex::build(graph, geo);
    let pairs = analyze_pairs_pooled(
        graph,
        config.sample_size,
        config.seed,
        Direction::LowerIsBetter,
        pool,
        |src, mid, dst| index.path_geodistance(src, mid, dst),
    );
    GeodistanceReport { pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pan_datasets::{InternetConfig, SyntheticInternet};
    use pan_topology::fixtures::{asn, fig1};

    fn small_net() -> SyntheticInternet {
        SyntheticInternet::generate(
            &InternetConfig {
                num_ases: 300,
                ..InternetConfig::default()
            },
            11,
        )
        .unwrap()
    }

    #[test]
    fn index_matches_geo_annotations() {
        let net = small_net();
        let index = GeodistanceIndex::build(&net.graph, &net.geo);
        // Cross-check a handful of adjacent triples against the
        // GeoAnnotations implementation.
        let mut checked = 0;
        'outer: for a in net.graph.ases() {
            for b in net.graph.peers(a).chain(net.graph.providers(a)) {
                for c in net.graph.peers(b).chain(net.graph.customers(b)) {
                    if c == a {
                        continue;
                    }
                    let ia = net.graph.index_of(a).unwrap();
                    let ib = net.graph.index_of(b).unwrap();
                    let ic = net.graph.index_of(c).unwrap();
                    let from_index = index.path_geodistance(ia, ib, ic);
                    let from_geo = net.geo.length3_geodistance(&net.graph, a, b, c);
                    match (from_index, from_geo) {
                        (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9),
                        (None, None) => {}
                        other => panic!("disagreement: {other:?}"),
                    }
                    checked += 1;
                    if checked > 200 {
                        break 'outer;
                    }
                }
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn report_fractions_are_monotone_in_threshold() {
        let net = small_net();
        let report = analyze(
            &net.graph,
            &net.geo,
            &GeodistanceConfig {
                sample_size: 60,
                seed: 3,
            },
        );
        assert!(!report.pairs.is_empty());
        for k in [1, 5, 10] {
            // Beating the max is easiest, then median, then min.
            assert!(report.fraction_below_max(k) >= report.fraction_below_median(k));
            assert!(report.fraction_below_median(k) >= report.fraction_below_min(k));
        }
        // Fractions decrease with k.
        assert!(report.fraction_below_min(1) >= report.fraction_below_min(5));
    }

    #[test]
    fn reductions_are_in_unit_interval() {
        let net = small_net();
        let report = analyze(
            &net.graph,
            &net.geo,
            &GeodistanceConfig {
                sample_size: 60,
                seed: 3,
            },
        );
        let cdf = report.reduction_cdf();
        if let (Some(min), Some(max)) = (cdf.min(), cdf.max()) {
            assert!(min > 0.0, "reductions are strictly positive");
            assert!(max < 1.0, "a path cannot shrink below zero length");
        }
    }

    #[test]
    fn unannotated_graph_yields_no_pairs() {
        let g = fig1();
        let geo = GeoAnnotations::new();
        let report = analyze(
            &g,
            &geo,
            &GeodistanceConfig {
                sample_size: 9,
                seed: 1,
            },
        );
        assert!(report.pairs.is_empty());
        assert_eq!(report.fraction_below_min(1), 0.0);
        // Sanity: asn helper keeps the import used.
        assert_eq!(asn('A').get(), 1);
    }
}
