//! Enumeration of length-3 paths (3 AS hops, 2 inter-AS links).
//!
//! §VI derives all results from two path families for a source AS `S`:
//!
//! - **GRC paths**: valley-free patterns over two links —
//!   up·up, up·peer, up·down, peer·down, down·down.
//! - **MA paths**: created by mutuality-based agreements between peers,
//!   in which each party grants the other access to its providers and
//!   peers that are not customers of the partner. `S` gains
//!   `S → P → X` **directly** from its own MA with peer `P`
//!   (`X ∈ π(P) ∪ ε(P)`, `X ∉ γ(S) ∪ {S}`), and `S → A → B`
//!   **indirectly** from the MA between `A` and `B` whenever `S` is in
//!   the grant of `A` (i.e. `A ∈ ε(S) ∪ γ(S)`, `B ∈ ε(A)`,
//!   `B ∉ π(S) ∪ {S}`).
//!
//! The two families are disjoint from the GRC family (MA patterns are
//! peer·up, peer·peer, and down·peer — all valley-violating), and the
//! enumerator deduplicates the peer·peer overlap between direct and
//! indirect gains.
//!
//! All callbacks receive dense node indices (see
//! [`AsGraph::index_of`](pan_topology::AsGraph::index_of)) for speed; the
//! enumeration of a source is `O(Σ_mid degree(mid))`.

use pan_topology::{AsGraph, NeighborKind};

/// Enumerates length-3 paths from single sources over a fixed graph.
///
/// Construction is cheap (the graph already stores index-based adjacency);
/// the struct exists to host scratch space for destination-set queries.
#[derive(Debug)]
pub struct Length3Enumerator<'a> {
    graph: &'a AsGraph,
}

impl<'a> Length3Enumerator<'a> {
    /// Creates an enumerator over `graph`.
    #[must_use]
    pub fn new(graph: &'a AsGraph) -> Self {
        Length3Enumerator { graph }
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &AsGraph {
        self.graph
    }

    /// Visits every GRC-conforming length-3 path `src → mid → dst`.
    pub fn for_each_grc(&self, src: u32, mut visit: impl FnMut(u32, u32)) {
        let g = self.graph;
        // up·{up, peer, down}: mid is a provider of src, dst is *any*
        // neighbor of mid — one packed CSR slice (provider, peer, and
        // customer segments are adjacent, in the same ASN-sorted order
        // the per-class loops used to visit).
        for &mid in g.provider_indices(src) {
            for &dst in g.neighbor_indices(mid) {
                if dst != src {
                    visit(mid, dst);
                }
            }
        }
        // peer·down: mid is a peer of src.
        for &mid in g.peer_indices(src) {
            for &dst in g.customer_indices(mid) {
                if dst != src {
                    visit(mid, dst);
                }
            }
        }
        // down·down: mid is a customer of src.
        for &mid in g.customer_indices(src) {
            for &dst in g.customer_indices(mid) {
                if dst != src {
                    visit(mid, dst);
                }
            }
        }
    }

    /// Visits every **directly gained** MA path `src → peer → dst` from
    /// `src`'s own mutuality-based agreements, i.e. the `MA*` family.
    ///
    /// Targets are the peers' providers and peers, excluding `src` itself
    /// and `src`'s customers (the §VI grant rule).
    pub fn for_each_ma_direct(&self, src: u32, mut visit: impl FnMut(u32, u32)) {
        let g = self.graph;
        for &mid in g.peer_indices(src) {
            // Targets are π(mid) ∪ ε(mid): adjacent CSR segments, one
            // packed slice.
            for &dst in g.provider_peer_indices(mid) {
                if dst != src && !is_customer_of(g, dst, src) {
                    visit(mid, dst);
                }
            }
        }
    }

    /// Visits every **indirectly gained** MA path `src → mid → dst`:
    /// `src` is in the grant of `mid` towards `dst` (the MA between `mid`
    /// and `dst` includes the path `dst → mid → src`).
    ///
    /// With `dedup_against_direct`, paths that
    /// [`for_each_ma_direct`](Self::for_each_ma_direct) already yields
    /// (the peer·peer overlap) are skipped, so the union of the two
    /// visitors enumerates each MA path exactly once.
    pub fn for_each_ma_indirect(
        &self,
        src: u32,
        dedup_against_direct: bool,
        mut visit: impl FnMut(u32, u32),
    ) {
        let g = self.graph;
        // Case 1: mid is a peer of src (src ∈ ε(mid)); MA between mid and
        // its peer dst grants dst access to src. Path pattern peer·peer.
        for &mid in g.peer_indices(src) {
            for &dst in g.peer_indices(mid) {
                if dst == src || is_provider_of(g, dst, src) {
                    continue; // src must not be a customer of dst
                }
                // Direct enumeration already covers dst ∉ γ(src).
                if dedup_against_direct && !is_customer_of(g, dst, src) {
                    continue;
                }
                visit(mid, dst);
            }
        }
        // Case 2: mid is a customer of src (src ∈ π(mid)); pattern down·peer.
        for &mid in g.customer_indices(src) {
            for &dst in g.peer_indices(mid) {
                if dst == src || is_provider_of(g, dst, src) {
                    continue;
                }
                visit(mid, dst);
            }
        }
    }

    /// Visits every MA path of `src` (direct ∪ indirect, deduplicated).
    pub fn for_each_ma_all(&self, src: u32, mut visit: impl FnMut(u32, u32)) {
        self.for_each_ma_direct(src, &mut visit);
        self.for_each_ma_indirect(src, true, &mut visit);
    }

    /// Number of GRC length-3 paths from `src`.
    #[must_use]
    pub fn count_grc(&self, src: u32) -> usize {
        let mut count = 0;
        self.for_each_grc(src, |_, _| count += 1);
        count
    }

    /// Number of directly gained MA paths from `src`.
    #[must_use]
    pub fn count_ma_direct(&self, src: u32) -> usize {
        let mut count = 0;
        self.for_each_ma_direct(src, |_, _| count += 1);
        count
    }

    /// Number of all MA paths from `src` (direct ∪ indirect).
    #[must_use]
    pub fn count_ma_all(&self, src: u32) -> usize {
        let mut count = 0;
        self.for_each_ma_all(src, |_, _| count += 1);
        count
    }

    /// Directly gained MA paths per peer of `src`, as `(peer, count)` —
    /// the basis of the `Top-n` scenarios.
    #[must_use]
    pub fn ma_direct_by_peer(&self, src: u32) -> Vec<(u32, usize)> {
        let g = self.graph;
        g.peer_indices(src)
            .iter()
            .map(|&mid| {
                let mut count = 0;
                for &dst in g.provider_peer_indices(mid) {
                    if dst != src && !is_customer_of(g, dst, src) {
                        count += 1;
                    }
                }
                (mid, count)
            })
            .collect()
    }
}

/// `a` is a customer of `b` (i.e. `a ∈ γ(b)`).
fn is_customer_of(graph: &AsGraph, a: u32, b: u32) -> bool {
    graph.has_neighbor_kind(b, a, NeighborKind::Customer)
}

/// `a` is a provider of `b` (i.e. `a ∈ π(b)`).
fn is_provider_of(graph: &AsGraph, a: u32, b: u32) -> bool {
    graph.has_neighbor_kind(b, a, NeighborKind::Provider)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pan_topology::fixtures::{asn, fig1};
    use pan_topology::path::is_valley_free;
    use pan_topology::Asn;
    use std::collections::BTreeSet;

    fn collect(
        g: &AsGraph,
        src: char,
        f: impl Fn(&Length3Enumerator<'_>, u32, &mut dyn FnMut(u32, u32)),
    ) -> BTreeSet<(Asn, Asn)> {
        let e = Length3Enumerator::new(g);
        let s = g.index_of(asn(src)).unwrap();
        let mut out = BTreeSet::new();
        let mut cb = |m: u32, d: u32| {
            assert!(
                out.insert((g.asn_at(m), g.asn_at(d))),
                "duplicate path via {} to {}",
                g.asn_at(m),
                g.asn_at(d)
            );
        };
        f(&e, s, &mut cb);
        out
    }

    #[test]
    fn grc_paths_from_h_match_hand_enumeration() {
        let g = fig1();
        let paths = collect(&g, 'H', |e, s, cb| e.for_each_grc(s, cb));
        // H's only neighbor is provider D. Patterns: up·up → A; up·peer →
        // C, E; up·down → (none: D's customer is H itself).
        let expected: BTreeSet<_> = [
            (asn('D'), asn('A')),
            (asn('D'), asn('C')),
            (asn('D'), asn('E')),
        ]
        .into_iter()
        .collect();
        assert_eq!(paths, expected);
    }

    #[test]
    fn all_grc_paths_are_valley_free_and_vice_versa() {
        let g = fig1();
        for src in g.ases() {
            let enumerated = collect(&g, char::from(b'A' + (src.get() - 1) as u8), |e, s, cb| {
                e.for_each_grc(s, cb)
            });
            // Cross-check against brute force over all (mid, dst) pairs.
            for mid in g.ases() {
                for dst in g.ases() {
                    if src == mid || mid == dst || src == dst {
                        continue;
                    }
                    let hops = [src, mid, dst];
                    let vf = is_valley_free(&g, &hops) == Some(true);
                    let listed = enumerated.contains(&(mid, dst));
                    assert_eq!(
                        vf, listed,
                        "path {src}→{mid}→{dst}: valley-free={vf}, enumerated={listed}"
                    );
                }
            }
        }
    }

    #[test]
    fn d_gains_the_papers_direct_ma_paths() {
        let g = fig1();
        let direct = collect(&g, 'D', |e, s, cb| e.for_each_ma_direct(s, cb));
        // D's peers: C (no providers/peers besides D) and E (provider B,
        // peer F). Grants: from E → B and F.
        let expected: BTreeSet<_> = [(asn('E'), asn('B')), (asn('E'), asn('F'))]
            .into_iter()
            .collect();
        assert_eq!(direct, expected);
    }

    #[test]
    fn b_gains_indirect_paths_from_the_de_agreement() {
        let g = fig1();
        // The MA between D and E grants D access to B; B (as subject)
        // indirectly gains the reverse path B → E → D.
        let indirect = collect(&g, 'B', |e, s, cb| e.for_each_ma_indirect(s, false, cb));
        assert!(
            indirect.contains(&(asn('E'), asn('D'))),
            "B should gain B→E→D indirectly, got {indirect:?}"
        );
    }

    #[test]
    fn ma_paths_are_never_valley_free() {
        let g = fig1();
        for src in g.ases() {
            let label = char::from(b'A' + (src.get() - 1) as u8);
            let all = collect(&g, label, |e, s, cb| e.for_each_ma_all(s, cb));
            for (mid, dst) in all {
                assert_eq!(
                    is_valley_free(&g, &[src, mid, dst]),
                    Some(false),
                    "MA path {src}→{mid}→{dst} is valley-free"
                );
            }
        }
    }

    #[test]
    fn ma_all_deduplicates_direct_and_indirect() {
        // collect() itself asserts uniqueness; run it for every AS.
        let g = fig1();
        for i in 0..g.node_count() {
            let label = char::from(b'A' + i as u8);
            let _ = collect(&g, label, |e, s, cb| e.for_each_ma_all(s, cb));
        }
    }

    #[test]
    fn counts_agree_with_visitors() {
        let g = fig1();
        let e = Length3Enumerator::new(&g);
        for idx in 0..g.node_count() as u32 {
            assert_eq!(e.count_grc(idx), {
                let mut c = 0;
                e.for_each_grc(idx, |_, _| c += 1);
                c
            });
            assert_eq!(e.count_ma_all(idx), {
                let mut c = 0;
                e.for_each_ma_all(idx, |_, _| c += 1);
                c
            });
        }
    }

    #[test]
    fn ma_direct_by_peer_sums_to_direct_count() {
        let g = fig1();
        let e = Length3Enumerator::new(&g);
        for idx in 0..g.node_count() as u32 {
            let by_peer: usize = e.ma_direct_by_peer(idx).iter().map(|&(_, c)| c).sum();
            assert_eq!(by_peer, e.count_ma_direct(idx));
        }
    }

    #[test]
    fn grant_excludes_partners_customers() {
        use pan_topology::{AsGraphBuilder, Relationship};
        // s peers p; p's provider q is s's customer → the MA between s
        // and p must not grant s a path to q.
        let (s, p, q) = (Asn::new(1), Asn::new(2), Asn::new(3));
        let mut b = AsGraphBuilder::new();
        b.add_link(s, p, Relationship::PeerToPeer).unwrap();
        b.add_link(q, p, Relationship::ProviderToCustomer).unwrap();
        b.add_link(s, q, Relationship::ProviderToCustomer).unwrap();
        let g = b.build().unwrap();
        let e = Length3Enumerator::new(&g);
        assert_eq!(e.count_ma_direct(g.index_of(s).unwrap()), 0);
    }
}
