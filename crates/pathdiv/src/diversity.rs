//! Per-AS path-diversity statistics: the data behind Fig. 3, Fig. 4, and
//! the aggregate numbers of §VI-A.

use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use pan_runtime::{coordinator_rng, ThreadPool};
use pan_topology::{AsGraph, Asn};

use crate::length3::Length3Enumerator;

/// Configuration of the sampled diversity analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiversityConfig {
    /// Number of randomly chosen source ASes (the paper uses 500).
    pub sample_size: usize,
    /// RNG seed for the sample.
    pub seed: u64,
    /// The `Top-n` partial-conclusion scenarios to evaluate
    /// (the paper uses 1, 5, and 50).
    pub top_n: Vec<usize>,
}

impl Default for DiversityConfig {
    fn default() -> Self {
        DiversityConfig {
            sample_size: 500,
            seed: 42,
            top_n: vec![1, 5, 50],
        }
    }
}

/// Path-diversity statistics of one source AS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsDiversity {
    /// The analyzed AS.
    pub asn: Asn,
    /// GRC-conforming length-3 paths starting at the AS.
    pub grc_paths: usize,
    /// Destinations reachable over GRC length-3 paths.
    pub grc_destinations: usize,
    /// Directly gained MA paths (the `MA*` family).
    pub ma_direct_paths: usize,
    /// All MA paths the AS is an endpoint of (direct ∪ indirect).
    pub ma_all_paths: usize,
    /// Destinations reachable over length-3 paths if **all** MAs are
    /// concluded (GRC ∪ MA destinations).
    pub ma_all_destinations: usize,
    /// Destinations reachable counting only directly gained MA paths.
    pub ma_direct_destinations: usize,
    /// For each configured `n`: directly gained paths when only the `n`
    /// most productive MAs are concluded.
    pub top_n_paths: Vec<(usize, usize)>,
    /// For each configured `n`: reachable destinations in the `Top-n`
    /// scenario (GRC ∪ top-n MA destinations).
    pub top_n_destinations: Vec<(usize, usize)>,
}

impl AsDiversity {
    /// Additional length-3 paths thanks to MAs (the §VI-A statistic).
    #[must_use]
    pub fn additional_paths(&self) -> usize {
        self.ma_all_paths
    }

    /// Additional nearby destinations thanks to MAs.
    #[must_use]
    pub fn additional_destinations(&self) -> usize {
        self.ma_all_destinations - self.grc_destinations
    }

    /// Total length-3 paths with all MAs concluded (the Fig. 3 `MA` series).
    #[must_use]
    pub fn total_paths_full_ma(&self) -> usize {
        self.grc_paths + self.ma_all_paths
    }

    /// Total length-3 paths counting only direct gains (the `MA*` series).
    #[must_use]
    pub fn total_paths_direct_ma(&self) -> usize {
        self.grc_paths + self.ma_direct_paths
    }
}

/// The full report over a sample of ASes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiversityReport {
    /// Per-AS statistics, in sample order.
    pub per_as: Vec<AsDiversity>,
    /// The configured `Top-n` values.
    pub top_n: Vec<usize>,
}

impl DiversityReport {
    /// Mean number of additional length-3 paths per AS (§VI-A reports
    /// 22,891 on the full CAIDA topology).
    #[must_use]
    pub fn mean_additional_paths(&self) -> f64 {
        mean(self.per_as.iter().map(|a| a.additional_paths() as f64))
    }

    /// Maximum number of additional length-3 paths over the sample.
    #[must_use]
    pub fn max_additional_paths(&self) -> usize {
        self.per_as
            .iter()
            .map(AsDiversity::additional_paths)
            .max()
            .unwrap_or(0)
    }

    /// Mean number of additional reachable destinations (§VI-A: 2,181).
    #[must_use]
    pub fn mean_additional_destinations(&self) -> f64 {
        mean(
            self.per_as
                .iter()
                .map(|a| a.additional_destinations() as f64),
        )
    }

    /// Maximum number of additional destinations over the sample.
    #[must_use]
    pub fn max_additional_destinations(&self) -> usize {
        self.per_as
            .iter()
            .map(AsDiversity::additional_destinations)
            .max()
            .unwrap_or(0)
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in values {
        sum += v;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Samples `config.sample_size` ASes uniformly (seeded) and analyzes
/// each on a single thread. Equivalent to [`analyze_sample_pooled`] with
/// a one-thread pool.
#[must_use]
pub fn analyze_sample(graph: &AsGraph, config: &DiversityConfig) -> DiversityReport {
    analyze_sample_pooled(graph, config, &ThreadPool::new(1))
}

/// Samples `config.sample_size` ASes uniformly (seeded) and analyzes
/// them in parallel over `pool`.
///
/// Every worker owns a private visited-stamp scratch buffer (the same
/// allocation-amortization trick the sequential path uses), and per-AS
/// results are assembled in sample order, so the report is bit-identical
/// at any thread count.
#[must_use]
pub fn analyze_sample_pooled(
    graph: &AsGraph,
    config: &DiversityConfig,
    pool: &ThreadPool,
) -> DiversityReport {
    let mut rng = coordinator_rng(config.seed);
    let mut indices: Vec<u32> = (0..graph.node_count() as u32).collect();
    indices.shuffle(&mut rng);
    indices.truncate(config.sample_size.min(graph.node_count()));

    let per_as = pool.map_with(
        &indices,
        || {
            (
                Length3Enumerator::new(graph),
                vec![0u32; graph.node_count()],
                0u32,
            )
        },
        |(enumerator, stamp, stamp_gen), _idx, &src| {
            analyze_as(graph, enumerator, src, config, stamp, stamp_gen)
        },
    );
    DiversityReport {
        per_as,
        top_n: config.top_n.clone(),
    }
}

/// Analyzes a single AS (exposed for targeted queries and tests).
#[must_use]
pub fn analyze_one(graph: &AsGraph, asn: Asn, config: &DiversityConfig) -> Option<AsDiversity> {
    let src = graph.index_of(asn).ok()?;
    let enumerator = Length3Enumerator::new(graph);
    let mut stamp = vec![0u32; graph.node_count()];
    let mut stamp_gen = 0u32;
    Some(analyze_as(
        graph,
        &enumerator,
        src,
        config,
        &mut stamp,
        &mut stamp_gen,
    ))
}

fn analyze_as(
    graph: &AsGraph,
    enumerator: &Length3Enumerator<'_>,
    src: u32,
    config: &DiversityConfig,
    stamp: &mut [u32],
    stamp_gen: &mut u32,
) -> AsDiversity {
    // GRC paths and destinations.
    *stamp_gen += 1;
    let gen_grc = *stamp_gen;
    let mut grc_paths = 0usize;
    let mut grc_destinations = 0usize;
    enumerator.for_each_grc(src, |_, dst| {
        grc_paths += 1;
        if stamp[dst as usize] != gen_grc {
            stamp[dst as usize] = gen_grc;
            grc_destinations += 1;
        }
    });

    // All-MA paths and the union destination set. Destinations already
    // reachable via GRC keep their stamp from the pass above, so newly
    // stamped ones are the *additional* destinations.
    let mut ma_all_paths = 0usize;
    let mut additional_destinations = 0usize;
    enumerator.for_each_ma_all(src, |_, dst| {
        ma_all_paths += 1;
        if stamp[dst as usize] != gen_grc {
            stamp[dst as usize] = gen_grc;
            additional_destinations += 1;
        }
    });
    let ma_all_destinations = grc_destinations + additional_destinations;

    // Direct MA paths and destinations (fresh stamp generation seeded
    // with the GRC destinations again).
    *stamp_gen += 1;
    let gen_direct = *stamp_gen;
    enumerator.for_each_grc(src, |_, dst| {
        stamp[dst as usize] = gen_direct;
    });
    let mut ma_direct_paths = 0usize;
    let mut direct_additional_dests = 0usize;
    enumerator.for_each_ma_direct(src, |_, dst| {
        ma_direct_paths += 1;
        if stamp[dst as usize] != gen_direct {
            stamp[dst as usize] = gen_direct;
            direct_additional_dests += 1;
        }
    });
    let ma_direct_destinations = grc_destinations + direct_additional_dests;

    // Top-n scenarios: conclude only the n own-MAs yielding the most new
    // paths.
    let mut by_peer = enumerator.ma_direct_by_peer(src);
    by_peer.sort_by_key(|&(peer, count)| (std::cmp::Reverse(count), peer));
    let mut top_n_paths = Vec::with_capacity(config.top_n.len());
    let mut top_n_destinations = Vec::with_capacity(config.top_n.len());
    for &n in &config.top_n {
        let chosen: Vec<u32> = by_peer.iter().take(n).map(|&(peer, _)| peer).collect();
        let paths: usize = by_peer.iter().take(n).map(|&(_, count)| count).sum();
        top_n_paths.push((n, paths));

        // Destinations: GRC ∪ targets via the chosen peers.
        *stamp_gen += 1;
        let gen_top = *stamp_gen;
        let mut dests = 0usize;
        enumerator.for_each_grc(src, |_, dst| {
            if stamp[dst as usize] != gen_top {
                stamp[dst as usize] = gen_top;
                dests += 1;
            }
        });
        enumerator.for_each_ma_direct(src, |mid, dst| {
            if chosen.contains(&mid) && stamp[dst as usize] != gen_top {
                stamp[dst as usize] = gen_top;
                dests += 1;
            }
        });
        top_n_destinations.push((n, dests));
    }

    AsDiversity {
        asn: graph.asn_at(src),
        grc_paths,
        grc_destinations,
        ma_direct_paths,
        ma_all_paths,
        ma_all_destinations,
        ma_direct_destinations,
        top_n_paths,
        top_n_destinations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pan_datasets::{InternetConfig, SyntheticInternet};
    use pan_topology::fixtures::{asn, fig1};

    fn config(sample: usize) -> DiversityConfig {
        DiversityConfig {
            sample_size: sample,
            seed: 1,
            top_n: vec![1, 2],
        }
    }

    #[test]
    fn fig1_d_statistics() {
        let g = fig1();
        let d = analyze_one(&g, asn('D'), &config(1)).unwrap();
        // GRC paths from D: via provider A: A→B (peer of A); via peers C
        // (no customers) and E: E→I; via customer H: none.
        assert_eq!(d.grc_paths, 2, "D's GRC paths: D-A-B and D-E-I");
        assert_eq!(d.grc_destinations, 2);
        // Direct MA gains: D-E-B, D-E-F.
        assert_eq!(d.ma_direct_paths, 2);
        // Indirect gains: D is in C's grant? D ∈ ε(C): MA between C and
        // its peers (only D) — partner is D itself, excluded. D ∈ π(H):
        // H has no peers. D ∈ ε(E): MA between E and F grants F access
        // to D → D gains D-E-F indirectly — already direct (dedup).
        assert_eq!(d.ma_all_paths, 2);
        // B is already GRC-reachable via D–A–B, so only F is new.
        assert_eq!(d.additional_destinations(), 1, "only F is new");
        assert_eq!(d.total_paths_full_ma(), 4);
    }

    #[test]
    fn top_n_is_monotone_and_bounded_by_direct() {
        let net = SyntheticInternet::generate(
            &InternetConfig {
                num_ases: 400,
                ..InternetConfig::default()
            },
            3,
        )
        .unwrap();
        let report = analyze_sample(
            &net.graph,
            &DiversityConfig {
                sample_size: 60,
                seed: 2,
                top_n: vec![1, 5, 50],
            },
        );
        for a in &report.per_as {
            let counts: Vec<usize> = a.top_n_paths.iter().map(|&(_, c)| c).collect();
            assert!(counts.windows(2).all(|w| w[0] <= w[1]), "Top-n monotone");
            assert!(*counts.last().unwrap() <= a.ma_direct_paths);
            let dests: Vec<usize> = a.top_n_destinations.iter().map(|&(_, c)| c).collect();
            assert!(dests.windows(2).all(|w| w[0] <= w[1]));
            assert!(dests[0] >= a.grc_destinations);
            assert!(*dests.last().unwrap() <= a.ma_direct_destinations);
        }
    }

    #[test]
    fn destinations_are_consistent() {
        let net = SyntheticInternet::generate(
            &InternetConfig {
                num_ases: 300,
                ..InternetConfig::default()
            },
            5,
        )
        .unwrap();
        let report = analyze_sample(&net.graph, &config(50));
        for a in &report.per_as {
            assert!(a.ma_all_destinations >= a.grc_destinations);
            assert!(a.ma_all_destinations >= a.ma_direct_destinations);
            assert!(a.ma_direct_destinations >= a.grc_destinations);
            assert!(a.ma_all_paths >= a.ma_direct_paths);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let net = SyntheticInternet::generate(
            &InternetConfig {
                num_ases: 200,
                ..InternetConfig::default()
            },
            9,
        )
        .unwrap();
        let a = analyze_sample(&net.graph, &config(30));
        let b = analyze_sample(&net.graph, &config(30));
        assert_eq!(a, b);
    }

    #[test]
    fn pooled_sampling_matches_sequential() {
        let net = SyntheticInternet::generate(
            &InternetConfig {
                num_ases: 200,
                ..InternetConfig::default()
            },
            9,
        )
        .unwrap();
        let reference = analyze_sample(&net.graph, &config(40));
        for threads in [2, 4, 16] {
            let pooled = analyze_sample_pooled(&net.graph, &config(40), &ThreadPool::new(threads));
            assert_eq!(reference, pooled, "{threads} threads diverged");
        }
    }

    #[test]
    fn mas_add_paths_on_realistic_graphs() {
        let net = SyntheticInternet::generate(
            &InternetConfig {
                num_ases: 500,
                ..InternetConfig::default()
            },
            4,
        )
        .unwrap();
        let report = analyze_sample(&net.graph, &config(100));
        assert!(
            report.mean_additional_paths() > 0.0,
            "MAs should create paths on a peering-rich graph"
        );
        assert!(report.max_additional_paths() >= report.mean_additional_paths() as usize);
    }

    #[test]
    fn sample_larger_than_graph_is_clamped() {
        let g = fig1();
        let report = analyze_sample(&g, &config(1000));
        assert_eq!(report.per_as.len(), 9);
    }
}
