//! Path-diversity evaluation of mutuality-based agreements (§VI).
//!
//! This crate reproduces the paper's evaluation pipeline:
//!
//! - [`length3`]: efficient enumeration of **length-3 paths** (3 AS hops,
//!   2 inter-AS links) from a source — both the Gao–Rexford-conforming
//!   ones and those created by mutuality-based agreements (MAs),
//!   distinguishing *directly* gained paths (the AS is an MA party) from
//!   *indirectly* gained ones (the AS is the subject of someone else's
//!   MA).
//! - [`diversity`]: per-AS statistics for Fig. 3 (number of length-3
//!   paths) and Fig. 4 (destinations reachable over length-3 paths),
//!   including the `Top-n` partial-conclusion scenarios and the §VI-A
//!   aggregate statistics.
//! - [`geodistance`]: the Fig. 5 analysis — per AS pair, how many MA
//!   paths beat the maximum/median/minimum geodistance of the GRC paths,
//!   and the relative reduction in minimum geodistance.
//! - [`bandwidth`]: the Fig. 6 analysis — the same comparison for
//!   degree-gravity path bandwidth.
//! - [`cdf`]: empirical CDFs used to render all four figures.
//!
//! # Example
//!
//! ```
//! use pan_datasets::{InternetConfig, SyntheticInternet};
//! use pan_pathdiv::diversity::{analyze_sample, DiversityConfig};
//!
//! let net = SyntheticInternet::generate(
//!     &InternetConfig { num_ases: 300, ..InternetConfig::default() },
//!     7,
//! )?;
//! let report = analyze_sample(&net.graph, &DiversityConfig { sample_size: 40, seed: 1, ..DiversityConfig::default() });
//! // MAs can only add paths:
//! assert!(report.mean_additional_paths() >= 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod bandwidth;
pub mod cdf;
pub mod diversity;
pub mod figures;
pub mod geodistance;
pub mod length3;
pub mod ma_stats;
pub mod pair_analysis;

pub use cdf::EmpiricalCdf;
