//! Bandwidth analysis of MA paths (§VI-C, Fig. 6).
//!
//! Link capacities follow the degree-gravity model (capacity proportional
//! to the product of endpoint degrees); the bandwidth of a length-3 path
//! is the minimum capacity of its two links.

use serde::{Deserialize, Serialize};

use pan_runtime::ThreadPool;
use pan_topology::bandwidth::LinkCapacities;
use pan_topology::AsGraph;

use crate::cdf::EmpiricalCdf;
use crate::pair_analysis::{analyze_pairs_pooled, fraction_with_at_least, Direction, PairRecord};

/// Configuration of the bandwidth analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthConfig {
    /// Number of sampled source ASes.
    pub sample_size: usize,
    /// RNG seed for the sample.
    pub seed: u64,
}

impl Default for BandwidthConfig {
    fn default() -> Self {
        BandwidthConfig {
            sample_size: 500,
            seed: 42,
        }
    }
}

/// The Fig. 6 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthReport {
    /// Per-AS-pair records.
    pub pairs: Vec<PairRecord>,
}

impl BandwidthReport {
    /// Fraction of AS pairs gaining at least `k` MA paths with more
    /// bandwidth than the **maximum**-bandwidth GRC path (Fig. 6a,
    /// `> GRC Maximum`).
    #[must_use]
    pub fn fraction_above_max(&self, k: usize) -> f64 {
        fraction_with_at_least(&self.pairs, k, |r| r.ma_beating_best)
    }

    /// Fraction beating the **median**-bandwidth GRC path.
    #[must_use]
    pub fn fraction_above_median(&self, k: usize) -> f64 {
        fraction_with_at_least(&self.pairs, k, |r| r.ma_beating_median)
    }

    /// Fraction beating the **minimum**-bandwidth GRC path.
    #[must_use]
    pub fn fraction_above_min(&self, k: usize) -> f64 {
        fraction_with_at_least(&self.pairs, k, |r| r.ma_beating_worst)
    }

    /// CDF over AS pairs of the number of MA paths beating the maximum
    /// GRC bandwidth (the `> GRC Maximum` curve of Fig. 6a).
    #[must_use]
    pub fn above_max_cdf(&self) -> EmpiricalCdf {
        self.pairs
            .iter()
            .map(|r| r.ma_beating_best as f64)
            .collect()
    }

    /// Relative bandwidth increases over the pairs that improved
    /// (the Fig. 6b distribution; the paper reports a median of ≈150%).
    #[must_use]
    pub fn increase_cdf(&self) -> EmpiricalCdf {
        self.pairs
            .iter()
            .filter_map(|r| r.relative_improvement(Direction::HigherIsBetter))
            .collect()
    }
}

/// Precomputed capacity lookup, dense per
/// [`LinkId`](pan_topology::LinkId); `(node, node)` pairs resolve to
/// links through the graph's CSR adjacency, so the hot path never
/// hashes.
#[derive(Debug)]
pub struct BandwidthIndex<'a> {
    graph: &'a AsGraph,
    capacities: Vec<f64>,
}

impl<'a> BandwidthIndex<'a> {
    /// Builds the index from per-link capacities.
    #[must_use]
    pub fn build(graph: &'a AsGraph, capacities: &LinkCapacities) -> Self {
        let mut by_link = vec![0.0; graph.link_count()];
        for link in graph.links() {
            by_link[link.id.index()] = capacities.capacity(link.id);
        }
        BandwidthIndex {
            graph,
            capacities: by_link,
        }
    }

    /// Bandwidth of the length-3 path `src → mid → dst`: the bottleneck
    /// of the two links.
    #[must_use]
    pub fn path_bandwidth(&self, src: u32, mid: u32, dst: u32) -> Option<f64> {
        let l1 = self.graph.link_id_between_indices(src, mid)?;
        let l2 = self.graph.link_id_between_indices(mid, dst)?;
        let c1 = self.capacities[l1.index()];
        let c2 = self.capacities[l2.index()];
        Some(c1.min(c2))
    }
}

/// Runs the full Fig. 6 analysis on a single thread.
#[must_use]
pub fn analyze(
    graph: &AsGraph,
    capacities: &LinkCapacities,
    config: &BandwidthConfig,
) -> BandwidthReport {
    analyze_pooled(graph, capacities, config, &ThreadPool::new(1))
}

/// Runs the full Fig. 6 analysis with the per-source sweep fanned out
/// over `pool`; bit-identical to [`analyze`] at any thread count.
#[must_use]
pub fn analyze_pooled(
    graph: &AsGraph,
    capacities: &LinkCapacities,
    config: &BandwidthConfig,
    pool: &ThreadPool,
) -> BandwidthReport {
    let index = BandwidthIndex::build(graph, capacities);
    let pairs = analyze_pairs_pooled(
        graph,
        config.sample_size,
        config.seed,
        Direction::HigherIsBetter,
        pool,
        |src, mid, dst| index.path_bandwidth(src, mid, dst),
    );
    BandwidthReport { pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pan_datasets::{InternetConfig, SyntheticInternet};
    use pan_topology::fixtures::{asn, fig1};

    fn small_net() -> SyntheticInternet {
        SyntheticInternet::generate(
            &InternetConfig {
                num_ases: 300,
                ..InternetConfig::default()
            },
            13,
        )
        .unwrap()
    }

    #[test]
    fn index_matches_link_capacities() {
        let g = fig1();
        let caps = LinkCapacities::degree_gravity(&g, 1.0);
        let index = BandwidthIndex::build(&g, &caps);
        let h = g.index_of(asn('H')).unwrap();
        let d = g.index_of(asn('D')).unwrap();
        let e = g.index_of(asn('E')).unwrap();
        let via_index = index.path_bandwidth(h, d, e).unwrap();
        let via_caps = caps
            .path_bandwidth(&g, &[asn('H'), asn('D'), asn('E')])
            .unwrap();
        assert!((via_index - via_caps).abs() < 1e-12);
    }

    #[test]
    fn missing_link_is_none() {
        let g = fig1();
        let caps = LinkCapacities::degree_gravity(&g, 1.0);
        let index = BandwidthIndex::build(&g, &caps);
        let a = g.index_of(asn('A')).unwrap();
        let i = g.index_of(asn('I')).unwrap();
        let d = g.index_of(asn('D')).unwrap();
        assert!(index.path_bandwidth(a, d, i).is_none());
    }

    #[test]
    fn report_fractions_are_ordered() {
        let net = small_net();
        let report = analyze(
            &net.graph,
            &net.capacities,
            &BandwidthConfig {
                sample_size: 60,
                seed: 5,
            },
        );
        assert!(!report.pairs.is_empty());
        for k in [1, 5] {
            assert!(report.fraction_above_min(k) >= report.fraction_above_median(k));
            assert!(report.fraction_above_median(k) >= report.fraction_above_max(k));
        }
    }

    #[test]
    fn increases_are_positive() {
        let net = small_net();
        let report = analyze(
            &net.graph,
            &net.capacities,
            &BandwidthConfig {
                sample_size: 60,
                seed: 5,
            },
        );
        let cdf = report.increase_cdf();
        if let Some(min) = cdf.min() {
            assert!(min > 0.0);
        }
    }

    #[test]
    fn hub_peering_creates_high_bandwidth_ma_paths() {
        // MA paths run through peers towards *their* providers/peers —
        // well-connected mids — so on a hub-rich graph some pairs must
        // gain bandwidth. This is the qualitative Fig. 6 claim.
        let net = small_net();
        let report = analyze(
            &net.graph,
            &net.capacities,
            &BandwidthConfig {
                sample_size: 120,
                seed: 7,
            },
        );
        assert!(
            report.fraction_above_max(1) > 0.0,
            "no pair gained bandwidth at all"
        );
    }
}
