//! Figure-series builders: turn a [`DiversityReport`] into the exact CDF
//! series plotted in the paper's Fig. 3 and Fig. 4.

use crate::cdf::EmpiricalCdf;
use crate::diversity::DiversityReport;

/// A named CDF series of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label, matching the paper (`GRC`, `MA* (Top n)`, `MA*`, `MA`).
    pub name: String,
    /// The empirical distribution over the sampled ASes.
    pub cdf: EmpiricalCdf,
}

/// Builds the Fig. 3 series: total length-3 paths per AS under the
/// increasing degrees of MA conclusion.
///
/// Order: `GRC`, `MA* (Top n)` for each configured `n`, `MA*`, `MA`.
#[must_use]
pub fn fig3_series(report: &DiversityReport) -> Vec<Series> {
    let mut series = vec![Series {
        name: "GRC".to_owned(),
        cdf: report.per_as.iter().map(|a| a.grc_paths as f64).collect(),
    }];
    for (idx, &n) in report.top_n.iter().enumerate() {
        series.push(Series {
            name: format!("MA* (Top {n})"),
            cdf: report
                .per_as
                .iter()
                .map(|a| (a.grc_paths + a.top_n_paths[idx].1) as f64)
                .collect(),
        });
    }
    series.push(Series {
        name: "MA*".to_owned(),
        cdf: report
            .per_as
            .iter()
            .map(|a| a.total_paths_direct_ma() as f64)
            .collect(),
    });
    series.push(Series {
        name: "MA".to_owned(),
        cdf: report
            .per_as
            .iter()
            .map(|a| a.total_paths_full_ma() as f64)
            .collect(),
    });
    series
}

/// Builds the Fig. 4 series: destinations reachable over length-3 paths.
#[must_use]
pub fn fig4_series(report: &DiversityReport) -> Vec<Series> {
    let mut series = vec![Series {
        name: "GRC".to_owned(),
        cdf: report
            .per_as
            .iter()
            .map(|a| a.grc_destinations as f64)
            .collect(),
    }];
    for (idx, &n) in report.top_n.iter().enumerate() {
        series.push(Series {
            name: format!("MA* (Top {n})"),
            cdf: report
                .per_as
                .iter()
                .map(|a| a.top_n_destinations[idx].1 as f64)
                .collect(),
        });
    }
    series.push(Series {
        name: "MA*".to_owned(),
        cdf: report
            .per_as
            .iter()
            .map(|a| a.ma_direct_destinations as f64)
            .collect(),
    });
    series.push(Series {
        name: "MA".to_owned(),
        cdf: report
            .per_as
            .iter()
            .map(|a| a.ma_all_destinations as f64)
            .collect(),
    });
    series
}

/// Checks the stochastic-dominance ordering the paper's figures exhibit:
/// each successive series must first-order dominate its predecessor
/// (every quantile at least as large).
#[must_use]
pub fn is_stochastically_ordered(series: &[Series]) -> bool {
    series.windows(2).all(|pair| {
        let quantiles = [0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0];
        quantiles.iter().all(|&q| {
            let lo = pair[0].cdf.quantile(q).unwrap_or(0.0);
            let hi = pair[1].cdf.quantile(q).unwrap_or(0.0);
            hi >= lo
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diversity::{analyze_sample, DiversityConfig};
    use pan_datasets::{InternetConfig, SyntheticInternet};

    fn report() -> DiversityReport {
        let net = SyntheticInternet::generate(
            &InternetConfig {
                num_ases: 300,
                ..InternetConfig::default()
            },
            21,
        )
        .unwrap();
        analyze_sample(
            &net.graph,
            &DiversityConfig {
                sample_size: 60,
                seed: 2,
                top_n: vec![1, 5],
            },
        )
    }

    #[test]
    fn fig3_series_names_and_count() {
        let series = fig3_series(&report());
        let names: Vec<&str> = series.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["GRC", "MA* (Top 1)", "MA* (Top 5)", "MA*", "MA"]);
        for s in &series {
            assert_eq!(s.cdf.len(), 60);
        }
    }

    #[test]
    fn fig3_series_are_stochastically_ordered() {
        assert!(is_stochastically_ordered(&fig3_series(&report())));
    }

    #[test]
    fn fig4_series_are_stochastically_ordered() {
        assert!(is_stochastically_ordered(&fig4_series(&report())));
    }

    #[test]
    fn ordering_check_detects_violations() {
        let good = Series {
            name: "a".into(),
            cdf: EmpiricalCdf::from_samples(vec![1.0, 2.0]),
        };
        let bad = Series {
            name: "b".into(),
            cdf: EmpiricalCdf::from_samples(vec![0.0, 0.5]),
        };
        assert!(!is_stochastically_ordered(&[good, bad]));
    }
}
