//! Empirical cumulative distribution functions for figure rendering.

use serde::{Deserialize, Serialize};

/// An empirical CDF over a finite sample.
///
/// # Example
///
/// ```
/// use pan_pathdiv::EmpiricalCdf;
///
/// let cdf = EmpiricalCdf::from_samples(vec![1.0, 2.0, 2.0, 4.0]);
/// assert_eq!(cdf.cdf(0.5), 0.0);
/// assert_eq!(cdf.cdf(2.0), 0.75);
/// assert_eq!(cdf.cdf(4.0), 1.0);
/// assert_eq!(cdf.survival(1.0), 0.75); // strictly greater than 1.0
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds a CDF from samples (NaNs are dropped).
    #[must_use]
    pub fn from_samples(samples: Vec<f64>) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|v| !v.is_nan()).collect();
        sorted.sort_unstable_by(f64::total_cmp);
        EmpiricalCdf { sorted }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if the CDF holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P[X ≤ x]`; 0 for an empty sample.
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// `P[X > x] = 1 − cdf(x)`.
    #[must_use]
    pub fn survival(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// The `q`-quantile (`q ∈ [0, 1]`), `None` for an empty sample.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        Some(self.sorted[idx])
    }

    /// The median, `None` for an empty sample.
    #[must_use]
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Minimum sample.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Mean of the samples, `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// `(x, F(x))` plot points: one per distinct sample value.
    #[must_use]
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut points: Vec<(f64, f64)> = Vec::new();
        for (i, &v) in self.sorted.iter().enumerate() {
            let y = (i + 1) as f64 / n;
            match points.last_mut() {
                Some(last) if last.0 == v => last.1 = y,
                _ => points.push((v, y)),
            }
        }
        points
    }
}

impl FromIterator<f64> for EmpiricalCdf {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        EmpiricalCdf::from_samples(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_cdf() {
        let cdf = EmpiricalCdf::from_samples(vec![3.0, 1.0, 2.0]);
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf.cdf(0.0), 0.0);
        assert!((cdf.cdf(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((cdf.cdf(2.5) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cdf.cdf(3.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let cdf = EmpiricalCdf::from_samples((1..=100).map(f64::from).collect());
        assert_eq!(cdf.median(), Some(50.0));
        assert_eq!(cdf.quantile(0.25), Some(25.0));
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(100.0));
        assert_eq!(cdf.min(), Some(1.0));
        assert_eq!(cdf.max(), Some(100.0));
    }

    #[test]
    fn empty_cdf() {
        let cdf = EmpiricalCdf::from_samples(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.cdf(1.0), 0.0);
        assert_eq!(cdf.median(), None);
        assert_eq!(cdf.mean(), None);
        assert!(cdf.points().is_empty());
    }

    #[test]
    fn nans_are_dropped() {
        let cdf = EmpiricalCdf::from_samples(vec![1.0, f64::NAN, 2.0]);
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf.max(), Some(2.0));
    }

    #[test]
    fn all_nan_samples_yield_an_empty_cdf_without_panicking() {
        // The construction sort is total_cmp-based, so even a sample that
        // is entirely NaN (or mixed with infinities) builds cleanly.
        let cdf = EmpiricalCdf::from_samples(vec![f64::NAN, f64::NAN]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.cdf(0.0), 0.0);
        let mixed = EmpiricalCdf::from_samples(vec![f64::NAN, f64::INFINITY, 1.0]);
        assert_eq!(mixed.len(), 2);
        assert_eq!(mixed.max(), Some(f64::INFINITY));
    }

    #[test]
    fn points_merge_duplicates() {
        let cdf = EmpiricalCdf::from_samples(vec![1.0, 2.0, 2.0, 3.0]);
        let points = cdf.points();
        assert_eq!(points.len(), 3);
        assert_eq!(points[1], (2.0, 0.75));
    }

    #[test]
    fn from_iterator() {
        let cdf: EmpiricalCdf = [1.0, 2.0].into_iter().collect();
        assert_eq!(cdf.len(), 2);
    }

    proptest! {
        #[test]
        fn cdf_is_monotone(mut samples in prop::collection::vec(-100.0..100.0f64, 1..50)) {
            samples.sort_by(f64::total_cmp);
            let cdf = EmpiricalCdf::from_samples(samples.clone());
            let mut prev = 0.0;
            for step in -110..110 {
                let x = step as f64;
                let y = cdf.cdf(x);
                prop_assert!(y >= prev - 1e-12);
                prev = y;
            }
            prop_assert_eq!(cdf.cdf(150.0), 1.0);
        }
    }
}
