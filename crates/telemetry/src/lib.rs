//! Engine-wide metrics for the pan-interconnect stack: atomic counters
//! and gauges, fixed-bucket log2 latency histograms with nearest-rank
//! percentile extraction, RAII span timers, and a process-wide
//! [`Registry`] that snapshots to a JSON document and a
//! Prometheus-style text exposition.
//!
//! # Design constraints
//!
//! - **Std-only.** No dependencies, not even the vendored stand-ins —
//!   the JSON and Prometheus expositions are hand-rolled so every crate
//!   in the hot path can depend on this one without widening its own
//!   dependency cone.
//! - **Zero-cost when disabled.** The process-wide entry points
//!   ([`counter`], [`gauge`], [`histogram`]) hand out *noop* handles
//!   until [`enable`] is called: recording through a noop handle is one
//!   branch on an `Option` that is always `None`, and [`Histogram::start`]
//!   never calls [`Instant::now`] on a noop handle. Instrumentation
//!   sites therefore stay in release builds unconditionally.
//! - **Determinism untouched.** Telemetry never writes to stdout and
//!   never feeds back into engine decisions; the byte-identity gates
//!   (figure/evolution/serving stdout diffs across thread counts) hold
//!   with telemetry enabled. Snapshot *values* are wall-clock facts and
//!   belong next to the other timing sections in `BENCH_*.json`
//!   records, never in deterministic reports.
//!
//! # Registry model
//!
//! A [`Registry`] is a named map from dotted metric names (e.g.
//! `core.phase.evaluate_ns`) to one of three metric kinds. Handles are
//! [`Arc`]-backed and clonable; acquiring the same name twice yields
//! handles onto the same underlying atomics. The `_ns` suffix marks
//! span histograms recording nanoseconds. A standalone registry can be
//! built for tests; production code uses the [`global`] registry
//! through the gated free functions.
//!
//! ```
//! let registry = pan_telemetry::Registry::new();
//! let rounds = registry.counter("core.rounds");
//! let phase = registry.histogram("core.phase.evaluate_ns");
//! rounds.inc();
//! {
//!     let _span = phase.start(); // records elapsed ns on drop
//! }
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counters[0], ("core.rounds".to_owned(), 1));
//! assert!(snapshot.to_json().starts_with('{'));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Log2 buckets per histogram: bucket 0 holds exactly zero, bucket `i`
/// (for `1 <= i < 63`) holds `[2^(i-1), 2^i - 1]`, and bucket 63 holds
/// everything from `2^62` up. 64 buckets cover the full `u64` range, so
/// nanosecond spans up to ~146 years land exactly.
const BUCKETS: usize = 64;

/// Log2 bucket index of a value (see [`BUCKETS`]).
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket; percentiles report this bound, so
/// a quantile is exact to within its log2 bucket.
fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= BUCKETS - 1 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

#[derive(Debug, Default)]
struct CounterCore {
    value: AtomicU64,
}

#[derive(Debug, Default)]
struct GaugeCore {
    value: AtomicI64,
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }
}

/// Monotonically increasing counter handle. Clonable and sharable
/// across threads; all recording is relaxed-atomic. A noop handle (from
/// [`Counter::noop`] or a disabled global) records nothing.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<CounterCore>>);

impl Counter {
    /// A handle that records nothing — what the global entry points
    /// return while telemetry is disabled.
    #[must_use]
    pub fn noop() -> Counter {
        Counter(None)
    }

    /// `true` when this handle feeds a live registry.
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        if let Some(core) = &self.0 {
            core.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }
}

/// Last-value gauge handle (signed, so deltas can go negative).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<GaugeCore>>);

impl Gauge {
    /// A handle that records nothing.
    #[must_use]
    pub fn noop() -> Gauge {
        Gauge(None)
    }

    /// `true` when this handle feeds a live registry.
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    /// Sets the gauge to `value`.
    pub fn set(&self, value: i64) {
        if let Some(core) = &self.0 {
            core.value.store(value, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative) to the gauge.
    pub fn add(&self, delta: i64) {
        if let Some(core) = &self.0 {
            core.value.fetch_add(delta, Ordering::Relaxed);
        }
    }
}

/// Fixed-bucket log2 histogram handle. By convention, names ending in
/// `_ns` record nanosecond durations (usually via [`Histogram::start`]).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// A handle that records nothing.
    #[must_use]
    pub fn noop() -> Histogram {
        Histogram(None)
    }

    /// `true` when this handle feeds a live registry.
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.0 {
            core.record(value);
        }
    }

    /// Records a duration as whole nanoseconds (saturating).
    pub fn record_duration(&self, elapsed: Duration) {
        if self.0.is_some() {
            self.record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Starts an RAII span that records its elapsed nanoseconds into
    /// this histogram when dropped. On a noop handle the span is inert
    /// and the clock is never read.
    #[must_use = "dropping the span immediately records a ~zero duration"]
    pub fn start(&self) -> Span {
        Span(
            self.0
                .as_ref()
                .map(|core| (Instant::now(), Arc::clone(core))),
        )
    }

    /// Folds every observation of `other` into this histogram
    /// (bucket-wise add). Merging a handle into itself, or through a
    /// noop on either side, is a no-op.
    pub fn merge_from(&self, other: &Histogram) {
        let (Some(dst), Some(src)) = (&self.0, &other.0) else {
            return;
        };
        if Arc::ptr_eq(dst, src) {
            return;
        }
        for (into, from) in dst.buckets.iter().zip(&src.buckets) {
            into.fetch_add(from.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        dst.count
            .fetch_add(src.count.load(Ordering::Relaxed), Ordering::Relaxed);
        dst.sum
            .fetch_add(src.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// RAII span timer from [`Histogram::start`]: records the elapsed
/// nanoseconds into its histogram on drop.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
pub struct Span(Option<(Instant, Arc<HistogramCore>)>);

impl Span {
    /// A span that records nothing on drop.
    pub fn noop() -> Span {
        Span(None)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((started, core)) = self.0.take() {
            core.record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Arc<CounterCore>),
    Gauge(Arc<GaugeCore>),
    Histogram(Arc<HistogramCore>),
}

/// Named-metric registry: dotted names mapped to counters, gauges, and
/// histograms. Handle acquisition takes a mutex (acquire once per
/// round/request, not per item); recording through a handle is
/// lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry. Handles from a standalone registry are always
    /// live — the enabled gate applies only to the [`global`] entry
    /// points.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The live counter named `name`, registered on first use. A name
    /// already registered as a different kind yields a noop handle (the
    /// caller's bug shows up as a silent metric, never a panic in the
    /// instrumented hot path).
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().expect("telemetry registry poisoned");
        let metric = metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(CounterCore::default())));
        match metric {
            Metric::Counter(core) => Counter(Some(Arc::clone(core))),
            _ => Counter::noop(),
        }
    }

    /// The live gauge named `name`, registered on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().expect("telemetry registry poisoned");
        let metric = metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Arc::new(GaugeCore::default())));
        match metric {
            Metric::Gauge(core) => Gauge(Some(Arc::clone(core))),
            _ => Gauge::noop(),
        }
    }

    /// The live histogram named `name`, registered on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.metrics.lock().expect("telemetry registry poisoned");
        let metric = metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(HistogramCore::new())));
        match metric {
            Metric::Histogram(core) => Histogram(Some(Arc::clone(core))),
            _ => Histogram::noop(),
        }
    }

    /// Point-in-time dump of every registered metric, sorted by name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = self.metrics.lock().expect("telemetry registry poisoned");
        let mut snapshot = RegistrySnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(core) => snapshot
                    .counters
                    .push((name.clone(), core.value.load(Ordering::Relaxed))),
                Metric::Gauge(core) => snapshot
                    .gauges
                    .push((name.clone(), core.value.load(Ordering::Relaxed))),
                Metric::Histogram(core) => {
                    let mut buckets = Vec::new();
                    for (i, bucket) in core.buckets.iter().enumerate() {
                        let count = bucket.load(Ordering::Relaxed);
                        if count > 0 {
                            buckets.push((bucket_upper_bound(i), count));
                        }
                    }
                    snapshot.histograms.push((
                        name.clone(),
                        HistogramSnapshot {
                            count: core.count.load(Ordering::Relaxed),
                            sum: core.sum.load(Ordering::Relaxed),
                            buckets,
                        },
                    ));
                }
            }
        }
        snapshot
    }
}

/// Point-in-time value of one histogram: total count and sum plus the
/// occupied buckets as `(inclusive upper bound, count)` pairs in
/// ascending bound order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values (nanoseconds for `_ns` histograms).
    pub sum: u64,
    /// Occupied buckets, ascending: `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Nearest-rank percentile: the inclusive upper bound of the bucket
    /// holding the `ceil(p * count)`-th smallest observation (so exact
    /// to within a log2 bucket); `0` when the histogram is empty.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(upper, count) in &self.buckets {
            seen = seen.saturating_add(count);
            if seen >= rank {
                return upper;
            }
        }
        self.buckets.last().map_or(0, |&(upper, _)| upper)
    }

    /// Median (nearest-rank, bucket upper bound).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile (nearest-rank, bucket upper bound).
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th percentile (nearest-rank, bucket upper bound).
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Mean observed value; `0.0` when empty. Unlike the percentiles
    /// this is exact — the sum is recorded, not bucketed.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Point-in-time dump of a [`Registry`], each section sorted by metric
/// name. Renders to JSON ([`RegistrySnapshot::to_json`]) for
/// `--metrics-out` files and the serving layer's `metrics` verb, and to
/// a Prometheus-style exposition ([`RegistrySnapshot::to_prometheus`]).
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram snapshots by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

fn push_json_string(out: &mut String, text: &str) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl RegistrySnapshot {
    /// Renders the snapshot as one JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{"name":
    /// {"count":..,"sum":..,"p50":..,"p90":..,"p99":..,"buckets":
    /// [[bound,count],..]},..}}`. Hand-rolled (the crate is
    /// dependency-free) but escaped and well-formed.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, hist)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                hist.count,
                hist.sum,
                hist.p50(),
                hist.p90(),
                hist.p99()
            );
            for (j, (bound, count)) in hist.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{bound},{count}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Renders the snapshot as a Prometheus-style text exposition:
    /// `# TYPE` lines, `_bucket{le="..."}` cumulative series (the top
    /// bucket as `le="+Inf"`), `_sum`, and `_count`. Metric names are
    /// sanitized to `[a-zA-Z0-9_:]`.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out = String::with_capacity(name.len());
            for (i, ch) in name.chars().enumerate() {
                if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
                    if i == 0 && ch.is_ascii_digit() {
                        out.push('_');
                    }
                    out.push(ch);
                } else {
                    out.push('_');
                }
            }
            out
        }

        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, hist) in &self.histograms {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for &(bound, count) in &hist.buckets {
                cumulative = cumulative.saturating_add(count);
                if bound == u64::MAX {
                    continue; // folded into +Inf below
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
            let _ = writeln!(out, "{name}_sum {}", hist.sum);
            let _ = writeln!(out, "{name}_count {}", hist.count);
        }
        out
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry. Handles acquired directly from it are
/// always live; production instrumentation goes through the gated
/// [`counter`]/[`gauge`]/[`histogram`] free functions instead so a
/// process that never calls [`enable`] pays nothing.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Turns the process-wide entry points live. Called by bench binaries
/// when `--metrics-out` is given and by the serving layer on startup;
/// idempotent, never reversed (handles already handed out as noops stay
/// noops — instrumentation sites acquire per round/request, so they
/// light up on the next acquisition).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// `true` once [`enable`] has been called in this process.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Process-wide counter: live after [`enable`], noop before.
#[must_use]
pub fn counter(name: &str) -> Counter {
    if is_enabled() {
        global().counter(name)
    } else {
        Counter::noop()
    }
}

/// Process-wide gauge: live after [`enable`], noop before.
#[must_use]
pub fn gauge(name: &str) -> Gauge {
    if is_enabled() {
        global().gauge(name)
    } else {
        Gauge::noop()
    }
}

/// Process-wide histogram: live after [`enable`], noop before.
#[must_use]
pub fn histogram(name: &str) -> Histogram {
    if is_enabled() {
        global().histogram(name)
    } else {
        Histogram::noop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // Bucket 0 is exactly zero; bucket i covers [2^(i-1), 2^i - 1].
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index((1 << 62) - 1), 62);
        assert_eq!(bucket_index(1 << 62), 63);
        assert_eq!(bucket_index(u64::MAX), 63);

        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(62), (1 << 62) - 1);
        assert_eq!(bucket_upper_bound(63), u64::MAX);

        // Every value's bucket bound is >= the value (the bound is an
        // inclusive upper bound), and the previous bucket's bound is
        // below it.
        for value in [0u64, 1, 2, 3, 4, 5, 1023, 1024, 1025, u64::MAX] {
            let i = bucket_index(value);
            assert!(bucket_upper_bound(i) >= value, "value {value} bucket {i}");
            if i > 0 {
                assert!(bucket_upper_bound(i - 1) < value);
            }
        }
    }

    #[test]
    fn histogram_records_and_extracts_nearest_rank_percentiles() {
        let registry = Registry::new();
        let hist = registry.histogram("test.latency_ns");
        for value in 1..=8u64 {
            hist.record(value);
        }
        let snapshot = registry.snapshot();
        let (name, h) = &snapshot.histograms[0];
        assert_eq!(name, "test.latency_ns");
        assert_eq!(h.count, 8);
        assert_eq!(h.sum, 36);
        // Buckets: {1:[1], 3:[2,3], 7:[4..7], 15:[8]}.
        assert_eq!(h.buckets, vec![(1, 1), (3, 2), (7, 4), (15, 1)]);
        // Nearest-rank: p50 -> rank 4 -> the 7-bound bucket; p99 ->
        // rank 8 -> the 15-bound bucket.
        assert_eq!(h.p50(), 7);
        assert_eq!(h.p90(), 15);
        assert_eq!(h.p99(), 15);
        assert!((h.mean() - 4.5).abs() < 1e-12);

        // Zero-only histogram: everything sits in the zero bucket.
        let zero = registry.histogram("test.zero");
        zero.record(0);
        let h = &registry.snapshot().histograms[1].1;
        assert_eq!(h.buckets, vec![(0, 1)]);
        assert_eq!(h.p99(), 0);

        // Empty snapshot percentiles are defined (0).
        assert_eq!(HistogramSnapshot::default().percentile(0.5), 0);
    }

    #[test]
    fn histogram_merge_is_bucketwise_and_self_merge_safe() {
        let registry = Registry::new();
        let a = registry.histogram("merge.a");
        let b = registry.histogram("merge.b");
        a.record(1);
        a.record(100);
        b.record(1);
        b.record(u64::MAX);
        a.merge_from(&b);
        let snapshot = registry.snapshot();
        let merged = &snapshot.histograms[0].1;
        assert_eq!(merged.count, 4);
        assert_eq!(
            merged.sum,
            1u64.wrapping_add(100)
                .wrapping_add(1)
                .wrapping_add(u64::MAX)
        );
        assert_eq!(
            merged.buckets,
            vec![(1, 2), (127, 1), (u64::MAX, 1)],
            "bucket-wise add across both sources"
        );

        // Merging a handle into itself must not double-count.
        let a2 = registry.histogram("merge.a");
        a.merge_from(&a2);
        assert_eq!(registry.snapshot().histograms[0].1.count, 4);

        // Noop on either side is inert.
        a.merge_from(&Histogram::noop());
        Histogram::noop().merge_from(&a);
        assert_eq!(registry.snapshot().histograms[0].1.count, 4);
    }

    #[test]
    fn counters_gauges_and_kind_mismatches() {
        let registry = Registry::new();
        let c = registry.counter("hits");
        c.inc();
        c.add(9);
        // A second handle onto the same name shares the atomics.
        registry.counter("hits").inc();
        let g = registry.gauge("depth");
        g.set(7);
        g.add(-3);
        // Same name, different kind: noop handle, no panic.
        let clash = registry.gauge("hits");
        assert!(!clash.is_live());
        clash.set(1_000_000);
        let wrong_hist = registry.histogram("depth");
        assert!(!wrong_hist.is_live());

        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters, vec![("hits".to_owned(), 11)]);
        assert_eq!(snapshot.gauges, vec![("depth".to_owned(), 4)]);
    }

    #[test]
    fn spans_record_elapsed_nanoseconds() {
        let registry = Registry::new();
        let hist = registry.histogram("span_ns");
        {
            let _span = hist.start();
            std::hint::black_box(0u64);
        }
        let h = &registry.snapshot().histograms[0].1;
        assert_eq!(h.count, 1);
        // Noop spans never record and never read the clock.
        {
            let _span = Histogram::noop().start();
        }
        let _ = Span::noop();
        assert_eq!(registry.snapshot().histograms[0].1.count, 1);
    }

    #[test]
    fn json_and_prometheus_expositions_are_well_formed() {
        let registry = Registry::new();
        registry.counter("a.count").add(3);
        registry.gauge("b.gauge").set(-2);
        let h = registry.histogram("c.lat_ns");
        h.record(5);
        h.record(u64::MAX);
        let snapshot = registry.snapshot();

        let json = snapshot.to_json();
        assert!(json.starts_with("{\"counters\":{"), "{json}");
        assert!(json.contains("\"a.count\":3"), "{json}");
        assert!(json.contains("\"b.gauge\":-2"), "{json}");
        assert!(
            json.contains("\"c.lat_ns\":{\"count\":2,\"sum\":"),
            "{json}"
        );
        assert!(json.contains("\"p99\":18446744073709551615"), "{json}");
        assert!(json.ends_with("}}"), "{json}");
        // Names needing escapes stay well-formed.
        let mut escaped = String::new();
        push_json_string(&mut escaped, "a\"b\\c\n");
        assert_eq!(escaped, "\"a\\\"b\\\\c\\u000a\"");

        let prom = snapshot.to_prometheus();
        assert!(
            prom.contains("# TYPE a_count counter\na_count 3\n"),
            "{prom}"
        );
        assert!(
            prom.contains("# TYPE b_gauge gauge\nb_gauge -2\n"),
            "{prom}"
        );
        assert!(prom.contains("c_lat_ns_bucket{le=\"7\"} 1\n"), "{prom}");
        assert!(prom.contains("c_lat_ns_bucket{le=\"+Inf\"} 2\n"), "{prom}");
        assert!(prom.contains("c_lat_ns_count 2\n"), "{prom}");
    }

    #[test]
    fn global_entry_points_gate_on_enable() {
        // Single test for all global-state assertions: enable() is
        // process-wide and sticky, so ordering matters.
        let before = counter("global.test");
        if !is_enabled() {
            assert!(!before.is_live(), "disabled global hands out noops");
            before.inc(); // must be inert
        }
        enable();
        assert!(is_enabled());
        let after = counter("global.test");
        assert!(after.is_live());
        after.add(2);
        let snapshot = global().snapshot();
        let value = snapshot
            .counters
            .iter()
            .find(|(name, _)| name == "global.test")
            .map(|&(_, v)| v);
        assert_eq!(value, Some(2));
        assert!(histogram("global.hist_ns").is_live());
        assert!(gauge("global.gauge").is_live());
    }
}
