use std::fmt;

use pan_topology::{Asn, TopologyError};

/// Errors produced while constructing, evaluating, or optimizing
/// interconnection agreements.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AgreementError {
    /// The two parties of an agreement must be distinct ASes.
    SameParty {
        /// The AS appearing on both sides.
        asn: Asn,
    },
    /// A granted AS is not a neighbor of the grantor in the claimed role.
    InvalidGrant {
        /// The granting party.
        grantor: Asn,
        /// The AS being granted access to.
        target: Asn,
        /// Human-readable reason.
        reason: String,
    },
    /// A mutuality-based agreement requires the parties to be peers.
    NotPeers {
        /// First party.
        x: Asn,
        /// Second party.
        y: Asn,
    },
    /// An operating point has the wrong dimension for its scenario.
    DimensionMismatch {
        /// Expected number of segment opportunities.
        expected: usize,
        /// Provided number of coordinates.
        actual: usize,
    },
    /// A fraction is outside `[0, 1]` or non-finite.
    InvalidFraction {
        /// The rejected value.
        value: f64,
    },
    /// A utility value is non-finite.
    InvalidUtility {
        /// The rejected value.
        value: f64,
    },
    /// A market checkpoint could not be parsed or failed validation.
    Snapshot {
        /// Human-readable reason.
        reason: String,
    },
    /// An underlying economic computation failed.
    Econ(pan_econ::EconError),
    /// An underlying topology operation failed.
    Topology(TopologyError),
}

impl fmt::Display for AgreementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgreementError::SameParty { asn } => {
                write!(f, "agreement parties must be distinct, got {asn} twice")
            }
            AgreementError::InvalidGrant {
                grantor,
                target,
                reason,
            } => write!(
                f,
                "invalid grant by {grantor} of access to {target}: {reason}"
            ),
            AgreementError::NotPeers { x, y } => {
                write!(
                    f,
                    "mutuality-based agreements require peers, but {x} and {y} are not"
                )
            }
            AgreementError::DimensionMismatch { expected, actual } => write!(
                f,
                "operating point has {actual} coordinates, scenario expects {expected}"
            ),
            AgreementError::InvalidFraction { value } => {
                write!(f, "fractions must lie in [0, 1], got {value}")
            }
            AgreementError::InvalidUtility { value } => {
                write!(f, "utilities must be finite, got {value}")
            }
            AgreementError::Snapshot { reason } => {
                write!(f, "invalid market checkpoint: {reason}")
            }
            AgreementError::Econ(err) => write!(f, "economic model error: {err}"),
            AgreementError::Topology(err) => write!(f, "topology error: {err}"),
        }
    }
}

impl std::error::Error for AgreementError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AgreementError::Econ(err) => Some(err),
            AgreementError::Topology(err) => Some(err),
            _ => None,
        }
    }
}

impl From<pan_econ::EconError> for AgreementError {
    fn from(err: pan_econ::EconError) -> Self {
        AgreementError::Econ(err)
    }
}

impl From<TopologyError> for AgreementError {
    fn from(err: TopologyError) -> Self {
        AgreementError::Topology(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = AgreementError::NotPeers {
            x: Asn::new(4),
            y: Asn::new(9),
        };
        let text = err.to_string();
        assert!(text.contains("AS4") && text.contains("AS9"));
    }

    #[test]
    fn sources_chain() {
        let err: AgreementError = TopologyError::UnknownAs { asn: Asn::new(1) }.into();
        assert!(std::error::Error::source(&err).is_some());
    }
}
