//! Bit-exactness goldens for the evaluator hot path.
//!
//! The SoA pricing-lane layout (PR 8) rearranges *how* the collapse
//! loops read the dense tables without changing a single f64 operation
//! or its order. These tests pin that claim to golden digests captured
//! from the pre-SoA evaluator: every outcome of a fixed candidate set,
//! through both the per-pair evaluator and the programmed twin, hashed
//! bit-for-bit. Any re-association, reordering, or dropped term changes
//! the digest.

use pan_datasets::{InternetConfig, SyntheticInternet};
use pan_econ::{CostFunction, DenseEconomics, FlowMatrix, PricingFunction};

use crate::discovery::{
    derive_pair_transit, enumerate_candidates, evaluate_candidate, evaluate_candidate_with,
    BatchContext, CandidatePolicy, NodePrograms, PairOutcome, PairScratch,
};

/// FNV-1a over a stream of u64 words — stable, dependency-free digest.
fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for byte in w.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Every f64 an outcome carries, as raw bits in a fixed field order.
fn outcome_words(o: &PairOutcome) -> Vec<u64> {
    let mut words = vec![
        u64::from(o.x.get()),
        u64::from(o.y.get()),
        u64::from(o.peering_hops),
        o.shares.0.to_bits(),
        o.shares.1.to_bits(),
        o.segments.0 as u64,
        o.segments.1 as u64,
        o.surplus.to_bits(),
    ];
    if let Some(fv) = &o.flow_volume {
        words.extend([
            1,
            fv.reroute.to_bits(),
            fv.attract.to_bits(),
            fv.utility_x.to_bits(),
            fv.utility_y.to_bits(),
        ]);
    } else {
        words.push(0);
    }
    if let Some(c) = &o.cash {
        words.extend([
            1,
            c.reroute.to_bits(),
            c.attract.to_bits(),
            c.joint_utility.to_bits(),
            c.transfer_x_to_y.to_bits(),
        ]);
    } else {
        words.push(0);
    }
    words
}

/// A 260-AS synthetic market with deliberately mixed pricing: most
/// links pay-per-usage, a salted minority on congestion curves (the
/// nonlinear side table), a few flat-rate (linear_rate == 0), plus
/// nonlinear end-host prices and internal costs on a second salt — so
/// the goldens cover every dispatch class the SoA split handles.
fn mixed_fixture() -> (SyntheticInternet, DenseEconomics, FlowMatrix) {
    let net = SyntheticInternet::generate(
        &InternetConfig {
            num_ases: 260,
            tier1_count: 6,
            ..InternetConfig::default()
        },
        77,
    )
    .expect("fixture generates");
    let econ = DenseEconomics::build(
        &net.graph,
        |provider, customer| {
            let salt = u64::from(provider.get()) * 31 + u64::from(customer.get());
            match salt % 7 {
                0 => PricingFunction::congestion(0.02 + (salt % 5) as f64 * 0.01, 1.3).unwrap(),
                1 => PricingFunction::flat_rate(4.0).unwrap(),
                _ => PricingFunction::per_usage(1.0 + (salt % 17) as f64 * 0.25).unwrap(),
            }
        },
        |asn| {
            if asn.get() % 11 == 0 {
                PricingFunction::congestion(0.5, 1.2).unwrap()
            } else {
                PricingFunction::per_usage(2.0 + f64::from(asn.get() % 3)).unwrap()
            }
        },
        |asn| {
            if asn.get() % 13 == 0 {
                CostFunction::power_law(0.01, 1.4).unwrap()
            } else {
                CostFunction::linear(0.02 + f64::from(asn.get() % 5) * 0.01).unwrap()
            }
        },
    );
    let flows = FlowMatrix::degree_gravity(&net.graph, 0.5);
    (net, econ, flows)
}

/// Golden digest of the per-pair evaluator on the mixed fixture,
/// captured from the pre-SoA (enum-dispatch) evaluator.
const GOLDEN_PER_PAIR: u64 = 0xdefb_c264_fcde_4d76;
/// Golden digest of the programmed evaluator on the same candidates,
/// captured from the pre-SoA (enum-dispatch) evaluator.
const GOLDEN_PROGRAMMED: u64 = 0x3434_9137_c679_3dd6;

#[test]
fn per_pair_evaluator_matches_pre_soa_golden() {
    let (net, econ, flows) = mixed_fixture();
    let ctx = BatchContext::new(&net.graph, &econ, &flows).unwrap();
    let candidates = enumerate_candidates(&net.graph, CandidatePolicy::PeeringAdjacent);
    let mut scratch = PairScratch::new();
    let mut words = Vec::new();
    let mut evaluated = 0usize;
    for &pair in candidates.iter().step_by(3) {
        let outcome = evaluate_candidate(&ctx, &mut scratch, pair, 0.5, 0.2, 4).unwrap();
        words.extend(outcome_words(&outcome));
        evaluated += 1;
    }
    assert!(evaluated > 100, "fixture too small: {evaluated} pairs");
    let digest = fnv1a(words);
    assert_eq!(
        digest, GOLDEN_PER_PAIR,
        "per-pair evaluator drifted from the pre-SoA golden: 0x{digest:016x}"
    );
}

#[test]
fn programmed_evaluator_matches_pre_soa_golden() {
    let (net, econ, flows) = mixed_fixture();
    let ctx = BatchContext::new(&net.graph, &econ, &flows).unwrap();
    let candidates = enumerate_candidates(&net.graph, CandidatePolicy::PeeringAdjacent);
    let programs = NodePrograms::build(&ctx, 0.5, 0.2).unwrap();
    let mut scratch = PairScratch::new();
    let mut words = Vec::new();
    let mut evaluated = 0usize;
    for &pair in candidates.iter().step_by(3) {
        let transit = derive_pair_transit(&ctx, pair);
        let outcome =
            evaluate_candidate_with(&ctx, &programs, &transit, &mut scratch, pair, 4).unwrap();
        words.extend(outcome_words(&outcome));
        evaluated += 1;
    }
    assert!(evaluated > 100, "fixture too small: {evaluated} pairs");
    let digest = fnv1a(words);
    assert_eq!(
        digest, GOLDEN_PROGRAMMED,
        "programmed evaluator drifted from the pre-SoA golden: 0x{digest:016x}"
    );
}
