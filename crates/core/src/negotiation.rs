//! Negotiation interfaces: how two parties turn utility estimates into a
//! concluded (or cancelled) cash-compensation agreement (§V problem
//! statement).
//!
//! A [`Mechanism`] maps the parties' *claims* `v_X, v_Y` to an outcome:
//! conclude with transfer `(v_X − v_Y)/2` when `v_X + v_Y ≥ 0`, cancel
//! otherwise. The claims may be truthful ([`TruthfulMechanism`] — the
//! idealized offline negotiation between honest parties) or strategic
//! ([`ClaimedMechanism`] — each party reports whatever it likes, as in
//! unassisted bargaining). The BOSCO mechanism in the `pan-bosco` crate
//! computes *equilibrium* claims that keep the efficiency loss small.

use serde::{Deserialize, Serialize};

use crate::{AgreementError, Result};

/// The result of one bilateral negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NegotiationOutcome {
    /// The agreement is concluded.
    Concluded {
        /// Cash transfer `Π_{X→Y}` computed from the claims.
        transfer_x_to_y: f64,
        /// `X`'s true after-negotiation utility `u_X − Π`.
        utility_x_after: f64,
        /// `Y`'s true after-negotiation utility `u_Y + Π`.
        utility_y_after: f64,
    },
    /// The apparent surplus was negative; both parties walk away with 0.
    Cancelled,
}

impl NegotiationOutcome {
    /// Returns `true` if the agreement was concluded.
    #[must_use]
    pub fn is_concluded(&self) -> bool {
        matches!(self, NegotiationOutcome::Concluded { .. })
    }

    /// The realized Nash product (0 when cancelled).
    #[must_use]
    pub fn nash_product(&self) -> f64 {
        match self {
            NegotiationOutcome::Concluded {
                utility_x_after,
                utility_y_after,
                ..
            } => utility_x_after * utility_y_after,
            NegotiationOutcome::Cancelled => 0.0,
        }
    }
}

/// Resolves a negotiation from claims and true utilities: the §V
/// bargaining game. Concludes iff `v_X + v_Y ≥ 0` with transfer
/// `Π = (v_X − v_Y)/2` (Eq. 12-13 context).
///
/// # Errors
///
/// Returns [`AgreementError::InvalidUtility`] for non-finite inputs.
pub fn resolve(
    true_utility_x: f64,
    true_utility_y: f64,
    claim_x: f64,
    claim_y: f64,
) -> Result<NegotiationOutcome> {
    for v in [true_utility_x, true_utility_y, claim_y] {
        if v.is_nan() {
            return Err(AgreementError::InvalidUtility { value: v });
        }
    }
    if claim_x.is_nan() {
        return Err(AgreementError::InvalidUtility { value: claim_x });
    }
    // −∞ claims are the cancellation option and are legal.
    if claim_x + claim_y >= 0.0 {
        let transfer = (claim_x - claim_y) / 2.0;
        Ok(NegotiationOutcome::Concluded {
            transfer_x_to_y: transfer,
            utility_x_after: true_utility_x - transfer,
            utility_y_after: true_utility_y + transfer,
        })
    } else {
        Ok(NegotiationOutcome::Cancelled)
    }
}

/// A bargaining mechanism: given the parties' true utilities it produces
/// the claims each party submits.
pub trait Mechanism {
    /// The claims `(v_X, v_Y)` the two parties submit when their true
    /// utilities are `u_X` and `u_Y`.
    fn claims(&self, true_utility_x: f64, true_utility_y: f64) -> (f64, f64);

    /// Runs the full negotiation.
    ///
    /// # Errors
    ///
    /// Returns [`AgreementError::InvalidUtility`] for non-finite utilities.
    fn negotiate(&self, true_utility_x: f64, true_utility_y: f64) -> Result<NegotiationOutcome> {
        let (vx, vy) = self.claims(true_utility_x, true_utility_y);
        resolve(true_utility_x, true_utility_y, vx, vy)
    }
}

/// The idealized truthful mechanism: both parties report `v = u`.
/// Realizes the optimal Nash bargaining product for every viable
/// agreement — the benchmark against which the Price of Dishonesty is
/// measured (Eq. 20 denominator).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TruthfulMechanism;

impl Mechanism for TruthfulMechanism {
    fn claims(&self, true_utility_x: f64, true_utility_y: f64) -> (f64, f64) {
        (true_utility_x, true_utility_y)
    }
}

/// A mechanism where both parties understate their utility by fixed
/// margins — the "equal dishonesty" setting of §V-B, which still
/// optimizes the Nash product when the margins are equal and the apparent
/// surplus stays non-negative.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClaimedMechanism {
    /// Amount by which `X` understates its utility.
    pub understatement_x: f64,
    /// Amount by which `Y` understates its utility.
    pub understatement_y: f64,
}

impl Mechanism for ClaimedMechanism {
    fn claims(&self, true_utility_x: f64, true_utility_y: f64) -> (f64, f64) {
        (
            true_utility_x - self.understatement_x,
            true_utility_y - self.understatement_y,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn truthful_negotiation_concludes_viable_agreements() {
        let outcome = TruthfulMechanism.negotiate(10.0, -4.0).unwrap();
        match outcome {
            NegotiationOutcome::Concluded {
                utility_x_after,
                utility_y_after,
                ..
            } => {
                assert!((utility_x_after - 3.0).abs() < 1e-12);
                assert!((utility_y_after - 3.0).abs() < 1e-12);
            }
            NegotiationOutcome::Cancelled => panic!("viable agreement cancelled"),
        }
    }

    #[test]
    fn truthful_negotiation_cancels_unviable_agreements() {
        assert_eq!(
            TruthfulMechanism.negotiate(1.0, -4.0).unwrap(),
            NegotiationOutcome::Cancelled
        );
    }

    #[test]
    fn dishonesty_shifts_the_transfer() {
        // X understates by 4: claims 6 instead of 10 → transfer drops.
        let honest = TruthfulMechanism.negotiate(10.0, 2.0).unwrap();
        let shaded = ClaimedMechanism {
            understatement_x: 4.0,
            understatement_y: 0.0,
        }
        .negotiate(10.0, 2.0)
        .unwrap();
        let (
            NegotiationOutcome::Concluded {
                utility_x_after: hx,
                ..
            },
            NegotiationOutcome::Concluded {
                utility_x_after: sx,
                ..
            },
        ) = (honest, shaded)
        else {
            panic!("both should conclude");
        };
        assert!(sx > hx, "understating improves X's cut ({sx} vs {hx})");
    }

    #[test]
    fn mutual_overshading_breaks_negotiation() {
        // Both understate by 4; apparent surplus 10+2−8 = 4 ≥ 0 still OK…
        let outcome = ClaimedMechanism {
            understatement_x: 4.0,
            understatement_y: 4.0,
        }
        .negotiate(10.0, 2.0)
        .unwrap();
        assert!(outcome.is_concluded());
        // …but understating by 7 each pushes the apparent surplus below 0.
        let outcome = ClaimedMechanism {
            understatement_x: 7.0,
            understatement_y: 7.0,
        }
        .negotiate(10.0, 2.0)
        .unwrap();
        assert_eq!(outcome, NegotiationOutcome::Cancelled);
    }

    #[test]
    fn negative_infinity_claim_cancels() {
        let outcome = resolve(5.0, 5.0, f64::NEG_INFINITY, 5.0).unwrap();
        assert_eq!(outcome, NegotiationOutcome::Cancelled);
    }

    #[test]
    fn nan_claims_are_rejected() {
        assert!(resolve(1.0, 1.0, f64::NAN, 0.0).is_err());
        assert!(resolve(f64::NAN, 1.0, 0.0, 0.0).is_err());
    }

    proptest! {
        /// §V-B: equal dishonesty preserves the optimal Nash product as
        /// long as the apparent surplus stays non-negative.
        #[test]
        fn equal_dishonesty_preserves_nash_product(
            ux in 0.0..50.0f64,
            uy in 0.0..50.0f64,
            shade in 0.0..10.0f64,
        ) {
            prop_assume!(ux + uy - 2.0 * shade >= 0.0);
            let honest = TruthfulMechanism.negotiate(ux, uy).unwrap();
            let shaded = ClaimedMechanism {
                understatement_x: shade,
                understatement_y: shade,
            }
            .negotiate(ux, uy)
            .unwrap();
            prop_assert!((honest.nash_product() - shaded.nash_product()).abs() < 1e-6);
        }

        /// Transfers never manufacture utility: the after-negotiation sum
        /// equals the true surplus whenever the agreement concludes.
        #[test]
        fn conclusion_conserves_surplus(
            ux in -50.0..50.0f64,
            uy in -50.0..50.0f64,
            vx in -50.0..50.0f64,
            vy in -50.0..50.0f64,
        ) {
            if let NegotiationOutcome::Concluded { utility_x_after, utility_y_after, .. } =
                resolve(ux, uy, vx, vy).unwrap()
            {
                prop_assert!(((utility_x_after + utility_y_after) - (ux + uy)).abs() < 1e-9);
            }
        }
    }
}
