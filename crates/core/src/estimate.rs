//! Utility-distribution estimation for mechanism-assisted negotiation
//! (§V-C1).
//!
//! The BOSCO service "does not know the true utility … but can estimate a
//! utility distribution, … on the basis of heuristics, taking standard
//! transit and network-equipment prices into account". This module
//! implements that estimation step: given an [`AgreementScenario`] built
//! from *standard* (public) prices, it evaluates the utility a party
//! could derive across the whole operating-point box and widens the range
//! by an uncertainty factor reflecting how far the party's private costs
//! may deviate from the standard assumptions.
//!
//! The result is a `[lo, hi]` interval per party, ready to be turned into
//! a `pan_bosco::UtilityDistribution::uniform(lo, hi)`.

use serde::{Deserialize, Serialize};

use crate::utility::{evaluate, OperatingPoint};
use crate::{AgreementError, AgreementScenario, Result};

/// An estimated utility range for one agreement party.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilityRange {
    /// Lower bound of the plausible utility.
    pub lo: f64,
    /// Upper bound of the plausible utility.
    pub hi: f64,
}

impl UtilityRange {
    /// Width of the range.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint of the range.
    #[must_use]
    pub fn midpoint(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }

    /// Returns `true` if `utility` lies inside the range.
    #[must_use]
    pub fn contains(&self, utility: f64) -> bool {
        (self.lo..=self.hi).contains(&utility)
    }
}

/// Estimated utility ranges for both agreement parties.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilityEstimate {
    /// Range for party `X`.
    pub x: UtilityRange,
    /// Range for party `Y`.
    pub y: UtilityRange,
}

/// Estimates the utility ranges of both parties by sweeping a coarse grid
/// of operating points under the scenario's (standard-price) business
/// model and widening the observed span by `uncertainty`.
///
/// `uncertainty = 0.25` means the private true utility may lie 25% of the
/// observed span beyond either end — covering deviations of the party's
/// private transit contracts and internal costs from the standard prices
/// the estimator used. `grid` is the number of samples per axis of the
/// (reroute, attract) sweep.
///
/// # Errors
///
/// Returns [`AgreementError::InvalidFraction`] for a negative or
/// non-finite `uncertainty`, and propagates evaluation errors.
pub fn estimate_utility_ranges(
    scenario: &AgreementScenario<'_>,
    grid: usize,
    uncertainty: f64,
) -> Result<UtilityEstimate> {
    if !uncertainty.is_finite() || uncertainty < 0.0 {
        return Err(AgreementError::InvalidFraction { value: uncertainty });
    }
    let grid = grid.max(2);
    let n = scenario.dimension();
    let mut min_x = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for i in 0..grid {
        let reroute = i as f64 / (grid - 1) as f64;
        for j in 0..grid {
            let attract = j as f64 / (grid - 1) as f64;
            let point = OperatingPoint::uniform(n, reroute, attract)?;
            let eval = evaluate(scenario, &point)?;
            min_x = min_x.min(eval.utility_x);
            max_x = max_x.max(eval.utility_x);
            min_y = min_y.min(eval.utility_y);
            max_y = max_y.max(eval.utility_y);
        }
    }
    let widen = |lo: f64, hi: f64| {
        let span = (hi - lo).max(1e-6);
        UtilityRange {
            lo: lo - uncertainty * span,
            hi: hi + uncertainty * span,
        }
    };
    Ok(UtilityEstimate {
        x: widen(min_x, max_x),
        y: widen(min_y, max_y),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::tests::{baselines, eq6_agreement, fig1_model};
    use crate::AgreementScenario;

    fn scenario(model: &pan_econ::BusinessModel) -> AgreementScenario<'_> {
        let (fd, fe) = baselines();
        AgreementScenario::with_default_opportunities(model, eq6_agreement(), fd, fe, 0.6, 0.4)
            .unwrap()
    }

    #[test]
    fn ranges_cover_actual_utilities() {
        let m = fig1_model();
        let s = scenario(&m);
        let estimate = estimate_utility_ranges(&s, 5, 0.25).unwrap();
        // Every evaluated point's utilities must be inside the ranges.
        for i in 0..4 {
            for j in 0..4 {
                let point =
                    OperatingPoint::uniform(s.dimension(), i as f64 / 3.0, j as f64 / 3.0).unwrap();
                let eval = evaluate(&s, &point).unwrap();
                assert!(
                    estimate.x.contains(eval.utility_x) || eval.utility_x.abs() < 1e-9,
                    "u_x {} outside [{}, {}]",
                    eval.utility_x,
                    estimate.x.lo,
                    estimate.x.hi
                );
                assert!(estimate.y.contains(eval.utility_y) || eval.utility_y.abs() < 1e-9);
            }
        }
    }

    #[test]
    fn uncertainty_widens_the_range() {
        let m = fig1_model();
        let s = scenario(&m);
        let tight = estimate_utility_ranges(&s, 4, 0.0).unwrap();
        let wide = estimate_utility_ranges(&s, 4, 0.5).unwrap();
        assert!(wide.x.width() > tight.x.width());
        assert!(wide.y.width() > tight.y.width());
        assert!(wide.x.lo <= tight.x.lo && wide.x.hi >= tight.x.hi);
    }

    #[test]
    fn ranges_include_zero_for_zero_point() {
        // The zero operating point yields zero utility, so the widened
        // range always straddles (or touches) zero.
        let m = fig1_model();
        let s = scenario(&m);
        let estimate = estimate_utility_ranges(&s, 4, 0.1).unwrap();
        assert!(estimate.x.lo <= 0.0 && estimate.x.hi >= 0.0);
        assert!(estimate.y.lo <= 0.0 && estimate.y.hi >= 0.0);
    }

    #[test]
    fn invalid_uncertainty_is_rejected() {
        let m = fig1_model();
        let s = scenario(&m);
        assert!(estimate_utility_ranges(&s, 4, -0.1).is_err());
        assert!(estimate_utility_ranges(&s, 4, f64::NAN).is_err());
    }

    #[test]
    fn range_helpers() {
        let r = UtilityRange { lo: -1.0, hi: 3.0 };
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.midpoint(), 1.0);
        assert!(r.contains(0.0));
        assert!(!r.contains(4.0));
    }
}
