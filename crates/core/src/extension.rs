//! Extension of agreement paths (§III-B3).
//!
//! A path segment created by one agreement can itself become the subject
//! of another: in the paper's example, after `a = [D(↑{A}); E(↑{B}, →{F})]`
//! creates segment `E–D–A`, AS `E` can offer `F` access to that segment in
//! a follow-up agreement `a′`. The follow-up is *interdependent* with the
//! base agreement: traffic admitted under `a′` consumes base-agreement
//! allowance, so `a′` must be negotiated such that the base targets can
//! still be respected.

use serde::{Deserialize, Serialize};

use pan_topology::Asn;

use crate::utility::SegmentTarget;
use crate::{AgreementError, NewSegment, Result};

/// An extension offer: `grantor` (a party of the base agreement) offers
/// `new_partner` access to a base-agreement segment, extending it by one
/// hop at the front.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathExtension {
    /// The party of the base agreement making the offer.
    pub grantor: Asn,
    /// The AS gaining access to the extended path.
    pub new_partner: Asn,
    /// The base-agreement segment being extended (the grantor must be its
    /// beneficiary).
    pub base_segment: NewSegment,
    /// Flow allowance granted to the new partner on the extended path.
    pub allowance: f64,
}

impl PathExtension {
    /// Creates an extension offer.
    ///
    /// # Errors
    ///
    /// - [`AgreementError::InvalidGrant`] if the grantor is not the
    ///   beneficiary of the base segment, or the new partner already
    ///   appears on the segment.
    /// - [`AgreementError::InvalidFraction`] for a negative or non-finite
    ///   allowance.
    pub fn new(
        grantor: Asn,
        new_partner: Asn,
        base_segment: NewSegment,
        allowance: f64,
    ) -> Result<Self> {
        if base_segment.beneficiary != grantor {
            return Err(AgreementError::InvalidGrant {
                grantor,
                target: base_segment.target,
                reason: "only the beneficiary of a segment may extend it".to_owned(),
            });
        }
        if new_partner == base_segment.via
            || new_partner == base_segment.target
            || new_partner == grantor
        {
            return Err(AgreementError::InvalidGrant {
                grantor,
                target: new_partner,
                reason: "the new partner must not already be on the segment".to_owned(),
            });
        }
        if !allowance.is_finite() || allowance < 0.0 {
            return Err(AgreementError::InvalidFraction { value: allowance });
        }
        Ok(PathExtension {
            grantor,
            new_partner,
            base_segment,
            allowance,
        })
    }

    /// The extended AS-level path `new_partner → grantor → via → target`.
    #[must_use]
    pub fn extended_path(&self) -> [Asn; 4] {
        [
            self.new_partner,
            self.grantor,
            self.base_segment.via,
            self.base_segment.target,
        ]
    }
}

/// Checks the interdependency constraint of §III-B3: the combined usage
/// of a base segment — the grantor's own traffic plus all extension
/// allowances — must stay within the base agreement's flow-volume target.
///
/// `own_usage` is the grantor's planned traffic on the segment;
/// `extensions` are the extensions sold on that same segment.
///
/// # Errors
///
/// Returns [`AgreementError::InvalidFraction`] for negative or non-finite
/// `own_usage`.
pub fn respects_base_target(
    base_target: &SegmentTarget,
    own_usage: f64,
    extensions: &[PathExtension],
) -> Result<bool> {
    if !own_usage.is_finite() || own_usage < 0.0 {
        return Err(AgreementError::InvalidFraction { value: own_usage });
    }
    let extension_total: f64 = extensions
        .iter()
        .filter(|e| e.base_segment == base_target.segment)
        .map(|e| e.allowance)
        .sum();
    Ok(own_usage + extension_total <= base_target.total_allowance + 1e-9)
}

/// The largest allowance that can still be sold on a base segment given
/// the grantor's own usage and previously sold extensions.
#[must_use]
pub fn remaining_allowance(
    base_target: &SegmentTarget,
    own_usage: f64,
    extensions: &[PathExtension],
) -> f64 {
    let used: f64 = extensions
        .iter()
        .filter(|e| e.base_segment == base_target.segment)
        .map(|e| e.allowance)
        .sum::<f64>()
        + own_usage.max(0.0);
    (base_target.total_allowance - used).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pan_topology::fixtures::asn;
    use pan_topology::NeighborKind;

    /// The paper's example: segment E–D–A created by agreement `a`,
    /// extended to F by agreement `a′`.
    fn eda_segment() -> NewSegment {
        NewSegment {
            beneficiary: asn('E'),
            via: asn('D'),
            target: asn('A'),
            target_role: NeighborKind::Provider,
        }
    }

    fn target(total: f64) -> SegmentTarget {
        SegmentTarget {
            segment: eda_segment(),
            total_allowance: total,
            attracted_allowance: 0.0,
        }
    }

    #[test]
    fn paper_example_extension() {
        let ext = PathExtension::new(asn('E'), asn('F'), eda_segment(), 5.0).unwrap();
        assert_eq!(
            ext.extended_path(),
            [asn('F'), asn('E'), asn('D'), asn('A')]
        );
    }

    #[test]
    fn only_beneficiary_may_extend() {
        assert!(matches!(
            PathExtension::new(asn('D'), asn('F'), eda_segment(), 5.0),
            Err(AgreementError::InvalidGrant { .. })
        ));
    }

    #[test]
    fn partner_must_be_off_segment() {
        for on_path in ['D', 'A', 'E'] {
            assert!(
                PathExtension::new(asn('E'), asn(on_path), eda_segment(), 5.0).is_err(),
                "{on_path} is already on the segment"
            );
        }
    }

    #[test]
    fn negative_allowance_rejected() {
        assert!(PathExtension::new(asn('E'), asn('F'), eda_segment(), -1.0).is_err());
        assert!(PathExtension::new(asn('E'), asn('F'), eda_segment(), f64::NAN).is_err());
    }

    #[test]
    fn interdependency_constraint() {
        let base = target(10.0);
        let ext = PathExtension::new(asn('E'), asn('F'), eda_segment(), 4.0).unwrap();
        assert!(respects_base_target(&base, 5.0, std::slice::from_ref(&ext)).unwrap());
        assert!(!respects_base_target(&base, 7.0, &[ext]).unwrap());
    }

    #[test]
    fn unrelated_extensions_do_not_count() {
        let base = target(10.0);
        let other_segment = NewSegment {
            beneficiary: asn('E'),
            via: asn('D'),
            target: asn('C'),
            target_role: NeighborKind::Peer,
        };
        let ext = PathExtension::new(asn('E'), asn('F'), other_segment, 100.0).unwrap();
        assert!(respects_base_target(&base, 5.0, &[ext]).unwrap());
    }

    #[test]
    fn remaining_allowance_computation() {
        let base = target(10.0);
        let ext = PathExtension::new(asn('E'), asn('F'), eda_segment(), 4.0).unwrap();
        assert!((remaining_allowance(&base, 3.0, &[ext]) - 3.0).abs() < 1e-12);
        assert_eq!(remaining_allowance(&base, 20.0, &[]), 0.0);
    }

    #[test]
    fn invalid_own_usage_rejected() {
        let base = target(10.0);
        assert!(respects_base_target(&base, -1.0, &[]).is_err());
    }
}
