//! Multi-round agreement adoption dynamics: the market evolution of the
//! interconnection economy.
//!
//! The [`discovery`](crate::discovery) engine answers a *static*
//! question: which pairs profit from a mutuality agreement on today's
//! topology. This module iterates that question until it stops having
//! interesting answers — the codebase's first closed-loop workload:
//!
//! 1. **Discover**: run the batch evaluation over every candidate pair of
//!    the current [`MarketState`] (skipping pairs that already hold an
//!    agreement).
//! 2. **Adopt**: take the top-K party-disjoint outcomes with positive
//!    NBS surplus (an AS negotiates at most one agreement per round) and
//!    *materialize* them — the Eq. (9) flow volumes move into the
//!    [`FlowMatrix`] (provider traffic reroutes onto the new segments,
//!    attracted demand appears, the partner transits the whole volume),
//!    the Eq. (10)–(11) NBS transfer lands on the parties' cash ledgers,
//!    and a prospective (k-hop) pair first registers its new peering link
//!    in the graph/CSR layer.
//! 3. **Perturb** (optional): shock the market between rounds — traffic
//!    drift per link, transit-price shocks, peering-link failures — so
//!    the equilibrium keeps moving.
//! 4. Repeat until **fixed point** (an unshocked round adopts nothing:
//!    no adoptable surplus remains) or a round cap.
//!
//! Every random draw derives from the sweep's master seed: round `i`
//! draws its own ChaCha sub-seed as the `i`-th draw of the coordinator
//! stream, candidate evaluations use the round's per-item streams, and
//! perturbations use the round's coordinator stream — so an evolution
//! run is bit-identical at any thread count, like everything else built
//! on [`ScenarioSweep`].
//!
//! The loop itself lives in the resumable [`EvolutionDriver`]: rounds
//! can be stepped one at a time (the serving layer's `step` verb),
//! checkpointed into a versioned [`MarketSnapshot`], and restored to
//! continue the exact trajectory — the round counter is the only RNG
//! state, so a restored run re-derives the same sub-seed sequence an
//! uninterrupted one would. [`advise`] answers the per-AS version of
//! the discovery question on a resident state without a full sweep.
//!
//! Adoption re-evaluates each chosen pair against the *current* state
//! (earlier adoptions in the same round may have consumed its
//! opportunity) using the outcome's recorded
//! [`shares`](PairOutcome::shares), and skips it when the refreshed
//! surplus no longer clears the threshold. Because an adopted pair is
//! excluded from later rounds and adoption drains the rerouting
//! opportunity it was priced on, an unshocked evolution provably
//! terminates: each round either adopts a never-before-adopted pair or
//! reaches the fixed point.
//!
//! # Discovery engines: full resweep vs incremental
//!
//! A driver steps with one of two [`Engine`]s. [`Engine::Full`]
//! re-evaluates every non-adopted candidate each round — the reference
//! implementation. [`Engine::Incremental`] re-evaluates only candidates
//! whose inputs changed, which on a large static-graph market is a small
//! fraction of the candidate set per round. Both produce **byte-identical
//! trajectories at any thread count**; the full engine stays the
//! equivalence oracle the differential test suite compares against.
//!
//! ## Dirty-set semantics
//!
//! A candidate evaluation reads only the two endpoint ASes' dense-table
//! rows (adjacency, pricing entries, flow entries, row totals), so the
//! state tracks changes at row granularity in a [`pan_econ::DirtyRows`]
//! journal:
//!
//! - every flow/price mutation of adoption goes through the dense
//!   tables' `*_tracked` hooks, marking the mutated row;
//! - [`MarketState::adopt_outcome`] additionally marks both parties
//!   (covering the graph-row change of a new peering link and the
//!   adopted-set change);
//! - a perturbation pass marks **all** rows — its traffic-drift pass
//!   genuinely touches every row, so shocked rounds are full resweeps by
//!   construction, not by approximation;
//! - a freshly built, cloned, or restored state starts all-dirty: a
//!   consumer that has never drained the journal has never seen any row.
//!
//! A pair is re-evaluated when either endpoint is dirty. Over-marking is
//! always sound (a clean re-evaluation reproduces the cached outcome bit
//! for bit); **under**-marking is the only way to break equivalence, so
//! every mutation path above errs conservative.
//!
//! ## Heap determinism contract
//!
//! The incremental engine keeps evaluated candidates in a persistent
//! max-heap ordered exactly like the discovery report ranking — surplus
//! descending under [`f64::total_cmp`], ties by ascending ASN pair — with
//! lazy invalidation: re-evaluating a pair pushes a new entry under a
//! bumped generation, and superseded entries are dropped when popped.
//! Round aggregates (candidate counts, `discovered_surplus`) are
//! re-summed in enumeration order rather than updated with deltas, so
//! f64 summation order matches the full engine's. The crate-private
//! `incremental` module documents the full exactness argument.
//! Per-pair share jitter ([`DiscoveryConfig::noise`] `> 0`) makes
//! outcomes depend on sweep-stream positions rather than rows alone, so
//! those configurations silently run the full path.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use pan_econ::{DenseEconomics, DirtyDrain, DirtyRows, FlowMatrix};
use pan_runtime::{ScenarioSweep, ThreadPool};
use pan_topology::{AsGraph, Asn, NeighborKind};

use crate::discovery::{
    collect_targets, derive_pair_transit, enumerate_candidates_for, evaluate_candidate,
    evaluate_candidate_with, BatchContext, CandidatePair, DiscoveryConfig, DiscoveryReport,
    NodePrograms, PairOutcome, PairScratch, PairTransit, CANDIDATE_TILE,
};
use crate::incremental::{ensure, refresh_enumeration, EnumerationCache, IncrementalState};
use crate::{AgreementError, Result};

/// Monotonic source of [`MarketState`] identity tokens: the caches on an
/// [`EvolutionDriver`] describe *one specific state*, and the token is
/// how they recognize it. Fresh on every construction, restore, and
/// clone, so a driver pointed at a different (or copied) state rebuilds
/// its caches instead of trusting stale ones.
static NEXT_STATE_TOKEN: AtomicU64 = AtomicU64::new(1);

fn next_state_token() -> u64 {
    NEXT_STATE_TOKEN.fetch_add(1, Ordering::Relaxed)
}

/// The evolving market: a topology with its dense economic tables, the
/// set of adopted agreements, and the parties' cumulative cash ledger.
///
/// The state owns its tables — adoption mutates flows (and, for
/// prospective pairs, the graph itself), so the borrowed
/// [`BatchContext`] of the static engine cannot express it.
#[derive(Debug)]
pub struct MarketState {
    graph: AsGraph,
    econ: DenseEconomics,
    flows: FlowMatrix,
    /// Cumulative NBS transfers per dense node index: positive = net
    /// receiver of compensation.
    cash: Vec<f64>,
    /// Adopted pairs by dense node index (`x < y`). Never iterated —
    /// membership tests only, so the hash order cannot leak into
    /// results.
    adopted: HashSet<(u32, u32)>,
    /// Row-granular change journal feeding the incremental discovery
    /// engine; see the [module docs](self) for the marking rules. Not
    /// part of any wire format — a restored state starts all-dirty.
    dirty: DirtyRows,
    /// Identity token the driver-side caches key on; fresh per
    /// construction/clone (see [`NEXT_STATE_TOKEN`]).
    token: u64,
    /// Bumped whenever adoption registers a new peering link — the
    /// enumeration-cache invalidation signal.
    graph_version: u64,
    /// Bumped whenever a pricing table mutates (perturbation price
    /// shocks) — the invalidation signal for caches derived from
    /// pricing but not flows (the incremental engine's per-pair transit
    /// structures). Flow mutations never bump it.
    pricing_epoch: u64,
    /// Coarse market revision: bumped on every adoption and every
    /// perturbation pass (which covers traffic drift, price shocks —
    /// i.e. pricing-epoch changes — and link failures). The serving
    /// layer keys its per-AS advise cache on this counter; see
    /// [`generation`](Self::generation) for the contract.
    generation: u64,
    /// Reusable adoption buffers — see [`AdoptScratch`]. Pure scratch:
    /// never serialized, never compared, reset-by-default on clone.
    adopt_scratch: AdoptScratch,
}

/// Reusable buffers for [`MarketState::adopt_outcome`] /
/// `materialize`, so the K adoptions of a round allocate nothing after
/// the first. Contents are dead between calls — every user clears or
/// overwrites before reading — so carrying them across rounds (or
/// losing them on an error path) cannot affect results.
#[derive(Debug, Default)]
struct AdoptScratch {
    /// Evaluator scratch for the adoption-time re-evaluation.
    eval: PairScratch,
    /// Per-AS flow totals buffer lent to [`BatchContext`].
    totals: Vec<f64>,
    /// `(node, packed position, delta)` staging of `materialize`.
    deltas: Vec<(u32, usize, f64)>,
    /// Grant-target positions buffer of `materialize`.
    targets: Vec<u32>,
}

impl AdoptScratch {
    /// Bytes resident in the adoption buffers.
    fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.eval.resident_bytes()
            + self.totals.capacity() * size_of::<f64>()
            + self.deltas.capacity() * size_of::<(u32, usize, f64)>()
            + self.targets.capacity() * size_of::<u32>()
    }
}

impl Clone for MarketState {
    /// Clones the market. The clone gets a fresh identity token and an
    /// all-dirty journal: driver caches built against the original must
    /// not be trusted for the copy, and treating every row as changed is
    /// always sound.
    fn clone(&self) -> Self {
        MarketState {
            graph: self.graph.clone(),
            econ: self.econ.clone(),
            flows: self.flows.clone(),
            cash: self.cash.clone(),
            adopted: self.adopted.clone(),
            dirty: DirtyRows::new(self.graph.node_count()),
            token: next_state_token(),
            graph_version: self.graph_version,
            pricing_epoch: self.pricing_epoch,
            generation: self.generation,
            adopt_scratch: AdoptScratch::default(),
        }
    }
}

impl MarketState {
    /// Builds the initial state, checking that the tables match the
    /// graph shape.
    ///
    /// # Errors
    ///
    /// Returns [`AgreementError::DimensionMismatch`] if `econ` or
    /// `flows` were built from a different graph.
    pub fn new(graph: AsGraph, econ: DenseEconomics, flows: FlowMatrix) -> Result<Self> {
        for actual in [econ.node_count(), flows.node_count()] {
            if actual != graph.node_count() {
                return Err(AgreementError::DimensionMismatch {
                    expected: graph.node_count(),
                    actual,
                });
            }
        }
        let cash = vec![0.0; graph.node_count()];
        let dirty = DirtyRows::new(graph.node_count());
        Ok(MarketState {
            graph,
            econ,
            flows,
            cash,
            adopted: HashSet::new(),
            dirty,
            token: next_state_token(),
            graph_version: 0,
            pricing_epoch: 0,
            generation: 0,
            adopt_scratch: AdoptScratch::default(),
        })
    }

    /// Builds the standard resident market from any source graph: the
    /// shared [`pan_econ::market::standard_tables`] economy (tier-aware
    /// rates, degree-gravity flows at scale 1) assembled into a state.
    ///
    /// This is the one market constructor `evolve`, `serve`, the bench
    /// harness, and the tests share, so a market built from a synthetic
    /// generator run and one built from a real-internet snapshot differ
    /// only in the graph and the tier classifier.
    ///
    /// # Errors
    ///
    /// Returns [`AgreementError::DimensionMismatch`] only if the shared
    /// table synthesis produced mis-shaped tables (i.e. never, absent a
    /// bug in `pan-econ`).
    pub fn standard(
        graph: AsGraph,
        tier_of: impl Fn(pan_topology::Asn) -> pan_econ::MarketTier,
    ) -> Result<Self> {
        let (econ, flows) = pan_econ::market::standard_tables(&graph, tier_of, 1.0);
        Self::new(graph, econ, flows)
    }

    /// Reassembles a state from its serialized parts (the checkpoint
    /// path, used by [`MarketSnapshot::restore`]): shape-checks the
    /// tables like [`new`](Self::new), and additionally validates the
    /// ledger (finite balances) and the adopted set (normalized `x < y`
    /// in-range pairs without duplicates).
    ///
    /// # Errors
    ///
    /// Returns [`AgreementError::DimensionMismatch`] for mis-shaped
    /// tables and [`AgreementError::Snapshot`] for an invalid ledger or
    /// adopted set.
    pub fn from_parts(
        graph: AsGraph,
        econ: DenseEconomics,
        flows: FlowMatrix,
        cash: Vec<f64>,
        adopted: Vec<(u32, u32)>,
    ) -> Result<Self> {
        let n = graph.node_count();
        for actual in [econ.node_count(), flows.node_count(), cash.len()] {
            if actual != n {
                return Err(AgreementError::DimensionMismatch {
                    expected: n,
                    actual,
                });
            }
        }
        for &balance in &cash {
            if !balance.is_finite() {
                return Err(AgreementError::Snapshot {
                    reason: format!("non-finite cash balance {balance}"),
                });
            }
        }
        let mut set = HashSet::with_capacity(adopted.len());
        for &(x, y) in &adopted {
            if x >= y || y >= n as u32 {
                return Err(AgreementError::Snapshot {
                    reason: format!("adopted pair ({x}, {y}) is not a normalized node-index pair"),
                });
            }
            if !set.insert((x, y)) {
                return Err(AgreementError::Snapshot {
                    reason: format!("adopted pair ({x}, {y}) appears twice"),
                });
            }
        }
        let dirty = DirtyRows::new(graph.node_count());
        Ok(MarketState {
            graph,
            econ,
            flows,
            cash,
            adopted: set,
            dirty,
            token: next_state_token(),
            graph_version: 0,
            pricing_epoch: 0,
            generation: 0,
            adopt_scratch: AdoptScratch::default(),
        })
    }

    /// Identity token of this state instance; driver-side caches use it
    /// to recognize the state they were built against.
    pub(crate) fn cache_token(&self) -> u64 {
        self.token
    }

    /// Topology revision: bumped when adoption registers a new peering
    /// link, invalidating cached candidate enumerations.
    pub(crate) fn graph_version(&self) -> u64 {
        self.graph_version
    }

    /// Pricing revision: bumped whenever a pricing table mutates; see
    /// the field docs.
    pub(crate) fn pricing_epoch(&self) -> u64 {
        self.pricing_epoch
    }

    /// Coarse market revision for result caches (the serving layer's
    /// per-AS advise cache): bumped by every successful
    /// [`adopt_outcome`](Self::adopt_outcome) and every perturbation
    /// pass of [`EvolutionDriver::step`] — i.e. whenever a cached
    /// discovery answer computed on this state could change.
    ///
    /// The counter is **per state instance**: a clone inherits the
    /// current value and a restored checkpoint starts at 0, so caches
    /// must be dropped together with the instance they were built
    /// against (equality of `generation` across instances means
    /// nothing).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Takes the accumulated dirty-row journal (and resets it).
    pub(crate) fn drain_dirty(&mut self) -> DirtyDrain {
        self.dirty.drain()
    }

    /// Conservatively flags every row as changed.
    pub(crate) fn mark_all_dirty(&mut self) {
        self.dirty.mark_all();
    }

    /// `true` if `node`'s row changed since the last drain.
    #[cfg(test)]
    pub(crate) fn is_dirty_row(&self, node: u32) -> bool {
        self.dirty.is_dirty(node)
    }

    /// The current topology (grows a peering link per adopted
    /// prospective pair).
    #[must_use]
    pub fn graph(&self) -> &AsGraph {
        &self.graph
    }

    /// The current dense pricing tables.
    #[must_use]
    pub fn econ(&self) -> &DenseEconomics {
        &self.econ
    }

    /// The current dense flows.
    #[must_use]
    pub fn flows(&self) -> &FlowMatrix {
        &self.flows
    }

    /// Cumulative NBS cash balance of the AS at dense index `node`
    /// (positive = net receiver).
    #[must_use]
    pub fn cash_balance(&self, node: u32) -> f64 {
        self.cash[node as usize]
    }

    /// Number of agreements adopted so far.
    #[must_use]
    pub fn adopted_count(&self) -> usize {
        self.adopted.len()
    }

    /// `true` if the pair (by dense node index, either order) already
    /// holds an adopted agreement.
    #[must_use]
    pub fn is_adopted(&self, a: u32, b: u32) -> bool {
        self.adopted.contains(&(a.min(b), a.max(b)))
    }

    /// Approximate bytes the state keeps resident: the topology, the
    /// dense pricing/flow tables (including their SoA lanes), the cash
    /// ledger, the adopted set, the dirty journal, and the adoption
    /// scratch. Computed from actual container capacities — the serving
    /// layer's `stats` verb and the scale benchmarks report this.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.graph.resident_bytes()
            + self.econ.resident_bytes()
            + self.flows.resident_bytes()
            + self.cash.capacity() * size_of::<f64>()
            + self.adopted.capacity() * (size_of::<(u32, u32)>() + size_of::<u64>())
            + self.dirty.resident_bytes()
            + self.adopt_scratch.resident_bytes()
    }

    /// The adopted pairs as a **sorted** list of normalized node-index
    /// pairs — the canonical order every serialization uses, so the hash
    /// set's iteration order can never leak into a wire format.
    #[must_use]
    pub fn adopted_pairs(&self) -> Vec<(u32, u32)> {
        let mut pairs: Vec<(u32, u32)> = self.adopted.iter().copied().collect();
        pairs.sort_unstable();
        pairs
    }

    /// Adopts one discovered outcome if it still clears `min_surplus` on
    /// the **current** state: re-evaluates the pair with the outcome's
    /// recorded shares, registers the peering link for prospective
    /// pairs, materializes the cash-optimal flow volumes, and books the
    /// NBS transfer. Returns `None` (without mutating the state) when
    /// the pair is already adopted or its refreshed surplus no longer
    /// qualifies.
    ///
    /// # Errors
    ///
    /// Propagates evaluation, remapping, and topology errors; rejects a
    /// non-finite or negative `min_surplus`.
    pub fn adopt_outcome(
        &mut self,
        outcome: &PairOutcome,
        grid: usize,
        min_surplus: f64,
        round: usize,
    ) -> Result<Option<AdoptedAgreement>> {
        if !min_surplus.is_finite() || min_surplus < 0.0 {
            return Err(AgreementError::InvalidFraction { value: min_surplus });
        }
        let (i, j) = (
            self.graph.index_of(outcome.x)?,
            self.graph.index_of(outcome.y)?,
        );
        let (x, y) = (i.min(j), i.max(j));
        if self.adopted.contains(&(x, y)) {
            return Ok(None);
        }
        // Re-evaluate against the current tables: adoptions earlier in
        // the round may have consumed this pair's opportunity. The
        // context borrows the scratch totals buffer (returned below) and
        // the evaluator its scratch, so repeated adoptions allocate
        // nothing here.
        let fresh = {
            let totals = std::mem::take(&mut self.adopt_scratch.totals);
            let ctx =
                BatchContext::with_totals_buffer(&self.graph, &self.econ, &self.flows, totals)?;
            let pair = CandidatePair {
                x,
                y,
                peering_hops: outcome.peering_hops,
            };
            let evaluated = evaluate_candidate(
                &ctx,
                &mut self.adopt_scratch.eval,
                pair,
                outcome.shares.0,
                outcome.shares.1,
                grid,
            );
            self.adopt_scratch.totals = ctx.into_totals_buffer();
            evaluated?
        };
        let Some(cash) = fresh.cash else {
            return Ok(None);
        };
        if cash.joint_utility <= min_surplus {
            return Ok(None);
        }
        // Prospective partners first establish settlement-free peering:
        // the new link lands in the CSR layer and the dense tables are
        // remapped onto the extended shape (indices are preserved).
        let new_link = !self.graph.has_neighbor_kind(x, y, NeighborKind::Peer);
        if new_link {
            let next = self.graph.with_added_peering_links(&[(x, y)])?;
            self.econ = self.econ.remapped(&self.graph, &next)?;
            self.flows = self.flows.remapped(&self.graph, &next)?;
            self.graph = next;
            // Remapping is index-stable and only the parties' rows gain a
            // slot, but cached enumerations are now stale.
            self.graph_version += 1;
        }
        // The parties' rows change by construction (new adjacency entry
        // and/or the peering-link volume below); mark them even when the
        // materialized deltas happen to vanish.
        self.dirty.mark(x);
        self.dirty.mark(y);
        self.materialize(x, y, outcome.shares, (cash.reroute, cash.attract));
        // Eq. (10)–(11): X pays Π_{X→Y} to Y (negative = Y pays X).
        self.cash[x as usize] -= cash.transfer_x_to_y;
        self.cash[y as usize] += cash.transfer_x_to_y;
        self.adopted.insert((x, y));
        self.generation += 1;
        Ok(Some(AdoptedAgreement {
            round,
            x: self.graph.asn_at(x),
            y: self.graph.asn_at(y),
            peering_hops: outcome.peering_hops,
            new_link,
            shares: outcome.shares,
            reroute: cash.reroute,
            attract: cash.attract,
            joint_utility: cash.joint_utility,
            transfer_x_to_y: cash.transfer_x_to_y,
        }))
    }

    /// Applies the Eq. (9) flow volumes of the agreement at operating
    /// point `(r, a)` to the flow matrix — the exact flow deltas
    /// [`evaluate_candidate`] priced, kept link-symmetric (both mirror
    /// entries of every touched link move together).
    ///
    /// Both sides' deltas are computed against the same pre-adoption
    /// snapshot before any of them are applied, matching the joint
    /// evaluation: side `Y`'s reroutable provider flows must not include
    /// side `X`'s freshly materialized transit.
    fn materialize(&mut self, x: u32, y: u32, shares: (f64, f64), point: (f64, f64)) {
        let (reroute_share, attract_share) = shares;
        let (r, a) = point;
        // (node, packed position, delta) — applied after both sides are
        // collected. End-host deltas carry position == degree (the
        // trailing slot). Both lists live in the adoption scratch
        // (taken here, returned at the end) so repeated adoptions reuse
        // their capacity.
        let mut deltas = std::mem::take(&mut self.adopt_scratch.deltas);
        deltas.clear();
        let mut targets = std::mem::take(&mut self.adopt_scratch.targets);
        for (bene, partner) in [(x, y), (y, x)] {
            targets.clear();
            collect_targets(&self.graph, bene, partner, &mut targets);
            let nsegs = targets.len();
            if nsegs == 0 {
                continue;
            }
            let (p_end, e_end) = self.graph.class_boundaries(bene);
            let row = self.graph.neighbor_indices(bene);
            let mut volume = 0.0;
            for (pos, &p) in row[..p_end].iter().enumerate() {
                if p == partner {
                    continue;
                }
                let f = self.flows.flow(bene, pos);
                if f <= 0.0 {
                    continue;
                }
                let moved = r * reroute_share * f;
                if moved <= 0.0 {
                    continue;
                }
                deltas.push((bene, pos, -moved));
                let back = self
                    .graph
                    .neighbor_position(p, bene)
                    .expect("CSR adjacency is symmetric");
                deltas.push((p, back, -moved));
                volume += moved;
            }
            for (pos, &c) in row.iter().enumerate().skip(e_end) {
                let f = self.flows.flow(bene, pos);
                if f <= 0.0 {
                    continue;
                }
                let gained = a * attract_share * f;
                if gained <= 0.0 {
                    continue;
                }
                deltas.push((bene, pos, gained));
                let back = self
                    .graph
                    .neighbor_position(c, bene)
                    .expect("CSR adjacency is symmetric");
                deltas.push((c, back, gained));
                volume += gained;
            }
            let end_host_gain = a * attract_share * self.flows.end_host(bene);
            if end_host_gain > 0.0 {
                deltas.push((bene, row.len(), end_host_gain));
                volume += end_host_gain;
            }
            if volume <= 0.0 {
                continue;
            }
            // The whole volume crosses the (settlement-free) peering link
            // between the parties …
            let pos_partner = self
                .graph
                .neighbor_position(bene, partner)
                .expect("parties peer once adopted");
            let pos_bene = self
                .graph
                .neighbor_position(partner, bene)
                .expect("parties peer once adopted");
            deltas.push((bene, pos_partner, volume));
            deltas.push((partner, pos_bene, volume));
            // … and exits the partner split evenly across the granted
            // segments, as the default opportunities price it.
            let per_seg = volume / nsegs as f64;
            let partner_row = self.graph.neighbor_indices(partner);
            for &tpos in &targets {
                let t = partner_row[tpos as usize];
                deltas.push((partner, tpos as usize, per_seg));
                let back = self
                    .graph
                    .neighbor_position(t, partner)
                    .expect("CSR adjacency is symmetric");
                deltas.push((t, back, per_seg));
            }
        }
        for &(node, pos, delta) in &deltas {
            let updated = (self.flows.flow(node, pos) + delta).max(0.0);
            // `pos == degree` addresses the trailing end-host slot; the
            // tracked hook marks the row either way.
            self.flows.set_tracked(&mut self.dirty, node, pos, updated);
        }
        self.adopt_scratch.deltas = deltas;
        self.adopt_scratch.targets = targets;
    }

    /// Shocks the market between rounds with magnitude `shock ∈ (0, 1]`:
    ///
    /// - **traffic drift**: every link's (symmetric) volume scales by
    ///   `1 + shock·U(−0.5, 1)` — growth-biased, as internet traffic is;
    ///   each AS's end-host demand drifts the same way;
    /// - **price shocks**: each transit link repriced with probability
    ///   `shock/20` by a factor `1 + shock·U(−1, 1)` (both entries of
    ///   the link move together, keeping the book consistent);
    /// - **link failures**: each peering link fails with probability
    ///   `shock/50` — its flows drop to zero (the traffic is lost until
    ///   the market re-routes it in later rounds).
    ///
    /// Draws come strictly in node-major, position-ascending order from
    /// `rng`, so a perturbation pass is deterministic for a given state
    /// and stream.
    fn perturb(&mut self, shock: f64, rng: &mut ChaCha12Rng) -> Result<PerturbationRecord> {
        // The drift pass below rescales every link and end-host volume,
        // so flagging every row is *precise*, not conservative: a shocked
        // round is necessarily a full resweep.
        self.dirty.mark_all();
        self.generation += 1;
        let n = self.graph.node_count() as u32;
        // Pass 1: traffic drift, one factor per link (visited from its
        // lower-index endpoint) plus one per end-host slot.
        for i in 0..n {
            let row_len = self.graph.degree_of_index(i);
            for pos in 0..row_len {
                let j = self.graph.neighbor_indices(i)[pos];
                if j <= i {
                    continue;
                }
                let factor = 1.0 + shock * rng.gen_range(-0.5..1.0);
                let back = self
                    .graph
                    .neighbor_position(j, i)
                    .expect("CSR adjacency is symmetric");
                self.flows.set(i, pos, self.flows.flow(i, pos) * factor);
                self.flows.set(j, back, self.flows.flow(j, back) * factor);
            }
            let factor = 1.0 + shock * rng.gen_range(-0.5..1.0);
            self.flows.set_end_host(i, self.flows.end_host(i) * factor);
        }
        // Pass 2: transit-price shocks (visited from the provider side:
        // positions past `e_end` are the row owner's customers).
        let mut price_shocks = 0usize;
        for i in 0..n {
            let (_, e_end) = self.graph.class_boundaries(i);
            let row = self.graph.neighbor_indices(i);
            for (pos, &j) in row.iter().enumerate().skip(e_end) {
                if rng.gen::<f64>() >= shock / 20.0 {
                    continue;
                }
                let factor = 1.0 + shock * rng.gen_range(-1.0..1.0);
                let back = self
                    .graph
                    .neighbor_position(j, i)
                    .expect("CSR adjacency is symmetric");
                self.econ.scale_entry_price(i, pos, factor)?;
                self.econ.scale_entry_price(j, back, factor)?;
                price_shocks += 1;
            }
        }
        if price_shocks > 0 {
            self.pricing_epoch = self.pricing_epoch.wrapping_add(1);
            pan_telemetry::counter("econ.pricing.epoch_bumps").inc();
        }
        // Pass 3: peering-link failures.
        let mut failed_links = 0usize;
        for i in 0..n {
            let (p_end, e_end) = self.graph.class_boundaries(i);
            for pos in p_end..e_end {
                let j = self.graph.neighbor_indices(i)[pos];
                if j <= i {
                    continue;
                }
                if rng.gen::<f64>() >= shock / 50.0 {
                    continue;
                }
                let back = self
                    .graph
                    .neighbor_position(j, i)
                    .expect("CSR adjacency is symmetric");
                self.flows.set(i, pos, 0.0);
                self.flows.set(j, back, 0.0);
                failed_links += 1;
            }
        }
        Ok(PerturbationRecord {
            price_shocks,
            failed_links,
        })
    }
}

/// Bookkeeping of one perturbation pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct PerturbationRecord {
    price_shocks: usize,
    failed_links: usize,
}

/// Configuration of a market evolution run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvolutionConfig {
    /// Per-round discovery configuration. `top` is ignored — the
    /// engine always ranks the full candidate set and applies
    /// [`adopt_top`](Self::adopt_top) instead.
    pub discovery: DiscoveryConfig,
    /// Round cap (≥ 1). A run may stop earlier at a fixed point.
    pub rounds: usize,
    /// Maximum agreements adopted per round (≥ 1). Within a round,
    /// adopted pairs are **party-disjoint** — an AS negotiates at most
    /// one agreement per round — so the bound is on disjoint top-ranked
    /// pairs.
    pub adopt_top: usize,
    /// Minimum NBS surplus an outcome must clear (at discovery time and
    /// again at adoption time) to be adopted.
    pub min_surplus: f64,
    /// Perturbation magnitude in `[0, 1]`; `0` disables shocks, in which
    /// case a round without adoptions is a fixed point and ends the run.
    pub shock: f64,
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        EvolutionConfig {
            discovery: DiscoveryConfig::default(),
            rounds: 10,
            adopt_top: 10,
            min_surplus: 1e-6,
            shock: 0.0,
        }
    }
}

impl EvolutionConfig {
    fn validate(&self) -> Result<()> {
        self.discovery.validate()?;
        for (value, minimum) in [(self.rounds, 1), (self.adopt_top, 1)] {
            if value < minimum {
                return Err(AgreementError::DimensionMismatch {
                    expected: minimum,
                    actual: value,
                });
            }
        }
        // min_surplus is a utility, not a fraction: any finite
        // non-negative threshold is meaningful (f64::min would swallow
        // NaN/∞, so test finiteness directly).
        if !self.min_surplus.is_finite() || self.min_surplus < 0.0 {
            return Err(AgreementError::InvalidFraction {
                value: self.min_surplus,
            });
        }
        if !self.shock.is_finite() || !(0.0..=1.0).contains(&self.shock) {
            return Err(AgreementError::InvalidFraction { value: self.shock });
        }
        Ok(())
    }
}

/// One adopted agreement, as the evolution report records it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdoptedAgreement {
    /// Round (0-based) the agreement was adopted in.
    pub round: usize,
    /// First party.
    pub x: Asn,
    /// Second party.
    pub y: Asn,
    /// Peering-mesh distance at discovery time (1 = existing peers).
    pub peering_hops: u8,
    /// Whether adoption created a new peering link (prospective pairs).
    pub new_link: bool,
    /// Effective `(reroute, attract)` shares the agreement was priced
    /// with.
    pub shares: (f64, f64),
    /// Reroute fraction at the adopted operating point.
    pub reroute: f64,
    /// Attract fraction at the adopted operating point.
    pub attract: f64,
    /// Joint utility (NBS surplus) at adoption time.
    pub joint_utility: f64,
    /// NBS transfer `Π_{X→Y}` booked on the cash ledgers.
    pub transfer_x_to_y: f64,
}

/// Per-round trajectory entry of an evolution run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index (0-based).
    pub round: usize,
    /// Candidate pairs evaluated (adopted pairs are excluded).
    pub candidates: usize,
    /// Candidates concluding under flow-volume optimization.
    pub concluded_flow_volume: usize,
    /// Candidates viable under cash compensation.
    pub concluded_cash: usize,
    /// Total NBS surplus visible to this round's discovery.
    pub discovered_surplus: f64,
    /// Agreements adopted this round.
    pub adopted: usize,
    /// Joint utility realized by this round's adoptions.
    pub adopted_surplus: f64,
    /// Peering links created by this round's adoptions.
    pub new_links: usize,
    /// Transit links repriced by this round's closing shock.
    pub price_shocks: usize,
    /// Peering links failed by this round's closing shock.
    pub failed_links: usize,
    /// Total flow volume in the market after the round's adoptions
    /// (before its closing shock).
    pub total_flow: f64,
    /// Wall-clock seconds the round took (discovery, adoption, and the
    /// closing shock). The only non-deterministic field: comparisons and
    /// determinism diffs must go through
    /// [`RoundRecord::with_zeroed_timing`] /
    /// [`EvolutionReport::with_zeroed_timings`].
    pub seconds: f64,
}

impl RoundRecord {
    /// The record with its wall-clock field zeroed — the canonical form
    /// for byte-identical trajectory comparisons.
    #[must_use]
    pub fn with_zeroed_timing(mut self) -> Self {
        self.seconds = 0.0;
        self
    }
}

/// Result of a market evolution run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvolutionReport {
    /// Per-round trajectory, in round order.
    pub rounds: Vec<RoundRecord>,
    /// Every adopted agreement, in adoption order.
    pub agreements: Vec<AdoptedAgreement>,
    /// `true` if the run ended at a fixed point (an unshocked round
    /// without adoptable surplus) rather than the round cap.
    pub fixed_point: bool,
    /// Total joint utility realized across all adoptions.
    pub total_surplus: f64,
}

impl EvolutionReport {
    /// Total number of adopted agreements.
    #[must_use]
    pub fn total_adopted(&self) -> usize {
        self.agreements.len()
    }

    /// The report with every round's wall-clock field zeroed — what the
    /// determinism gates diff and what binaries print to stdout (timing
    /// stays on stderr and in bench records, per the workspace's
    /// byte-identical-output rule).
    #[must_use]
    pub fn with_zeroed_timings(&self) -> Self {
        let mut report = self.clone();
        for round in &mut report.rounds {
            round.seconds = 0.0;
        }
        report
    }
}

/// Everything one evolution round produced, as
/// [`EvolutionDriver::step`] returns it: the trajectory record, the
/// agreements adopted in the round, and whether the market reached a
/// fixed point.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// The round's trajectory entry.
    pub record: RoundRecord,
    /// The agreements adopted this round, in adoption order.
    pub agreements: Vec<AdoptedAgreement>,
    /// `true` if this was an unshocked round without adoptable surplus —
    /// no later round can differ, the market is at a fixed point.
    pub fixed_point: bool,
}

/// Discovery-engine selection for an [`EvolutionDriver`]; see the
/// [module docs](self) for the equivalence contract between the two.
///
/// The engine is **not** part of [`EvolutionConfig`] or the snapshot
/// wire format: both engines produce byte-identical trajectories, so
/// the choice is an execution detail (like the thread count), applied
/// per driver and re-applied by serving layers after a restore.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Re-evaluate every non-adopted candidate each round — the
    /// reference engine and differential oracle.
    #[default]
    Full,
    /// Re-evaluate only candidates intersecting the dirty-AS set,
    /// served from a persistent lazily-invalidated surplus heap.
    Incremental,
}

impl Engine {
    /// Canonical lowercase name (the `--engine` CLI vocabulary).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Engine::Full => "full",
            Engine::Incremental => "incremental",
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "full" => Ok(Engine::Full),
            "incremental" => Ok(Engine::Incremental),
            other => Err(format!(
                "unknown engine {other:?}; known: full, incremental"
            )),
        }
    }
}

/// What one round's discovery-and-adoption scan produced — the
/// engine-independent payload both [`Engine`] implementations return,
/// assembled into the [`RoundRecord`] by [`EvolutionDriver::step`].
#[derive(Debug)]
pub(crate) struct RoundScan {
    pub(crate) candidates: usize,
    pub(crate) concluded_flow_volume: usize,
    pub(crate) concluded_cash: usize,
    pub(crate) discovered_surplus: f64,
    pub(crate) agreements: Vec<AdoptedAgreement>,
    pub(crate) adopted_surplus: f64,
    pub(crate) new_links: usize,
}

/// The resumable round-stepping engine behind [`evolve`].
///
/// A driver owns the evolution configuration and the **round counter** —
/// the only RNG state of an evolution: round `i` derives its sub-seed as
/// the `i`-th draw of the sweep's coordinator stream, reconstructed by
/// position on every step. A driver resumed at counter `n`
/// ([`EvolutionDriver::resume`], [`MarketSnapshot::restore`]) therefore
/// continues the exact seed sequence an uninterrupted run would have
/// drawn, which is what makes checkpoint → restore → step reproduce an
/// uninterrupted trajectory byte for byte at any thread count.
///
/// Unlike the batch [`evolve`] loop, a driver has no notion of a final
/// round: every shocked round applies its closing perturbation, because
/// a resident market can always be stepped again later (the shock a
/// batch run would deem "unobservable" is observable after a restore).
///
/// The driver additionally owns the per-state caches of its [`Engine`]
/// (candidate enumeration, incremental evaluation slots + surplus
/// heap). The caches never influence results — they are keyed on the
/// state's identity token and rebuilt cold whenever they do not
/// recognize the state — and are excluded from equality: two drivers
/// compare equal iff they would continue a trajectory identically.
#[derive(Debug, Clone)]
pub struct EvolutionDriver {
    config: EvolutionConfig,
    rounds_done: usize,
    engine: Engine,
    enumeration: Option<EnumerationCache>,
    incremental: Option<IncrementalState>,
    full: Option<FullEngineCache>,
}

/// The full engine's cross-round cache: per-candidate [`PairTransit`]
/// structures plus the round's reusable index buffers.
///
/// Transit structures are pure functions of the graph and the transit
/// pricing tables (flows never enter — see [`derive_pair_transit`]), so
/// on a static-graph, stable-pricing market they are derived once and
/// reused every round; deriving them used to be roughly half of a full
/// resweep's work. Like the other driver caches this one never
/// influences results: a cache hit returns bitwise what a fresh
/// derivation would, and any key mismatch rebuilds cold.
#[derive(Debug, Clone, Default)]
pub(crate) struct FullEngineCache {
    token: u64,
    graph_version: u64,
    /// Pricing revision the cached transits were derived under; a bump
    /// drops them all (cheaper than tracking which links repriced).
    pricing_epoch: u64,
    /// Parallel to the enumeration: the pair's transit structure,
    /// derived lazily on the first round that evaluates it.
    transit: Vec<Option<PairTransit>>,
    /// Round scratch: this round's non-adopted enumeration indices.
    filtered: Vec<u32>,
    /// Round scratch: filtered indices whose transit slot is empty.
    missing: Vec<u32>,
    /// Times the transit table was (re)built cold, including the first.
    pub(crate) rebuilds: usize,
    /// Rounds served with at least a partially warm table.
    pub(crate) reuses: usize,
}

impl FullEngineCache {
    /// Bytes resident in the cache's tables and buffers.
    #[must_use]
    pub(crate) fn resident_bytes(&self) -> usize {
        self.transit.capacity() * std::mem::size_of::<Option<PairTransit>>()
            + self
                .transit
                .iter()
                .flatten()
                .map(PairTransit::heap_bytes)
                .sum::<usize>()
            + (self.filtered.capacity() + self.missing.capacity()) * std::mem::size_of::<u32>()
    }
}

/// Ensures `cache` targets the current `(state, graph)` pair: rebuilds
/// the transit table cold on an identity/topology mismatch, drops every
/// cached transit (in place) on a pricing-epoch bump, and reuses it
/// otherwise. The round scratch buffers carry over in all cases.
fn ensure_full<'a>(
    cache: &'a mut Option<FullEngineCache>,
    state: &MarketState,
    pairs: &[CandidatePair],
) -> &'a mut FullEngineCache {
    let (token, graph_version, pricing_epoch) = (
        state.cache_token(),
        state.graph_version(),
        state.pricing_epoch(),
    );
    let stale = match cache {
        Some(c) => c.token != token || c.graph_version != graph_version,
        None => true,
    };
    if stale {
        let carried = cache.take().unwrap_or_default();
        pan_telemetry::counter("core.cache.full_engine.rebuilds").inc();
        *cache = Some(FullEngineCache {
            token,
            graph_version,
            pricing_epoch,
            transit: vec![None; pairs.len()],
            filtered: carried.filtered,
            missing: carried.missing,
            rebuilds: carried.rebuilds + 1,
            reuses: carried.reuses,
        });
    } else {
        let c = cache.as_mut().expect("non-stale cache exists");
        if c.pricing_epoch != pricing_epoch {
            c.pricing_epoch = pricing_epoch;
            c.transit.iter_mut().for_each(|t| *t = None);
            pan_telemetry::counter("core.cache.full_engine.pricing_drops").inc();
        } else {
            c.reuses += 1;
            pan_telemetry::counter("core.cache.full_engine.reuses").inc();
        }
    }
    cache.as_mut().expect("just ensured")
}

impl PartialEq for EvolutionDriver {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
            && self.rounds_done == other.rounds_done
            && self.engine == other.engine
    }
}

impl EvolutionDriver {
    /// Creates a driver at round 0 with the [`Engine::Full`] engine.
    ///
    /// # Errors
    ///
    /// Returns [`AgreementError::InvalidFraction`] /
    /// [`AgreementError::DimensionMismatch`] for invalid configurations.
    pub fn new(config: EvolutionConfig) -> Result<Self> {
        Self::resume(config, 0)
    }

    /// Creates a driver that continues after `rounds_done` earlier
    /// rounds — the restore path. Restored drivers start on
    /// [`Engine::Full`]; serving layers re-apply their engine choice via
    /// [`set_engine`](Self::set_engine).
    ///
    /// # Errors
    ///
    /// Returns [`AgreementError::InvalidFraction`] /
    /// [`AgreementError::DimensionMismatch`] for invalid configurations.
    pub fn resume(config: EvolutionConfig, rounds_done: usize) -> Result<Self> {
        config.validate()?;
        Ok(EvolutionDriver {
            config,
            rounds_done,
            engine: Engine::Full,
            enumeration: None,
            incremental: None,
            full: None,
        })
    }

    /// The driver with the given engine selected (builder form of
    /// [`set_engine`](Self::set_engine)).
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.set_engine(engine);
        self
    }

    /// Selects the discovery engine for subsequent steps. Switching
    /// engines drops the incremental cache — a cold cache re-evaluates
    /// everything on its next round, which is always sound — and keeps
    /// the engine-independent enumeration cache.
    pub fn set_engine(&mut self, engine: Engine) {
        if self.engine != engine {
            self.incremental = None;
        }
        self.engine = engine;
    }

    /// The selected discovery engine.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The evolution configuration.
    #[must_use]
    pub fn config(&self) -> &EvolutionConfig {
        &self.config
    }

    /// Rounds applied so far — the RNG round counter a checkpoint
    /// persists.
    #[must_use]
    pub fn rounds_done(&self) -> usize {
        self.rounds_done
    }

    /// Approximate bytes the driver's caches keep resident: the shared
    /// candidate enumeration, the incremental engine's slots/transit
    /// table/heap, and the full engine's transit cache. Add to
    /// [`MarketState::resident_bytes`] for a session's total footprint.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.enumeration.as_ref().map_or(0, |e| {
            e.pairs.capacity() * std::mem::size_of::<CandidatePair>()
        }) + self
            .incremental
            .as_ref()
            .map_or(0, IncrementalState::resident_bytes)
            + self
                .full
                .as_ref()
                .map_or(0, FullEngineCache::resident_bytes)
    }

    /// The sub-seed of the next round: the `rounds_done`-th draw of the
    /// sweep's coordinator stream, reconstructed by position so the
    /// sequence is independent of how the driver reached its counter.
    fn next_round_seed(&self, sweep: &ScenarioSweep) -> u64 {
        let mut rng = sweep.coordinator_rng();
        let mut seed = rng.gen();
        for _ in 0..self.rounds_done {
            seed = rng.gen();
        }
        seed
    }

    /// Runs one evolution round on `state`: discover on the current
    /// tables, adopt the best party-disjoint outcomes, apply the closing
    /// shock (if configured), and advance the round counter. Heavy work
    /// fans out over `sweep`; the result is bit-identical at any thread
    /// count **and any engine** (see the [module docs](self)).
    ///
    /// Stepping past a fixed point is well-defined: an unshocked
    /// exhausted market keeps producing zero-adoption rounds.
    ///
    /// # Errors
    ///
    /// Propagates evaluation, remapping, and topology errors.
    pub fn step(&mut self, state: &mut MarketState, sweep: &ScenarioSweep) -> Result<RoundOutcome> {
        let started = Instant::now();
        let round = self.rounds_done;
        let round_seed = self.next_round_seed(sweep);
        let round_sweep = sweep.reseeded(round_seed);
        let config = self.config;

        // Candidate enumeration is engine-independent and cached across
        // rounds; it re-runs only when the peering graph (or the state
        // identity) changed.
        {
            let _span = pan_telemetry::histogram("core.phase.enumerate_ns").start();
            refresh_enumeration(&mut self.enumeration, state, config.discovery.policy);
        }
        let pairs = &self
            .enumeration
            .as_ref()
            .expect("enumeration cache was just refreshed")
            .pairs;

        // Per-pair noise draws a jitter from the pair's *filtered-list*
        // stream, which shifts as pairs are adopted — cached evaluations
        // would be unsound, so the incremental engine only engages when
        // the shares are deterministic.
        let scan = if self.engine == Engine::Incremental && config.discovery.noise == 0.0 {
            ensure(&mut self.incremental, state, pairs).round(
                state,
                &config,
                &round_sweep,
                pairs,
                round,
            )?
        } else {
            let cache = ensure_full(&mut self.full, state, pairs);
            full_round(state, &config, &round_sweep, pairs, cache, round)?
        };
        let total_flow = state.flows.grand_total();

        // Fixed point: an unshocked round without adoptions cannot
        // change state — no later round would differ.
        let fixed_point = scan.agreements.is_empty() && config.shock == 0.0;

        // Shock the market for the next round. Every shocked round
        // perturbs — a resident market can always be stepped later, so
        // there is no "unobservable" closing shock.
        let perturbation = if config.shock > 0.0 {
            let _span = pan_telemetry::histogram("core.phase.shock_ns").start();
            state.perturb(config.shock, &mut pan_runtime::coordinator_rng(round_seed))?
        } else {
            PerturbationRecord::default()
        };

        self.rounds_done += 1;
        pan_telemetry::histogram("core.round_ns").record_duration(started.elapsed());
        Ok(RoundOutcome {
            record: RoundRecord {
                round,
                candidates: scan.candidates,
                concluded_flow_volume: scan.concluded_flow_volume,
                concluded_cash: scan.concluded_cash,
                discovered_surplus: scan.discovered_surplus,
                adopted: scan.agreements.len(),
                adopted_surplus: scan.adopted_surplus,
                new_links: scan.new_links,
                price_shocks: perturbation.price_shocks,
                failed_links: perturbation.failed_links,
                total_flow,
                seconds: started.elapsed().as_secs_f64(),
            },
            agreements: scan.agreements,
            fixed_point,
        })
    }

    /// The enumeration cache, for cache-behavior tests.
    #[cfg(test)]
    pub(crate) fn enumeration_cache(&self) -> Option<&EnumerationCache> {
        self.enumeration.as_ref()
    }

    /// The incremental-engine cache, for soundness tests.
    #[cfg(test)]
    pub(crate) fn incremental_cache(&self) -> Option<&IncrementalState> {
        self.incremental.as_ref()
    }

    /// The full engine's transit cache, for cache-behavior tests.
    #[cfg(test)]
    pub(crate) fn full_cache(&self) -> Option<&FullEngineCache> {
        self.full.as_ref()
    }
}

/// The reference engine: evaluate every non-adopted candidate from
/// scratch, rank, and run the party-disjoint adoption scan. The
/// incremental engine replicates this function's observable behavior
/// bit for bit (see the [module docs](self)).
fn full_round(
    state: &mut MarketState,
    config: &EvolutionConfig,
    round_sweep: &ScenarioSweep,
    pairs: &[CandidatePair],
    cache: &mut FullEngineCache,
    round: usize,
) -> Result<RoundScan> {
    // 1. This round's candidate view: the non-adopted enumeration
    // indices, in enumeration order (reusing the cache's buffer). The
    // sweeps below hand workers row-locality tiles of consecutive
    // candidates (see `CANDIDATE_TILE`); per-item RNG streams are still
    // assigned by filtered position, so the jittered path draws exactly
    // what the old filtered-list sweep drew.
    let mut filtered = std::mem::take(&mut cache.filtered);
    filtered.clear();
    filtered.extend(
        pairs
            .iter()
            .enumerate()
            .filter(|(_, p)| !state.is_adopted(p.x, p.y))
            .map(|(index, _)| index as u32),
    );
    let discovered = {
        let ctx = BatchContext::new(&state.graph, &state.econ, &state.flows)?;
        let evaluated = if config.discovery.noise == 0.0 {
            // Noise-free sweeps evaluate through the shared per-node
            // collapse — one row walk per node per round instead of one
            // per candidate, and the exact path the incremental engine
            // re-evaluates stale candidates through, which is what makes
            // the engines' rounds bit-identical. Transit structures are
            // flow-independent, so they live in the driver's cache
            // across rounds; only the slots emptied by a key change are
            // (re)derived here, in parallel.
            let programs = NodePrograms::build(
                &ctx,
                config.discovery.reroute_share,
                config.discovery.attract_share,
            )?;
            let mut missing = std::mem::take(&mut cache.missing);
            missing.clear();
            missing.extend(
                filtered
                    .iter()
                    .copied()
                    .filter(|&index| cache.transit[index as usize].is_none()),
            );
            if !missing.is_empty() {
                let _span = pan_telemetry::histogram("core.phase.derive_transit_ns").start();
                let derived = round_sweep.map_with_tiled(
                    &missing,
                    CANDIDATE_TILE,
                    || (),
                    |(), _i, &index, _rng| derive_pair_transit(&ctx, pairs[index as usize]),
                );
                for (&index, transit) in missing.iter().zip(derived) {
                    cache.transit[index as usize] = Some(transit);
                }
            }
            cache.missing = missing;
            let transit = &cache.transit;
            let _span = pan_telemetry::histogram("core.phase.evaluate_ns").start();
            round_sweep.map_with_tiled(
                &filtered,
                CANDIDATE_TILE,
                PairScratch::new,
                |scratch, _i, &index, _rng| {
                    evaluate_candidate_with(
                        &ctx,
                        &programs,
                        transit[index as usize]
                            .as_ref()
                            .expect("every filtered pair's transit slot was just filled"),
                        scratch,
                        pairs[index as usize],
                        config.discovery.grid,
                    )
                },
            )
        } else {
            let _span = pan_telemetry::histogram("core.phase.evaluate_ns").start();
            round_sweep.map_with_tiled(
                &filtered,
                CANDIDATE_TILE,
                PairScratch::new,
                |scratch, _i, &index, mut rng| {
                    let (reroute, attract) = config.discovery.jittered_shares(&mut rng);
                    evaluate_candidate(
                        &ctx,
                        scratch,
                        pairs[index as usize],
                        reroute,
                        attract,
                        config.discovery.grid,
                    )
                },
            )
        };
        let mut outcomes = Vec::with_capacity(evaluated.len());
        for outcome in evaluated {
            outcomes.push(outcome?);
        }
        DiscoveryReport::from_outcomes(outcomes, 0)
    };
    cache.filtered = filtered;

    // 2. Adopt the best adoptable outcomes, best-first, with
    // **disjoint parties**: an AS negotiates at most one agreement
    // per round. This keeps a hub from compounding its attraction
    // within a round and makes the round's adoptions (nearly)
    // independent of adoption order. Outcomes are ranked by surplus,
    // so the first one below the threshold ends the scan.
    let _adopt_span = pan_telemetry::histogram("core.phase.adopt_ns").start();
    let mut busy: HashSet<u32> = HashSet::new();
    let mut agreements = Vec::new();
    let mut adopted_surplus = 0.0;
    let mut new_links = 0usize;
    for outcome in &discovered.outcomes {
        if agreements.len() >= config.adopt_top {
            break;
        }
        if outcome.cash.is_none() || outcome.surplus <= config.min_surplus {
            break;
        }
        let (i, j) = (
            state.graph.index_of(outcome.x)?,
            state.graph.index_of(outcome.y)?,
        );
        if busy.contains(&i) || busy.contains(&j) {
            continue;
        }
        if let Some(agreement) =
            state.adopt_outcome(outcome, config.discovery.grid, config.min_surplus, round)?
        {
            busy.insert(i);
            busy.insert(j);
            adopted_surplus += agreement.joint_utility;
            new_links += usize::from(agreement.new_link);
            agreements.push(agreement);
        }
    }

    Ok(RoundScan {
        candidates: discovered.candidates,
        concluded_flow_volume: discovered.concluded_flow_volume,
        concluded_cash: discovered.concluded_cash,
        discovered_surplus: discovered.total_surplus,
        agreements,
        adopted_surplus,
        new_links,
    })
}

/// Runs the multi-round market evolution on `state`; see the [module
/// docs](self) for the loop. Mutates `state` in place (callers keep it
/// for inspection) and returns the trajectory report. Bit-identical at
/// any thread count of `sweep` (timing fields aside — diff via
/// [`EvolutionReport::with_zeroed_timings`]).
///
/// The batch convenience over [`EvolutionDriver`]: steps until the round
/// cap or a fixed point.
///
/// # Errors
///
/// Returns [`AgreementError::InvalidFraction`] /
/// [`AgreementError::DimensionMismatch`] for invalid configurations and
/// propagates evaluation, remapping, and topology errors.
pub fn evolve(
    state: &mut MarketState,
    config: &EvolutionConfig,
    sweep: &ScenarioSweep,
) -> Result<EvolutionReport> {
    evolve_with_engine(state, config, sweep, Engine::Full)
}

/// [`evolve`] with an explicit [`Engine`] selection. Both engines
/// produce byte-identical reports (timing fields aside); see the
/// [module docs](self) for the equivalence contract.
///
/// # Errors
///
/// As [`evolve`].
pub fn evolve_with_engine(
    state: &mut MarketState,
    config: &EvolutionConfig,
    sweep: &ScenarioSweep,
    engine: Engine,
) -> Result<EvolutionReport> {
    let mut driver = EvolutionDriver::new(*config)?.with_engine(engine);
    let mut report = EvolutionReport {
        rounds: Vec::new(),
        agreements: Vec::new(),
        fixed_point: false,
        total_surplus: 0.0,
    };
    for _ in 0..config.rounds {
        let outcome = driver.step(state, sweep)?;
        report.total_surplus += outcome.record.adopted_surplus;
        report.agreements.extend(outcome.agreements);
        report.rounds.push(outcome.record);
        if outcome.fixed_point {
            report.fixed_point = true;
            break;
        }
    }
    Ok(report)
}

/// Per-AS advisory query: "what should AS X do next?" — evaluate only
/// the candidate pairs involving `asn` on the current market state,
/// ranked by NBS surplus. The serving fast path: a resident 10k-AS
/// market answers in milliseconds because the sweep covers one AS's
/// neighborhood (see [`enumerate_candidates_for`]) instead of all ~157k
/// candidate pairs.
///
/// Already-adopted pairs are excluded. The evaluation uses the
/// configuration's base shares without the per-pair noise jitter: an
/// advisory answer must not depend on which sweep stream a pair would
/// have landed on. Deterministic at any thread count of `pool` (results
/// come back in candidate order and no RNG is involved).
///
/// # Errors
///
/// Returns [`pan_topology::TopologyError::UnknownAs`] (via
/// [`AgreementError::Topology`]) for an AS outside the market, rejects
/// invalid configurations, and propagates evaluation errors.
pub fn advise(
    state: &MarketState,
    config: &DiscoveryConfig,
    asn: Asn,
    top: usize,
    pool: &ThreadPool,
) -> Result<DiscoveryReport> {
    config.validate()?;
    let node = state.graph.index_of(asn)?;
    let candidates: Vec<CandidatePair> =
        enumerate_candidates_for(&state.graph, config.policy, node)
            .into_iter()
            .filter(|p| !state.is_adopted(p.x, p.y))
            .collect();
    let ctx = BatchContext::new(&state.graph, &state.econ, &state.flows)?;
    let evaluated = pool.map_with(&candidates, PairScratch::new, |scratch, _i, &pair| {
        evaluate_candidate(
            &ctx,
            scratch,
            pair,
            config.reroute_share,
            config.attract_share,
            config.grid,
        )
    });
    let mut outcomes = Vec::with_capacity(evaluated.len());
    for outcome in evaluated {
        outcomes.push(outcome?);
    }
    Ok(DiscoveryReport::from_outcomes(outcomes, top))
}

/// Wire-format tag of market checkpoints (the first header field).
pub const SNAPSHOT_FORMAT: &str = "pan-interconnect/market-state";

/// Current version of the checkpoint wire format. Bumped on any change
/// to the serialized shape; [`MarketSnapshot::from_json`] rejects other
/// versions instead of misinterpreting them.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A versioned, self-contained checkpoint of an evolving market: the
/// graph (CSR is rebuilt on restore), the dense pricing and flow tables,
/// the cash ledger, the adopted set (canonically sorted), the RNG round
/// counter, and the run parameters (master seed + evolution config) —
/// everything needed to resume a trajectory or diff it across code
/// versions.
///
/// The JSON encoding round-trips **byte-stably**:
/// `capture → to_json → from_json → restore → capture → to_json`
/// produces identical bytes (floats print in shortest round-trip form,
/// the adopted set is sorted, and no skipped/derived table is part of
/// the wire format).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MarketSnapshot {
    format: String,
    version: u32,
    /// Master seed of the evolution's sweeps (restored runs must derive
    /// the same round sub-seed sequence).
    pub seed: u64,
    /// The RNG round counter: rounds already applied to the state.
    pub rounds_done: usize,
    /// The evolution configuration the trajectory is running under.
    pub config: EvolutionConfig,
    graph: AsGraph,
    econ: DenseEconomics,
    flows: FlowMatrix,
    cash: Vec<f64>,
    adopted: Vec<(u32, u32)>,
}

impl MarketSnapshot {
    /// Captures the state and its driver position into a checkpoint.
    #[must_use]
    pub fn capture(state: &MarketState, driver: &EvolutionDriver, seed: u64) -> Self {
        MarketSnapshot {
            format: SNAPSHOT_FORMAT.to_owned(),
            version: SNAPSHOT_VERSION,
            seed,
            rounds_done: driver.rounds_done(),
            config: *driver.config(),
            graph: state.graph.clone(),
            econ: state.econ.clone(),
            flows: state.flows.clone(),
            cash: state.cash.clone(),
            adopted: state.adopted_pairs(),
        }
    }

    /// Serializes the checkpoint as one line of JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoints serialize")
    }

    /// Parses a checkpoint, rejecting unknown formats and versions
    /// before looking at the payload.
    ///
    /// # Errors
    ///
    /// Returns [`AgreementError::Snapshot`] for malformed JSON, a
    /// foreign format tag, or an unsupported version.
    pub fn from_json(text: &str) -> Result<Self> {
        let snapshot: MarketSnapshot =
            serde_json::from_str(text).map_err(|e| AgreementError::Snapshot {
                reason: format!("malformed checkpoint: {e}"),
            })?;
        if snapshot.format != SNAPSHOT_FORMAT {
            return Err(AgreementError::Snapshot {
                reason: format!(
                    "format tag {:?} is not {SNAPSHOT_FORMAT:?}",
                    snapshot.format
                ),
            });
        }
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(AgreementError::Snapshot {
                reason: format!(
                    "version {} is not the supported version {SNAPSHOT_VERSION}",
                    snapshot.version
                ),
            });
        }
        Ok(snapshot)
    }

    /// Validates the payload, rebuilds the graph's derived tables (ASN
    /// index + CSR adjacency), and reassembles the market and its
    /// driver. The checkpoint's [`seed`](Self::seed) is the master seed
    /// the caller must resume sweeps with.
    ///
    /// # Errors
    ///
    /// Returns [`AgreementError::Snapshot`] /
    /// [`AgreementError::Topology`] / [`AgreementError::Econ`] when any
    /// component fails its wire-integrity check.
    pub fn restore(self) -> Result<(MarketState, EvolutionDriver)> {
        let MarketSnapshot {
            config,
            rounds_done,
            mut graph,
            econ,
            flows,
            cash,
            adopted,
            ..
        } = self;
        graph.validate()?;
        graph.rebuild_indices();
        econ.validate_shape(&graph)?;
        flows.validate_shape(&graph)?;
        let state = MarketState::from_parts(graph, econ, flows, cash, adopted)?;
        let driver = EvolutionDriver::resume(config, rounds_done)?;
        Ok((state, driver))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::{evaluate_candidate_legacy, tests::assert_outcomes_match};
    use crate::CandidatePolicy;
    use pan_econ::{CostFunction, PricingFunction};
    use pan_runtime::ThreadPool;
    use pan_topology::{AsGraphBuilder, Relationship};

    const P: Asn = Asn::new(1); // expensive provider of X
    const B: Asn = Asn::new(2); // cheap provider of Y
    const X: Asn = Asn::new(3);
    const Y: Asn = Asn::new(4);
    const M: Asn = Asn::new(5); // peering middleman (k-hop fixture only)

    /// A market with one glaring arbitrage: X pays provider P a rate of
    /// 5 for 10 units of traffic that Y could exit via provider B at a
    /// rate of 1. `middleman` inserts M between X and Y (X–M–Y peering,
    /// X and Y not adjacent) with an internal cost that makes M itself
    /// useless as a partner — the profitable pair is then 2 hops apart.
    fn arbitrage_state(middleman: bool) -> MarketState {
        let mut b = AsGraphBuilder::new();
        b.add_link(P, X, Relationship::ProviderToCustomer).unwrap();
        b.add_link(B, Y, Relationship::ProviderToCustomer).unwrap();
        if middleman {
            b.add_link(X, M, Relationship::PeerToPeer).unwrap();
            b.add_link(M, Y, Relationship::PeerToPeer).unwrap();
        } else {
            b.add_link(X, Y, Relationship::PeerToPeer).unwrap();
        }
        let graph = b.build().unwrap();
        let econ = DenseEconomics::build(
            &graph,
            |provider, _| {
                PricingFunction::per_usage(if provider == P { 5.0 } else { 1.0 }).unwrap()
            },
            |_| PricingFunction::per_usage(1.0).unwrap(),
            |asn| CostFunction::linear(if asn == M { 3.0 } else { 0.001 }).unwrap(),
        );
        let mut flows = FlowMatrix::zeros(&graph);
        let (px, xp) = (graph.index_of(P).unwrap(), graph.index_of(X).unwrap());
        let pos = graph.neighbor_position(xp, px).unwrap();
        flows.set(xp, pos, 10.0);
        let back = graph.neighbor_position(px, xp).unwrap();
        flows.set(px, back, 10.0);
        MarketState::new(graph, econ, flows).unwrap()
    }

    fn evaluate_pair(state: &MarketState, x: Asn, y: Asn, shares: (f64, f64)) -> PairOutcome {
        let (i, j) = (
            state.graph().index_of(x).unwrap(),
            state.graph().index_of(y).unwrap(),
        );
        let ctx = BatchContext::new(state.graph(), state.econ(), state.flows()).unwrap();
        let mut scratch = PairScratch::new();
        evaluate_candidate(
            &ctx,
            &mut scratch,
            CandidatePair {
                x: i.min(j),
                y: i.max(j),
                peering_hops: 1,
            },
            shares.0,
            shares.1,
            3,
        )
        .unwrap()
    }

    #[test]
    fn adoption_drains_the_opportunity_to_a_fixed_point() {
        let mut state = arbitrage_state(false);
        let before = evaluate_pair(&state, X, Y, (1.0, 0.0));
        let cash = before.cash.expect("the arbitrage concludes");
        assert!(
            before.surplus > 39.0,
            "surplus ≈ 40, got {}",
            before.surplus
        );
        assert_eq!(cash.reroute, 1.0, "all traffic moves at the optimum");

        let agreement = state
            .adopt_outcome(&before, 3, 1e-6, 0)
            .unwrap()
            .expect("adoptable");
        assert!(!agreement.new_link, "the parties already peer");
        assert!((agreement.joint_utility - before.surplus).abs() < 1e-12);

        // Fixed-point sanity: the adopted operating point consumed the
        // entire priced opportunity, so re-evaluating the same pair on
        // the materialized flows finds ~zero residual surplus.
        let after = evaluate_pair(&state, X, Y, (1.0, 0.0));
        assert!(
            after.surplus.abs() < 1e-9,
            "residual surplus after adoption: {}",
            after.surplus
        );
        assert!(after.cash.is_none() && after.flow_volume.is_none());

        // The rerouted volume is on the peering link and Y's exit, and
        // X's provider link is empty.
        let g = state.graph();
        let (xi, yi) = (g.index_of(X).unwrap(), g.index_of(Y).unwrap());
        let (pi, bi) = (g.index_of(P).unwrap(), g.index_of(B).unwrap());
        let flow = |a: u32, b: u32| state.flows().flow(a, g.neighbor_position(a, b).unwrap());
        assert_eq!(flow(xi, pi), 0.0);
        assert_eq!(flow(xi, yi), 10.0);
        assert_eq!(flow(yi, bi), 10.0);
        assert_eq!(flow(bi, yi), 10.0, "mirror entries stay symmetric");

        // The NBS transfer landed on the ledgers, conserving cash.
        assert!((state.cash_balance(xi) + agreement.transfer_x_to_y).abs() < 1e-12);
        assert!((state.cash_balance(yi) - agreement.transfer_x_to_y).abs() < 1e-12);

        // Re-adoption of an adopted pair is a no-op.
        assert!(state.adopt_outcome(&before, 3, 1e-6, 1).unwrap().is_none());
    }

    fn arbitrage_config(policy: CandidatePolicy) -> EvolutionConfig {
        EvolutionConfig {
            discovery: DiscoveryConfig {
                policy,
                reroute_share: 1.0,
                attract_share: 0.0,
                grid: 3,
                noise: 0.0,
                top: 0,
            },
            rounds: 10,
            adopt_top: 5,
            min_surplus: 1e-6,
            shock: 0.0,
        }
    }

    #[test]
    fn evolve_reaches_a_fixed_point_on_the_arbitrage_market() {
        let mut state = arbitrage_state(false);
        let config = arbitrage_config(CandidatePolicy::PeeringAdjacent);
        let report = evolve(&mut state, &config, &ScenarioSweep::sequential(7)).unwrap();
        assert!(report.fixed_point, "unshocked runs terminate");
        assert_eq!(report.rounds.len(), 2, "adopt, then verify exhaustion");
        assert_eq!(report.rounds[0].adopted, 1);
        assert_eq!(report.rounds[1].adopted, 0);
        assert_eq!(report.total_adopted(), 1);
        assert_eq!((report.agreements[0].x, report.agreements[0].y), (X, Y));
        assert_eq!(report.agreements[0].round, 0);
        assert!(report.total_surplus > 39.0);
        assert_eq!(state.adopted_count(), 1);
    }

    #[test]
    fn prospective_adoption_registers_the_peering_link() {
        let mut state = arbitrage_state(true);
        let g = state.graph();
        let (xi, yi) = (g.index_of(X).unwrap(), g.index_of(Y).unwrap());
        assert_eq!(g.neighbor_kind_by_index(xi, yi), None, "not yet adjacent");
        let link_count = g.link_count();

        let config = arbitrage_config(CandidatePolicy::PeeringKHop {
            k: 2,
            per_source_cap: 0,
        });
        let report = evolve(&mut state, &config, &ScenarioSweep::sequential(7)).unwrap();
        assert!(report.fixed_point);
        let adopted = &report.agreements;
        assert_eq!(adopted.len(), 1, "only the 2-hop pair profits: {adopted:?}");
        assert_eq!((adopted[0].x, adopted[0].y), (X, Y));
        assert_eq!(adopted[0].peering_hops, 2);
        assert!(adopted[0].new_link);
        assert_eq!(report.rounds[0].new_links, 1);

        // The adjacency, tables, and flows all moved onto the new link.
        let g = state.graph();
        assert_eq!(g.link_count(), link_count + 1);
        assert_eq!(
            g.neighbor_kind_by_index(xi, yi),
            Some(NeighborKind::Peer),
            "adoption registered settlement-free peering"
        );
        let pos = g.neighbor_position(xi, yi).unwrap();
        assert_eq!(state.econ().entry(xi, pos).sign, 0.0);
        assert_eq!(state.flows().flow(xi, pos), 10.0, "rerouted volume");
    }

    /// Deterministic heterogeneous economics for synthetic internets —
    /// same construction as the discovery equivalence test.
    fn synthetic_state(ases: usize, seed: u64) -> MarketState {
        use pan_datasets::{InternetConfig, SyntheticInternet};
        let net = SyntheticInternet::generate(
            &InternetConfig {
                num_ases: ases,
                tier1_count: 6,
                ..InternetConfig::default()
            },
            seed,
        )
        .unwrap();
        let econ = DenseEconomics::build(
            &net.graph,
            |provider, customer| {
                let salt = u64::from(provider.get()) * 31 + u64::from(customer.get());
                PricingFunction::per_usage(1.0 + (salt % 17) as f64 * 0.25).unwrap()
            },
            |asn| PricingFunction::per_usage(2.0 + f64::from(asn.get() % 3)).unwrap(),
            |asn| CostFunction::linear(0.02 + f64::from(asn.get() % 5) * 0.01).unwrap(),
        );
        let flows = FlowMatrix::degree_gravity(&net.graph, 0.5);
        MarketState::new(net.graph.clone(), econ, flows).unwrap()
    }

    #[test]
    fn evolution_is_thread_count_independent() {
        let config = EvolutionConfig {
            discovery: DiscoveryConfig {
                noise: 0.15,
                grid: 3,
                ..DiscoveryConfig::default()
            },
            rounds: 3,
            adopt_top: 5,
            min_surplus: 1e-3,
            shock: 0.4,
        };
        let reference = {
            let mut state = synthetic_state(200, 23);
            evolve(&mut state, &config, &ScenarioSweep::sequential(9)).unwrap()
        };
        assert!(
            reference.total_adopted() > 0,
            "the synthetic market must trade"
        );
        assert!(
            reference
                .rounds
                .iter()
                .any(|r| r.price_shocks + r.failed_links > 0),
            "shocks must fire across 3 rounds"
        );
        for threads in [2, 4] {
            let mut state = synthetic_state(200, 23);
            let parallel = evolve(
                &mut state,
                &config,
                &ScenarioSweep::new(ThreadPool::new(threads), 9),
            )
            .unwrap();
            assert_eq!(
                reference.with_zeroed_timings(),
                parallel.with_zeroed_timings(),
                "{threads} threads diverged"
            );
        }
    }

    #[test]
    fn dense_and_legacy_agree_after_adoption() {
        // Satellite: materializing agreements must keep the dense tables
        // equivalent to the sparse stack — evaluate the post-adoption
        // market with both engines.
        let mut state = synthetic_state(260, 23);
        let config = EvolutionConfig {
            discovery: DiscoveryConfig {
                grid: 4,
                ..DiscoveryConfig::default()
            },
            rounds: 1,
            adopt_top: 8,
            min_surplus: 1e-6,
            shock: 0.0,
        };
        let report = evolve(&mut state, &config, &ScenarioSweep::sequential(5)).unwrap();
        assert!(report.total_adopted() > 0, "nothing was adopted");

        let graph = state.graph();
        let model = state.econ().to_business_model(graph);
        let candidates =
            crate::discovery::enumerate_candidates(graph, CandidatePolicy::PeeringAdjacent);
        let ctx = BatchContext::new(graph, state.econ(), state.flows()).unwrap();
        let mut scratch = PairScratch::new();
        let mut compared = 0usize;
        for &pair in candidates.iter().step_by(11) {
            let dense = evaluate_candidate(&ctx, &mut scratch, pair, 0.5, 0.2, 4).unwrap();
            let fx = state.flows().to_flow_vec(graph, pair.x);
            let fy = state.flows().to_flow_vec(graph, pair.y);
            let legacy = evaluate_candidate_legacy(&model, &fx, &fy, 0.5, 0.2, 4).unwrap();
            assert_outcomes_match(&dense, &legacy, 1e-6);
            compared += 1;
        }
        assert!(compared > 20);
        // And the full Eq. (1) utilities agree AS by AS.
        for i in 0..graph.node_count() as u32 {
            let f = state.flows().to_flow_vec(graph, i);
            let sparse = model.utility(&f).unwrap();
            let dense = state.econ().utility(state.flows(), i).unwrap();
            assert!(
                (sparse - dense).abs() < 1e-6,
                "AS {}: {sparse} vs {dense}",
                graph.asn_at(i)
            );
        }
    }

    #[test]
    fn cash_ledger_is_conserved() {
        let mut state = synthetic_state(200, 23);
        let config = EvolutionConfig {
            discovery: DiscoveryConfig {
                grid: 3,
                ..DiscoveryConfig::default()
            },
            rounds: 2,
            adopt_top: 10,
            min_surplus: 1e-6,
            shock: 0.0,
        };
        let report = evolve(&mut state, &config, &ScenarioSweep::sequential(3)).unwrap();
        assert!(report.total_adopted() > 0);
        let net: f64 = (0..state.graph().node_count() as u32)
            .map(|i| state.cash_balance(i))
            .sum();
        assert!(net.abs() < 1e-9, "transfers are zero-sum, net {net}");
        let moved: f64 = report
            .agreements
            .iter()
            .map(|a| a.transfer_x_to_y.abs())
            .sum();
        assert!(moved > 0.0, "some compensation must flow");
    }

    #[test]
    fn driver_steps_reproduce_the_batch_evolve_loop() {
        let config = EvolutionConfig {
            discovery: DiscoveryConfig {
                noise: 0.1,
                grid: 3,
                ..DiscoveryConfig::default()
            },
            rounds: 4,
            adopt_top: 6,
            min_surplus: 1e-3,
            shock: 0.35,
        };
        let sweep = ScenarioSweep::sequential(11);
        let batch = {
            let mut state = synthetic_state(200, 23);
            evolve(&mut state, &config, &sweep).unwrap()
        };
        let mut state = synthetic_state(200, 23);
        let mut driver = EvolutionDriver::new(config).unwrap();
        for (i, expected) in batch.rounds.iter().enumerate() {
            assert_eq!(driver.rounds_done(), i);
            let outcome = driver.step(&mut state, &sweep).unwrap();
            assert_eq!(
                outcome.record.with_zeroed_timing(),
                expected.with_zeroed_timing(),
                "round {i} diverged"
            );
        }
    }

    #[test]
    fn snapshot_round_trip_is_byte_stable_and_restores_the_state() {
        let mut state = synthetic_state(200, 23);
        let config = arbitrage_config(CandidatePolicy::PeeringAdjacent);
        let sweep = ScenarioSweep::sequential(5);
        let mut driver = EvolutionDriver::new(config).unwrap();
        driver.step(&mut state, &sweep).unwrap();
        assert!(state.adopted_count() > 0, "the fixture must trade");

        let snapshot = MarketSnapshot::capture(&state, &driver, sweep.master_seed());
        let json = snapshot.to_json();
        let (restored, restored_driver) =
            MarketSnapshot::from_json(&json).unwrap().restore().unwrap();
        assert_eq!(restored_driver, driver);
        // Byte-stable: re-capturing the restored state reproduces the
        // exact checkpoint bytes.
        let json2 =
            MarketSnapshot::capture(&restored, &restored_driver, sweep.master_seed()).to_json();
        assert_eq!(json, json2, "checkpoint round trip must be byte-stable");
        // And the restored market behaves identically.
        assert_eq!(restored.adopted_pairs(), state.adopted_pairs());
        for i in 0..state.graph().node_count() as u32 {
            assert_eq!(restored.cash_balance(i), state.cash_balance(i));
        }
    }

    #[test]
    fn restore_continues_the_uninterrupted_trajectory() {
        let config = EvolutionConfig {
            discovery: DiscoveryConfig {
                noise: 0.1,
                grid: 3,
                ..DiscoveryConfig::default()
            },
            rounds: 6,
            adopt_top: 5,
            min_surplus: 1e-3,
            shock: 0.3,
        };
        let sweep = ScenarioSweep::sequential(17);
        let uninterrupted = {
            let mut state = synthetic_state(200, 23);
            evolve(&mut state, &config, &sweep).unwrap()
        };
        assert_eq!(uninterrupted.rounds.len(), 6, "shocked runs hit the cap");

        // Step 3 rounds, checkpoint, drop everything, restore, step 3 more.
        let mut state = synthetic_state(200, 23);
        let mut driver = EvolutionDriver::new(config).unwrap();
        let mut records = Vec::new();
        for _ in 0..3 {
            records.push(driver.step(&mut state, &sweep).unwrap().record);
        }
        let json = MarketSnapshot::capture(&state, &driver, sweep.master_seed()).to_json();
        drop((state, driver));

        let (mut state, mut driver) = MarketSnapshot::from_json(&json).unwrap().restore().unwrap();
        // Resume on a *different* thread count to prove both properties at
        // once: the trajectory is seed-positional, not schedule-dependent.
        let resumed_sweep = ScenarioSweep::new(ThreadPool::new(4), json_seed(&json));
        for _ in 0..3 {
            records.push(driver.step(&mut state, &resumed_sweep).unwrap().record);
        }
        let stitched: Vec<RoundRecord> = records
            .into_iter()
            .map(RoundRecord::with_zeroed_timing)
            .collect();
        let reference: Vec<RoundRecord> = uninterrupted
            .rounds
            .iter()
            .map(|r| r.with_zeroed_timing())
            .collect();
        assert_eq!(stitched, reference, "restored trajectory diverged");
    }

    /// Reads the master seed back out of a checkpoint, as a serving
    /// layer would.
    fn json_seed(json: &str) -> u64 {
        MarketSnapshot::from_json(json).unwrap().seed
    }

    #[test]
    fn snapshots_reject_foreign_headers_and_corrupt_payloads() {
        let mut state = arbitrage_state(false);
        let config = arbitrage_config(CandidatePolicy::PeeringAdjacent);
        let sweep = ScenarioSweep::sequential(5);
        let mut driver = EvolutionDriver::new(config).unwrap();
        driver.step(&mut state, &sweep).unwrap();
        let snapshot = MarketSnapshot::capture(&state, &driver, 5);

        assert!(matches!(
            MarketSnapshot::from_json("not json"),
            Err(AgreementError::Snapshot { .. })
        ));
        let mut wrong = snapshot.clone();
        wrong.format = "something-else".to_owned();
        assert!(matches!(
            MarketSnapshot::from_json(&wrong.to_json()),
            Err(AgreementError::Snapshot { .. })
        ));
        let mut wrong = snapshot.clone();
        wrong.version = SNAPSHOT_VERSION + 1;
        assert!(matches!(
            MarketSnapshot::from_json(&wrong.to_json()),
            Err(AgreementError::Snapshot { .. })
        ));
        // Corrupt payloads die in restore's validation, not in a panic.
        let mut wrong = snapshot.clone();
        wrong.adopted.push((3, 3));
        assert!(wrong.restore().is_err(), "non-normalized adopted pair");
        let mut wrong = snapshot.clone();
        wrong.cash[0] = f64::INFINITY;
        assert!(wrong.restore().is_err(), "non-finite ledger balance");
        let mut wrong = snapshot.clone();
        wrong.cash.pop();
        assert!(wrong.restore().is_err(), "mis-sized ledger");
        snapshot.restore().expect("the pristine snapshot restores");
    }

    #[test]
    fn advise_finds_the_arbitrage_pair_for_both_parties() {
        let state = arbitrage_state(false);
        let config = DiscoveryConfig {
            reroute_share: 1.0,
            attract_share: 0.0,
            grid: 3,
            ..DiscoveryConfig::default()
        };
        let pool = ThreadPool::new(1);
        for party in [X, Y] {
            let report = advise(&state, &config, party, 0, &pool).unwrap();
            assert_eq!(report.candidates, 1, "one peer, one candidate");
            let best = &report.outcomes[0];
            assert_eq!((best.x, best.y), (X, Y));
            assert!(best.surplus > 39.0, "advise must see the arbitrage");
        }
        // A bystander has no profitable agreement to be advised about.
        let report = advise(&state, &config, P, 0, &pool).unwrap();
        assert!(report.outcomes.iter().all(|o| o.cash.is_none()));
        // Unknown ASes error instead of answering emptily.
        assert!(advise(&state, &config, Asn::new(999), 0, &pool).is_err());
    }

    #[test]
    fn advise_skips_adopted_pairs_and_matches_the_full_sweep() {
        let mut state = synthetic_state(200, 23);
        let config = DiscoveryConfig {
            grid: 3,
            ..DiscoveryConfig::default()
        };
        let pool = ThreadPool::new(2);
        // Pick the AS with the most peers so the advisory list is rich.
        let graph = state.graph();
        let node = (0..graph.node_count() as u32)
            .max_by_key(|&i| graph.peer_indices(i).len())
            .unwrap();
        let asn = graph.asn_at(node);

        let report = advise(&state, &config, asn, 0, &pool).unwrap();
        assert!(report.candidates > 1);
        // Every advisory outcome matches the corresponding pair of a full
        // (noise-free) discovery sweep.
        let ctx = BatchContext::new(state.graph(), state.econ(), state.flows()).unwrap();
        let full =
            crate::discovery::discover(&ctx, &config, &ScenarioSweep::sequential(1)).unwrap();
        for outcome in &report.outcomes {
            let twin = full
                .outcomes
                .iter()
                .find(|o| (o.x, o.y) == (outcome.x, outcome.y))
                .expect("advisory pairs are a subset of the full sweep");
            assert_eq!(outcome, twin, "advise diverged from discover");
        }

        // Adopt the best advisory outcome; it must vanish from the next
        // advisory answer.
        let best = report.outcomes[0].clone();
        assert!(best.cash.is_some(), "the synthetic market must trade");
        state
            .adopt_outcome(&best, config.grid, 1e-9, 0)
            .unwrap()
            .unwrap();
        let after = advise(&state, &config, asn, 0, &pool).unwrap();
        assert_eq!(after.candidates, report.candidates - 1);
        assert!(after
            .outcomes
            .iter()
            .all(|o| (o.x, o.y) != (best.x, best.y)));
    }

    #[test]
    fn invalid_evolution_configs_are_rejected() {
        let mut state = arbitrage_state(false);
        let sweep = ScenarioSweep::sequential(1);
        for config in [
            EvolutionConfig {
                rounds: 0,
                ..EvolutionConfig::default()
            },
            EvolutionConfig {
                adopt_top: 0,
                ..EvolutionConfig::default()
            },
            EvolutionConfig {
                shock: 1.5,
                ..EvolutionConfig::default()
            },
            EvolutionConfig {
                min_surplus: f64::NAN,
                ..EvolutionConfig::default()
            },
            EvolutionConfig {
                min_surplus: f64::INFINITY,
                ..EvolutionConfig::default()
            },
            EvolutionConfig {
                min_surplus: -1.0,
                ..EvolutionConfig::default()
            },
            EvolutionConfig {
                discovery: DiscoveryConfig {
                    grid: 1,
                    ..DiscoveryConfig::default()
                },
                ..EvolutionConfig::default()
            },
        ] {
            assert!(
                evolve(&mut state, &config, &sweep).is_err(),
                "{config:?} must be rejected"
            );
        }
        assert!(
            state
                .adopt_outcome(
                    &evaluate_pair(&state, X, Y, (1.0, 0.0)),
                    3,
                    f64::INFINITY,
                    0
                )
                .is_err(),
            "non-finite thresholds are rejected"
        );
    }

    /// Steps a fresh synthetic market `rounds` times under `engine` and
    /// returns everything the equivalence contract promises to preserve:
    /// the (timing-zeroed) round records, the adopted agreements, and
    /// the exact checkpoint bytes of the final state.
    fn trajectory(
        ases: usize,
        net_seed: u64,
        config: EvolutionConfig,
        sweep: &ScenarioSweep,
        engine: Engine,
        rounds: usize,
    ) -> (Vec<RoundRecord>, Vec<AdoptedAgreement>, String) {
        let mut state = synthetic_state(ases, net_seed);
        let mut driver = EvolutionDriver::new(config).unwrap().with_engine(engine);
        let mut records = Vec::new();
        let mut agreements = Vec::new();
        for _ in 0..rounds {
            let outcome = driver.step(&mut state, sweep).unwrap();
            records.push(outcome.record.with_zeroed_timing());
            agreements.extend(outcome.agreements);
        }
        let json = MarketSnapshot::capture(&state, &driver, sweep.master_seed()).to_json();
        (records, agreements, json)
    }

    #[test]
    fn incremental_engine_matches_the_full_resweep_byte_for_byte() {
        // Unshocked (warm heap every round) and shocked (mark_all forces
        // full re-evaluation mid-trajectory) variants, each compared at
        // threads 1 and 4 against the single-threaded full resweep.
        for shock in [0.0, 0.35] {
            let config = EvolutionConfig {
                discovery: DiscoveryConfig {
                    grid: 3,
                    ..DiscoveryConfig::default()
                },
                rounds: 4,
                adopt_top: 6,
                min_surplus: 1e-3,
                shock,
            };
            let t1 = ScenarioSweep::sequential(9);
            let full = trajectory(300, 23, config, &t1, Engine::Full, 4);
            assert!(
                !full.1.is_empty(),
                "the shock={shock} fixture must adopt something"
            );
            let incremental_t1 = trajectory(300, 23, config, &t1, Engine::Incremental, 4);
            assert_eq!(full, incremental_t1, "shock={shock}: t1 diverged");
            let t4 = ScenarioSweep::new(ThreadPool::new(4), 9);
            let incremental_t4 = trajectory(300, 23, config, &t4, Engine::Incremental, 4);
            assert_eq!(full, incremental_t4, "shock={shock}: t4 diverged");
        }
    }

    #[test]
    fn noisy_configs_delegate_the_incremental_engine_to_the_full_path() {
        // Per-pair noise makes cached evaluations unsound (the jitter
        // depends on a pair's filtered-list position), so a noisy config
        // must bypass the cache entirely — and still agree with the full
        // engine, which is what it delegates to.
        let config = EvolutionConfig {
            discovery: DiscoveryConfig {
                noise: 0.15,
                grid: 3,
                ..DiscoveryConfig::default()
            },
            rounds: 3,
            adopt_top: 5,
            min_surplus: 1e-3,
            shock: 0.4,
        };
        let sweep = ScenarioSweep::sequential(9);
        let full = trajectory(200, 23, config, &sweep, Engine::Full, 3);
        let mut state = synthetic_state(200, 23);
        let mut driver = EvolutionDriver::new(config)
            .unwrap()
            .with_engine(Engine::Incremental);
        let mut records = Vec::new();
        let mut agreements = Vec::new();
        for _ in 0..3 {
            let outcome = driver.step(&mut state, &sweep).unwrap();
            records.push(outcome.record.with_zeroed_timing());
            agreements.extend(outcome.agreements);
        }
        assert!(
            driver.incremental_cache().is_none(),
            "noise > 0 must never engage the evaluation cache"
        );
        let json = MarketSnapshot::capture(&state, &driver, sweep.master_seed()).to_json();
        assert_eq!(full, (records, agreements, json));
    }

    #[test]
    fn generation_tracks_adoptions_and_perturbations() {
        let mut state = arbitrage_state(false);
        assert_eq!(state.generation(), 0);
        let outcome = evaluate_pair(&state, X, Y, (1.0, 0.0));
        state.adopt_outcome(&outcome, 3, 1e-6, 0).unwrap().unwrap();
        assert_eq!(state.generation(), 1, "adoption bumps the revision");
        // A refused re-adoption leaves the state (and counter) untouched.
        assert!(state.adopt_outcome(&outcome, 3, 1e-6, 1).unwrap().is_none());
        assert_eq!(state.generation(), 1);
        // Every perturbation pass bumps, whatever it ends up drawing.
        let mut rng = pan_runtime::coordinator_rng(9);
        state.perturb(0.2, &mut rng).unwrap();
        assert_eq!(state.generation(), 2);
        // Clones inherit the counter (they inherit the state it counts);
        // a rebuilt state starts over — cross-instance comparisons are
        // meaningless, which is why caches die with the instance.
        assert_eq!(state.clone().generation(), 2);
        assert_eq!(arbitrage_state(false).generation(), 0);
    }

    #[test]
    fn clean_cached_outcomes_match_fresh_evaluation_to_the_bit() {
        // Dirty-set soundness: after each incremental round, any cached
        // outcome whose endpoint rows are both clean must equal a fresh
        // from-scratch evaluation bit for bit — if it does not, the
        // dirty journal missed a mutation.
        let config = EvolutionConfig {
            discovery: DiscoveryConfig {
                grid: 3,
                ..DiscoveryConfig::default()
            },
            rounds: 8,
            adopt_top: 6,
            min_surplus: 1e-3,
            shock: 0.0,
        };
        let sweep = ScenarioSweep::sequential(9);
        let mut state = synthetic_state(300, 23);
        let mut driver = EvolutionDriver::new(config)
            .unwrap()
            .with_engine(Engine::Incremental);
        let mut checked = 0usize;
        for round in 0..4 {
            driver.step(&mut state, &sweep).unwrap();
            let cache = driver.incremental_cache().expect("incremental engaged");
            let pairs = &driver.enumeration_cache().expect("cached").pairs;
            let ctx = BatchContext::new(state.graph(), state.econ(), state.flows()).unwrap();
            let programs = NodePrograms::build(
                &ctx,
                config.discovery.reroute_share,
                config.discovery.attract_share,
            )
            .unwrap();
            let mut scratch = PairScratch::new();
            for (index, &pair) in pairs.iter().enumerate() {
                if state.is_adopted(pair.x, pair.y)
                    || state.is_dirty_row(pair.x)
                    || state.is_dirty_row(pair.y)
                {
                    continue;
                }
                let Some(cached) = cache.cached_outcome(index) else {
                    continue;
                };
                let transit = derive_pair_transit(&ctx, pair);
                let fresh = evaluate_candidate_with(
                    &ctx,
                    &programs,
                    &transit,
                    &mut scratch,
                    pair,
                    config.discovery.grid,
                )
                .unwrap();
                assert_eq!(
                    cached, &fresh,
                    "round {round}: cached outcome of clean pair {pair:?} went stale"
                );
                checked += 1;
            }
        }
        assert!(checked >= 50, "only {checked} clean pairs sampled");
    }

    #[test]
    fn candidate_enumeration_is_cached_until_the_graph_changes() {
        // Static peering graph (PeeringAdjacent adoptions never create
        // links): one rebuild, then reuses.
        let config = EvolutionConfig {
            discovery: DiscoveryConfig {
                grid: 3,
                ..DiscoveryConfig::default()
            },
            rounds: 3,
            adopt_top: 5,
            min_surplus: 1e-3,
            shock: 0.0,
        };
        let sweep = ScenarioSweep::sequential(9);
        let mut state = synthetic_state(200, 23);
        let mut driver = EvolutionDriver::new(config)
            .unwrap()
            .with_engine(Engine::Incremental);
        for _ in 0..3 {
            driver.step(&mut state, &sweep).unwrap();
        }
        let cache = driver.enumeration_cache().unwrap();
        assert_eq!(cache.rebuilds, 1, "static graphs enumerate once");
        assert_eq!(cache.reuses, 2);

        // A cloned state is a *different* state (fresh identity token):
        // stepping it through the same driver must not reuse the cache.
        let mut other = state.clone();
        driver.step(&mut other, &sweep).unwrap();
        assert_eq!(driver.enumeration_cache().unwrap().rebuilds, 2);

        // A prospective (k-hop) adoption registers a new peering link,
        // which invalidates the enumeration on the next round — on the
        // full engine too, since the cache is engine-independent.
        let mut state = arbitrage_state(true);
        let config = arbitrage_config(CandidatePolicy::PeeringKHop {
            k: 2,
            per_source_cap: 0,
        });
        let sweep = ScenarioSweep::sequential(7);
        let mut driver = EvolutionDriver::new(config).unwrap();
        let adopted = driver.step(&mut state, &sweep).unwrap();
        assert_eq!(adopted.record.new_links, 1, "the fixture adds a link");
        driver.step(&mut state, &sweep).unwrap();
        let cache = driver.enumeration_cache().unwrap();
        assert_eq!(cache.rebuilds, 2, "the new link forces a re-enumeration");
        assert_eq!(cache.reuses, 0);
    }

    #[test]
    fn full_engine_transit_cache_reuses_across_static_rounds() {
        // Static peering graph, no shocks: the transit table fills on
        // round 0 and later rounds reuse it — while producing exactly
        // the trajectory a cache-less driver (fresh per round, so every
        // transit re-derived) produces.
        let config = EvolutionConfig {
            discovery: DiscoveryConfig {
                grid: 3,
                ..DiscoveryConfig::default()
            },
            rounds: 3,
            adopt_top: 5,
            min_surplus: 1e-3,
            shock: 0.0,
        };
        let sweep = ScenarioSweep::sequential(9);
        let mut state = synthetic_state(200, 23);
        let mut driver = EvolutionDriver::new(config).unwrap();
        let mut warm = Vec::new();
        for _ in 0..3 {
            warm.push(driver.step(&mut state, &sweep).unwrap());
        }
        let cache = driver.full_cache().expect("full engine engaged");
        assert_eq!(cache.rebuilds, 1, "static graphs derive transits once");
        assert_eq!(cache.reuses, 2);
        assert!(
            driver.resident_bytes() > 0 && state.resident_bytes() > 0,
            "resident accounting covers the caches and the state"
        );

        let mut cold_state = synthetic_state(200, 23);
        for (round, outcome) in warm.iter().enumerate() {
            let mut cold = EvolutionDriver::resume(config, round).unwrap();
            let fresh = cold.step(&mut cold_state, &sweep).unwrap();
            assert_eq!(
                fresh.record.with_zeroed_timing(),
                outcome.record.with_zeroed_timing(),
                "round {round} diverged from the cold reference"
            );
            assert_eq!(fresh.agreements, outcome.agreements);
        }
    }

    /// Out-of-band mutation between driver rounds, mimicking a serving
    /// layer adopting an advisory answer on the resident market: the
    /// dirty journal — not any engine bookkeeping — must carry the
    /// change into the next incremental round.
    fn external_adopt(state: &mut MarketState, config: &EvolutionConfig, round: usize) {
        let graph = state.graph();
        let node = (0..graph.node_count() as u32)
            .max_by_key(|&i| graph.peer_indices(i).len())
            .unwrap();
        let asn = graph.asn_at(node);
        let report = advise(state, &config.discovery, asn, 0, &ThreadPool::new(1)).unwrap();
        let best = report
            .outcomes
            .iter()
            .find(|o| o.cash.is_some() && o.surplus > config.min_surplus)
            .cloned();
        if let Some(best) = best {
            state
                .adopt_outcome(&best, config.discovery.grid, config.min_surplus, round)
                .unwrap();
        }
    }

    mod differential {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            /// Satellite: random markets, random run parameters, random
            /// interleavings of {rounds, shocks, external adoptions} —
            /// the two engines must produce byte-identical trajectories
            /// and checkpoints at threads 1 and 4.
            #[test]
            fn random_markets_evolve_identically_under_both_engines(
                ases in 200usize..320,
                net_seed in 0u64..64,
                master_seed in 0u64..64,
                shock in prop_oneof![Just(0.0), Just(0.3)],
                adopt_top in 3usize..9,
                rounds in 2usize..5,
                external in prop::bool::ANY,
            ) {
                let config = EvolutionConfig {
                    discovery: DiscoveryConfig {
                        grid: 3,
                        ..DiscoveryConfig::default()
                    },
                    rounds,
                    adopt_top,
                    min_surplus: 1e-3,
                    shock,
                };
                let run = |sweep: &ScenarioSweep, engine: Engine| {
                    let mut state = synthetic_state(ases, net_seed);
                    let mut driver =
                        EvolutionDriver::new(config).unwrap().with_engine(engine);
                    let mut records = Vec::new();
                    let mut agreements = Vec::new();
                    for round in 0..rounds {
                        let outcome = driver.step(&mut state, sweep).unwrap();
                        records.push(outcome.record.with_zeroed_timing());
                        agreements.extend(outcome.agreements);
                        if external && round == 0 {
                            external_adopt(&mut state, &config, round);
                        }
                    }
                    let json =
                        MarketSnapshot::capture(&state, &driver, sweep.master_seed()).to_json();
                    (records, agreements, json)
                };
                let t1 = ScenarioSweep::sequential(master_seed);
                let t4 = ScenarioSweep::new(ThreadPool::new(4), master_seed);
                let full = run(&t1, Engine::Full);
                let incremental_t1 = run(&t1, Engine::Incremental);
                prop_assert_eq!(&full, &incremental_t1, "t1 diverged");
                let incremental_t4 = run(&t4, Engine::Incremental);
                prop_assert_eq!(&full, &incremental_t4, "t4 diverged");
            }
        }
    }
}
