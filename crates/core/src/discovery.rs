//! Topology-wide agreement discovery: which AS pairs profit from
//! mutuality agreements?
//!
//! The paper's central question is answered by the per-pair stack
//! ([`AgreementScenario`] + the §IV optimizers) one hand-picked pair at a
//! time. This module asks it for **every candidate pair of an entire
//! synthetic internet** at once:
//!
//! 1. [`enumerate_candidates`] walks the CSR topology for candidate
//!    `(X, Y)` pairs — existing peers ([`CandidatePolicy::PeeringAdjacent`])
//!    or prospective partners within `k` hops of the peering mesh
//!    ([`CandidatePolicy::PeeringKHop`]).
//! 2. [`evaluate_candidate`] computes both parties' agreement utilities
//!    (Eq. 3/7) **incrementally** on the dense
//!    [`FlowMatrix`]/[`DenseEconomics`] tables: a candidate touches
//!    `O(degree)` row entries, each contributing a per-entry price delta,
//!    so no flow vectors are cloned and no maps are hashed. Because the
//!    touched deltas are linear in the uniform operating point `(r, a)`,
//!    linear pricing collapses into two scalars per party and the
//!    operating-point grid of Eq. (9)/(10) costs almost nothing.
//! 3. [`discover`] fans the candidate list out over a
//!    [`ScenarioSweep`] (per-worker scratch buffers, per-item RNG
//!    streams) and returns the concluded agreements ranked by NBS
//!    surplus — bit-identical at any thread count.
//!
//! The evolution engines (`dynamics`/`incremental`) run the hotter
//! *programmed* variant instead: `NodePrograms` precomputes each
//! node's linear reroute/attract collapse **and** its transit-price
//! collapse (Σ sign·rate over the row, plus the nonlinear residue), and
//! a per-pair `PairTransit` summary subtracts the handful of excluded
//! targets (the beneficiary and its customers) from those per-node
//! totals. The per-round cost of the transit correction thus scales
//! with the excluded few instead of the ~1,500 targets an average hub
//! pair fans out to — the difference between streaming ~234M row
//! entries per 157k-pair round and touching almost none.
//!
//! [`evaluate_candidate_legacy`] runs the same grid through the original
//! allocation-heavy [`AgreementScenario`] path; it is the correctness
//! oracle for the dense engine and the "before" side of the
//! `BENCH_discovery.json` comparison.

use serde::{Deserialize, Serialize};

use pan_econ::{DenseEconomics, FlowMatrix, FlowVec};
use pan_runtime::ScenarioSweep;
use pan_topology::{AsGraph, Asn, NeighborKind};

use crate::cash::JOINT_TOLERANCE;
use crate::flow_volume::UTILITY_TOLERANCE;
use crate::nash::bargaining_transfer;
use crate::utility::{evaluate, OperatingPoint};
use crate::{Agreement, AgreementError, AgreementScenario, Result};

/// Tile width for candidate sweeps: workers claim runs of this many
/// consecutive candidates at a time. The enumeration is sorted by
/// primary row, so a tile's candidates share their `x`-side rows and
/// the touched `FlowMatrix`/`DenseEconomics` lanes stay cache-resident
/// across the run. Tiling only changes worker assignment, never what a
/// candidate computes (see `ThreadPool::run_with_tiled`), so any value
/// here is bit-identical; 256 candidates cover a few hub rows' worth of
/// entries without starving short sweeps of parallelism.
pub(crate) const CANDIDATE_TILE: usize = 256;

/// How candidate pairs are drawn from the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CandidatePolicy {
    /// Every existing peering link — the §VI population (a mutuality
    /// agreement upgrades an existing settlement-free relationship).
    PeeringAdjacent,
    /// Every pair within `k` hops of the peering mesh: `k = 1` equals
    /// [`PeeringAdjacent`](Self::PeeringAdjacent); larger `k` adds
    /// prospective partners that would first have to establish peering —
    /// pairs already holding a *transit* relationship are excluded, as
    /// they cannot additionally peer.
    /// `per_source_cap` bounds the pairs contributed per source AS
    /// (`0` = unbounded) — open-peering hubs otherwise make the 2-hop
    /// neighborhood quadratic. Each BFS level is enumerated in full
    /// before the cap applies; if the cap lands inside a level, the
    /// level's pairs are ranked by neighbor ASN and the smallest fill
    /// the remaining budget. The surviving set is therefore a canonical
    /// function of the topology — it cannot depend on CSR neighbor
    /// order, as a mid-level break would.
    PeeringKHop {
        /// Maximum peering-mesh distance.
        k: u8,
        /// Maximum candidate pairs per source AS (0 = unbounded),
        /// filled in BFS-level order with an ASN tie-break inside the
        /// last level.
        per_source_cap: usize,
    },
}

/// A candidate pair, by dense node index (`x < y`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CandidatePair {
    /// First party (dense node index).
    pub x: u32,
    /// Second party (dense node index).
    pub y: u32,
    /// Distance of the pair in the peering mesh (1 = existing peers).
    pub peering_hops: u8,
}

/// Enumerates candidate pairs in deterministic order (ascending source
/// index, then CSR neighbor order / BFS discovery order).
#[must_use]
pub fn enumerate_candidates(graph: &AsGraph, policy: CandidatePolicy) -> Vec<CandidatePair> {
    let n = graph.node_count() as u32;
    let mut pairs = Vec::new();
    match policy {
        CandidatePolicy::PeeringAdjacent => {
            for x in 0..n {
                for &y in graph.peer_indices(x) {
                    if y > x {
                        pairs.push(CandidatePair {
                            x,
                            y,
                            peering_hops: 1,
                        });
                    }
                }
            }
        }
        CandidatePolicy::PeeringKHop { k, per_source_cap } => {
            let k = k.max(1);
            // Per-source BFS over peer links with a stamp array; visited
            // nodes are collected in discovery order.
            let mut stamp = vec![u32::MAX; n as usize];
            let mut frontier: Vec<u32> = Vec::new();
            let mut next: Vec<u32> = Vec::new();
            let mut level: Vec<u32> = Vec::new();
            for x in 0..n {
                stamp[x as usize] = x;
                frontier.clear();
                frontier.push(x);
                let mut contributed = 0usize;
                for depth in 1..=k {
                    next.clear();
                    level.clear();
                    for &u in &frontier {
                        for &v in graph.peer_indices(u) {
                            if stamp[v as usize] == x {
                                continue;
                            }
                            stamp[v as usize] = x;
                            next.push(v);
                            // A prospective pair must be free to establish
                            // peering: a pair that is k hops apart in the
                            // peering mesh can still be directly linked by
                            // a transit relationship, which rules it out
                            // (depth 1 pairs are peers by construction).
                            if v > x && (depth == 1 || graph.neighbor_kind_by_index(x, v).is_none())
                            {
                                level.push(v);
                            }
                        }
                    }
                    // The cap only ever applies to a *fully enumerated*
                    // level. When it lands inside one, the level's pairs
                    // are ranked by neighbor ASN and the smallest fill
                    // the remaining budget — a canonical selection that
                    // cannot depend on CSR neighbor order, as the old
                    // mid-level break did.
                    let truncated =
                        if per_source_cap > 0 && contributed + level.len() > per_source_cap {
                            level.sort_unstable_by_key(|&v| graph.asn_at(v));
                            level.truncate(per_source_cap - contributed);
                            true
                        } else {
                            false
                        };
                    contributed += level.len();
                    for &v in &level {
                        pairs.push(CandidatePair {
                            x,
                            y: v,
                            peering_hops: depth,
                        });
                    }
                    if truncated || (per_source_cap > 0 && contributed >= per_source_cap) {
                        break;
                    }
                    std::mem::swap(&mut frontier, &mut next);
                }
            }
        }
    }
    pairs
}

/// Enumerates only the candidate pairs involving one AS — the serving
/// fast path behind per-AS advisory queries: instead of sweeping every
/// candidate of the topology, walk just `node`'s peering neighborhood
/// under the same policy rules as [`enumerate_candidates`].
///
/// The policy is applied from `node`'s perspective: its peers for
/// [`CandidatePolicy::PeeringAdjacent`], a BFS over the peering mesh for
/// [`CandidatePolicy::PeeringKHop`] (transit-linked pairs excluded, the
/// per-source cap filled in level order with the same canonical ASN
/// tie-break inside the last level). Unlike the full enumeration — where
/// each pair is emitted from its lower-indexed endpoint only — every
/// partner of `node` counts, on either side; pairs are normalized
/// (`x < y`) and returned in deterministic neighborhood order.
#[must_use]
pub fn enumerate_candidates_for(
    graph: &AsGraph,
    policy: CandidatePolicy,
    node: u32,
) -> Vec<CandidatePair> {
    let normalized = |partner: u32, depth: u8| CandidatePair {
        x: node.min(partner),
        y: node.max(partner),
        peering_hops: depth,
    };
    let mut pairs = Vec::new();
    match policy {
        CandidatePolicy::PeeringAdjacent => {
            for &y in graph.peer_indices(node) {
                pairs.push(normalized(y, 1));
            }
        }
        CandidatePolicy::PeeringKHop { k, per_source_cap } => {
            let k = k.max(1);
            let mut stamp = vec![false; graph.node_count()];
            stamp[node as usize] = true;
            let mut frontier = vec![node];
            let mut next: Vec<u32> = Vec::new();
            let mut level: Vec<u32> = Vec::new();
            let mut contributed = 0usize;
            for depth in 1..=k {
                next.clear();
                level.clear();
                for &u in &frontier {
                    for &v in graph.peer_indices(u) {
                        if stamp[v as usize] {
                            continue;
                        }
                        stamp[v as usize] = true;
                        next.push(v);
                        if depth == 1 || graph.neighbor_kind_by_index(node, v).is_none() {
                            level.push(v);
                        }
                    }
                }
                let truncated = if per_source_cap > 0 && contributed + level.len() > per_source_cap
                {
                    level.sort_unstable_by_key(|&v| graph.asn_at(v));
                    level.truncate(per_source_cap - contributed);
                    true
                } else {
                    false
                };
                contributed += level.len();
                for &v in &level {
                    pairs.push(normalized(v, depth));
                }
                if truncated || (per_source_cap > 0 && contributed >= per_source_cap) {
                    break;
                }
                std::mem::swap(&mut frontier, &mut next);
            }
        }
    }
    pairs
}

/// Immutable batch-evaluation context: the topology and its dense flow
/// and pricing tables, plus precomputed per-AS flow totals.
#[derive(Debug, Clone)]
pub struct BatchContext<'a> {
    graph: &'a AsGraph,
    econ: &'a DenseEconomics,
    flows: &'a FlowMatrix,
    totals: Vec<f64>,
}

impl<'a> BatchContext<'a> {
    /// Builds the context, checking that the tables match the graph shape.
    ///
    /// # Errors
    ///
    /// Returns [`AgreementError::DimensionMismatch`] if `econ` or `flows`
    /// were built from a different graph.
    pub fn new(
        graph: &'a AsGraph,
        econ: &'a DenseEconomics,
        flows: &'a FlowMatrix,
    ) -> Result<Self> {
        for actual in [econ.node_count(), flows.node_count()] {
            if actual != graph.node_count() {
                return Err(AgreementError::DimensionMismatch {
                    expected: graph.node_count(),
                    actual,
                });
            }
        }
        Ok(BatchContext {
            graph,
            econ,
            flows,
            totals: flows.totals(),
        })
    }

    /// Like [`new`](Self::new), but fills a caller-provided totals
    /// buffer instead of allocating one — the allocation-free path for
    /// callers that rebuild a context every adoption
    /// (`MarketState::adopt_outcome`). The buffer's previous contents
    /// are discarded; recover it with
    /// [`into_totals_buffer`](Self::into_totals_buffer). The computed
    /// totals are bitwise those of [`new`](Self::new)
    /// ([`FlowMatrix::totals_into`] runs the same per-row summation).
    ///
    /// # Errors
    ///
    /// Returns [`AgreementError::DimensionMismatch`] if `econ` or
    /// `flows` were built from a different graph.
    pub fn with_totals_buffer(
        graph: &'a AsGraph,
        econ: &'a DenseEconomics,
        flows: &'a FlowMatrix,
        mut totals: Vec<f64>,
    ) -> Result<Self> {
        for actual in [econ.node_count(), flows.node_count()] {
            if actual != graph.node_count() {
                return Err(AgreementError::DimensionMismatch {
                    expected: graph.node_count(),
                    actual,
                });
            }
        }
        flows.totals_into(&mut totals);
        Ok(BatchContext {
            graph,
            econ,
            flows,
            totals,
        })
    }

    /// Consumes the context and returns its totals buffer for reuse.
    #[must_use]
    pub fn into_totals_buffer(self) -> Vec<f64> {
        self.totals
    }

    /// The topology.
    #[must_use]
    pub fn graph(&self) -> &AsGraph {
        self.graph
    }

    /// The dense pricing tables.
    #[must_use]
    pub fn econ(&self) -> &DenseEconomics {
        self.econ
    }

    /// The dense baseline flows.
    #[must_use]
    pub fn flows(&self) -> &FlowMatrix {
        self.flows
    }
}

/// Configuration of a discovery sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiscoveryConfig {
    /// Candidate enumeration policy.
    pub policy: CandidatePolicy,
    /// Share of provider traffic assumed reroutable onto new segments
    /// (the market assumption of §IV, applied uniformly).
    pub reroute_share: f64,
    /// Share of customer/end-host traffic assumed attractable.
    pub attract_share: f64,
    /// Grid points per operating-point axis (`[0, 1]` inclusive, ≥ 2).
    pub grid: usize,
    /// Relative jitter applied per pair to both shares (drawn from the
    /// pair's sweep stream; `0` disables randomness entirely).
    pub noise: f64,
    /// Keep only the `top` highest-surplus outcomes in the report
    /// (`0` = keep every evaluated pair).
    pub top: usize,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            policy: CandidatePolicy::PeeringAdjacent,
            reroute_share: 0.5,
            attract_share: 0.2,
            grid: 5,
            noise: 0.0,
            top: 0,
        }
    }
}

impl DiscoveryConfig {
    pub(crate) fn validate(&self) -> Result<()> {
        for share in [self.reroute_share, self.attract_share, self.noise] {
            if !share.is_finite() || !(0.0..=1.0).contains(&share) {
                return Err(AgreementError::InvalidFraction { value: share });
            }
        }
        if self.grid < 2 {
            return Err(AgreementError::DimensionMismatch {
                expected: 2,
                actual: self.grid,
            });
        }
        Ok(())
    }

    /// The effective `(reroute, attract)` shares for one candidate pair:
    /// the configured shares with the per-pair noise jitter applied from
    /// the pair's RNG stream. The single implementation both [`discover`]
    /// and the dynamics engine draw from, so recorded
    /// [`PairOutcome::shares`] are reproducible everywhere.
    pub(crate) fn jittered_shares(&self, rng: &mut impl rand::Rng) -> (f64, f64) {
        let (mut reroute, mut attract) = (self.reroute_share, self.attract_share);
        if self.noise > 0.0 {
            let jitter_r: f64 = rng.gen_range(-1.0..1.0);
            let jitter_a: f64 = rng.gen_range(-1.0..1.0);
            reroute = (reroute * (1.0 + self.noise * jitter_r)).clamp(0.0, 1.0);
            attract = (attract * (1.0 + self.noise * jitter_a)).clamp(0.0, 1.0);
        }
        (reroute, attract)
    }
}

/// The flow-volume optimum of a pair (§IV-A over the uniform grid).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowVolumePoint {
    /// Reroute fraction at the optimum.
    pub reroute: f64,
    /// Attract fraction at the optimum.
    pub attract: f64,
    /// Utility of `X` at the optimum.
    pub utility_x: f64,
    /// Utility of `Y` at the optimum.
    pub utility_y: f64,
}

impl FlowVolumePoint {
    /// The achieved Nash product.
    #[must_use]
    pub fn nash_product(&self) -> f64 {
        self.utility_x * self.utility_y
    }
}

/// The cash-compensation optimum of a pair (§IV-B + NBS, Eq. 10–11).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CashPoint {
    /// Reroute fraction at the welfare optimum.
    pub reroute: f64,
    /// Attract fraction at the welfare optimum.
    pub attract: f64,
    /// Joint utility `u_X + u_Y` (the NBS surplus).
    pub joint_utility: f64,
    /// NBS transfer `Π_{X→Y}` (negative: `Y` pays `X`).
    pub transfer_x_to_y: f64,
}

/// The evaluation of one candidate pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairOutcome {
    /// First party.
    pub x: Asn,
    /// Second party.
    pub y: Asn,
    /// Peering-mesh distance of the pair (1 = existing peers).
    pub peering_hops: u8,
    /// Effective `(reroute, attract)` shares the evaluation used — the
    /// configured shares after any per-pair noise jitter. Recording them
    /// makes every outcome exactly reproducible (and adoptable) without
    /// replaying the sweep's RNG streams.
    pub shares: (f64, f64),
    /// New segments gained by `X` / by `Y`.
    pub segments: (usize, usize),
    /// Flow-volume optimum, if the agreement concludes under Eq. (9).
    pub flow_volume: Option<FlowVolumePoint>,
    /// Cash optimum, if the agreement is viable under Eq. (10).
    pub cash: Option<CashPoint>,
    /// The pair's NBS surplus: the best joint utility, clamped at zero.
    pub surplus: f64,
}

impl PairOutcome {
    /// `true` if either optimization method concludes the agreement.
    #[must_use]
    pub fn is_concluded(&self) -> bool {
        self.flow_volume.is_some() || self.cash.is_some()
    }
}

/// Aggregate result of a discovery sweep, ranked by surplus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscoveryReport {
    /// Number of candidate pairs enumerated and evaluated.
    pub candidates: usize,
    /// Pairs concluding under flow-volume optimization.
    pub concluded_flow_volume: usize,
    /// Pairs viable under cash compensation.
    pub concluded_cash: usize,
    /// Sum of NBS surpluses over all viable pairs.
    pub total_surplus: f64,
    /// Outcomes ranked by surplus (descending), truncated to
    /// [`DiscoveryConfig::top`] when non-zero.
    pub outcomes: Vec<PairOutcome>,
}

impl DiscoveryReport {
    /// Assembles a report from evaluated outcomes: aggregate counts,
    /// the canonical ranking (surplus descending, ASN-pair tie-break),
    /// and top-`top` truncation (`0` = keep all). The single place the
    /// ranking rule lives — both the dense sweep and the legacy
    /// comparison engine in `pan-bench` build their reports here, so
    /// their outputs stay comparable by construction.
    ///
    /// Surpluses are ordered by [`f64::total_cmp`], so assembly never
    /// panics on unusual inputs; the engines themselves reject
    /// non-finite utilities ([`AgreementError::InvalidUtility`]), so
    /// engine-produced surpluses are always finite.
    #[must_use]
    pub fn from_outcomes(mut outcomes: Vec<PairOutcome>, top: usize) -> Self {
        let concluded_flow_volume = outcomes.iter().filter(|o| o.flow_volume.is_some()).count();
        let concluded_cash = outcomes.iter().filter(|o| o.cash.is_some()).count();
        let total_surplus = outcomes.iter().map(|o| o.surplus).sum();
        outcomes.sort_by(|a, b| {
            b.surplus
                .total_cmp(&a.surplus)
                .then_with(|| (a.x, a.y).cmp(&(b.x, b.y)))
        });
        let candidates = outcomes.len();
        if top > 0 {
            outcomes.truncate(top);
        }
        DiscoveryReport {
            candidates,
            concluded_flow_volume,
            concluded_cash,
            total_surplus,
            outcomes,
        }
    }
}

/// Reusable per-worker buffers for pair evaluation: per-row delta
/// coefficients (indexed by packed row position), the touched-position
/// lists that make resetting O(touched), and the nonlinear-entry
/// spill lists.
#[derive(Debug, Default)]
pub struct PairScratch {
    side: [SideScratch; 2],
}

#[derive(Debug, Default)]
struct SideScratch {
    /// Coefficient of `r` per touched row position.
    coeff_r: Vec<f64>,
    /// Coefficient of `a` per touched row position.
    coeff_a: Vec<f64>,
    /// Whether a position is already on the `touched` list (coefficients
    /// can be zero for genuinely touched entries, so zero-ness is not a
    /// usable marker).
    marked: Vec<bool>,
    touched: Vec<u32>,
    /// Entries whose pricing does not collapse linearly:
    /// `(baseline flow, A, B, entry index into the party's row)`.
    nonlinear: Vec<(f64, f64, f64, u32)>,
    /// Grant-target positions in the *partner's* row.
    targets: Vec<u32>,
}

impl PairScratch {
    /// Creates empty scratch (buffers grow to the hottest row and stay).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes resident in the scratch buffers — feeds the workspace's
    /// memory-budget accounting.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.side
            .iter()
            .map(|s| {
                (s.coeff_r.capacity() + s.coeff_a.capacity()) * size_of::<f64>()
                    + s.marked.capacity() * size_of::<bool>()
                    + (s.touched.capacity() + s.targets.capacity()) * size_of::<u32>()
                    + s.nonlinear.capacity() * size_of::<(f64, f64, f64, u32)>()
            })
            .sum()
    }
}

impl SideScratch {
    fn ensure(&mut self, row_len: usize) {
        if self.coeff_r.len() < row_len {
            self.coeff_r.resize(row_len, 0.0);
            self.coeff_a.resize(row_len, 0.0);
            self.marked.resize(row_len, false);
        }
    }

    fn touch(&mut self, pos: usize, dr: f64, da: f64) {
        if !self.marked[pos] {
            self.marked[pos] = true;
            self.touched.push(pos as u32);
        }
        self.coeff_r[pos] += dr;
        self.coeff_a[pos] += da;
    }

    fn reset(&mut self) {
        for &pos in &self.touched {
            self.coeff_r[pos as usize] = 0.0;
            self.coeff_a[pos as usize] = 0.0;
            self.marked[pos as usize] = false;
        }
        self.touched.clear();
        self.nonlinear.clear();
        self.targets.clear();
    }
}

/// Per-party linear collapse of the touched deltas:
/// `u(r, a) = lin_r·r + lin_a·a + Σ nonlinear residuals`.
struct PartyProgram {
    node: u32,
    lin_r: f64,
    lin_a: f64,
    /// Δtotal coefficients (for the internal-cost term).
    total_r: f64,
    total_a: f64,
    /// End-host delta coefficient of `a` (attract only).
    end_host_a: f64,
    end_host_linear: Option<f64>,
    internal_linear: Option<f64>,
    segments: usize,
}

/// The mutuality grant targets for `beneficiary` via `partner`:
/// partner's providers and peers, minus the beneficiary itself and minus
/// the beneficiary's customers (§VI rule) — written into
/// `targets` as positions in the **partner's** packed row.
pub(crate) fn collect_targets(
    graph: &AsGraph,
    beneficiary: u32,
    partner: u32,
    targets: &mut Vec<u32>,
) {
    let (_, e_end) = graph.class_boundaries(partner);
    let row = graph.neighbor_indices(partner);
    for (pos, &t) in row[..e_end].iter().enumerate() {
        if t == beneficiary {
            continue;
        }
        if graph.has_neighbor_kind(beneficiary, t, NeighborKind::Customer) {
            continue;
        }
        targets.push(pos as u32);
    }
}

/// Evaluates one candidate pair on the dense tables over the uniform
/// operating-point grid; the math of Eq. (3)/(7) with the default
/// opportunity synthesis of
/// [`AgreementScenario::with_default_opportunities`].
///
/// # Errors
///
/// - [`AgreementError::DimensionMismatch`] if `grid < 2` (a single grid
///   point has no well-defined step; the legacy twin rejects it
///   identically).
/// - [`AgreementError::InvalidFraction`] for shares outside `[0, 1]`.
/// - [`AgreementError::InvalidUtility`] if the economics produce a
///   non-finite utility at any grid point (e.g. overflowing power-law
///   prices) — surfaced as an error instead of silently ranking the
///   pair as "no agreement".
/// - Propagates pricing errors for invalid flow volumes.
pub fn evaluate_candidate(
    ctx: &BatchContext<'_>,
    scratch: &mut PairScratch,
    pair: CandidatePair,
    reroute_share: f64,
    attract_share: f64,
    grid: usize,
) -> Result<PairOutcome> {
    if grid < 2 {
        return Err(AgreementError::DimensionMismatch {
            expected: 2,
            actual: grid,
        });
    }
    for share in [reroute_share, attract_share] {
        if !share.is_finite() || !(0.0..=1.0).contains(&share) {
            return Err(AgreementError::InvalidFraction { value: share });
        }
    }
    let graph = ctx.graph;
    let (x, y) = (pair.x, pair.y);
    debug_assert!(x != y, "candidate pairs have distinct parties");

    // Phase 1: grant targets of both sides (positions in partner rows).
    let [sx, sy] = &mut scratch.side;
    sx.reset();
    sy.reset();
    collect_targets(graph, x, y, &mut sx.targets); // x's gains, in y's row
    collect_targets(graph, y, x, &mut sy.targets); // y's gains, in x's row
    sx.ensure(graph.degree_of_index(x) + 1);
    sy.ensure(graph.degree_of_index(y) + 1);

    // Phase 2: accumulate per-entry (r, a) coefficients for both rows.
    let mut programs = [
        PartyProgram {
            node: x,
            lin_r: 0.0,
            lin_a: 0.0,
            total_r: 0.0,
            total_a: 0.0,
            end_host_a: 0.0,
            end_host_linear: ctx.econ.end_host_price(x).linear_rate(),
            internal_linear: ctx.econ.internal_cost(x).linear_rate(),
            segments: sx.targets.len(),
        },
        PartyProgram {
            node: y,
            lin_r: 0.0,
            lin_a: 0.0,
            total_r: 0.0,
            total_a: 0.0,
            end_host_a: 0.0,
            end_host_linear: ctx.econ.end_host_price(y).linear_rate(),
            internal_linear: ctx.econ.internal_cost(y).linear_rate(),
            segments: sy.targets.len(),
        },
    ];

    // Beneficiary-side deltas, and the induced partner-side transit.
    // Volume coefficients of the whole agreement (for the "any volume"
    // conclusion test): total rerouted volume per unit of `r` and total
    // attracted volume per unit of `a`.
    let mut volume_r = 0.0;
    let mut volume_a = 0.0;
    for side in 0..2 {
        let (bene, partner) = if side == 0 { (x, y) } else { (y, x) };
        let nsegs = programs[side].segments;
        if nsegs == 0 {
            continue;
        }
        let (p_end, e_end) = graph.class_boundaries(bene);
        let row = graph.neighbor_indices(bene);
        let [s0, s1] = &mut scratch.side;
        let (sb, sp) = if side == 0 { (s0, s1) } else { (s1, s0) };
        // Total reroutable volume R (per unit of r) and attractable
        // volume T (per unit of a), aggregated across the beneficiary's
        // nsegs segments (the per-segment split cancels on its own row).
        let mut reroutable = 0.0;
        let mut attractable = 0.0;
        for (pos, &p) in row[..p_end].iter().enumerate() {
            if p == partner {
                continue;
            }
            let f = ctx.flows.flow(bene, pos);
            if f <= 0.0 {
                continue;
            }
            let moved = reroute_share * f;
            sb.touch(pos, -moved, 0.0);
            reroutable += moved;
        }
        for pos in e_end..row.len() {
            let f = ctx.flows.flow(bene, pos);
            if f <= 0.0 {
                continue;
            }
            let gained = attract_share * f;
            sb.touch(pos, 0.0, gained);
            attractable += gained;
        }
        let end_host_gain = attract_share * ctx.flows.end_host(bene);
        attractable += end_host_gain;
        programs[side].end_host_a = end_host_gain;
        // The beneficiary's flow towards the partner grows by the full
        // segment volume. The link is (or would be) settlement-free
        // peering, so it contributes to the total only — tracked here as
        // untouched-entry coefficients (touched entries add theirs in
        // phase 3, and the end-host scalar adds its own).
        programs[side].total_r += reroutable;
        programs[side].total_a += attractable;

        // Partner side: the whole volume transits the partner — in on
        // the beneficiary link (settlement-free, totals only), out on
        // each target link (split evenly across the nsegs segments, as
        // the default opportunities do).
        let per_seg_r = reroutable / nsegs as f64;
        let per_seg_a = attractable / nsegs as f64;
        for i in 0..sb.targets.len() {
            sp.touch(sb.targets[i] as usize, per_seg_r, per_seg_a);
        }
        let other = 1 - side;
        programs[other].total_r += reroutable;
        programs[other].total_a += attractable;
        volume_r += reroutable;
        volume_a += attractable;
    }

    // Phase 3: collapse touched entries into linear coefficients,
    // spilling nonlinear ones.
    for (side, program) in programs.iter_mut().enumerate() {
        let s = &mut scratch.side[side];
        let node = program.node;
        // SoA lanes replace the per-entry enum dispatch; the zero rates
        // stored for skipped entries make the unconditional accumulate a
        // bitwise identity with the skip loop (see `signed_rate_row`).
        let rates = ctx.econ.signed_rate_row(node);
        let nonlinear = ctx.econ.nonlinear_row(node);
        for &pos in &s.touched {
            let (dr, da) = (s.coeff_r[pos as usize], s.coeff_a[pos as usize]);
            program.total_r += dr;
            program.total_a += da;
            if nonlinear[pos as usize] {
                s.nonlinear
                    .push((ctx.flows.flow(node, pos as usize), dr, da, pos));
            } else {
                program.lin_r += rates[pos as usize] * dr;
                program.lin_a += rates[pos as usize] * da;
            }
        }
        // End-host revenue from attraction (a scalar, not a row entry).
        program.total_a += program.end_host_a;
        if program.end_host_a != 0.0 {
            if let Some(rate) = program.end_host_linear {
                program.lin_a += rate * program.end_host_a;
            }
        }
        // Linear internal cost collapses too.
        if let Some(rate) = program.internal_linear {
            program.lin_r -= rate * program.total_r;
            program.lin_a -= rate * program.total_a;
        }
    }

    // Phase 4: scan the operating-point grid (grid >= 2 was validated on
    // entry, so `step` is finite).
    let step = 1.0 / (grid - 1) as f64;
    let mut best_fv: Option<(f64, f64, f64, f64)> = None;
    let mut best_fv_score = f64::NEG_INFINITY;
    let mut best_cash: Option<(f64, f64, f64, f64)> = None;
    let mut best_joint = f64::NEG_INFINITY;
    for ri in 0..grid {
        let r = ri as f64 * step;
        for ai in 0..grid {
            let a = ai as f64 * step;
            let mut utilities = [0.0f64; 2];
            for (side, program) in programs.iter().enumerate() {
                let mut u = program.lin_r * r + program.lin_a * a;
                let s = &scratch.side[side];
                for &(f, dr, da, pos) in &s.nonlinear {
                    let entry = ctx.econ.entry(program.node, pos as usize);
                    u += entry.utility_delta(f, dr * r + da * a)?;
                }
                if program.end_host_linear.is_none() && program.end_host_a != 0.0 {
                    let f = ctx.flows.end_host(program.node);
                    let price = ctx.econ.end_host_price(program.node);
                    u += price.price(f + program.end_host_a * a)? - price.price(f)?;
                }
                if program.internal_linear.is_none() {
                    let total = ctx.totals[program.node as usize];
                    let delta = program.total_r * r + program.total_a * a;
                    let cost = ctx.econ.internal_cost(program.node);
                    u -= cost.eval((total + delta).max(0.0))? - cost.eval(total)?;
                }
                if !u.is_finite() {
                    return Err(AgreementError::InvalidUtility { value: u });
                }
                utilities[side] = u;
            }
            let (ux, uy) = (utilities[0], utilities[1]);
            if ux >= -UTILITY_TOLERANCE && uy >= -UTILITY_TOLERANCE {
                let score = ux.max(0.0) * uy.max(0.0) + 1e-7 * (ux + uy);
                if score > best_fv_score {
                    best_fv_score = score;
                    best_fv = Some((r, a, ux, uy));
                }
            }
            let joint = ux + uy;
            if joint > best_joint {
                best_joint = joint;
                best_cash = Some((r, a, ux, uy));
            }
        }
    }

    // Phase 5: conclusions (same semantics as the §IV optimizers).
    let flow_volume = best_fv.and_then(|(r, a, ux, uy)| {
        let product = ux.max(0.0) * uy.max(0.0);
        let volume = r * volume_r + a * volume_a;
        (product > UTILITY_TOLERANCE && volume > UTILITY_TOLERANCE).then_some(FlowVolumePoint {
            reroute: r,
            attract: a,
            utility_x: ux,
            utility_y: uy,
        })
    });
    let cash = match best_cash {
        Some((r, a, ux, uy)) if ux + uy > JOINT_TOLERANCE => Some(CashPoint {
            reroute: r,
            attract: a,
            joint_utility: ux + uy,
            transfer_x_to_y: bargaining_transfer(ux, uy)?,
        }),
        _ => None,
    };
    let surplus = cash.map_or(0.0, |c| c.joint_utility.max(0.0));
    Ok(PairOutcome {
        x: graph.asn_at(x),
        y: graph.asn_at(y),
        peering_hops: pair.peering_hops,
        shares: (reroute_share, attract_share),
        segments: (programs[0].segments, programs[1].segments),
        flow_volume,
        cash,
        surplus,
    })
}

/// The once-per-round, per-node collapse behind
/// [`evaluate_candidate_with`]: every quantity of a pair evaluation
/// that depends on one endpoint's row alone — the beneficiary-side
/// reroute / attract deltas of phase 2 and their linear collapse of
/// phase 3 — computed once per node instead of once per candidate. A
/// hub AS with thousands of customer links sits on hundreds of
/// candidate pairs, and the per-pair evaluator walks its full row for
/// every one of them; a sweep's evaluation cost was
/// `Σ_pairs (deg(x) + deg(y))` where `Σ_nodes deg(n)` plus per-pair
/// target work suffices.
///
/// The collapse fixes the `(reroute, attract)` shares at build time, so
/// it serves noise-free configurations only: share jitter makes the
/// deltas per-pair again, and those sweeps keep using
/// [`evaluate_candidate`].
#[derive(Debug, Clone)]
pub struct NodePrograms {
    reroute_share: f64,
    attract_share: f64,
    nodes: Vec<NodeSide>,
    /// CSR spill of nonlinear own-row entries per node, the same tuple
    /// shape as the per-pair scratch: `(baseline flow, A, B, position)`.
    nonlinear: Vec<(f64, f64, f64, u32)>,
    /// `node_count + 1` prefix offsets into `nonlinear`.
    nonlinear_off: Vec<u32>,
    /// Per node, `Σ sign·rate` over the linear provider/peer entries of
    /// its row (position order) — the transit-side twin of the own-row
    /// collapse. A pair's grant targets are the partner's providers and
    /// peers minus a small §VI exclusion set, so the per-target linear
    /// fold becomes this sum minus the pair's [`SideTransit::excl_lin`].
    transit_lin: Vec<f64>,
    /// CSR of nonlinear provider/peer entry positions per node
    /// (ascending); the rare targets that still price per grid point.
    transit_nonlinear: Vec<u32>,
    /// `node_count + 1` prefix offsets into `transit_nonlinear`.
    transit_nonlinear_off: Vec<u32>,
}

/// One node's collapsed beneficiary-side program: what the node's own
/// packed row contributes to any agreement in which it is a
/// beneficiary, independent of the partner.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct NodeSide {
    /// Total reroutable provider volume per unit of `r`.
    reroutable: f64,
    /// Total attractable volume per unit of `a`, end-host included.
    attractable: f64,
    /// The end-host share of `attractable`.
    end_host_gain: f64,
    /// Linear utility coefficient of `r` over the own-row deltas.
    lin_r: f64,
    /// Linear utility coefficient of `a` over the own-row deltas.
    lin_a: f64,
    /// Δtotal coefficient of `r` (own-row deltas plus the flow gained
    /// on the settlement-free partner link).
    total_r: f64,
    /// Δtotal coefficient of `a`, end-host arrivals double-counted as
    /// in the per-pair evaluator (they enter and terminate at the node).
    total_a: f64,
}

impl NodePrograms {
    /// Collapses every node's beneficiary-side deltas at fixed shares.
    ///
    /// # Errors
    ///
    /// Returns [`AgreementError::InvalidFraction`] for shares outside
    /// `[0, 1]` — the validation [`evaluate_candidate`] applies per
    /// pair, hoisted to build time.
    pub fn build(
        ctx: &BatchContext<'_>,
        reroute_share: f64,
        attract_share: f64,
    ) -> Result<NodePrograms> {
        for share in [reroute_share, attract_share] {
            if !share.is_finite() || !(0.0..=1.0).contains(&share) {
                return Err(AgreementError::InvalidFraction { value: share });
            }
        }
        let n = ctx.graph.node_count();
        let mut programs = NodePrograms {
            reroute_share,
            attract_share,
            nodes: Vec::with_capacity(n),
            nonlinear: Vec::new(),
            nonlinear_off: Vec::with_capacity(n + 1),
            transit_lin: Vec::with_capacity(n),
            transit_nonlinear: Vec::new(),
            transit_nonlinear_off: Vec::with_capacity(n + 1),
        };
        programs.nonlinear_off.push(0);
        programs.transit_nonlinear_off.push(0);
        for node in 0..n as u32 {
            let side = collapse_node(
                ctx,
                node,
                None,
                reroute_share,
                attract_share,
                &mut programs.nonlinear,
            );
            programs.nodes.push(side);
            programs.nonlinear_off.push(programs.nonlinear.len() as u32);
            // Transit collapse: the per-target fold of the per-pair
            // evaluator, summed once over the node's full provider/peer
            // segment in position order. The SoA rate lane streams
            // branch-free: skipped entries hold `0.0` there, and adding
            // a zero to a `+0.0`-seeded accumulator is a bitwise no-op,
            // so this sum matches the dispatching loop bit for bit.
            let (_, e_end) = ctx.graph.class_boundaries(node);
            let rates = ctx.econ.signed_rate_row(node);
            let mut lin = 0.0f64;
            for &rate in &rates[..e_end] {
                lin += rate;
            }
            for (pos, &nl) in ctx.econ.nonlinear_row(node)[..e_end].iter().enumerate() {
                if nl {
                    programs.transit_nonlinear.push(pos as u32);
                }
            }
            programs.transit_lin.push(lin);
            programs
                .transit_nonlinear_off
                .push(programs.transit_nonlinear.len() as u32);
        }
        Ok(programs)
    }

    /// The nonlinear own-row spill of `node`.
    fn nonlinear_of(&self, node: u32) -> &[(f64, f64, f64, u32)] {
        let (lo, hi) = (
            self.nonlinear_off[node as usize] as usize,
            self.nonlinear_off[node as usize + 1] as usize,
        );
        &self.nonlinear[lo..hi]
    }

    /// The nonlinear provider/peer entry positions of `node`.
    fn transit_nonlinear_of(&self, node: u32) -> &[u32] {
        let (lo, hi) = (
            self.transit_nonlinear_off[node as usize] as usize,
            self.transit_nonlinear_off[node as usize + 1] as usize,
        );
        &self.transit_nonlinear[lo..hi]
    }
}

/// Collapses one node's own-row deltas: provider reroutes
/// (`-share·f` per provider entry with positive flow), customer
/// attraction (`+share·f` per customer entry), the end-host gain, and
/// the linear utility collapse of all of them; nonlinear entries spill
/// into `spill` for per-grid-point evaluation. `skip_provider` excludes
/// the partner from the provider walk for (prospective k-hop) pairs
/// whose partner is simultaneously a provider — the per-pair
/// evaluator's `p == partner` skip.
fn collapse_node(
    ctx: &BatchContext<'_>,
    node: u32,
    skip_provider: Option<u32>,
    reroute_share: f64,
    attract_share: f64,
    spill: &mut Vec<(f64, f64, f64, u32)>,
) -> NodeSide {
    let graph = ctx.graph;
    let (p_end, e_end) = graph.class_boundaries(node);
    let row = graph.neighbor_indices(node);
    let mut side = NodeSide::default();
    // SoA lanes: one f64 load + one bool test per touched entry instead
    // of enum dispatch. `rates[pos]` is `sign·rate` (zero for peers), so
    // accumulating it unconditionally only ever adds `±0.0` where the
    // dispatching loop skipped — a bitwise summation identity.
    let rates = ctx.econ.signed_rate_row(node);
    let nonlinear = ctx.econ.nonlinear_row(node);
    let mut touch = |side: &mut NodeSide, pos: usize, dr: f64, da: f64| {
        side.total_r += dr;
        side.total_a += da;
        if nonlinear[pos] {
            spill.push((ctx.flows.flow(node, pos), dr, da, pos as u32));
        } else {
            side.lin_r += rates[pos] * dr;
            side.lin_a += rates[pos] * da;
        }
    };
    for (pos, &p) in row[..p_end].iter().enumerate() {
        if Some(p) == skip_provider {
            continue;
        }
        let f = ctx.flows.flow(node, pos);
        if f <= 0.0 {
            continue;
        }
        let moved = reroute_share * f;
        side.reroutable += moved;
        touch(&mut side, pos, -moved, 0.0);
    }
    for pos in e_end..row.len() {
        let f = ctx.flows.flow(node, pos);
        if f <= 0.0 {
            continue;
        }
        let gained = attract_share * f;
        side.attractable += gained;
        touch(&mut side, pos, 0.0, gained);
    }
    let end_host_gain = attract_share * ctx.flows.end_host(node);
    side.attractable += end_host_gain;
    side.end_host_gain = end_host_gain;
    // The flow gained toward the partner (the full segment volume) and
    // the end-host arrivals enter the node's Δtotal too, mirroring the
    // per-pair evaluator's phase-2 + end-of-phase-3 accounting.
    side.total_r += side.reroutable;
    side.total_a += side.attractable;
    side.total_a += end_host_gain;
    side
}

/// The pair-specific transit structure of one candidate: everything
/// [`evaluate_candidate_with`] needs beyond the per-node programs, and
/// a pure function of the graph and the (transit) pricing tables alone —
/// flows never enter, so the incremental engine caches these across
/// rounds and only rebuilds them when topology or pricing changes.
#[derive(Debug, Clone, Default)]
pub struct PairTransit {
    /// `[x-side, y-side]`, beneficiary order as in [`CandidatePair`].
    sides: [SideTransit; 2],
}

impl PairTransit {
    /// Bytes held **beyond** `size_of::<PairTransit>()` — the sides'
    /// exclusion-list capacity. Feeds the engines' resident-set
    /// accounting.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.sides
            .iter()
            .map(|s| s.excl_nonlinear.capacity() * std::mem::size_of::<u32>())
            .sum()
    }
}

/// One beneficiary side of a [`PairTransit`]: the §VI grant-target set
/// of the pair, reduced to the partner's whole provider/peer segment
/// minus this exclusion summary.
#[derive(Debug, Clone, Default)]
pub(crate) struct SideTransit {
    /// Grant-target count: the partner's provider/peer segment length
    /// minus the exclusions (the beneficiary itself and its customers).
    nsegs: u32,
    /// `true` if the partner is simultaneously the beneficiary's
    /// provider (possible for prospective k-hop pairs), which
    /// invalidates the node's cached own-row collapse.
    provider_adjacent: bool,
    /// `Σ sign·rate` over the excluded linear entries (position order),
    /// subtracted from the partner's [`NodePrograms::transit_lin`] sum.
    excl_lin: f64,
    /// Excluded nonlinear entry positions (ascending), skipped when the
    /// partner's nonlinear transit entries are merged.
    excl_nonlinear: Vec<u32>,
}

/// Derives the transit structure of `pair`; see [`PairTransit`]. The
/// exclusion walk merges the partner's ASN-sorted provider and peer
/// segments against the beneficiary's ASN-sorted customer segment, so
/// the cost is `O(provpeer(partner) + customers(beneficiary))` — no
/// per-target membership probes and no materialized target list.
pub fn derive_pair_transit(ctx: &BatchContext<'_>, pair: CandidatePair) -> PairTransit {
    PairTransit {
        sides: [
            derive_side_transit(ctx, pair.x, pair.y),
            derive_side_transit(ctx, pair.y, pair.x),
        ],
    }
}

/// One side of [`derive_pair_transit`]: the exclusion summary of
/// `beneficiary`'s grant targets in `partner`'s row.
fn derive_side_transit(ctx: &BatchContext<'_>, beneficiary: u32, partner: u32) -> SideTransit {
    let graph = ctx.graph;
    let (p_end, e_end) = graph.class_boundaries(partner);
    let row = graph.neighbor_indices(partner);
    let (_, b_e_end) = graph.class_boundaries(beneficiary);
    let customers = &graph.neighbor_indices(beneficiary)[b_e_end..];
    let mut excluded = 0usize;
    let mut excl_lin = 0.0f64;
    let mut excl_nonlinear = Vec::new();
    // SoA lanes for the excluded entries: zero rates are stored for the
    // entries the dispatching loop skipped, so accumulating them keeps
    // `excl_lin` bit-identical (see `signed_rate_row`).
    let rates = ctx.econ.signed_rate_row(partner);
    let nonlinear = ctx.econ.nonlinear_row(partner);
    // Each class segment is sorted by neighbor ASN, as is the customer
    // segment — one two-pointer pass per segment finds every excluded
    // position in ascending position order.
    for (start, end) in [(0, p_end), (p_end, e_end)] {
        let mut c = 0usize;
        for (pos, &t) in row[start..end].iter().enumerate() {
            let pos = start + pos;
            if t != beneficiary {
                let target_asn = graph.asn_at(t);
                while c < customers.len() && graph.asn_at(customers[c]) < target_asn {
                    c += 1;
                }
                if customers.get(c) != Some(&t) {
                    continue;
                }
            }
            excluded += 1;
            if nonlinear[pos] {
                excl_nonlinear.push(pos as u32);
            } else {
                excl_lin += rates[pos];
            }
        }
    }
    SideTransit {
        nsegs: (e_end - excluded) as u32,
        provider_adjacent: graph.has_neighbor_kind(beneficiary, partner, NeighborKind::Provider),
        excl_lin,
        excl_nonlinear,
    }
}

/// The programmed twin of [`evaluate_candidate`]: evaluates one
/// candidate pair at the shares fixed in `programs`, reusing the
/// per-node collapse for everything row-local and the pair's
/// [`PairTransit`] exclusion summary for the grant-target fold (see
/// [`derive_pair_transit`]), leaving only scalar arithmetic, the rare
/// nonlinear merges, and the operating-point grid per call — `O(grid² +
/// nonlinear)` instead of `O(deg(x) + deg(y))`.
///
/// Results are a pure function of the endpoint rows (plus their
/// end-host and totals scalars), deterministic at any thread count, and
/// agree with [`evaluate_candidate`] up to f64 re-association — the
/// collapse sums the same model terms in a different order. Both
/// evolution engines evaluate through this function on noise-free
/// configurations, which is what makes their rounds bit-identical.
///
/// # Errors
///
/// Same surface as [`evaluate_candidate`]: `grid < 2` is rejected, and
/// non-finite utilities / pricing failures propagate.
pub fn evaluate_candidate_with(
    ctx: &BatchContext<'_>,
    programs: &NodePrograms,
    transit: &PairTransit,
    scratch: &mut PairScratch,
    pair: CandidatePair,
    grid: usize,
) -> Result<PairOutcome> {
    if grid < 2 {
        return Err(AgreementError::DimensionMismatch {
            expected: 2,
            actual: grid,
        });
    }
    let graph = ctx.graph;
    let (x, y) = (pair.x, pair.y);
    debug_assert!(x != y, "candidate pairs have distinct parties");

    let [sx, sy] = &mut scratch.side;
    sx.reset();
    sy.reset();
    let nsegs = [
        transit.sides[0].nsegs as usize,
        transit.sides[1].nsegs as usize,
    ];

    // Own-side programs. A side with no grant targets contributes
    // nothing (the per-pair evaluator skips it wholesale); a partner
    // that doubles as the beneficiary's provider (possible for
    // prospective k-hop pairs) invalidates the node's cached collapse,
    // which is then rebuilt locally with the provider skip.
    let mut own = [NodeSide::default(); 2];
    for (i, s) in [&mut *sx, &mut *sy].into_iter().enumerate() {
        let (bene, partner) = if i == 0 { (x, y) } else { (y, x) };
        if nsegs[i] == 0 {
            continue;
        }
        if transit.sides[i].provider_adjacent {
            own[i] = collapse_node(
                ctx,
                bene,
                Some(partner),
                programs.reroute_share,
                programs.attract_share,
                &mut s.nonlinear,
            );
        } else {
            own[i] = programs.nodes[bene as usize];
            s.nonlinear.extend_from_slice(programs.nonlinear_of(bene));
        }
    }

    let mut lin = [(own[0].lin_r, own[0].lin_a), (own[1].lin_r, own[1].lin_a)];
    let mut total = [
        (own[0].total_r, own[0].total_a),
        (own[1].total_r, own[1].total_a),
    ];
    let mut volume_r = 0.0;
    let mut volume_a = 0.0;

    // Partner-transit corrections: side i's whole segment volume
    // transits the partner — in on the settlement-free beneficiary link
    // (totals only), out on each of side i's target links in the
    // partner's row, split evenly across the segments. The per-target
    // linear fold collapses to the partner's precomputed segment sum
    // minus the pair's exclusions; nonlinear target entries merge with
    // the partner's own spill so combined coefficients price exactly
    // once, as the per-pair accumulation does.
    for (i, (own_side, side)) in own.iter().zip(&transit.sides).enumerate() {
        if side.nsegs == 0 {
            continue;
        }
        let o = 1 - i;
        let partner = if i == 0 { y } else { x };
        let nsegs_f = f64::from(side.nsegs);
        let per_seg_r = own_side.reroutable / nsegs_f;
        let per_seg_a = own_side.attractable / nsegs_f;
        total[o].0 += own_side.reroutable + per_seg_r * nsegs_f;
        total[o].1 += own_side.attractable + per_seg_a * nsegs_f;
        volume_r += own_side.reroutable;
        volume_a += own_side.attractable;
        let lin_sum = programs.transit_lin[partner as usize] - side.excl_lin;
        lin[o].0 += lin_sum * per_seg_r;
        lin[o].1 += lin_sum * per_seg_a;
        let merged = if i == 0 {
            &mut sy.nonlinear
        } else {
            &mut sx.nonlinear
        };
        let mut excl = side.excl_nonlinear.iter().copied().peekable();
        for &pos in programs.transit_nonlinear_of(partner) {
            while excl.peek().is_some_and(|&e| e < pos) {
                excl.next();
            }
            if excl.peek() == Some(&pos) {
                excl.next();
                continue;
            }
            if let Some(slot) = merged.iter_mut().find(|e| e.3 == pos) {
                slot.1 += per_seg_r;
                slot.2 += per_seg_a;
            } else {
                merged.push((
                    ctx.flows.flow(partner, pos as usize),
                    per_seg_r,
                    per_seg_a,
                    pos,
                ));
            }
        }
    }

    // Per-party scalar folds: linear end-host revenue and linear
    // internal cost collapse into the coefficients; nonlinear ones are
    // evaluated per grid point below.
    let parties = [x, y];
    let mut end_host_linear = [None, None];
    let mut internal_linear = [None, None];
    for i in 0..2 {
        let node = parties[i];
        end_host_linear[i] = ctx.econ.end_host_price(node).linear_rate();
        internal_linear[i] = ctx.econ.internal_cost(node).linear_rate();
        if own[i].end_host_gain != 0.0 {
            if let Some(rate) = end_host_linear[i] {
                lin[i].1 += rate * own[i].end_host_gain;
            }
        }
        if let Some(rate) = internal_linear[i] {
            lin[i].0 -= rate * total[i].0;
            lin[i].1 -= rate * total[i].1;
        }
    }

    // Operating-point grid and conclusions — the same scan as the
    // per-pair evaluator, over the collapsed coefficients.
    let step = 1.0 / (grid - 1) as f64;
    let mut best_fv: Option<(f64, f64, f64, f64)> = None;
    let mut best_fv_score = f64::NEG_INFINITY;
    let mut best_cash: Option<(f64, f64, f64, f64)> = None;
    let mut best_joint = f64::NEG_INFINITY;
    for ri in 0..grid {
        let r = ri as f64 * step;
        for ai in 0..grid {
            let a = ai as f64 * step;
            let mut utilities = [0.0f64; 2];
            for i in 0..2 {
                let node = parties[i];
                let mut u = lin[i].0 * r + lin[i].1 * a;
                for &(f, dr, da, pos) in &scratch.side[i].nonlinear {
                    let entry = ctx.econ.entry(node, pos as usize);
                    u += entry.utility_delta(f, dr * r + da * a)?;
                }
                if end_host_linear[i].is_none() && own[i].end_host_gain != 0.0 {
                    let f = ctx.flows.end_host(node);
                    let price = ctx.econ.end_host_price(node);
                    u += price.price(f + own[i].end_host_gain * a)? - price.price(f)?;
                }
                if internal_linear[i].is_none() {
                    let base = ctx.totals[node as usize];
                    let delta = total[i].0 * r + total[i].1 * a;
                    let cost = ctx.econ.internal_cost(node);
                    u -= cost.eval((base + delta).max(0.0))? - cost.eval(base)?;
                }
                if !u.is_finite() {
                    return Err(AgreementError::InvalidUtility { value: u });
                }
                utilities[i] = u;
            }
            let (ux, uy) = (utilities[0], utilities[1]);
            if ux >= -UTILITY_TOLERANCE && uy >= -UTILITY_TOLERANCE {
                let score = ux.max(0.0) * uy.max(0.0) + 1e-7 * (ux + uy);
                if score > best_fv_score {
                    best_fv_score = score;
                    best_fv = Some((r, a, ux, uy));
                }
            }
            let joint = ux + uy;
            if joint > best_joint {
                best_joint = joint;
                best_cash = Some((r, a, ux, uy));
            }
        }
    }

    let flow_volume = best_fv.and_then(|(r, a, ux, uy)| {
        let product = ux.max(0.0) * uy.max(0.0);
        let volume = r * volume_r + a * volume_a;
        (product > UTILITY_TOLERANCE && volume > UTILITY_TOLERANCE).then_some(FlowVolumePoint {
            reroute: r,
            attract: a,
            utility_x: ux,
            utility_y: uy,
        })
    });
    let cash = match best_cash {
        Some((r, a, ux, uy)) if ux + uy > JOINT_TOLERANCE => Some(CashPoint {
            reroute: r,
            attract: a,
            joint_utility: ux + uy,
            transfer_x_to_y: bargaining_transfer(ux, uy)?,
        }),
        _ => None,
    };
    let surplus = cash.map_or(0.0, |c| c.joint_utility.max(0.0));
    Ok(PairOutcome {
        x: graph.asn_at(x),
        y: graph.asn_at(y),
        peering_hops: pair.peering_hops,
        shares: (programs.reroute_share, programs.attract_share),
        segments: (nsegs[0], nsegs[1]),
        flow_volume,
        cash,
        surplus,
    })
}

/// Runs a full discovery sweep: enumerate candidates, evaluate each in
/// parallel (per-worker [`PairScratch`], per-item RNG stream), rank by
/// surplus. Output is bit-identical at any thread count of `sweep`.
///
/// # Errors
///
/// Returns [`AgreementError::InvalidFraction`] for invalid shares or
/// noise, and propagates evaluation errors.
pub fn discover(
    ctx: &BatchContext<'_>,
    config: &DiscoveryConfig,
    sweep: &ScenarioSweep,
) -> Result<DiscoveryReport> {
    config.validate()?;
    let candidates = enumerate_candidates(ctx.graph, config.policy);
    let evaluated: Vec<Result<PairOutcome>> = sweep.map_with_tiled(
        &candidates,
        CANDIDATE_TILE,
        PairScratch::new,
        |scratch, _i, &pair, mut rng| {
            let (reroute, attract) = config.jittered_shares(&mut rng);
            evaluate_candidate(ctx, scratch, pair, reroute, attract, config.grid)
        },
    );
    let mut outcomes = Vec::with_capacity(evaluated.len());
    for outcome in evaluated {
        outcomes.push(outcome?);
    }
    Ok(DiscoveryReport::from_outcomes(outcomes, config.top))
}

/// The "before" engine: evaluates one adjacent candidate pair through
/// the original sparse stack — [`Agreement::mutuality`],
/// [`AgreementScenario::with_default_opportunities`], and per-point
/// [`evaluate`] over the same uniform grid. Dense-engine oracle and the
/// baseline side of the dense-flow-refactor benchmark.
///
/// # Errors
///
/// Returns [`AgreementError::DimensionMismatch`] if `grid < 2` (same
/// rejection as [`evaluate_candidate`]), and propagates
/// agreement-construction and evaluation errors (e.g. the parties not
/// being peers).
pub fn evaluate_candidate_legacy(
    model: &pan_econ::BusinessModel,
    baseline_x: &FlowVec,
    baseline_y: &FlowVec,
    reroute_share: f64,
    attract_share: f64,
    grid: usize,
) -> Result<PairOutcome> {
    if grid < 2 {
        return Err(AgreementError::DimensionMismatch {
            expected: 2,
            actual: grid,
        });
    }
    let graph = model.graph();
    let (ax, ay) = (baseline_x.asn(), baseline_y.asn());
    let agreement = Agreement::mutuality(graph, ax, ay)?;
    let scenario = AgreementScenario::with_default_opportunities(
        model,
        agreement,
        baseline_x.clone(),
        baseline_y.clone(),
        reroute_share,
        attract_share,
    )?;
    let n = scenario.dimension();
    let segments_x = scenario
        .opportunities()
        .iter()
        .filter(|o| o.segment.beneficiary == ax)
        .count();
    let reroutable_total: f64 = scenario
        .opportunities()
        .iter()
        .map(crate::SegmentOpportunity::reroutable_total)
        .sum();
    let attractable_total: f64 = scenario
        .opportunities()
        .iter()
        .map(crate::SegmentOpportunity::attractable_total)
        .sum();

    let step = 1.0 / (grid - 1) as f64;
    let mut best_fv: Option<(f64, f64, f64, f64)> = None;
    let mut best_fv_score = f64::NEG_INFINITY;
    let mut best_cash: Option<(f64, f64, f64, f64)> = None;
    let mut best_joint = f64::NEG_INFINITY;
    for ri in 0..grid {
        let r = ri as f64 * step;
        for ai in 0..grid {
            let a = ai as f64 * step;
            let point = OperatingPoint::uniform(n, r, a)?;
            let eval = evaluate(&scenario, &point)?;
            let (ux, uy) = (eval.utility_x, eval.utility_y);
            if ux >= -UTILITY_TOLERANCE && uy >= -UTILITY_TOLERANCE {
                let score = ux.max(0.0) * uy.max(0.0) + 1e-7 * (ux + uy);
                if score > best_fv_score {
                    best_fv_score = score;
                    best_fv = Some((r, a, ux, uy));
                }
            }
            let joint = ux + uy;
            if joint > best_joint {
                best_joint = joint;
                best_cash = Some((r, a, ux, uy));
            }
        }
    }
    let flow_volume = best_fv.and_then(|(r, a, ux, uy)| {
        let product = ux.max(0.0) * uy.max(0.0);
        let volume = r * reroutable_total + a * attractable_total;
        (product > UTILITY_TOLERANCE && volume > UTILITY_TOLERANCE).then_some(FlowVolumePoint {
            reroute: r,
            attract: a,
            utility_x: ux,
            utility_y: uy,
        })
    });
    let cash = match best_cash {
        Some((r, a, ux, uy)) if ux + uy > JOINT_TOLERANCE => Some(CashPoint {
            reroute: r,
            attract: a,
            joint_utility: ux + uy,
            transfer_x_to_y: bargaining_transfer(ux, uy)?,
        }),
        _ => None,
    };
    let surplus = cash.map_or(0.0, |c| c.joint_utility.max(0.0));
    Ok(PairOutcome {
        x: ax,
        y: ay,
        peering_hops: 1,
        shares: (reroute_share, attract_share),
        segments: (segments_x, n - segments_x),
        flow_volume,
        cash,
        surplus,
    })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::scenario::tests::{baselines, fig1_model};
    use pan_econ::{BusinessModel, CostFunction, PricingFunction};
    use pan_runtime::ThreadPool;
    use pan_topology::fixtures::{asn, fig1};

    /// Dense context over fig1 with the standard model and the D/E
    /// baselines loaded (all other rows zero).
    fn fig1_context(model: &BusinessModel) -> (DenseEconomics, FlowMatrix) {
        let graph = model.graph();
        let econ = DenseEconomics::from_model(model);
        let mut flows = FlowMatrix::zeros(graph);
        let (fd, fe) = baselines();
        flows.set_row(graph, &fd).unwrap();
        flows.set_row(graph, &fe).unwrap();
        (econ, flows)
    }

    fn pair_of(graph: &AsGraph, a: char, b: char) -> CandidatePair {
        let (i, j) = (
            graph.index_of(asn(a)).unwrap(),
            graph.index_of(asn(b)).unwrap(),
        );
        CandidatePair {
            x: i.min(j),
            y: i.max(j),
            peering_hops: 1,
        }
    }

    pub(crate) fn assert_outcomes_match(dense: &PairOutcome, legacy: &PairOutcome, tolerance: f64) {
        assert_eq!((dense.x, dense.y), (legacy.x, legacy.y));
        assert_eq!(dense.segments, legacy.segments, "{}-{}", dense.x, dense.y);
        assert_eq!(
            dense.flow_volume.is_some(),
            legacy.flow_volume.is_some(),
            "flow-volume conclusion diverged for {}-{}: {dense:?} vs {legacy:?}",
            dense.x,
            dense.y
        );
        assert_eq!(
            dense.cash.is_some(),
            legacy.cash.is_some(),
            "cash conclusion diverged for {}-{}",
            dense.x,
            dense.y
        );
        if let (Some(df), Some(lf)) = (&dense.flow_volume, &legacy.flow_volume) {
            assert_eq!((df.reroute, df.attract), (lf.reroute, lf.attract));
            assert!(
                (df.utility_x - lf.utility_x).abs() < tolerance,
                "{df:?} {lf:?}"
            );
            assert!(
                (df.utility_y - lf.utility_y).abs() < tolerance,
                "{df:?} {lf:?}"
            );
        }
        if let (Some(dc), Some(lc)) = (&dense.cash, &legacy.cash) {
            assert_eq!((dc.reroute, dc.attract), (lc.reroute, lc.attract));
            assert!(
                (dc.joint_utility - lc.joint_utility).abs() < tolerance,
                "{dc:?} {lc:?}"
            );
            assert!(
                (dc.transfer_x_to_y - lc.transfer_x_to_y).abs() < tolerance,
                "{dc:?} {lc:?}"
            );
        }
        assert!((dense.surplus - legacy.surplus).abs() < tolerance);
    }

    fn sorted_pairs(mut pairs: Vec<CandidatePair>) -> Vec<CandidatePair> {
        pairs.sort_by_key(|p| (p.x, p.y));
        pairs
    }

    #[test]
    fn per_as_candidates_match_the_full_enumeration() {
        let g = fig1();
        for policy in [
            CandidatePolicy::PeeringAdjacent,
            CandidatePolicy::PeeringKHop {
                k: 2,
                per_source_cap: 0,
            },
            CandidatePolicy::PeeringKHop {
                k: 3,
                per_source_cap: 0,
            },
        ] {
            let full = enumerate_candidates(&g, policy);
            for node in 0..g.node_count() as u32 {
                let mine = sorted_pairs(enumerate_candidates_for(&g, policy, node));
                let expected = sorted_pairs(
                    full.iter()
                        .copied()
                        .filter(|p| p.x == node || p.y == node)
                        .collect(),
                );
                assert_eq!(mine, expected, "node {node} under {policy:?}");
            }
        }
    }

    #[test]
    fn per_as_cap_truncates_levels_canonically() {
        let g = fig1();
        let uncapped = enumerate_candidates_for(
            &g,
            CandidatePolicy::PeeringKHop {
                k: 3,
                per_source_cap: 0,
            },
            g.index_of(asn('C')).unwrap(),
        );
        assert!(uncapped.len() > 2, "fixture must have depth to truncate");
        let capped = enumerate_candidates_for(
            &g,
            CandidatePolicy::PeeringKHop {
                k: 3,
                per_source_cap: 2,
            },
            g.index_of(asn('C')).unwrap(),
        );
        assert_eq!(capped.len(), 2);
        // The cap keeps whole levels first; a straddled level is ranked by
        // neighbor ASN, so the capped set is a canonical prefix selection.
        for pair in &capped {
            assert!(uncapped.contains(pair), "{pair:?} not in uncapped set");
        }
        let max_depth = capped.iter().map(|p| p.peering_hops).max().unwrap();
        for pair in &uncapped {
            if pair.peering_hops < max_depth {
                assert!(capped.contains(pair), "dropped a complete level {pair:?}");
            }
        }
    }

    #[test]
    fn adjacent_candidates_cover_fig1_peering_links() {
        let g = fig1();
        let pairs = enumerate_candidates(&g, CandidatePolicy::PeeringAdjacent);
        assert_eq!(pairs.len(), g.peering_link_count());
        for p in &pairs {
            assert!(p.x < p.y);
            assert_eq!(p.peering_hops, 1);
            assert_eq!(g.neighbor_kind_by_index(p.x, p.y), Some(NeighborKind::Peer));
        }
    }

    #[test]
    fn khop_candidates_extend_the_mesh() {
        let g = fig1();
        let one = enumerate_candidates(
            &g,
            CandidatePolicy::PeeringKHop {
                k: 1,
                per_source_cap: 0,
            },
        );
        let adjacent = enumerate_candidates(&g, CandidatePolicy::PeeringAdjacent);
        assert_eq!(one.len(), adjacent.len(), "k = 1 equals adjacency");
        let two = enumerate_candidates(
            &g,
            CandidatePolicy::PeeringKHop {
                k: 2,
                per_source_cap: 0,
            },
        );
        assert!(two.len() > one.len());
        // C–E are peers-of-peers through D.
        let (c, e) = (g.index_of(asn('C')).unwrap(), g.index_of(asn('E')).unwrap());
        assert!(two
            .iter()
            .any(|p| (p.x, p.y) == (c.min(e), c.max(e)) && p.peering_hops == 2));
        // A cap of one pair per source shrinks the list.
        let capped = enumerate_candidates(
            &g,
            CandidatePolicy::PeeringKHop {
                k: 2,
                per_source_cap: 1,
            },
        );
        assert!(capped.len() < two.len());
    }

    #[test]
    fn khop_excludes_transit_linked_pairs() {
        use pan_topology::{AsGraphBuilder, Relationship};
        // X provides transit to Y, yet the two are also 2 peering hops
        // apart through M. They cannot *additionally* establish peering,
        // so the prospective enumeration must not offer them.
        let (x, y, m) = (Asn::new(1), Asn::new(2), Asn::new(3));
        let mut b = AsGraphBuilder::new();
        b.add_link(x, y, Relationship::ProviderToCustomer).unwrap();
        b.add_link(x, m, Relationship::PeerToPeer).unwrap();
        b.add_link(m, y, Relationship::PeerToPeer).unwrap();
        let g = b.build().unwrap();
        let pairs = enumerate_candidates(
            &g,
            CandidatePolicy::PeeringKHop {
                k: 2,
                per_source_cap: 0,
            },
        );
        let as_asns: Vec<(Asn, Asn, u8)> = pairs
            .iter()
            .map(|p| (g.asn_at(p.x), g.asn_at(p.y), p.peering_hops))
            .collect();
        assert!(
            !as_asns.iter().any(|&(a, b, _)| (a, b) == (x, y)),
            "transit-linked pair offered as prospective peering: {as_asns:?}"
        );
        assert!(as_asns.contains(&(x, m, 1)));
        assert!(as_asns.contains(&(y, m, 1)) || as_asns.contains(&(m, y, 1)));
    }

    #[test]
    fn khop_cap_finishes_depth_levels() {
        use std::collections::BTreeSet;
        // The cap is soft: once a source starts a depth level it keeps
        // every pair of that level, so the surviving set is a function
        // of the topology alone (a mid-level break would depend on CSR
        // neighbor order). Check on a synthetic internet, where sources
        // have several peers per level.
        let net = pan_datasets::SyntheticInternet::generate(
            &pan_datasets::InternetConfig {
                num_ases: 200,
                tier1_count: 5,
                ..pan_datasets::InternetConfig::default()
            },
            11,
        )
        .unwrap();
        let g = &net.graph;
        let uncapped = enumerate_candidates(
            g,
            CandidatePolicy::PeeringKHop {
                k: 3,
                per_source_cap: 0,
            },
        );
        let capped = enumerate_candidates(
            g,
            CandidatePolicy::PeeringKHop {
                k: 3,
                per_source_cap: 2,
            },
        );
        assert!(capped.len() < uncapped.len(), "cap must bite somewhere");
        // Oracle: per source, whole uncapped depth levels fill the cap in
        // BFS order; the level the cap lands in is truncated to the
        // remaining budget by ascending neighbor ASN — a canonical
        // selection, independent of enumeration order.
        let cap = 2usize;
        let mut expected: BTreeSet<(u32, u32, u8)> = BTreeSet::new();
        let mut by_source: std::collections::BTreeMap<u32, Vec<&CandidatePair>> =
            std::collections::BTreeMap::new();
        for p in &uncapped {
            by_source.entry(p.x).or_default().push(p);
        }
        for pairs in by_source.values() {
            let mut contributed = 0usize;
            for depth in 1..=3u8 {
                let mut level: Vec<u32> = pairs
                    .iter()
                    .filter(|p| p.peering_hops == depth)
                    .map(|p| p.y)
                    .collect();
                level.sort_unstable_by_key(|&v| g.asn_at(v));
                let truncated = contributed + level.len() > cap;
                level.truncate(cap - contributed);
                contributed += level.len();
                for y in level {
                    expected.insert((pairs[0].x, y, depth));
                }
                if truncated || contributed >= cap {
                    break;
                }
            }
        }
        let capped_set: BTreeSet<(u32, u32, u8)> =
            capped.iter().map(|p| (p.x, p.y, p.peering_hops)).collect();
        assert_eq!(capped_set, expected);
        assert_eq!(capped_set.len(), capped.len(), "no duplicate pairs");
        // The cap is now hard: no source exceeds it.
        let mut per_source = std::collections::BTreeMap::new();
        for p in &capped {
            *per_source.entry(p.x).or_insert(0usize) += 1;
        }
        assert!(per_source.values().all(|&c| c <= cap));
    }

    #[test]
    fn dense_matches_legacy_on_fig1() {
        let model = fig1_model();
        let (econ, flows) = fig1_context(&model);
        let ctx = BatchContext::new(model.graph(), &econ, &flows).unwrap();
        let mut scratch = PairScratch::new();
        let (fd, fe) = baselines();
        for (reroute, attract, grid) in [(0.5, 0.2, 5), (0.6, 0.4, 9), (1.0, 0.0, 3), (0.0, 1.0, 4)]
        {
            let dense = evaluate_candidate(
                &ctx,
                &mut scratch,
                pair_of(model.graph(), 'D', 'E'),
                reroute,
                attract,
                grid,
            )
            .unwrap();
            // Party order: the dense pair is ordered by node index, and
            // D (inserted before E in fig1) is party X there too.
            let legacy =
                evaluate_candidate_legacy(&model, &fd, &fe, reroute, attract, grid).unwrap();
            assert_outcomes_match(&dense, &legacy, 1e-9);
            assert!(
                dense.is_concluded(),
                "D-E should profit at {reroute}/{attract}"
            );
        }
    }

    #[test]
    fn dense_matches_legacy_with_nonlinear_economics() {
        // Congestion pricing on D's provider link, a power-law internal
        // cost and congestion end-host pricing on E: exercises every
        // nonlinear spill path of the dense engine.
        let mut model = fig1_model();
        model.book_mut().set_transit_price(
            asn('A'),
            asn('D'),
            PricingFunction::congestion(0.05, 1.5).unwrap(),
        );
        model
            .book_mut()
            .set_end_host_price(asn('E'), PricingFunction::congestion(0.2, 1.2).unwrap());
        model.set_internal_cost(asn('E'), CostFunction::power_law(0.01, 1.3).unwrap());
        let (econ, mut flows) = fig1_context(&model);
        // Give E end-host demand so the end-host path is exercised.
        let e = model.graph().index_of(asn('E')).unwrap();
        flows.set_end_host(e, 9.0);
        let ctx = BatchContext::new(model.graph(), &econ, &flows).unwrap();
        let mut scratch = PairScratch::new();
        let dense = evaluate_candidate(
            &ctx,
            &mut scratch,
            pair_of(model.graph(), 'D', 'E'),
            0.7,
            0.5,
            6,
        )
        .unwrap();
        let (fd, mut fe) = baselines();
        fe.set_end_host_flow(9.0);
        let legacy = evaluate_candidate_legacy(&model, &fd, &fe, 0.7, 0.5, 6).unwrap();
        assert_outcomes_match(&dense, &legacy, 1e-9);
    }

    #[test]
    fn dense_matches_legacy_across_a_synthetic_internet() {
        use pan_datasets::{InternetConfig, SyntheticInternet};
        let net = SyntheticInternet::generate(
            &InternetConfig {
                num_ases: 260,
                tier1_count: 6,
                ..InternetConfig::default()
            },
            23,
        )
        .unwrap();
        let graph = &net.graph;
        let econ = DenseEconomics::build(
            graph,
            |provider, customer| {
                // Deterministic heterogeneous per-usage rates.
                let salt = u64::from(provider.get()) * 31 + u64::from(customer.get());
                PricingFunction::per_usage(1.0 + (salt % 17) as f64 * 0.25).unwrap()
            },
            |asn| PricingFunction::per_usage(2.0 + f64::from(asn.get() % 3)).unwrap(),
            |asn| CostFunction::linear(0.02 + f64::from(asn.get() % 5) * 0.01).unwrap(),
        );
        let flows = FlowMatrix::degree_gravity(graph, 0.5);
        let ctx = BatchContext::new(graph, &econ, &flows).unwrap();
        let model = econ.to_business_model(graph);
        let mut scratch = PairScratch::new();
        let candidates = enumerate_candidates(graph, CandidatePolicy::PeeringAdjacent);
        assert!(candidates.len() > 100, "need a real mesh to compare");
        let mut concluded = 0usize;
        for &pair in candidates.iter().step_by(7) {
            let dense = evaluate_candidate(&ctx, &mut scratch, pair, 0.5, 0.2, 4).unwrap();
            let fx = flows.to_flow_vec(graph, pair.x);
            let fy = flows.to_flow_vec(graph, pair.y);
            let legacy = evaluate_candidate_legacy(&model, &fx, &fy, 0.5, 0.2, 4).unwrap();
            assert_outcomes_match(&dense, &legacy, 1e-6);
            concluded += usize::from(dense.is_concluded());
        }
        assert!(concluded > 0, "some pair should profit");
    }

    /// The programmed evaluation as the engines run it: derive the
    /// pair's transit structure, then evaluate through it.
    fn eval_programmed(
        ctx: &BatchContext<'_>,
        programs: &NodePrograms,
        scratch: &mut PairScratch,
        pair: CandidatePair,
        grid: usize,
    ) -> Result<PairOutcome> {
        let transit = derive_pair_transit(ctx, pair);
        evaluate_candidate_with(ctx, programs, &transit, scratch, pair, grid)
    }

    #[test]
    fn programmed_evaluator_matches_the_per_pair_evaluator() {
        // `evaluate_candidate_with` sums the same model terms as
        // `evaluate_candidate` in a different association, so the two
        // must agree to oracle tolerance on every candidate shape:
        // share extremes, nonlinear spill paths, and a provider-adjacent
        // partner (the cached collapse is invalid there and is rebuilt
        // with the provider skip).
        let model = fig1_model();
        let (econ, flows) = fig1_context(&model);
        let ctx = BatchContext::new(model.graph(), &econ, &flows).unwrap();
        let mut scratch = PairScratch::new();
        for (reroute, attract, grid) in [(0.5, 0.2, 5), (0.6, 0.4, 9), (1.0, 0.0, 3), (0.0, 1.0, 4)]
        {
            let programs = NodePrograms::build(&ctx, reroute, attract).unwrap();
            let pair = pair_of(model.graph(), 'D', 'E');
            let programmed = eval_programmed(&ctx, &programs, &mut scratch, pair, grid).unwrap();
            let classic =
                evaluate_candidate(&ctx, &mut scratch, pair, reroute, attract, grid).unwrap();
            assert_outcomes_match(&programmed, &classic, 1e-9);
            // A pair whose partner is also a provider: exercised
            // directly (the enumerators never emit transit-adjacent
            // pairs, but the evaluator contract covers them).
            let transit = pair_of(model.graph(), 'A', 'D');
            let programmed = eval_programmed(&ctx, &programs, &mut scratch, transit, grid).unwrap();
            let classic =
                evaluate_candidate(&ctx, &mut scratch, transit, reroute, attract, grid).unwrap();
            assert_outcomes_match(&programmed, &classic, 1e-9);
        }
        assert!(matches!(
            eval_programmed(
                &ctx,
                &NodePrograms::build(&ctx, 0.5, 0.2).unwrap(),
                &mut scratch,
                pair_of(model.graph(), 'D', 'E'),
                1,
            ),
            Err(AgreementError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            NodePrograms::build(&ctx, 1.5, 0.2),
            Err(AgreementError::InvalidFraction { .. })
        ));
    }

    #[test]
    fn programmed_evaluator_matches_with_nonlinear_economics() {
        // Congestion pricing, power-law internal cost, and congestion
        // end-host pricing: every nonlinear spill and merge path of the
        // programmed evaluator, against the per-pair evaluator.
        let mut model = fig1_model();
        model.book_mut().set_transit_price(
            asn('A'),
            asn('D'),
            PricingFunction::congestion(0.05, 1.5).unwrap(),
        );
        model
            .book_mut()
            .set_end_host_price(asn('E'), PricingFunction::congestion(0.2, 1.2).unwrap());
        model.set_internal_cost(asn('E'), CostFunction::power_law(0.01, 1.3).unwrap());
        let (econ, mut flows) = fig1_context(&model);
        let e = model.graph().index_of(asn('E')).unwrap();
        flows.set_end_host(e, 9.0);
        let ctx = BatchContext::new(model.graph(), &econ, &flows).unwrap();
        let programs = NodePrograms::build(&ctx, 0.7, 0.5).unwrap();
        let mut scratch = PairScratch::new();
        let pair = pair_of(model.graph(), 'D', 'E');
        let programmed = eval_programmed(&ctx, &programs, &mut scratch, pair, 6).unwrap();
        let classic = evaluate_candidate(&ctx, &mut scratch, pair, 0.7, 0.5, 6).unwrap();
        assert_outcomes_match(&programmed, &classic, 1e-9);
    }

    #[test]
    fn programmed_evaluator_matches_across_a_synthetic_internet() {
        use pan_datasets::{InternetConfig, SyntheticInternet};
        let net = SyntheticInternet::generate(
            &InternetConfig {
                num_ases: 260,
                tier1_count: 6,
                ..InternetConfig::default()
            },
            23,
        )
        .unwrap();
        let graph = &net.graph;
        let econ = DenseEconomics::build(
            graph,
            |provider, customer| {
                let salt = u64::from(provider.get()) * 31 + u64::from(customer.get());
                PricingFunction::per_usage(1.0 + (salt % 17) as f64 * 0.25).unwrap()
            },
            |asn| PricingFunction::per_usage(2.0 + f64::from(asn.get() % 3)).unwrap(),
            |asn| CostFunction::linear(0.02 + f64::from(asn.get() % 5) * 0.01).unwrap(),
        );
        let flows = FlowMatrix::degree_gravity(graph, 0.5);
        let ctx = BatchContext::new(graph, &econ, &flows).unwrap();
        let programs = NodePrograms::build(&ctx, 0.5, 0.2).unwrap();
        let mut scratch = PairScratch::new();
        // Adjacent peers and prospective k-hop pairs (which include
        // zero-segment sides on stub sources).
        let mut candidates = enumerate_candidates(graph, CandidatePolicy::PeeringAdjacent);
        candidates.extend(enumerate_candidates(
            graph,
            CandidatePolicy::PeeringKHop {
                k: 2,
                per_source_cap: 3,
            },
        ));
        assert!(candidates.len() > 200, "need a real mesh to compare");
        for &pair in &candidates {
            let programmed = eval_programmed(&ctx, &programs, &mut scratch, pair, 4).unwrap();
            let classic = evaluate_candidate(&ctx, &mut scratch, pair, 0.5, 0.2, 4).unwrap();
            assert_outcomes_match(&programmed, &classic, 1e-6);
        }
    }

    #[test]
    fn discover_is_thread_count_independent() {
        let model = fig1_model();
        let (econ, flows) = fig1_context(&model);
        let ctx = BatchContext::new(model.graph(), &econ, &flows).unwrap();
        let config = DiscoveryConfig {
            noise: 0.15,
            ..DiscoveryConfig::default()
        };
        let reference = discover(&ctx, &config, &ScenarioSweep::sequential(7)).unwrap();
        for threads in [2, 4, 8] {
            let parallel = discover(
                &ctx,
                &config,
                &ScenarioSweep::new(ThreadPool::new(threads), 7),
            )
            .unwrap();
            assert_eq!(reference, parallel, "{threads} threads diverged");
        }
    }

    #[test]
    fn discover_ranks_by_surplus_and_truncates() {
        let model = fig1_model();
        let (econ, flows) = fig1_context(&model);
        let ctx = BatchContext::new(model.graph(), &econ, &flows).unwrap();
        let full = discover(
            &ctx,
            &DiscoveryConfig::default(),
            &ScenarioSweep::sequential(1),
        )
        .unwrap();
        assert_eq!(full.candidates, model.graph().peering_link_count());
        assert!(full
            .outcomes
            .windows(2)
            .all(|w| w[0].surplus >= w[1].surplus));
        // Only D-E has baseline flows, so it must rank first.
        assert_eq!(
            (full.outcomes[0].x, full.outcomes[0].y),
            (asn('D'), asn('E'))
        );
        assert!(full.concluded_cash >= 1);
        assert!(full.total_surplus > 0.0);
        let top = discover(
            &ctx,
            &DiscoveryConfig {
                top: 1,
                ..DiscoveryConfig::default()
            },
            &ScenarioSweep::sequential(1),
        )
        .unwrap();
        assert_eq!(top.outcomes.len(), 1);
        assert_eq!(top.candidates, full.candidates);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let model = fig1_model();
        let (econ, flows) = fig1_context(&model);
        let ctx = BatchContext::new(model.graph(), &econ, &flows).unwrap();
        for config in [
            DiscoveryConfig {
                reroute_share: 1.5,
                ..DiscoveryConfig::default()
            },
            DiscoveryConfig {
                noise: f64::NAN,
                ..DiscoveryConfig::default()
            },
            DiscoveryConfig {
                grid: 1,
                ..DiscoveryConfig::default()
            },
        ] {
            assert!(
                discover(&ctx, &config, &ScenarioSweep::sequential(1)).is_err(),
                "{config:?} must be rejected"
            );
        }
    }

    #[test]
    fn mismatched_tables_are_rejected() {
        let model = fig1_model();
        let econ = DenseEconomics::from_model(&model);
        let other = pan_topology::fixtures::diamond();
        let flows = FlowMatrix::zeros(&other);
        assert!(BatchContext::new(model.graph(), &econ, &flows).is_err());
    }

    #[test]
    fn degenerate_grid_is_rejected_by_both_engines() {
        // `DiscoveryConfig::validate` rejects grid < 2; the two engine
        // twins must agree with it instead of silently clamping — a
        // single grid point has no well-defined step, and a silent clamp
        // would let `discover` and a direct evaluation disagree.
        let model = fig1_model();
        let (econ, flows) = fig1_context(&model);
        let ctx = BatchContext::new(model.graph(), &econ, &flows).unwrap();
        let mut scratch = PairScratch::new();
        let pair = pair_of(model.graph(), 'D', 'E');
        let (fd, fe) = baselines();
        for grid in [0, 1] {
            let dense = evaluate_candidate(&ctx, &mut scratch, pair, 0.6, 0.3, grid);
            assert!(
                matches!(
                    dense,
                    Err(AgreementError::DimensionMismatch {
                        expected: 2,
                        actual,
                    }) if actual == grid
                ),
                "dense grid {grid} must error, got {dense:?}"
            );
            let legacy = evaluate_candidate_legacy(&model, &fd, &fe, 0.6, 0.3, grid);
            assert!(
                matches!(
                    legacy,
                    Err(AgreementError::DimensionMismatch {
                        expected: 2,
                        actual,
                    }) if actual == grid
                ),
                "legacy grid {grid} must error, got {legacy:?}"
            );
        }
        // grid = 2 is the smallest accepted value on both paths.
        let dense = evaluate_candidate(&ctx, &mut scratch, pair, 0.6, 0.3, 2).unwrap();
        let legacy = evaluate_candidate_legacy(&model, &fd, &fe, 0.6, 0.3, 2).unwrap();
        assert_outcomes_match(&dense, &legacy, 1e-9);
    }

    #[test]
    fn invalid_shares_are_rejected_by_the_dense_engine() {
        let model = fig1_model();
        let (econ, flows) = fig1_context(&model);
        let ctx = BatchContext::new(model.graph(), &econ, &flows).unwrap();
        let mut scratch = PairScratch::new();
        let pair = pair_of(model.graph(), 'D', 'E');
        for (reroute, attract) in [(1.5, 0.2), (-0.1, 0.2), (0.5, f64::NAN)] {
            assert!(matches!(
                evaluate_candidate(&ctx, &mut scratch, pair, reroute, attract, 5),
                Err(AgreementError::InvalidFraction { .. })
            ));
        }
    }

    #[test]
    fn report_assembly_ranks_and_truncates() {
        let outcome = |x: u32, surplus: f64, cash: bool| PairOutcome {
            x: Asn::new(x),
            y: Asn::new(x + 100),
            peering_hops: 1,
            shares: (0.5, 0.2),
            segments: (1, 1),
            flow_volume: None,
            cash: cash.then_some(CashPoint {
                reroute: 1.0,
                attract: 0.0,
                joint_utility: surplus,
                transfer_x_to_y: 0.0,
            }),
            surplus,
        };
        let report = DiscoveryReport::from_outcomes(
            vec![
                outcome(1, 2.0, true),
                outcome(2, 5.0, true),
                outcome(3, 0.0, false),
            ],
            2,
        );
        assert_eq!(report.candidates, 3);
        assert_eq!(report.concluded_cash, 2);
        assert_eq!(report.concluded_flow_volume, 0);
        assert!((report.total_surplus - 7.0).abs() < 1e-12);
        assert_eq!(report.outcomes.len(), 2, "truncated to top");
        assert_eq!(report.outcomes[0].x, Asn::new(2), "highest surplus first");
        // A NaN surplus (impossible from the engines, which reject
        // non-finite utilities, but reachable through the public
        // constructor) must not panic the ranking.
        let report = DiscoveryReport::from_outcomes(
            vec![outcome(1, f64::NAN, false), outcome(2, 1.0, true)],
            0,
        );
        assert_eq!(report.candidates, 2);
        assert!(report.outcomes.iter().any(|o| o.surplus.is_nan()));
    }

    #[test]
    fn scratch_reuse_does_not_leak_between_pairs() {
        let model = fig1_model();
        let (econ, flows) = fig1_context(&model);
        let ctx = BatchContext::new(model.graph(), &econ, &flows).unwrap();
        let mut scratch = PairScratch::new();
        let pair = pair_of(model.graph(), 'D', 'E');
        let first = evaluate_candidate(&ctx, &mut scratch, pair, 0.6, 0.3, 5).unwrap();
        // Evaluate an unrelated pair in between, then repeat.
        let _ = evaluate_candidate(
            &ctx,
            &mut scratch,
            pair_of(model.graph(), 'A', 'B'),
            0.6,
            0.3,
            5,
        )
        .unwrap();
        let second = evaluate_candidate(&ctx, &mut scratch, pair, 0.6, 0.3, 5).unwrap();
        assert_eq!(first, second);
    }
}
