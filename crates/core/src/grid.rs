//! Parallel negotiation-scenario grids.
//!
//! §IV evaluates an agreement under *assumptions* — how much provider
//! traffic the parties could reroute onto the new segments and how much
//! new customer demand the segments could attract. A **scenario grid**
//! sweeps those two shares over a grid of cells, runs several
//! noise-perturbed Monte Carlo trials per cell, and reports per-cell
//! conclusion rates and settlement statistics — the raw material for
//! "under which market assumptions is this agreement viable?" maps.
//!
//! Cells are independent, so the grid fans out over a
//! [`ThreadPool`] via [`ScenarioSweep`]: cell `i` perturbs its
//! baselines with ChaCha stream `i + 1` of `master_seed` (stream 0 is
//! reserved for the sweep coordinator; see `pan_runtime::sweep`), which
//! makes the whole grid bit-identical at any thread count.

use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use pan_econ::{BusinessModel, FlowVec};
use pan_runtime::{ScenarioSweep, ThreadPool};

use crate::{Agreement, AgreementScenario, CashOptimizer, Result};

/// Configuration of a negotiation-scenario grid sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridConfig {
    /// Reroutable-share values (`[0, 1]`) forming the grid's first axis.
    pub reroute_shares: Vec<f64>,
    /// Attractable-share values (`[0, 1]`) forming the second axis.
    pub attract_shares: Vec<f64>,
    /// Monte Carlo trials per cell.
    pub trials_per_cell: usize,
    /// Relative baseline-volume jitter per trial: each flow entry is
    /// scaled by a factor drawn uniformly from `[1 − noise, 1 + noise)`.
    pub noise: f64,
    /// Master seed of the sweep.
    pub master_seed: u64,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            reroute_shares: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            attract_shares: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            trials_per_cell: 8,
            noise: 0.2,
            master_seed: 42,
        }
    }
}

/// Aggregate result of one `(reroute_share, attract_share)` grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridCell {
    /// The cell's reroutable share.
    pub reroute_share: f64,
    /// The cell's attractable share.
    pub attract_share: f64,
    /// Trials evaluated (equals `trials_per_cell`).
    pub trials: usize,
    /// Trials in which the cash-compensation agreement concluded.
    pub concluded: usize,
    /// Mean joint utility over the concluded trials (0 if none).
    pub mean_joint_utility: f64,
    /// Mean `X → Y` transfer over the concluded trials (0 if none).
    pub mean_transfer: f64,
}

impl GridCell {
    /// Fraction of trials that concluded.
    #[must_use]
    pub fn conclusion_rate(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.concluded as f64 / self.trials as f64
    }
}

/// Scales every entry of `baseline` (including the end-host flow) by an
/// independent factor from `[1 − noise, 1 + noise)` (half-open, matching
/// `gen_range`).
fn perturb(baseline: &FlowVec, noise: f64, rng: &mut ChaCha12Rng) -> FlowVec {
    let mut jittered = FlowVec::new(baseline.asn());
    for (neighbor, volume) in baseline.iter() {
        let factor = 1.0 + noise * rng.gen_range(-1.0..1.0);
        jittered.set(neighbor, volume * factor);
    }
    let factor = 1.0 + noise * rng.gen_range(-1.0..1.0);
    jittered.set_end_host_flow(baseline.end_host_flow() * factor);
    jittered
}

/// Sweeps the full scenario grid in parallel.
///
/// For every grid cell and trial, the parties' baselines are jittered
/// with the cell's derived RNG stream, an [`AgreementScenario`] with
/// default opportunities is built for the cell's shares, and the
/// cash-compensation optimizer of §IV-B decides viability.
///
/// Cell randomness derives entirely from `config.master_seed`; `pool`
/// only supplies the workers. Cells are returned in row-major order
/// (`reroute_shares` outer, `attract_shares` inner), bit-identical at
/// any thread count.
///
/// # Errors
///
/// Returns [`AgreementError::InvalidFraction`](crate::AgreementError::InvalidFraction)
/// when `config.noise` is outside `[0, 1]` (a larger jitter could turn
/// flow volumes negative), and propagates scenario-construction and
/// optimizer errors (invalid shares, mismatched baselines, non-finite
/// utilities).
pub fn sweep_negotiation_grid(
    model: &BusinessModel,
    agreement: &Agreement,
    baseline_x: &FlowVec,
    baseline_y: &FlowVec,
    config: &GridConfig,
    pool: &ThreadPool,
) -> Result<Vec<GridCell>> {
    if !config.noise.is_finite() || !(0.0..=1.0).contains(&config.noise) {
        return Err(crate::AgreementError::InvalidFraction {
            value: config.noise,
        });
    }
    let sweep = ScenarioSweep::new(pool.clone(), config.master_seed);
    let cells: Vec<(f64, f64)> = config
        .reroute_shares
        .iter()
        .flat_map(|&r| config.attract_shares.iter().map(move |&a| (r, a)))
        .collect();
    let optimizer = CashOptimizer::new();

    let outcomes = sweep.map(&cells, |_idx, &(reroute, attract), mut rng| {
        let mut concluded = 0usize;
        let mut joint_sum = 0.0;
        let mut transfer_sum = 0.0;
        for _ in 0..config.trials_per_cell {
            let fx = perturb(baseline_x, config.noise, &mut rng);
            let fy = perturb(baseline_y, config.noise, &mut rng);
            let scenario = AgreementScenario::with_default_opportunities(
                model,
                agreement.clone(),
                fx,
                fy,
                reroute,
                attract,
            )?;
            if let Some(cash) = optimizer.optimize(&scenario)?.concluded() {
                concluded += 1;
                joint_sum += cash.joint_utility();
                transfer_sum += cash.settlement.transfer_x_to_y;
            }
        }
        Ok(GridCell {
            reroute_share: reroute,
            attract_share: attract,
            trials: config.trials_per_cell,
            concluded,
            mean_joint_utility: if concluded > 0 {
                joint_sum / concluded as f64
            } else {
                0.0
            },
            mean_transfer: if concluded > 0 {
                transfer_sum / concluded as f64
            } else {
                0.0
            },
        })
    });
    outcomes.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::tests::{baselines, eq6_agreement, fig1_model};

    fn small_config() -> GridConfig {
        GridConfig {
            reroute_shares: vec![0.0, 0.5, 1.0],
            attract_shares: vec![0.0, 0.4],
            trials_per_cell: 3,
            noise: 0.15,
            master_seed: 11,
        }
    }

    #[test]
    fn grid_covers_all_cells_in_row_major_order() {
        let model = fig1_model();
        let (fx, fy) = baselines();
        let cells = sweep_negotiation_grid(
            &model,
            &eq6_agreement(),
            &fx,
            &fy,
            &small_config(),
            &ThreadPool::new(1),
        )
        .unwrap();
        assert_eq!(cells.len(), 6);
        assert_eq!((cells[0].reroute_share, cells[0].attract_share), (0.0, 0.0));
        assert_eq!((cells[1].reroute_share, cells[1].attract_share), (0.0, 0.4));
        assert_eq!((cells[5].reroute_share, cells[5].attract_share), (1.0, 0.4));
        for cell in &cells {
            assert_eq!(cell.trials, 3);
            assert!(cell.concluded <= cell.trials);
            assert!((0.0..=1.0).contains(&cell.conclusion_rate()));
        }
    }

    #[test]
    fn grid_is_thread_count_independent() {
        let model = fig1_model();
        let (fx, fy) = baselines();
        let config = small_config();
        let reference = sweep_negotiation_grid(
            &model,
            &eq6_agreement(),
            &fx,
            &fy,
            &config,
            &ThreadPool::new(1),
        )
        .unwrap();
        for threads in [2, 4, 8] {
            let parallel = sweep_negotiation_grid(
                &model,
                &eq6_agreement(),
                &fx,
                &fy,
                &config,
                &ThreadPool::new(threads),
            )
            .unwrap();
            assert_eq!(reference, parallel, "{threads} threads diverged");
        }
    }

    #[test]
    fn generous_shares_conclude_more_often_than_zero_shares() {
        let model = fig1_model();
        let (fx, fy) = baselines();
        let config = GridConfig {
            reroute_shares: vec![0.0, 0.8],
            attract_shares: vec![0.0],
            trials_per_cell: 4,
            noise: 0.1,
            master_seed: 5,
        };
        let cells = sweep_negotiation_grid(
            &model,
            &eq6_agreement(),
            &fx,
            &fy,
            &config,
            &ThreadPool::new(1),
        )
        .unwrap();
        assert!(
            cells[1].concluded >= cells[0].concluded,
            "more reroutable volume cannot hurt viability"
        );
    }

    #[test]
    fn oversized_noise_is_rejected() {
        let model = fig1_model();
        let (fx, fy) = baselines();
        for noise in [1.5, -0.1, f64::NAN] {
            let config = GridConfig {
                noise,
                ..GridConfig::default()
            };
            assert!(
                sweep_negotiation_grid(
                    &model,
                    &eq6_agreement(),
                    &fx,
                    &fy,
                    &config,
                    &ThreadPool::new(1),
                )
                .is_err(),
                "noise {noise} must be rejected"
            );
        }
    }

    #[test]
    fn invalid_shares_propagate_errors() {
        let model = fig1_model();
        let (fx, fy) = baselines();
        let config = GridConfig {
            reroute_shares: vec![1.5],
            attract_shares: vec![0.0],
            ..GridConfig::default()
        };
        assert!(sweep_negotiation_grid(
            &model,
            &eq6_agreement(),
            &fx,
            &fy,
            &config,
            &ThreadPool::new(1),
        )
        .is_err());
    }
}
