//! Agreement optimization via flow-volume targets (§IV-A, Eq. 9).
//!
//! The optimizer searches the box `[0, 1]^{2n}` of operating points
//! (reroute and attract fractions per segment) for the point maximizing
//! the Nash product `u_X · u_Y` subject to the rationality constraints
//! `u_X ≥ 0`, `u_Y ≥ 0`. Constraints (II) and (III) of Eq. (9) hold by
//! construction of [`OperatingPoint`].
//!
//! The search is a deterministic multi-start projected coordinate ascent:
//! each pass scans every coordinate with a coarse grid followed by local
//! refinement; several structured starting points avoid the Nash
//! product's zero plateaus. This is adequate for the low-dimensional,
//! smooth programs arising from bilateral agreements (a handful of
//! segments each).

use serde::{Deserialize, Serialize};

use crate::utility::{evaluate, segment_targets, OperatingPoint, SegmentTarget};
use crate::{AgreementScenario, Result};

/// Tolerance below which a utility is treated as zero (agreements with
/// sub-tolerance surplus are considered degenerate rather than concluded).
pub const UTILITY_TOLERANCE: f64 = 1e-9;

/// A concluded flow-volume agreement: the optimized operating point, the
/// resulting per-segment targets, and the achieved utilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowVolumeAgreement {
    /// The optimized operating point.
    pub point: OperatingPoint,
    /// Flow-volume targets to be written into the agreement.
    pub targets: Vec<SegmentTarget>,
    /// Agreement utility of party `X` at the optimum.
    pub utility_x: f64,
    /// Agreement utility of party `Y` at the optimum.
    pub utility_y: f64,
}

impl FlowVolumeAgreement {
    /// The achieved Nash product.
    #[must_use]
    pub fn nash_product(&self) -> f64 {
        self.utility_x * self.utility_y
    }

    /// Total flow allowance across all segments.
    #[must_use]
    pub fn total_allowance(&self) -> f64 {
        self.targets.iter().map(|t| t.total_allowance).sum()
    }
}

/// Outcome of flow-volume optimization.
///
/// As §IV-C notes, for dissimilar cost structures the program can have
/// only the all-zero solution — the agreement "cannot be concluded"; that
/// case is reported as [`Degenerate`](Self::Degenerate) rather than as an
/// error, since it is an economically meaningful result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FlowVolumeOutcome {
    /// A mutually beneficial operating point was found.
    Concluded(FlowVolumeAgreement),
    /// Only the zero-volume solution satisfies the rationality
    /// constraints; no flow-volume agreement is worth concluding.
    Degenerate {
        /// Utilities at the best feasible point found (≈ 0).
        best_nash_product: f64,
    },
}

impl FlowVolumeOutcome {
    /// Returns the concluded agreement, if any.
    #[must_use]
    pub fn concluded(&self) -> Option<&FlowVolumeAgreement> {
        match self {
            FlowVolumeOutcome::Concluded(agreement) => Some(agreement),
            FlowVolumeOutcome::Degenerate { .. } => None,
        }
    }

    /// Returns `true` if the agreement was concluded.
    #[must_use]
    pub fn is_concluded(&self) -> bool {
        matches!(self, FlowVolumeOutcome::Concluded(_))
    }
}

/// Configuration of the flow-volume optimizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowVolumeOptimizer {
    /// Number of grid samples per coordinate scan.
    pub grid_points: usize,
    /// Maximum coordinate-ascent passes over all coordinates.
    pub max_passes: usize,
    /// Convergence tolerance on the objective between passes.
    pub tolerance: f64,
}

impl Default for FlowVolumeOptimizer {
    fn default() -> Self {
        FlowVolumeOptimizer {
            grid_points: 17,
            max_passes: 12,
            tolerance: 1e-10,
        }
    }
}

impl FlowVolumeOptimizer {
    /// Creates an optimizer with default settings.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves Eq. (9) for the scenario.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors (invalid flows, unknown ASes).
    pub fn optimize(&self, scenario: &AgreementScenario<'_>) -> Result<FlowVolumeOutcome> {
        let n = scenario.dimension();
        if n == 0 {
            return Ok(FlowVolumeOutcome::Degenerate {
                best_nash_product: 0.0,
            });
        }

        // Structured starts: zero, full, half, reroute-only, attract-only.
        let starts = [
            OperatingPoint::zero(n),
            OperatingPoint::full(n),
            OperatingPoint::uniform(n, 0.5, 0.5).expect("0.5 is a valid fraction"),
            OperatingPoint::uniform(n, 1.0, 0.0).expect("valid fractions"),
            OperatingPoint::uniform(n, 0.0, 1.0).expect("valid fractions"),
        ];

        let mut best_point = OperatingPoint::zero(n);
        let mut best_score = self.score(scenario, &best_point)?;
        for start in starts {
            let (point, score) = self.ascend(scenario, start)?;
            if score > best_score {
                best_score = score;
                best_point = point;
            }
        }

        let eval = evaluate(scenario, &best_point)?;
        let feasible = eval.utility_x >= -UTILITY_TOLERANCE && eval.utility_y >= -UTILITY_TOLERANCE;
        let product = eval.utility_x.max(0.0) * eval.utility_y.max(0.0);
        let targets = segment_targets(scenario, &best_point)?;
        let any_volume = targets
            .iter()
            .any(|t| t.total_allowance > UTILITY_TOLERANCE);
        if !feasible || !any_volume || product <= UTILITY_TOLERANCE {
            return Ok(FlowVolumeOutcome::Degenerate {
                best_nash_product: product.max(0.0),
            });
        }
        Ok(FlowVolumeOutcome::Concluded(FlowVolumeAgreement {
            point: best_point,
            targets,
            utility_x: eval.utility_x,
            utility_y: eval.utility_y,
        }))
    }

    /// Coordinate ascent from a starting point; returns the local optimum
    /// and its score.
    fn ascend(
        &self,
        scenario: &AgreementScenario<'_>,
        mut point: OperatingPoint,
    ) -> Result<(OperatingPoint, f64)> {
        let mut current = self.score(scenario, &point)?;
        for _ in 0..self.max_passes {
            let before = current;
            for k in 0..point.coordinate_count() {
                current = self.optimize_coordinate(scenario, &mut point, k, current)?;
            }
            if current - before <= self.tolerance {
                break;
            }
        }
        Ok((point, current))
    }

    /// Grid scan plus local refinement of a single coordinate.
    fn optimize_coordinate(
        &self,
        scenario: &AgreementScenario<'_>,
        point: &mut OperatingPoint,
        k: usize,
        current: f64,
    ) -> Result<f64> {
        let original = point.coordinate(k);
        let mut best_value = original;
        let mut best_score = current;

        let m = self.grid_points.max(3);
        for step in 0..m {
            let candidate = step as f64 / (m - 1) as f64;
            point.set_coordinate(k, candidate);
            let score = self.score(scenario, point)?;
            if score > best_score {
                best_score = score;
                best_value = candidate;
            }
        }
        // Local refinement around the best grid value.
        let mut width = 1.0 / (m - 1) as f64;
        for _ in 0..20 {
            width /= 2.0;
            let mut improved = false;
            for candidate in [best_value - width, best_value + width] {
                if !(0.0..=1.0).contains(&candidate) {
                    continue;
                }
                point.set_coordinate(k, candidate);
                let score = self.score(scenario, point)?;
                if score > best_score {
                    best_score = score;
                    best_value = candidate;
                    improved = true;
                }
            }
            if !improved && width < 1e-6 {
                break;
            }
        }
        point.set_coordinate(k, best_value);
        Ok(best_score)
    }

    /// The penalized objective: the Nash product on the feasible region
    /// (with an infinitesimal joint-utility tiebreak to escape the zero
    /// plateaus along the axes), and a steep negative penalty outside it.
    fn score(&self, scenario: &AgreementScenario<'_>, point: &OperatingPoint) -> Result<f64> {
        let eval = evaluate(scenario, point)?;
        let (ux, uy) = (eval.utility_x, eval.utility_y);
        if ux >= -UTILITY_TOLERANCE && uy >= -UTILITY_TOLERANCE {
            Ok(ux.max(0.0) * uy.max(0.0) + 1e-7 * (ux + uy))
        } else {
            Ok(-(ux.min(0.0).abs() + uy.min(0.0).abs()) - 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::tests::{baselines, eq6_agreement, fig1_model};
    use crate::utility::evaluate;
    use crate::AgreementScenario;
    use pan_econ::{BusinessModel, CostFunction, PricingBook, PricingFunction};
    use pan_topology::fixtures::{asn, fig1};

    fn symmetric_scenario(model: &BusinessModel) -> AgreementScenario<'_> {
        let (fd, fe) = baselines();
        AgreementScenario::with_default_opportunities(model, eq6_agreement(), fd, fe, 0.6, 0.4)
            .unwrap()
    }

    #[test]
    fn symmetric_agreement_concludes_with_positive_utilities() {
        let m = fig1_model();
        let s = symmetric_scenario(&m);
        let outcome = FlowVolumeOptimizer::new().optimize(&s).unwrap();
        let agreement = outcome.concluded().expect("should conclude");
        assert!(agreement.utility_x > 0.0, "u_D = {}", agreement.utility_x);
        assert!(agreement.utility_y > 0.0, "u_E = {}", agreement.utility_y);
        assert!(agreement.total_allowance() > 0.0);
    }

    #[test]
    fn optimum_beats_corner_points() {
        let m = fig1_model();
        let s = symmetric_scenario(&m);
        let outcome = FlowVolumeOptimizer::new().optimize(&s).unwrap();
        let best = outcome.concluded().unwrap().nash_product();
        for point in [
            OperatingPoint::zero(s.dimension()),
            OperatingPoint::full(s.dimension()),
            OperatingPoint::uniform(s.dimension(), 0.5, 0.5).unwrap(),
        ] {
            let eval = evaluate(&s, &point).unwrap();
            let corner = eval.utility_x.max(0.0) * eval.utility_y.max(0.0);
            assert!(
                best >= corner - 1e-6,
                "corner {corner} beats optimum {best}"
            );
        }
    }

    #[test]
    fn optimum_respects_rationality_constraints() {
        let m = fig1_model();
        let s = symmetric_scenario(&m);
        if let FlowVolumeOutcome::Concluded(agreement) =
            FlowVolumeOptimizer::new().optimize(&s).unwrap()
        {
            assert!(agreement.utility_x >= -UTILITY_TOLERANCE);
            assert!(agreement.utility_y >= -UTILITY_TOLERANCE);
        }
    }

    /// §IV-C: with very dissimilar cost structures the flow-volume program
    /// degenerates to the zero solution.
    #[test]
    fn dissimilar_costs_degenerate() {
        let g = fig1();
        let mut book = PricingBook::new();
        // E pays its provider B an enormous rate, and D's provider is
        // cheap: any traffic D sends over E ruins E, and E has nothing
        // to gain because D's reroutable savings are tiny.
        book.set_transit_price(
            asn('A'),
            asn('D'),
            PricingFunction::per_usage(0.01).unwrap(),
        );
        book.set_transit_price(
            asn('B'),
            asn('E'),
            PricingFunction::per_usage(50.0).unwrap(),
        );
        let mut model = BusinessModel::new(g, book);
        model.set_internal_cost(asn('D'), CostFunction::linear(5.0).unwrap());
        model.set_internal_cost(asn('E'), CostFunction::linear(5.0).unwrap());
        let (fd, fe) = baselines();
        let s = AgreementScenario::with_default_opportunities(
            &model,
            eq6_agreement(),
            fd,
            fe,
            0.6,
            0.0,
        )
        .unwrap();
        let outcome = FlowVolumeOptimizer::new().optimize(&s).unwrap();
        assert!(
            !outcome.is_concluded(),
            "hostile economics should degenerate, got {outcome:?}"
        );
    }

    #[test]
    fn empty_scenario_degenerates() {
        let m = fig1_model();
        let (fd, fe) = baselines();
        let s = AgreementScenario::new(&m, eq6_agreement(), fd, fe).unwrap();
        let outcome = FlowVolumeOptimizer::new().optimize(&s).unwrap();
        assert!(!outcome.is_concluded());
    }

    #[test]
    fn optimizer_is_deterministic() {
        let m = fig1_model();
        let s = symmetric_scenario(&m);
        let a = FlowVolumeOptimizer::new().optimize(&s).unwrap();
        let b = FlowVolumeOptimizer::new().optimize(&s).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn targets_are_consistent_with_point() {
        let m = fig1_model();
        let s = symmetric_scenario(&m);
        if let FlowVolumeOutcome::Concluded(agreement) =
            FlowVolumeOptimizer::new().optimize(&s).unwrap()
        {
            for (target, opp) in agreement.targets.iter().zip(s.opportunities()) {
                assert!(
                    target.total_allowance
                        <= opp.reroutable_total() + opp.attractable_total() + 1e-9
                );
                assert!(target.attracted_allowance <= opp.attractable_total() + 1e-9);
                assert!(target.rerouted_allowance() >= -1e-9);
            }
        } else {
            panic!("expected conclusion");
        }
    }
}
