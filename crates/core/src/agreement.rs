use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use pan_topology::{AsGraph, Asn, NeighborKind};

use crate::{AgreementError, Result};

/// The set of neighbors one party grants the other access to:
/// the `(↑π', →ε', ↓γ')` triple of Eq. (2).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grant {
    providers: BTreeSet<Asn>,
    peers: BTreeSet<Asn>,
    customers: BTreeSet<Asn>,
}

impl Grant {
    /// Creates an empty grant.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a grant from explicit provider/peer/customer sets.
    #[must_use]
    pub fn from_sets(
        providers: impl IntoIterator<Item = Asn>,
        peers: impl IntoIterator<Item = Asn>,
        customers: impl IntoIterator<Item = Asn>,
    ) -> Self {
        Grant {
            providers: providers.into_iter().collect(),
            peers: peers.into_iter().collect(),
            customers: customers.into_iter().collect(),
        }
    }

    /// Adds a provider (`↑`) to the grant.
    pub fn add_provider(&mut self, asn: Asn) -> &mut Self {
        self.providers.insert(asn);
        self
    }

    /// Adds a peer (`→`) to the grant.
    pub fn add_peer(&mut self, asn: Asn) -> &mut Self {
        self.peers.insert(asn);
        self
    }

    /// Adds a customer (`↓`) to the grant.
    pub fn add_customer(&mut self, asn: Asn) -> &mut Self {
        self.customers.insert(asn);
        self
    }

    /// The granted providers `π'`.
    #[must_use]
    pub fn providers(&self) -> &BTreeSet<Asn> {
        &self.providers
    }

    /// The granted peers `ε'`.
    #[must_use]
    pub fn peers(&self) -> &BTreeSet<Asn> {
        &self.peers
    }

    /// The granted customers `γ'`.
    #[must_use]
    pub fn customers(&self) -> &BTreeSet<Asn> {
        &self.customers
    }

    /// All granted ASes: the union `a_X = π' ∪ ε' ∪ γ'`.
    pub fn all(&self) -> impl Iterator<Item = (Asn, NeighborKind)> + '_ {
        self.providers
            .iter()
            .map(|&a| (a, NeighborKind::Provider))
            .chain(self.peers.iter().map(|&a| (a, NeighborKind::Peer)))
            .chain(self.customers.iter().map(|&a| (a, NeighborKind::Customer)))
    }

    /// Total number of granted ASes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.providers.len() + self.peers.len() + self.customers.len()
    }

    /// Returns `true` if nothing is granted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A new length-3 path segment created by an agreement: the
/// `beneficiary` can now reach `target` via its agreement partner `via`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NewSegment {
    /// The party gaining the path.
    pub beneficiary: Asn,
    /// The partner through which the path runs.
    pub via: Asn,
    /// The granted neighbor of `via` now reachable by `beneficiary`.
    pub target: Asn,
    /// The role of `target` from `via`'s perspective (determines who pays
    /// whom for the last hop).
    pub target_role: NeighborKind,
}

impl fmt::Display for NewSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} → {} → {} ({})",
            self.beneficiary, self.via, self.target, self.target_role
        )
    }
}

/// An interconnection agreement between two ASes (Eq. 2):
///
/// ```text
/// a = [X(↑π'_X, →ε'_X, ↓γ'_X); Y(↑π'_Y, →ε'_Y, ↓γ'_Y)]
/// ```
///
/// `grant_by_x` lists the neighbors of `X` that `Y` gains access to, and
/// vice versa.
///
/// # Example: the paper's agreement of Eq. (6)
///
/// ```
/// use pan_core::{Agreement, Grant};
/// use pan_topology::fixtures::{asn, fig1};
///
/// let graph = fig1();
/// // a = [D(↑{A}); E(↑{B}, →{F})]
/// let a = Agreement::new(
///     asn('D'),
///     asn('E'),
///     Grant::from_sets([asn('A')], [], []),
///     Grant::from_sets([asn('B')], [asn('F')], []),
/// )?;
/// a.validate(&graph)?;
/// assert_eq!(a.new_segments(&graph).len(), 3); // D–E–B, D–E–F, E–D–A
/// # Ok::<(), pan_core::AgreementError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Agreement {
    x: Asn,
    y: Asn,
    grant_by_x: Grant,
    grant_by_y: Grant,
}

impl Agreement {
    /// Creates an agreement between `x` and `y`.
    ///
    /// # Errors
    ///
    /// Returns [`AgreementError::SameParty`] if `x == y`. Role correctness
    /// of the grants is checked separately by [`validate`](Self::validate).
    pub fn new(x: Asn, y: Asn, grant_by_x: Grant, grant_by_y: Grant) -> Result<Self> {
        if x == y {
            return Err(AgreementError::SameParty { asn: x });
        }
        Ok(Agreement {
            x,
            y,
            grant_by_x,
            grant_by_y,
        })
    }

    /// First party.
    #[must_use]
    pub fn x(&self) -> Asn {
        self.x
    }

    /// Second party.
    #[must_use]
    pub fn y(&self) -> Asn {
        self.y
    }

    /// The grant made by `x` (what `y` gains).
    #[must_use]
    pub fn grant_by_x(&self) -> &Grant {
        &self.grant_by_x
    }

    /// The grant made by `y` (what `x` gains).
    #[must_use]
    pub fn grant_by_y(&self) -> &Grant {
        &self.grant_by_y
    }

    /// The grant made by `party`, which must be one of the two parties.
    #[must_use]
    pub fn grant_by(&self, party: Asn) -> Option<&Grant> {
        if party == self.x {
            Some(&self.grant_by_x)
        } else if party == self.y {
            Some(&self.grant_by_y)
        } else {
            None
        }
    }

    /// The partner of `party`, if `party` is one of the two parties.
    #[must_use]
    pub fn partner_of(&self, party: Asn) -> Option<Asn> {
        if party == self.x {
            Some(self.y)
        } else if party == self.y {
            Some(self.x)
        } else {
            None
        }
    }

    /// Validates the grants against a topology: every granted AS must be a
    /// neighbor of the grantor in the declared role, and no party may be
    /// granted access to itself.
    ///
    /// # Errors
    ///
    /// Returns [`AgreementError::InvalidGrant`] on the first violation.
    pub fn validate(&self, graph: &AsGraph) -> Result<()> {
        for (grantor, grantee, grant) in [
            (self.x, self.y, &self.grant_by_x),
            (self.y, self.x, &self.grant_by_y),
        ] {
            for (target, claimed_role) in grant.all() {
                if target == grantee {
                    return Err(AgreementError::InvalidGrant {
                        grantor,
                        target,
                        reason: "cannot grant a party access to itself".to_owned(),
                    });
                }
                if target == grantor {
                    return Err(AgreementError::InvalidGrant {
                        grantor,
                        target,
                        reason: "cannot grant access to the grantor itself".to_owned(),
                    });
                }
                match graph.neighbor_kind(grantor, target) {
                    None => {
                        return Err(AgreementError::InvalidGrant {
                            grantor,
                            target,
                            reason: "not a neighbor of the grantor".to_owned(),
                        })
                    }
                    Some(actual) if actual != claimed_role => {
                        return Err(AgreementError::InvalidGrant {
                            grantor,
                            target,
                            reason: format!(
                                "declared as {claimed_role} but actually a {actual} of the grantor"
                            ),
                        })
                    }
                    Some(_) => {}
                }
            }
        }
        Ok(())
    }

    /// The new path segments created by the agreement, one per granted AS.
    ///
    /// Target roles are resolved against `graph` (falling back to the
    /// declared role if the graph lacks the link, which cannot happen for
    /// validated agreements).
    #[must_use]
    pub fn new_segments(&self, graph: &AsGraph) -> Vec<NewSegment> {
        let mut segments = Vec::with_capacity(self.grant_by_x.len() + self.grant_by_y.len());
        for (beneficiary, via, grant) in [
            (self.x, self.y, &self.grant_by_y),
            (self.y, self.x, &self.grant_by_x),
        ] {
            for (target, declared_role) in grant.all() {
                let target_role = graph.neighbor_kind(via, target).unwrap_or(declared_role);
                segments.push(NewSegment {
                    beneficiary,
                    via,
                    target,
                    target_role,
                });
            }
        }
        segments
    }

    /// Builds the classic peering agreement of §III-B1: both parties grant
    /// access to **all** of their customers.
    ///
    /// # Errors
    ///
    /// Returns [`AgreementError::SameParty`] if `x == y`.
    pub fn classic_peering(graph: &AsGraph, x: Asn, y: Asn) -> Result<Self> {
        let gx = Grant::from_sets([], [], graph.customers(x).filter(|&c| c != y));
        let gy = Grant::from_sets([], [], graph.customers(y).filter(|&c| c != x));
        Agreement::new(x, y, gx, gy)
    }

    /// Builds the mutuality-based agreement (MA) of §VI between two
    /// existing peers: each party grants the other access to **all of its
    /// providers and peers that are not customers of the partner**.
    ///
    /// # Errors
    ///
    /// Returns [`AgreementError::NotPeers`] if `x` and `y` do not peer in
    /// `graph`, or [`AgreementError::SameParty`] if `x == y`.
    pub fn mutuality(graph: &AsGraph, x: Asn, y: Asn) -> Result<Self> {
        if x == y {
            return Err(AgreementError::SameParty { asn: x });
        }
        if graph.neighbor_kind(x, y) != Some(NeighborKind::Peer) {
            return Err(AgreementError::NotPeers { x, y });
        }
        let grant_of = |grantor: Asn, grantee: Asn| {
            let customers_of_grantee: BTreeSet<Asn> = graph.customers(grantee).collect();
            let providers = graph
                .providers(grantor)
                .filter(|a| *a != grantee && !customers_of_grantee.contains(a));
            let peers = graph
                .peers(grantor)
                .filter(|a| *a != grantee && !customers_of_grantee.contains(a));
            Grant::from_sets(providers, peers, [])
        };
        Agreement::new(x, y, grant_of(x, y), grant_of(y, x))
    }
}

impl fmt::Display for Agreement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_set = |set: &BTreeSet<Asn>| -> String {
            let items: Vec<String> = set.iter().map(ToString::to_string).collect();
            items.join(",")
        };
        write!(
            f,
            "[{}(↑{{{}}}, →{{{}}}, ↓{{{}}}); {}(↑{{{}}}, →{{{}}}, ↓{{{}}})]",
            self.x,
            fmt_set(&self.grant_by_x.providers),
            fmt_set(&self.grant_by_x.peers),
            fmt_set(&self.grant_by_x.customers),
            self.y,
            fmt_set(&self.grant_by_y.providers),
            fmt_set(&self.grant_by_y.peers),
            fmt_set(&self.grant_by_y.customers),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pan_topology::fixtures::{asn, fig1};

    fn eq6(graph: &AsGraph) -> Agreement {
        let a = Agreement::new(
            asn('D'),
            asn('E'),
            Grant::from_sets([asn('A')], [], []),
            Grant::from_sets([asn('B')], [asn('F')], []),
        )
        .unwrap();
        a.validate(graph).unwrap();
        a
    }

    #[test]
    fn same_party_is_rejected() {
        assert!(matches!(
            Agreement::new(asn('D'), asn('D'), Grant::new(), Grant::new()),
            Err(AgreementError::SameParty { .. })
        ));
    }

    #[test]
    fn eq6_agreement_validates_and_segments() {
        let g = fig1();
        let a = eq6(&g);
        let segments = a.new_segments(&g);
        assert_eq!(segments.len(), 3);
        // D gains D–E–B (provider of E) and D–E–F (peer of E).
        assert!(segments.iter().any(|s| s.beneficiary == asn('D')
            && s.via == asn('E')
            && s.target == asn('B')
            && s.target_role == NeighborKind::Provider));
        assert!(segments.iter().any(|s| s.beneficiary == asn('D')
            && s.target == asn('F')
            && s.target_role == NeighborKind::Peer));
        // E gains E–D–A.
        assert!(segments.iter().any(|s| s.beneficiary == asn('E')
            && s.via == asn('D')
            && s.target == asn('A')
            && s.target_role == NeighborKind::Provider));
    }

    #[test]
    fn wrong_role_grant_is_rejected() {
        let g = fig1();
        // A is D's provider, not customer.
        let a = Agreement::new(
            asn('D'),
            asn('E'),
            Grant::from_sets([], [], [asn('A')]),
            Grant::new(),
        )
        .unwrap();
        assert!(matches!(
            a.validate(&g),
            Err(AgreementError::InvalidGrant { .. })
        ));
    }

    #[test]
    fn non_neighbor_grant_is_rejected() {
        let g = fig1();
        // I is not a neighbor of D.
        let a = Agreement::new(
            asn('D'),
            asn('E'),
            Grant::from_sets([], [], [asn('I')]),
            Grant::new(),
        )
        .unwrap();
        assert!(matches!(
            a.validate(&g),
            Err(AgreementError::InvalidGrant { .. })
        ));
    }

    #[test]
    fn self_grant_is_rejected() {
        let g = fig1();
        // D "granting" E access to E makes no sense.
        let a = Agreement::new(
            asn('D'),
            asn('E'),
            Grant::from_sets([], [asn('E')], []),
            Grant::new(),
        )
        .unwrap();
        assert!(a.validate(&g).is_err());
    }

    #[test]
    fn classic_peering_grants_all_customers() {
        let g = fig1();
        let ap = Agreement::classic_peering(&g, asn('D'), asn('E')).unwrap();
        ap.validate(&g).unwrap();
        assert_eq!(
            ap.grant_by_x()
                .customers()
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![asn('H')]
        );
        assert_eq!(
            ap.grant_by_y()
                .customers()
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![asn('I')]
        );
        assert!(ap.grant_by_x().providers().is_empty());
    }

    #[test]
    fn mutuality_matches_section_vi_rule() {
        let g = fig1();
        let ma = Agreement::mutuality(&g, asn('D'), asn('E')).unwrap();
        ma.validate(&g).unwrap();
        // D grants its provider A and its peer C (E excluded as partner).
        assert!(ma.grant_by_x().providers().contains(&asn('A')));
        assert!(ma.grant_by_x().peers().contains(&asn('C')));
        assert!(!ma.grant_by_x().peers().contains(&asn('E')));
        // E grants its provider B and its peer F.
        assert!(ma.grant_by_y().providers().contains(&asn('B')));
        assert!(ma.grant_by_y().peers().contains(&asn('F')));
        assert!(ma.grant_by_x().customers().is_empty());
    }

    #[test]
    fn mutuality_requires_peering() {
        let g = fig1();
        assert!(matches!(
            Agreement::mutuality(&g, asn('D'), asn('H')),
            Err(AgreementError::NotPeers { .. })
        ));
        assert!(matches!(
            Agreement::mutuality(&g, asn('A'), asn('E')),
            Err(AgreementError::NotPeers { .. })
        ));
    }

    #[test]
    fn mutuality_excludes_partners_customers() {
        use pan_topology::{AsGraphBuilder, Relationship};
        // X peers Y; X's provider P is also Y's customer → must be excluded.
        let mut b = AsGraphBuilder::new();
        let (x, y, p) = (Asn::new(1), Asn::new(2), Asn::new(3));
        b.add_link(x, y, Relationship::PeerToPeer).unwrap();
        b.add_link(p, x, Relationship::ProviderToCustomer).unwrap();
        b.add_link(y, p, Relationship::ProviderToCustomer).unwrap();
        let g = b.build().unwrap();
        let ma = Agreement::mutuality(&g, x, y).unwrap();
        assert!(
            ma.grant_by_x().providers().is_empty(),
            "P is Y's customer and must not be granted"
        );
    }

    #[test]
    fn accessors() {
        let g = fig1();
        let a = eq6(&g);
        assert_eq!(a.partner_of(asn('D')), Some(asn('E')));
        assert_eq!(a.partner_of(asn('E')), Some(asn('D')));
        assert_eq!(a.partner_of(asn('A')), None);
        assert!(a.grant_by(asn('D')).is_some());
        assert!(a.grant_by(asn('Z')).is_none());
        assert_eq!(a.grant_by_y().len(), 2);
    }

    #[test]
    fn display_is_paper_like() {
        let g = fig1();
        let a = eq6(&g);
        let text = a.to_string();
        assert!(text.contains("AS4"), "{text}");
        assert!(text.contains('↑'), "{text}");
    }

    #[test]
    fn grant_iteration_covers_all_roles() {
        let grant = Grant::from_sets([Asn::new(1)], [Asn::new(2)], [Asn::new(3)]);
        let all: Vec<_> = grant.all().collect();
        assert_eq!(all.len(), 3);
        assert!(all.contains(&(Asn::new(1), NeighborKind::Provider)));
        assert!(all.contains(&(Asn::new(2), NeighborKind::Peer)));
        assert!(all.contains(&(Asn::new(3), NeighborKind::Customer)));
    }

    #[test]
    fn serde_round_trip() {
        let g = fig1();
        let a = eq6(&g);
        let json = serde_json::to_string(&a).unwrap();
        let back: Agreement = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }
}
