//! Mutuality-based interconnection agreements for path-aware networks.
//!
//! This crate implements the primary contribution of Scherrer, Legner,
//! Perrig, Schmid: *Enabling Novel Interconnection Agreements with
//! Path-Aware Networking Architectures* (DSN 2021):
//!
//! - [`Agreement`] / [`Grant`]: the agreement formalism of Eq. (2),
//!   including the classic peering agreement of §III-B1
//!   ([`Agreement::classic_peering`]) and the mutuality-based agreement of
//!   §III-B2/§VI ([`Agreement::mutuality`]).
//! - [`AgreementScenario`] + [`evaluate`]: agreement utilities
//!   `u_X(a) = U_X(f^{(a)}_X) − U_X(f_X)` per Eq. (3) and Eq. (7).
//! - [`FlowVolumeOptimizer`]: Nash-product optimization via flow-volume
//!   targets (§IV-A, Eq. 9).
//! - [`CashOptimizer`] / [`settle`]: optimization via cash compensation
//!   and the Nash Bargaining Solution (§IV-B, Eq. 10–11).
//! - [`negotiation`]: the claims-based bargaining game underlying §V
//!   (the BOSCO mechanism itself lives in the `pan-bosco` crate).
//! - [`discovery`]: the batch engine answering the paper's question at
//!   topology scale — enumerate every candidate pair of a synthetic
//!   internet, evaluate Eq. 3/7 incrementally on dense
//!   [`pan_econ::FlowMatrix`]/[`pan_econ::DenseEconomics`] tables, run
//!   Eq. 9–11 per pair, and rank concluded agreements by surplus.
//! - [`dynamics`]: multi-round market evolution on top of [`discovery`] —
//!   adopt the top agreements, materialize their flow volumes and NBS
//!   transfers (registering new peering links for prospective pairs),
//!   optionally shock the market, and iterate to a fixed point. Two
//!   interchangeable engines drive the rounds: the stateless full
//!   resweep, and an incremental engine ([`Engine::Incremental`]) that
//!   re-evaluates only candidates touching dirty ASes and ranks them
//!   through a lazily-invalidated surplus heap — byte-identical
//!   trajectories, an order of magnitude faster per warm round.
//! - [`extension`]: extension of agreement paths (§III-B3) with the
//!   interdependency constraint on base-agreement targets.
//!
//! # Quick start
//!
//! ```
//! use pan_core::{Agreement, AgreementScenario, CashOptimizer, FlowVolumeOptimizer};
//! use pan_econ::{BusinessModel, CostFunction, FlowVec, PricingBook, PricingFunction};
//! use pan_topology::fixtures::{asn, fig1};
//!
//! // Economic setting on the paper's Fig. 1 topology.
//! let graph = fig1();
//! let mut book = PricingBook::new();
//! book.set_transit_price(asn('A'), asn('D'), PricingFunction::per_usage(2.0)?);
//! book.set_transit_price(asn('B'), asn('E'), PricingFunction::per_usage(2.0)?);
//! book.set_transit_price(asn('D'), asn('H'), PricingFunction::per_usage(3.0)?);
//! book.set_transit_price(asn('E'), asn('I'), PricingFunction::per_usage(3.0)?);
//! let mut model = BusinessModel::new(graph, book);
//! model.set_internal_cost(asn('D'), CostFunction::linear(0.05)?);
//! model.set_internal_cost(asn('E'), CostFunction::linear(0.05)?);
//!
//! // Baseline flows of the two parties.
//! let mut fd = FlowVec::new(asn('D'));
//! fd.set(asn('A'), 30.0);
//! fd.set(asn('H'), 25.0);
//! let mut fe = FlowVec::new(asn('E'));
//! fe.set(asn('B'), 28.0);
//! fe.set(asn('I'), 22.0);
//!
//! // The paper's mutuality-based agreement between peers D and E.
//! let ma = Agreement::mutuality(model.graph(), asn('D'), asn('E'))?;
//! let scenario =
//!     AgreementScenario::with_default_opportunities(&model, ma, fd, fe, 0.6, 0.3)?;
//!
//! // Optimize with both methods of §IV.
//! let flow_volume = FlowVolumeOptimizer::new().optimize(&scenario)?;
//! let cash = CashOptimizer::new().optimize(&scenario)?;
//! assert!(flow_volume.is_concluded() || cash.is_concluded());
//! # Ok::<(), pan_core::AgreementError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod agreement;
mod error;
mod scenario;

mod incremental;

#[cfg(test)]
mod golden_tests;

pub mod cash;
pub mod discovery;
pub mod dynamics;
pub mod estimate;
pub mod extension;
pub mod flow_volume;
pub mod grid;
pub mod nash;
pub mod negotiation;
pub mod utility;

pub use agreement::{Agreement, Grant, NewSegment};
pub use cash::{settle, CashAgreement, CashOptimizer, CashOutcome, CashSettlement};
pub use discovery::{
    discover, enumerate_candidates, enumerate_candidates_for, BatchContext, CandidatePair,
    CandidatePolicy, DiscoveryConfig, DiscoveryReport, PairOutcome, PairScratch,
};
pub use dynamics::{
    advise, evolve, evolve_with_engine, AdoptedAgreement, Engine, EvolutionConfig, EvolutionDriver,
    EvolutionReport, MarketSnapshot, MarketState, RoundOutcome, RoundRecord,
};
pub use error::AgreementError;
pub use flow_volume::{FlowVolumeAgreement, FlowVolumeOptimizer, FlowVolumeOutcome};
pub use grid::{sweep_negotiation_grid, GridCell, GridConfig};
pub use scenario::{AgreementScenario, SegmentOpportunity};
pub use utility::{evaluate, segment_targets, Evaluation, OperatingPoint, SegmentTarget};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, AgreementError>;
