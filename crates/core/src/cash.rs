//! Agreement optimization via cash compensation (§IV-B, Eq. 10–11).
//!
//! Instead of limiting flow volumes, the parties agree on a cash transfer
//! `Π_{X→Y}` compensating whoever benefits less. The optimization problem
//! of Eq. (10) has a solution iff the joint utility `u_X + u_Y` is
//! non-negative, in which case the Nash Bargaining Solution of Eq. (11)
//! splits the surplus equally.
//!
//! [`CashOptimizer`] additionally chooses the *operating point*
//! maximizing the joint utility — the extra flexibility the paper credits
//! cash agreements with (§IV-C): a transfer can make any
//! positive-joint-surplus operating point acceptable, so the parties can
//! run the flows that maximize total welfare rather than the constrained
//! Nash product.

use serde::{Deserialize, Serialize};

use crate::nash::{bargaining_transfer, post_transfer_utilities};
use crate::utility::{evaluate, OperatingPoint};
use crate::{AgreementScenario, Result};

/// Tolerance for treating a joint utility as non-negative.
pub const JOINT_TOLERANCE: f64 = 1e-9;

/// The settlement of a cash-compensation agreement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CashSettlement {
    /// Cash transfer `Π_{X→Y}` (negative: `Y` pays `X`), Eq. (11).
    pub transfer_x_to_y: f64,
    /// Party `X`'s utility after the transfer.
    pub utility_x_after: f64,
    /// Party `Y`'s utility after the transfer.
    pub utility_y_after: f64,
}

/// Computes the cash settlement for claimed/estimated utilities.
///
/// Returns `None` when `u_X + u_Y < 0`: one party would lose more than
/// the other gains, so no transfer can rescue the agreement (Eq. 10 has
/// no solution).
///
/// # Errors
///
/// Returns [`AgreementError::InvalidUtility`](crate::AgreementError::InvalidUtility)
/// for non-finite utilities.
pub fn settle(utility_x: f64, utility_y: f64) -> Result<Option<CashSettlement>> {
    let transfer = bargaining_transfer(utility_x, utility_y)?;
    if utility_x + utility_y < -JOINT_TOLERANCE {
        return Ok(None);
    }
    let (after_x, after_y) = post_transfer_utilities(utility_x, utility_y)?;
    Ok(Some(CashSettlement {
        transfer_x_to_y: transfer,
        utility_x_after: after_x,
        utility_y_after: after_y,
    }))
}

/// A concluded cash-compensation agreement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CashAgreement {
    /// The operating point maximizing joint utility.
    pub point: OperatingPoint,
    /// Party `X`'s utility before the transfer.
    pub utility_x_before: f64,
    /// Party `Y`'s utility before the transfer.
    pub utility_y_before: f64,
    /// The settlement (transfer and post-transfer utilities).
    pub settlement: CashSettlement,
}

impl CashAgreement {
    /// Joint utility (equals twice the post-transfer utility of each party).
    #[must_use]
    pub fn joint_utility(&self) -> f64 {
        self.utility_x_before + self.utility_y_before
    }
}

/// Outcome of cash-compensation optimization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CashOutcome {
    /// The agreement is concluded with the given settlement.
    Concluded(CashAgreement),
    /// Even the welfare-maximizing operating point has negative joint
    /// utility; the agreement is not viable.
    NotViable {
        /// Best joint utility found.
        best_joint_utility: f64,
    },
}

impl CashOutcome {
    /// Returns the concluded agreement, if any.
    #[must_use]
    pub fn concluded(&self) -> Option<&CashAgreement> {
        match self {
            CashOutcome::Concluded(agreement) => Some(agreement),
            CashOutcome::NotViable { .. } => None,
        }
    }

    /// Returns `true` if the agreement was concluded.
    #[must_use]
    pub fn is_concluded(&self) -> bool {
        matches!(self, CashOutcome::Concluded(_))
    }
}

/// Optimizer for cash-compensation agreements: maximizes the joint
/// utility `u_X + u_Y` over operating points, then settles via the NBS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CashOptimizer {
    /// Number of grid samples per coordinate scan.
    pub grid_points: usize,
    /// Maximum coordinate-ascent passes.
    pub max_passes: usize,
    /// Convergence tolerance on the objective between passes.
    pub tolerance: f64,
}

impl Default for CashOptimizer {
    fn default() -> Self {
        CashOptimizer {
            grid_points: 17,
            max_passes: 12,
            tolerance: 1e-10,
        }
    }
}

impl CashOptimizer {
    /// Creates an optimizer with default settings.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves Eq. (10) for the scenario.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn optimize(&self, scenario: &AgreementScenario<'_>) -> Result<CashOutcome> {
        let n = scenario.dimension();
        if n == 0 {
            return Ok(CashOutcome::NotViable {
                best_joint_utility: 0.0,
            });
        }
        let starts = [
            OperatingPoint::zero(n),
            OperatingPoint::full(n),
            OperatingPoint::uniform(n, 0.5, 0.5).expect("valid fractions"),
        ];
        let mut best_point = OperatingPoint::zero(n);
        let mut best_joint = self.joint(scenario, &best_point)?;
        for start in starts {
            let (point, joint) = self.ascend(scenario, start)?;
            if joint > best_joint {
                best_joint = joint;
                best_point = point;
            }
        }
        let eval = evaluate(scenario, &best_point)?;
        match settle(eval.utility_x, eval.utility_y)? {
            Some(settlement) if best_joint > JOINT_TOLERANCE => {
                Ok(CashOutcome::Concluded(CashAgreement {
                    point: best_point,
                    utility_x_before: eval.utility_x,
                    utility_y_before: eval.utility_y,
                    settlement,
                }))
            }
            _ => Ok(CashOutcome::NotViable {
                best_joint_utility: best_joint,
            }),
        }
    }

    fn ascend(
        &self,
        scenario: &AgreementScenario<'_>,
        mut point: OperatingPoint,
    ) -> Result<(OperatingPoint, f64)> {
        let mut current = self.joint(scenario, &point)?;
        for _ in 0..self.max_passes {
            let before = current;
            for k in 0..point.coordinate_count() {
                let original = point.coordinate(k);
                let mut best_value = original;
                let mut best_score = current;
                let m = self.grid_points.max(3);
                for step in 0..m {
                    let candidate = step as f64 / (m - 1) as f64;
                    point.set_coordinate(k, candidate);
                    let score = self.joint(scenario, &point)?;
                    if score > best_score {
                        best_score = score;
                        best_value = candidate;
                    }
                }
                let mut width = 1.0 / (m - 1) as f64;
                for _ in 0..20 {
                    width /= 2.0;
                    let mut improved = false;
                    for candidate in [best_value - width, best_value + width] {
                        if !(0.0..=1.0).contains(&candidate) {
                            continue;
                        }
                        point.set_coordinate(k, candidate);
                        let score = self.joint(scenario, &point)?;
                        if score > best_score {
                            best_score = score;
                            best_value = candidate;
                            improved = true;
                        }
                    }
                    if !improved && width < 1e-6 {
                        break;
                    }
                }
                point.set_coordinate(k, best_value);
                current = best_score;
            }
            if current - before <= self.tolerance {
                break;
            }
        }
        Ok((point, current))
    }

    fn joint(&self, scenario: &AgreementScenario<'_>, point: &OperatingPoint) -> Result<f64> {
        let eval = evaluate(scenario, point)?;
        Ok(eval.utility_x + eval.utility_y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow_volume::{FlowVolumeOptimizer, FlowVolumeOutcome};
    use crate::scenario::tests::{baselines, eq6_agreement, fig1_model};
    use crate::AgreementScenario;
    use proptest::prelude::*;

    fn scenario(model: &pan_econ::BusinessModel) -> AgreementScenario<'_> {
        let (fd, fe) = baselines();
        AgreementScenario::with_default_opportunities(model, eq6_agreement(), fd, fe, 0.6, 0.4)
            .unwrap()
    }

    #[test]
    fn settle_splits_surplus_equally() {
        let s = settle(10.0, 4.0).unwrap().unwrap();
        assert!((s.transfer_x_to_y - 3.0).abs() < 1e-12);
        assert!((s.utility_x_after - 7.0).abs() < 1e-12);
        assert!((s.utility_y_after - 7.0).abs() < 1e-12);
    }

    #[test]
    fn settle_rescues_one_sided_losses() {
        // Y loses 2 but X gains 10: viable with compensation.
        let s = settle(10.0, -2.0).unwrap().unwrap();
        assert!(s.utility_y_after >= 0.0);
        assert!((s.utility_x_after - 4.0).abs() < 1e-12);
    }

    #[test]
    fn settle_refuses_negative_surplus() {
        assert!(settle(1.0, -5.0).unwrap().is_none());
    }

    #[test]
    fn optimizer_concludes_on_viable_scenario() {
        let m = fig1_model();
        let s = scenario(&m);
        let outcome = CashOptimizer::new().optimize(&s).unwrap();
        let agreement = outcome.concluded().expect("viable scenario");
        assert!(agreement.joint_utility() > 0.0);
        assert!(
            (agreement.settlement.utility_x_after - agreement.settlement.utility_y_after).abs()
                < 1e-9,
            "NBS equalizes post-transfer utilities"
        );
    }

    /// §IV-C: cash agreements achieve at least the joint utility of the
    /// flow-volume optimum (they are strictly more flexible).
    #[test]
    fn cash_joint_utility_dominates_flow_volume() {
        let m = fig1_model();
        let s = scenario(&m);
        let cash = CashOptimizer::new().optimize(&s).unwrap();
        let fv = FlowVolumeOptimizer::new().optimize(&s).unwrap();
        let cash_joint = cash.concluded().unwrap().joint_utility();
        if let FlowVolumeOutcome::Concluded(agreement) = fv {
            assert!(
                cash_joint >= agreement.utility_x + agreement.utility_y - 1e-6,
                "cash joint {cash_joint} < flow-volume joint {}",
                agreement.utility_x + agreement.utility_y
            );
        }
    }

    #[test]
    fn empty_scenario_is_not_viable() {
        let m = fig1_model();
        let (fd, fe) = baselines();
        let s = AgreementScenario::new(&m, eq6_agreement(), fd, fe).unwrap();
        assert!(!CashOptimizer::new().optimize(&s).unwrap().is_concluded());
    }

    #[test]
    fn optimizer_is_deterministic() {
        let m = fig1_model();
        let s = scenario(&m);
        let a = CashOptimizer::new().optimize(&s).unwrap();
        let b = CashOptimizer::new().optimize(&s).unwrap();
        assert_eq!(a, b);
    }

    proptest! {
        /// Eq. (10) has a solution iff `u_X + u_Y ≥ 0`.
        #[test]
        fn settlement_exists_iff_joint_nonnegative(
            ux in -50.0..50.0f64,
            uy in -50.0..50.0f64,
        ) {
            let settlement = settle(ux, uy).unwrap();
            if ux + uy >= JOINT_TOLERANCE {
                let s = settlement.expect("positive surplus must settle");
                prop_assert!(s.utility_x_after >= -1e-9);
                prop_assert!(s.utility_y_after >= -1e-9);
            } else if ux + uy < -JOINT_TOLERANCE {
                prop_assert!(settlement.is_none());
            }
        }
    }
}
