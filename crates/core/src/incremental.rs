//! The incremental discovery engine behind
//! [`Engine::Incremental`](crate::Engine): dirty-AS candidate
//! maintenance with a lazily-invalidated surplus heap.
//!
//! A full-resweep round re-evaluates every candidate pair even though a
//! round's mutations (top-K adoptions) only touch the dense-table rows
//! of a few hundred ASes. Every quantity a candidate evaluation reads
//! lives in the two endpoint rows of the pair (graph adjacency, pricing
//! entries, flow entries, and the rows' totals), so a cached outcome
//! stays exact until one of its endpoints' rows changes. This module
//! exploits that locality:
//!
//! - [`EnumerationCache`] keeps the candidate enumeration across rounds
//!   while the graph is unchanged (invalidated when adoption registers a
//!   new peering link via
//!   [`AsGraph::with_added_peering_links`](pan_topology::AsGraph::with_added_peering_links),
//!   or when the driver is pointed at a different state). Both engines
//!   use it — re-enumerating ~157k pairs per round on a static graph was
//!   pure waste.
//! - [`IncrementalState`] keeps one evaluation slot per enumerated pair
//!   plus a surplus-ordered max-heap over the evaluated outcomes. Each
//!   round drains the [`MarketState`]'s dirty-row journal, re-evaluates
//!   only candidates intersecting the dirty set, pushes the refreshed
//!   entries (tagged with a per-slot generation), and drains the
//!   party-disjoint top-K off the heap. Superseded heap entries are
//!   dropped lazily when popped (their generation no longer matches
//!   their slot's).
//!
//! # Exactness contract
//!
//! The incremental engine is a *refactor*, not an approximation: every
//! round must be byte-identical to the full resweep at any thread
//! count. The load-bearing details, in order of subtlety:
//!
//! - **Heap order replicates the report ranking.** Entries order by
//!   `surplus` under [`f64::total_cmp`], ties broken by ascending
//!   `(x, y)` ASN pair — exactly the sort
//!   [`DiscoveryReport::from_outcomes`](crate::DiscoveryReport::from_outcomes)
//!   applies — so the heap pops candidates in the full engine's scan
//!   order. NaN surpluses are rejected before entering the heap (the
//!   evaluator already errors on non-finite utilities).
//! - **Aggregates are re-summed in enumeration order.** The round's
//!   `discovered_surplus` is an f64 sum whose value depends on summation
//!   order; it is recomputed over the cached outcomes in filtered
//!   enumeration order — the order the full engine sums in — never
//!   incrementally updated with deltas.
//! - **The below-threshold pop ends the scan.** The full engine stops
//!   its adoption scan at the first outcome that is non-viable or below
//!   `min_surplus`; everything the heap still holds ranks at or below
//!   that entry, so the entry is pushed back and the scan breaks.
//! - **Share jitter disables caching.** With
//!   [`DiscoveryConfig::noise`](crate::DiscoveryConfig::noise) `> 0`
//!   every pair's shares are drawn from its sweep stream *by filtered
//!   position*, so an outcome is not a function of the pair's rows
//!   alone; those configurations delegate to the full path (exact by
//!   construction, just not faster).
//!
//! Any superset of the true dirty set is sound — it costs extra
//! re-evaluations that reproduce the cached values bit for bit. The
//! engine leans on that: whole-table perturbations mark all rows
//! (`perturb`'s drift pass really does touch every row, so this is
//! precise, and shocked rounds are full resweeps), and a graph change or
//! unrecognized state rebuilds the cache from scratch.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use pan_econ::DirtyDrain;
use pan_runtime::ScenarioSweep;
use pan_topology::Asn;

use crate::discovery::{
    derive_pair_transit, enumerate_candidates, evaluate_candidate_with, BatchContext,
    CandidatePair, CandidatePolicy, NodePrograms, PairOutcome, PairScratch, PairTransit,
    CANDIDATE_TILE,
};
use crate::dynamics::{EvolutionConfig, MarketState, RoundScan};
use crate::Result;

/// The candidate enumeration of a known `(state, graph)` pair, reused
/// across rounds until the graph changes (new peering link) or the
/// driver is pointed at a different state.
#[derive(Debug, Clone)]
pub(crate) struct EnumerationCache {
    token: u64,
    graph_version: u64,
    /// The unfiltered enumeration (adopted pairs included — the adopted
    /// set changes every round, so filtering happens per round).
    pub(crate) pairs: Vec<CandidatePair>,
    /// Times the enumeration was (re)computed, including the first.
    pub(crate) rebuilds: usize,
    /// Rounds served from the cache without re-enumerating.
    pub(crate) reuses: usize,
}

/// Ensures `cache` holds the current enumeration of `state`, reusing it
/// when the state identity and graph version both match.
pub(crate) fn refresh_enumeration(
    cache: &mut Option<EnumerationCache>,
    state: &MarketState,
    policy: CandidatePolicy,
) {
    let (token, graph_version) = (state.cache_token(), state.graph_version());
    if let Some(cached) = cache {
        if cached.token == token && cached.graph_version == graph_version {
            cached.reuses += 1;
            pan_telemetry::counter("core.cache.enumeration.reuses").inc();
            return;
        }
    }
    pan_telemetry::counter("core.cache.enumeration.rebuilds").inc();
    let (rebuilds, reuses) = cache.as_ref().map_or((0, 0), |c| (c.rebuilds, c.reuses));
    *cache = Some(EnumerationCache {
        token,
        graph_version,
        pairs: enumerate_candidates(state.graph(), policy),
        rebuilds: rebuilds + 1,
        reuses,
    });
}

/// One cached candidate evaluation. The generation counts re-evaluations
/// of the slot; a heap entry is current iff its recorded generation
/// matches.
#[derive(Debug, Clone, Default)]
struct Slot {
    outcome: Option<PairOutcome>,
    generation: u32,
}

/// A surplus-ranked heap entry pointing at an evaluation slot.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    surplus: f64,
    x: Asn,
    y: Asn,
    /// Index into the enumeration (and the parallel slot table).
    index: u32,
    generation: u32,
}

impl HeapEntry {
    /// Builds an entry, rejecting NaN surpluses — a NaN would make the
    /// ordering below inconsistent with the report ranking. (The
    /// evaluator errors on non-finite utilities long before this, so a
    /// `None` here indicates a bug upstream.)
    fn new(surplus: f64, x: Asn, y: Asn, index: u32, generation: u32) -> Option<Self> {
        if surplus.is_nan() {
            return None;
        }
        Some(HeapEntry {
            surplus,
            x,
            y,
            index,
            generation,
        })
    }
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    /// Max-heap priority mirroring the
    /// [`DiscoveryReport::from_outcomes`](crate::DiscoveryReport::from_outcomes)
    /// ranking: higher surplus first ([`f64::total_cmp`]), then the
    /// smaller `(x, y)` ASN pair. The generation tie-break only orders
    /// superseded duplicates of the same slot (skipped on pop anyway)
    /// so the order is total.
    fn cmp(&self, other: &Self) -> Ordering {
        self.surplus
            .total_cmp(&other.surplus)
            .then_with(|| (other.x, other.y).cmp(&(self.x, self.y)))
            .then_with(|| self.generation.cmp(&other.generation))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The persistent evaluation cache of the incremental engine; see the
/// [module docs](self) for the invariants.
#[derive(Debug, Clone)]
pub(crate) struct IncrementalState {
    token: u64,
    graph_version: u64,
    /// The pricing revision the cached [`PairTransit`] structures were
    /// derived under; a bump drops them all (they depend on the transit
    /// pricing tables, never on flows).
    pricing_epoch: u64,
    /// Parallel to the enumeration: the cached evaluation per pair.
    slots: Vec<Slot>,
    /// Parallel to the enumeration: the pair's cached transit structure
    /// (graph- and pricing-derived, flow-independent — so it survives
    /// the adoption mutations that invalidate the evaluation slots).
    transit: Vec<Option<PairTransit>>,
    /// Lazily-invalidated max-heap over evaluated candidates.
    heap: BinaryHeap<HeapEntry>,
    /// Round scratch: the dirty-row bitmap, reused across rounds
    /// (cleared and resized at the top of every round).
    dirty_rows: Vec<bool>,
    /// Round scratch: this round's filtered candidate view.
    filtered: Vec<u32>,
    /// Round scratch: the stale subset of the filtered view.
    stale: Vec<u32>,
}

/// Ensures `cache` targets the current `(state, graph)` pair, rebuilding
/// it cold (every slot unevaluated, empty heap) on any mismatch — a cold
/// cache re-evaluates everything on its first round, which is always
/// sound.
pub(crate) fn ensure<'a>(
    cache: &'a mut Option<IncrementalState>,
    state: &MarketState,
    pairs: &[CandidatePair],
) -> &'a mut IncrementalState {
    let (token, graph_version) = (state.cache_token(), state.graph_version());
    let stale = match cache {
        Some(c) => c.token != token || c.graph_version != graph_version,
        None => true,
    };
    if stale {
        // Rebuilding keys and tables but carrying the round scratch
        // buffers keeps warm rounds allocation-free across rebuilds.
        let carried = cache.take();
        let (dirty_rows, filtered, stale) = carried
            .map(|c| (c.dirty_rows, c.filtered, c.stale))
            .unwrap_or_default();
        *cache = Some(IncrementalState {
            token,
            graph_version,
            pricing_epoch: state.pricing_epoch(),
            slots: vec![Slot::default(); pairs.len()],
            transit: vec![None; pairs.len()],
            heap: BinaryHeap::with_capacity(pairs.len()),
            dirty_rows,
            filtered,
            stale,
        });
    }
    cache.as_mut().expect("just ensured")
}

impl IncrementalState {
    /// Runs one incremental round: drain the state's dirty rows,
    /// re-evaluate intersecting candidates, merge into the heap, and
    /// adopt the party-disjoint top-K — producing the exact aggregates
    /// and adoptions of a full-resweep round.
    pub(crate) fn round(
        &mut self,
        state: &mut MarketState,
        config: &EvolutionConfig,
        round_sweep: &ScenarioSweep,
        pairs: &[CandidatePair],
        round: usize,
    ) -> Result<RoundScan> {
        let discovery = &config.discovery;

        // 1. Union the rows mutated since the last round into a bitmap
        // (the bitmap and index buffers below are round scratch taken
        // from `self`, so warm rounds allocate nothing).
        let drained = state.drain_dirty();
        let all_dirty = matches!(drained, DirtyDrain::All);
        let mut dirty_rows = std::mem::take(&mut self.dirty_rows);
        dirty_rows.clear();
        dirty_rows.resize(state.graph().node_count(), false);
        if let DirtyDrain::Rows(rows) = &drained {
            for &row in rows {
                dirty_rows[row as usize] = true;
            }
        }
        pan_telemetry::histogram("core.incremental.dirty_rows").record(match &drained {
            DirtyDrain::All => state.graph().node_count() as u64,
            DirtyDrain::Rows(rows) => rows.len() as u64,
        });

        // 2. This round's filtered candidate view, in enumeration order,
        // and the subset whose cached outcome is stale.
        let mut filtered = std::mem::take(&mut self.filtered);
        filtered.clear();
        let mut stale = std::mem::take(&mut self.stale);
        stale.clear();
        for (index, pair) in pairs.iter().enumerate() {
            if state.is_adopted(pair.x, pair.y) {
                continue;
            }
            let index = index as u32;
            filtered.push(index);
            let slot = &self.slots[index as usize];
            if slot.outcome.is_none()
                || all_dirty
                || dirty_rows[pair.x as usize]
                || dirty_rows[pair.y as usize]
            {
                stale.push(index);
            }
        }

        // 3. Re-evaluate the stale candidates in parallel through the
        // shared per-round node programs — the same evaluation path the
        // full engine takes at zero noise, so refreshed outcomes are
        // bit-identical to a full resweep's. The per-item RNG streams go
        // unused (noise == 0 — jitter delegates to the full path), so
        // stream assignment cannot influence results. Transit structures
        // are flow-independent, so they carry over from earlier rounds
        // unless the pricing tables changed; a cached structure is
        // bitwise what [`derive_pair_transit`] would return, so cache
        // hits cannot perturb the evaluation.
        if state.pricing_epoch() != self.pricing_epoch {
            self.pricing_epoch = state.pricing_epoch();
            self.transit.iter_mut().for_each(|t| *t = None);
        }
        pan_telemetry::histogram("core.incremental.stale_candidates").record(stale.len() as u64);
        let evaluated = if stale.is_empty() {
            Vec::new()
        } else {
            let ctx = BatchContext::new(state.graph(), state.econ(), state.flows())?;
            let programs =
                NodePrograms::build(&ctx, discovery.reroute_share, discovery.attract_share)?;
            {
                let _span = pan_telemetry::histogram("core.phase.derive_transit_ns").start();
                for &index in &stale {
                    let slot = &mut self.transit[index as usize];
                    if slot.is_none() {
                        *slot = Some(derive_pair_transit(&ctx, pairs[index as usize]));
                    }
                }
            }
            let transit = &self.transit;
            let _span = pan_telemetry::histogram("core.phase.evaluate_ns").start();
            round_sweep.map_with_tiled(
                &stale,
                CANDIDATE_TILE,
                PairScratch::new,
                |scratch, _i, &index, _rng| {
                    evaluate_candidate_with(
                        &ctx,
                        &programs,
                        transit[index as usize]
                            .as_ref()
                            .expect("every stale pair's transit structure was just derived"),
                        scratch,
                        pairs[index as usize],
                        discovery.grid,
                    )
                },
            )
        };
        let mut fresh = Vec::with_capacity(evaluated.len());
        for outcome in evaluated {
            match outcome {
                Ok(outcome) => fresh.push(outcome),
                Err(error) => {
                    // The dirty journal was already drained; resync
                    // conservatively so a caller that recovers from the
                    // error re-evaluates everything next round.
                    state.mark_all_dirty();
                    return Err(error);
                }
            }
        }

        // 4. Commit the refreshed outcomes and push their heap entries.
        for (&index, outcome) in stale.iter().zip(fresh) {
            let slot = &mut self.slots[index as usize];
            slot.generation = slot.generation.wrapping_add(1);
            let entry = HeapEntry::new(
                outcome.surplus,
                outcome.x,
                outcome.y,
                index,
                slot.generation,
            )
            .expect("the evaluator rejects non-finite surpluses");
            slot.outcome = Some(outcome);
            self.heap.push(entry);
        }

        // 5. Round aggregates, re-summed over the cached outcomes in
        // filtered enumeration order — the exact f64 summation order of
        // the full engine's report assembly.
        let mut concluded_flow_volume = 0usize;
        let mut concluded_cash = 0usize;
        let mut discovered_surplus = 0.0f64;
        for &index in &filtered {
            let outcome = self.slots[index as usize]
                .outcome
                .as_ref()
                .expect("every filtered slot was evaluated");
            concluded_flow_volume += usize::from(outcome.flow_volume.is_some());
            concluded_cash += usize::from(outcome.cash.is_some());
            discovered_surplus += outcome.surplus;
        }

        // 6. Adoption scan: drain the heap best-first, mirroring the
        // full engine's sorted scan (see the module docs for why each
        // skip/break is exact).
        let _adopt_span = pan_telemetry::histogram("core.phase.adopt_ns").start();
        let mut busy: HashSet<u32> = HashSet::new();
        let mut agreements = Vec::new();
        let mut adopted_surplus = 0.0f64;
        let mut new_links = 0usize;
        let mut heap_pops = 0u64;
        let mut deferred: Vec<HeapEntry> = Vec::new();
        while agreements.len() < config.adopt_top {
            let Some(entry) = self.heap.pop() else {
                break;
            };
            heap_pops += 1;
            let slot = &self.slots[entry.index as usize];
            if entry.generation != slot.generation {
                continue; // superseded by a re-evaluation: drop lazily
            }
            let pair = pairs[entry.index as usize];
            if state.is_adopted(pair.x, pair.y) {
                continue; // adopted in an earlier round's scan: retire
            }
            let outcome = slot
                .outcome
                .as_ref()
                .expect("current-generation entries have outcomes");
            if outcome.cash.is_none() || outcome.surplus <= config.min_surplus {
                // The full scan breaks here; everything still heaped
                // ranks at or below this entry. Keep it for later rounds.
                deferred.push(entry);
                break;
            }
            if busy.contains(&pair.x) || busy.contains(&pair.y) {
                deferred.push(entry);
                continue;
            }
            match state.adopt_outcome(outcome, discovery.grid, config.min_surplus, round)? {
                Some(agreement) => {
                    busy.insert(pair.x);
                    busy.insert(pair.y);
                    adopted_surplus += agreement.joint_utility;
                    new_links += usize::from(agreement.new_link);
                    agreements.push(agreement);
                }
                // The refreshed surplus no longer clears the bar on the
                // current state. The mutations that consumed it marked
                // the endpoints dirty, so the slot re-evaluates next
                // round; until then the stale entry stays ranked.
                None => deferred.push(entry),
            }
        }
        self.heap.extend(deferred);
        pan_telemetry::counter("core.incremental.heap_pops").add(heap_pops);

        // 7. Compact once stale entries dominate the heap: rebuild from
        // the live slots. Determinism is unaffected — the heap's pop
        // order is fully determined by the (total) entry order.
        if self.heap.len() > 2 * filtered.len() + 64 {
            self.compact(state, pairs);
        }

        let candidates = filtered.len();
        self.dirty_rows = dirty_rows;
        self.filtered = filtered;
        self.stale = stale;

        Ok(RoundScan {
            candidates,
            concluded_flow_volume,
            concluded_cash,
            discovered_surplus,
            agreements,
            adopted_surplus,
            new_links,
        })
    }

    /// Rebuilds the heap from the current-generation outcomes of
    /// non-adopted pairs, discarding every lazily-invalidated entry.
    fn compact(&mut self, state: &MarketState, pairs: &[CandidatePair]) {
        let entries: Vec<HeapEntry> = pairs
            .iter()
            .enumerate()
            .filter_map(|(index, pair)| {
                if state.is_adopted(pair.x, pair.y) {
                    return None;
                }
                let slot = &self.slots[index];
                let outcome = slot.outcome.as_ref()?;
                HeapEntry::new(
                    outcome.surplus,
                    outcome.x,
                    outcome.y,
                    index as u32,
                    slot.generation,
                )
            })
            .collect();
        self.heap = BinaryHeap::from(entries);
    }

    /// Bytes resident in the engine's slot table, transit cache, heap,
    /// and round scratch — the incremental engine's contribution to a
    /// driver's memory footprint.
    pub(crate) fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.slots.capacity() * size_of::<Slot>()
            + self.transit.capacity() * size_of::<Option<PairTransit>>()
            + self
                .transit
                .iter()
                .flatten()
                .map(PairTransit::heap_bytes)
                .sum::<usize>()
            + self.heap.capacity() * size_of::<HeapEntry>()
            + self.dirty_rows.capacity() * size_of::<bool>()
            + (self.filtered.capacity() + self.stale.capacity()) * size_of::<u32>()
    }

    /// The cached outcome of enumeration entry `index`, if evaluated —
    /// the dirty-set soundness test compares these against fresh
    /// evaluations bit for bit.
    #[cfg(test)]
    pub(crate) fn cached_outcome(&self, index: usize) -> Option<&PairOutcome> {
        self.slots.get(index).and_then(|slot| slot.outcome.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(surplus: f64, x: u32, y: u32, index: u32, generation: u32) -> HeapEntry {
        HeapEntry::new(surplus, Asn::new(x), Asn::new(y), index, generation)
            .expect("finite surplus")
    }

    #[test]
    fn heap_entries_reject_nan_surpluses() {
        assert!(HeapEntry::new(f64::NAN, Asn::new(1), Asn::new(2), 0, 1).is_none());
        assert!(HeapEntry::new(f64::INFINITY, Asn::new(1), Asn::new(2), 0, 1).is_some());
        assert!(HeapEntry::new(-0.0, Asn::new(1), Asn::new(2), 0, 1).is_some());
    }

    #[test]
    fn heap_order_matches_the_report_ranking() {
        // from_outcomes sorts by surplus descending (total_cmp), then
        // ascending (x, y); the heap must pop in exactly that order.
        let mut heap = BinaryHeap::new();
        heap.push(entry(1.0, 5, 6, 0, 1));
        heap.push(entry(2.0, 9, 10, 1, 1));
        heap.push(entry(2.0, 3, 4, 2, 1));
        heap.push(entry(-0.0, 7, 8, 3, 1)); // total_cmp: -0.0 < 0.0
        heap.push(entry(0.0, 1, 2, 4, 1));
        let order: Vec<u32> = std::iter::from_fn(|| heap.pop().map(|e| e.index)).collect();
        assert_eq!(order, vec![2, 1, 0, 4, 3]);
    }

    #[test]
    fn generation_tie_break_keeps_the_order_total() {
        let older = entry(1.0, 1, 2, 0, 1);
        let newer = entry(1.0, 1, 2, 0, 2);
        assert_eq!(older.cmp(&older), Ordering::Equal);
        assert_eq!(older.cmp(&newer), Ordering::Less);
        assert_eq!(newer.cmp(&older), Ordering::Greater);
    }
}
