//! Agreement-utility evaluation: Eq. (3) and Eq. (7) of the paper.
//!
//! Given a scenario (baseline flows + opportunities) and an
//! [`OperatingPoint`] (how much of each opportunity is exercised), this
//! module computes the post-agreement flow vectors of both parties and
//! the agreement utilities `u_X(a) = U_X(f^{(a)}_X) − U_X(f_X)`.

use serde::{Deserialize, Serialize};

use pan_econ::FlowVec;

use crate::{AgreementError, AgreementScenario, Result};

/// The decision variables of agreement optimization (Eq. 9): for every
/// segment opportunity `i`, the fraction of its reroutable volume that is
/// actually moved (`reroute[i]`) and the fraction of its maximum
/// attractable demand that is admitted (`attract[i]`), both in `[0, 1]`.
///
/// Together with the scenario these define the flow-volume targets
/// `f^{(a)}_P = reroute·R_P + attract·Δf^max_P` and
/// `Δf^{(a)}_P = attract·Δf^max_P` — so constraint (II) of Eq. (9) holds
/// by construction and constraint (III) is the box bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    reroute: Vec<f64>,
    attract: Vec<f64>,
}

impl OperatingPoint {
    /// Creates an operating point from explicit fractions.
    ///
    /// # Errors
    ///
    /// Returns [`AgreementError::DimensionMismatch`] if the two vectors
    /// differ in length, or [`AgreementError::InvalidFraction`] for values
    /// outside `[0, 1]`.
    pub fn new(reroute: Vec<f64>, attract: Vec<f64>) -> Result<Self> {
        if reroute.len() != attract.len() {
            return Err(AgreementError::DimensionMismatch {
                expected: reroute.len(),
                actual: attract.len(),
            });
        }
        for &v in reroute.iter().chain(attract.iter()) {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(AgreementError::InvalidFraction { value: v });
            }
        }
        Ok(OperatingPoint { reroute, attract })
    }

    /// The all-zero point (agreement concluded but unused).
    #[must_use]
    pub fn zero(dimension: usize) -> Self {
        OperatingPoint {
            reroute: vec![0.0; dimension],
            attract: vec![0.0; dimension],
        }
    }

    /// The all-one point (every opportunity fully exercised).
    #[must_use]
    pub fn full(dimension: usize) -> Self {
        OperatingPoint {
            reroute: vec![1.0; dimension],
            attract: vec![1.0; dimension],
        }
    }

    /// A uniform point with the same fractions everywhere.
    ///
    /// # Errors
    ///
    /// Returns [`AgreementError::InvalidFraction`] for values outside
    /// `[0, 1]`.
    pub fn uniform(dimension: usize, reroute: f64, attract: f64) -> Result<Self> {
        OperatingPoint::new(vec![reroute; dimension], vec![attract; dimension])
    }

    /// Reroute fractions, one per opportunity.
    #[must_use]
    pub fn reroute(&self) -> &[f64] {
        &self.reroute
    }

    /// Attract fractions, one per opportunity.
    #[must_use]
    pub fn attract(&self) -> &[f64] {
        &self.attract
    }

    /// The per-kind dimension.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.reroute.len()
    }

    /// Total number of free coordinates (`2 × dimension`).
    #[must_use]
    pub fn coordinate_count(&self) -> usize {
        2 * self.reroute.len()
    }

    /// Reads coordinate `k`: the first `dimension` coordinates are the
    /// reroute fractions, the rest the attract fractions.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn coordinate(&self, k: usize) -> f64 {
        let n = self.reroute.len();
        if k < n {
            self.reroute[k]
        } else {
            self.attract[k - n]
        }
    }

    /// Writes coordinate `k`, clamping into `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn set_coordinate(&mut self, k: usize, value: f64) {
        let clamped = value.clamp(0.0, 1.0);
        let n = self.reroute.len();
        if k < n {
            self.reroute[k] = clamped;
        } else {
            self.attract[k - n] = clamped;
        }
    }
}

/// The result of evaluating an agreement at an operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Agreement utility `u_X(a)` of party `X` (Eq. 3).
    pub utility_x: f64,
    /// Agreement utility `u_Y(a)` of party `Y`.
    pub utility_y: f64,
    /// Post-agreement flow vector `f^{(a)}_X`.
    pub flows_x: FlowVec,
    /// Post-agreement flow vector `f^{(a)}_Y`.
    pub flows_y: FlowVec,
}

impl Evaluation {
    /// The Nash product `u_X · u_Y` (the objective of Eq. 8).
    #[must_use]
    pub fn nash_product(&self) -> f64 {
        self.utility_x * self.utility_y
    }

    /// The joint utility `u_X + u_Y` (the viability criterion for
    /// cash-compensation agreements, Eq. 10).
    #[must_use]
    pub fn joint_utility(&self) -> f64 {
        self.utility_x + self.utility_y
    }
}

/// Evaluates the agreement utilities at an operating point (Eq. 3/7).
///
/// The post-agreement flow vectors are derived from the baselines:
///
/// - **Beneficiary side** of each segment `X–via–Z`: rerouted volume
///   moves from the named providers onto the partner link; attracted
///   volume enters from the named customers and leaves towards the
///   partner (Eq. 7c).
/// - **Partner side**: the full segment volume transits the partner,
///   entering on the beneficiary link and leaving on the target link —
///   raising provider cost if the target is the partner's provider,
///   revenue if it is a customer, and only internal cost for a peer.
///
/// # Errors
///
/// Returns [`AgreementError::DimensionMismatch`] if the point and
/// scenario disagree in dimension, and propagates economic errors.
pub fn evaluate(scenario: &AgreementScenario<'_>, point: &OperatingPoint) -> Result<Evaluation> {
    if point.dimension() != scenario.dimension() {
        return Err(AgreementError::DimensionMismatch {
            expected: scenario.dimension(),
            actual: point.dimension(),
        });
    }
    let agreement = scenario.agreement();
    let x = agreement.x();
    let mut flows_x = scenario.baseline_x().clone();
    let mut flows_y = scenario.baseline_y().clone();

    for (i, opportunity) in scenario.opportunities().iter().enumerate() {
        let segment = &opportunity.segment;
        let reroute_frac = point.reroute()[i];
        let attract_frac = point.attract()[i];
        let beneficiary_is_x = segment.beneficiary == x;
        let (bene_flows, partner_flows) = if beneficiary_is_x {
            (&mut flows_x, &mut flows_y)
        } else {
            (&mut flows_y, &mut flows_x)
        };

        let mut segment_volume = 0.0;
        for &(provider, volume) in &opportunity.reroutable {
            let moved = reroute_frac * volume;
            bene_flows.add(provider, -moved);
            bene_flows.add(segment.via, moved);
            segment_volume += moved;
        }
        for &(customer, volume) in &opportunity.attractable {
            let added = attract_frac * volume;
            bene_flows.add(customer, added);
            bene_flows.add(segment.via, added);
            segment_volume += added;
        }

        // The partner transits the whole segment volume.
        partner_flows.add(segment.beneficiary, segment_volume);
        partner_flows.add(segment.target, segment_volume);
    }

    let model = scenario.model();
    let utility_x = model.utility(&flows_x)? - model.utility(scenario.baseline_x())?;
    let utility_y = model.utility(&flows_y)? - model.utility(scenario.baseline_y())?;
    Ok(Evaluation {
        utility_x,
        utility_y,
        flows_x,
        flows_y,
    })
}

/// The flow-volume targets extracted from an operating point: the
/// quantities written into a flow-volume agreement (§IV-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentTarget {
    /// The segment the target applies to.
    pub segment: crate::NewSegment,
    /// Total flow allowance `f^{(a)}_P` on the segment.
    pub total_allowance: f64,
    /// The share of the allowance reserved for newly attracted customer
    /// traffic, `Δf^{(a)}_P`.
    pub attracted_allowance: f64,
}

impl SegmentTarget {
    /// The rerouted share `f^{(a)↕}_P = f^{(a)}_P − Δf^{(a)}_P`.
    #[must_use]
    pub fn rerouted_allowance(&self) -> f64 {
        self.total_allowance - self.attracted_allowance
    }
}

/// Converts an operating point into per-segment flow-volume targets.
///
/// # Errors
///
/// Returns [`AgreementError::DimensionMismatch`] if the point and
/// scenario disagree in dimension.
pub fn segment_targets(
    scenario: &AgreementScenario<'_>,
    point: &OperatingPoint,
) -> Result<Vec<SegmentTarget>> {
    if point.dimension() != scenario.dimension() {
        return Err(AgreementError::DimensionMismatch {
            expected: scenario.dimension(),
            actual: point.dimension(),
        });
    }
    Ok(scenario
        .opportunities()
        .iter()
        .enumerate()
        .map(|(i, opportunity)| {
            let rerouted = point.reroute()[i] * opportunity.reroutable_total();
            let attracted = point.attract()[i] * opportunity.attractable_total();
            SegmentTarget {
                segment: opportunity.segment,
                total_allowance: rerouted + attracted,
                attracted_allowance: attracted,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::tests::{baselines, eq6_agreement, fig1_model};
    use crate::AgreementScenario;
    use pan_topology::fixtures::asn;

    fn scenario(model: &pan_econ::BusinessModel) -> AgreementScenario<'_> {
        let (fd, fe) = baselines();
        AgreementScenario::with_default_opportunities(model, eq6_agreement(), fd, fe, 0.5, 0.2)
            .unwrap()
    }

    #[test]
    fn zero_point_has_zero_utility() {
        let m = fig1_model();
        let s = scenario(&m);
        let eval = evaluate(&s, &OperatingPoint::zero(s.dimension())).unwrap();
        assert!(eval.utility_x.abs() < 1e-9);
        assert!(eval.utility_y.abs() < 1e-9);
        assert_eq!(eval.flows_x, s.baseline_x().clone());
    }

    #[test]
    fn rerouting_saves_provider_cost() {
        let m = fig1_model();
        let s = scenario(&m);
        // Exercise only rerouting: D moves traffic from provider A (2.0 per
        // unit) to the settlement-free E link; E symmetrically from B.
        let point = OperatingPoint::uniform(s.dimension(), 1.0, 0.0).unwrap();
        let eval = evaluate(&s, &point).unwrap();
        // D reroutes 15 units away from A: saves 30 in transit, but also
        // carries E's rerouted traffic to A (14 units → pays 28) — plus
        // internal-cost changes. The sum is what matters here: both sides
        // save on their own transit but pay for the partner's.
        assert!(eval.flows_x.get(asn('A')) < s.baseline_x().get(asn('A')) + 14.01);
        // Flow towards the peer link grew on both sides.
        assert!(eval.flows_x.get(asn('E')) > s.baseline_x().get(asn('E')));
        assert!(eval.flows_y.get(asn('D')) > s.baseline_y().get(asn('D')));
    }

    #[test]
    fn pure_reroute_conserves_beneficiary_total() {
        let m = fig1_model();
        let s = scenario(&m);
        let point = OperatingPoint::uniform(s.dimension(), 1.0, 0.0).unwrap();
        let eval = evaluate(&s, &point).unwrap();
        // D's own traffic only changes next-hop; growth comes solely from
        // transiting E's traffic (E reroutes 14 units to A via D → +28 on
        // D's total: in from E, out to A).
        let d_expected = s.baseline_x().total() + 2.0 * 14.0;
        assert!(
            (eval.flows_x.total() - d_expected).abs() < 1e-9,
            "total {} expected {}",
            eval.flows_x.total(),
            d_expected
        );
    }

    #[test]
    fn attracting_raises_customer_revenue() {
        let m = fig1_model();
        let (fd, fe) = baselines();
        let mut model = fig1_model();
        // Give D revenue per unit from H so attraction is profitable.
        model.book_mut().set_transit_price(
            asn('D'),
            asn('H'),
            pan_econ::PricingFunction::per_usage(3.0).unwrap(),
        );
        let s = AgreementScenario::with_default_opportunities(
            &model,
            eq6_agreement(),
            fd,
            fe,
            0.0,
            1.0,
        )
        .unwrap();
        let point = OperatingPoint::uniform(s.dimension(), 0.0, 1.0).unwrap();
        let eval = evaluate(&s, &point).unwrap();
        // D attracts 25 extra units from H (attract_share = 1.0 across 2
        // segments: 12.5 + 12.5): revenue +75.
        assert!(eval.flows_x.get(asn('H')) > s.baseline_x().get(asn('H')));
        assert!(eval.utility_x > 0.0, "u_D = {}", eval.utility_x);
        drop(m);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let m = fig1_model();
        let s = scenario(&m);
        assert!(matches!(
            evaluate(&s, &OperatingPoint::zero(s.dimension() + 1)),
            Err(AgreementError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn operating_point_validation() {
        assert!(OperatingPoint::new(vec![0.5], vec![0.5, 0.5]).is_err());
        assert!(OperatingPoint::new(vec![1.5], vec![0.5]).is_err());
        assert!(OperatingPoint::new(vec![f64::NAN], vec![0.5]).is_err());
        assert!(OperatingPoint::uniform(3, 0.2, 0.8).is_ok());
    }

    #[test]
    fn coordinate_access_round_trips() {
        let mut p = OperatingPoint::zero(2);
        assert_eq!(p.coordinate_count(), 4);
        p.set_coordinate(0, 0.25);
        p.set_coordinate(3, 0.75);
        p.set_coordinate(1, 7.0); // clamps
        assert_eq!(p.coordinate(0), 0.25);
        assert_eq!(p.coordinate(1), 1.0);
        assert_eq!(p.coordinate(3), 0.75);
        assert_eq!(p.reroute(), &[0.25, 1.0]);
        assert_eq!(p.attract(), &[0.0, 0.75]);
    }

    #[test]
    fn segment_targets_match_point() {
        let m = fig1_model();
        let s = scenario(&m);
        let point = OperatingPoint::uniform(s.dimension(), 0.5, 0.5).unwrap();
        let targets = segment_targets(&s, &point).unwrap();
        assert_eq!(targets.len(), s.dimension());
        for (target, opp) in targets.iter().zip(s.opportunities()) {
            let expected_total = 0.5 * opp.reroutable_total() + 0.5 * opp.attractable_total();
            assert!((target.total_allowance - expected_total).abs() < 1e-9);
            assert!((target.attracted_allowance - 0.5 * opp.attractable_total()).abs() < 1e-9);
            assert!(target.rerouted_allowance() >= 0.0);
        }
    }

    #[test]
    fn evaluation_helpers() {
        let eval = Evaluation {
            utility_x: 3.0,
            utility_y: 2.0,
            flows_x: FlowVec::new(asn('D')),
            flows_y: FlowVec::new(asn('E')),
        };
        assert_eq!(eval.nash_product(), 6.0);
        assert_eq!(eval.joint_utility(), 5.0);
    }
}
