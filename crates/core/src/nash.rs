//! Nash-bargaining primitives shared by both optimization methods.

use crate::{AgreementError, Result};

/// The Nash product `u_X · u_Y` — the objective of Eq. (8). Maximizing it
/// over feasible agreements yields Pareto-optimal and fair utilities.
#[must_use]
pub fn nash_product(utility_x: f64, utility_y: f64) -> f64 {
    utility_x * utility_y
}

/// The Nash Bargaining Solution transfer of Eq. (11):
/// `Π_{X→Y} = u_X − (u_X + u_Y)/2`.
///
/// A positive value means `X` pays `Y`; negative means `Y` pays `X`.
/// After the transfer both parties hold exactly `(u_X + u_Y)/2`.
///
/// # Errors
///
/// Returns [`AgreementError::InvalidUtility`] for non-finite utilities.
pub fn bargaining_transfer(utility_x: f64, utility_y: f64) -> Result<f64> {
    for v in [utility_x, utility_y] {
        if !v.is_finite() {
            return Err(AgreementError::InvalidUtility { value: v });
        }
    }
    Ok(utility_x - (utility_x + utility_y) / 2.0)
}

/// Post-transfer utilities under the NBS: both parties receive the equal
/// split `(u_X + u_Y)/2`.
///
/// # Errors
///
/// Returns [`AgreementError::InvalidUtility`] for non-finite utilities.
pub fn post_transfer_utilities(utility_x: f64, utility_y: f64) -> Result<(f64, f64)> {
    let transfer = bargaining_transfer(utility_x, utility_y)?;
    Ok((utility_x - transfer, utility_y + transfer))
}

/// Returns `true` if utility pair `a` Pareto-dominates pair `b`: at least
/// as good for both parties and strictly better for one.
#[must_use]
pub fn pareto_dominates(a: (f64, f64), b: (f64, f64)) -> bool {
    a.0 >= b.0 && a.1 >= b.1 && (a.0 > b.0 || a.1 > b.1)
}

/// The fairness gap `|u_X − u_Y|`; the NBS over transferable utility
/// drives this to zero.
#[must_use]
pub fn fairness_gap(utility_x: f64, utility_y: f64) -> f64 {
    (utility_x - utility_y).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn transfer_matches_eq_11() {
        // u_D = 10, u_E = 4 → Π = 10 − 7 = 3 (D pays E 3).
        let transfer = bargaining_transfer(10.0, 4.0).unwrap();
        assert!((transfer - 3.0).abs() < 1e-12);
        let (ux, uy) = post_transfer_utilities(10.0, 4.0).unwrap();
        assert!((ux - 7.0).abs() < 1e-12);
        assert!((uy - 7.0).abs() < 1e-12);
    }

    #[test]
    fn negative_transfer_means_y_pays_x() {
        let transfer = bargaining_transfer(-2.0, 8.0).unwrap();
        assert!(transfer < 0.0);
        let (ux, uy) = post_transfer_utilities(-2.0, 8.0).unwrap();
        assert!((ux - 3.0).abs() < 1e-12);
        assert!((uy - 3.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_utilities_are_rejected() {
        assert!(bargaining_transfer(f64::NAN, 1.0).is_err());
        assert!(bargaining_transfer(1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn pareto_dominance() {
        assert!(pareto_dominates((2.0, 2.0), (1.0, 2.0)));
        assert!(!pareto_dominates((2.0, 1.0), (1.0, 2.0)));
        assert!(
            !pareto_dominates((1.0, 1.0), (1.0, 1.0)),
            "equal is not dominant"
        );
    }

    proptest! {
        #[test]
        fn nbs_always_equalizes(ux in -100.0..100.0f64, uy in -100.0..100.0f64) {
            let (px, py) = post_transfer_utilities(ux, uy).unwrap();
            prop_assert!(fairness_gap(px, py) < 1e-9);
            // Transfers conserve total utility.
            prop_assert!(((px + py) - (ux + uy)).abs() < 1e-9);
        }

        #[test]
        fn nbs_maximizes_nash_product_over_transfers(
            ux in 0.0..100.0f64,
            uy in 0.0..100.0f64,
            other in -50.0..50.0f64,
        ) {
            let nbs = bargaining_transfer(ux, uy).unwrap();
            let best = nash_product(ux - nbs, uy + nbs);
            let candidate = nash_product(ux - other, uy + other);
            prop_assert!(best >= candidate - 1e-9);
        }
    }
}
