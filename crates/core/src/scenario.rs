use serde::{Deserialize, Serialize};

use pan_econ::{BusinessModel, FlowVec};
use pan_topology::{Asn, NeighborKind};

use crate::{Agreement, AgreementError, NewSegment, Result};

/// The economic opportunity attached to one new path segment: which
/// existing flows the beneficiary could reroute onto it, and how much new
/// customer demand it could attract (§III-B2, §IV-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentOpportunity {
    /// The new segment this opportunity concerns.
    pub segment: NewSegment,
    /// Existing traffic of the beneficiary towards the segment target that
    /// currently flows via the beneficiary's providers: `(provider,
    /// volume)` pairs. Rerouting moves (part of) these volumes onto the
    /// partner link, saving transit cost (the `f↕` terms of Eq. 7c).
    pub reroutable: Vec<(Asn, f64)>,
    /// Maximum *additional* customer demand for the new segment, per
    /// customer of the beneficiary (the `Δf^max_ZP` bounds of constraint
    /// III in Eq. 9). The beneficiary's own ASN denotes its end-host
    /// demand `Γ`.
    pub attractable: Vec<(Asn, f64)>,
}

impl SegmentOpportunity {
    /// Total reroutable volume.
    #[must_use]
    pub fn reroutable_total(&self) -> f64 {
        self.reroutable.iter().map(|(_, v)| v).sum()
    }

    /// Total attractable volume (the segment's `Σ_Z Δf^max_ZP`).
    #[must_use]
    pub fn attractable_total(&self) -> f64 {
        self.attractable.iter().map(|(_, v)| v).sum()
    }
}

/// A fully specified evaluation context for one agreement: the business
/// model, the baseline flows of both parties, and the per-segment
/// opportunities.
///
/// The scenario fixes everything except the *operating point* (how much
/// flow actually uses each new segment); see
/// [`OperatingPoint`](crate::OperatingPoint) and
/// [`evaluate`](crate::evaluate).
#[derive(Debug, Clone)]
pub struct AgreementScenario<'a> {
    model: &'a BusinessModel,
    agreement: Agreement,
    baseline_x: FlowVec,
    baseline_y: FlowVec,
    opportunities: Vec<SegmentOpportunity>,
}

impl<'a> AgreementScenario<'a> {
    /// Creates a scenario with no opportunities yet.
    ///
    /// # Errors
    ///
    /// Fails if the agreement does not validate against the model's graph
    /// or the baseline flow vectors do not belong to the agreement parties.
    pub fn new(
        model: &'a BusinessModel,
        agreement: Agreement,
        baseline_x: FlowVec,
        baseline_y: FlowVec,
    ) -> Result<Self> {
        agreement.validate(model.graph())?;
        if baseline_x.asn() != agreement.x() {
            return Err(AgreementError::InvalidGrant {
                grantor: agreement.x(),
                target: baseline_x.asn(),
                reason: "baseline_x must describe party X".to_owned(),
            });
        }
        if baseline_y.asn() != agreement.y() {
            return Err(AgreementError::InvalidGrant {
                grantor: agreement.y(),
                target: baseline_y.asn(),
                reason: "baseline_y must describe party Y".to_owned(),
            });
        }
        Ok(AgreementScenario {
            model,
            agreement,
            baseline_x,
            baseline_y,
            opportunities: Vec::new(),
        })
    }

    /// Creates a scenario and synthesizes one opportunity per new segment
    /// from the baselines:
    ///
    /// - `reroutable`: a `reroute_share` of the beneficiary's baseline
    ///   provider flows, split evenly across the beneficiary's segments so
    ///   the same provider flow is never claimed twice;
    /// - `attractable`: an `attract_share` of each customer's (and the
    ///   end-hosts') baseline flow, likewise split per segment.
    ///
    /// This is the standard way to build evaluation workloads when no
    /// per-destination traffic data is available.
    ///
    /// # Errors
    ///
    /// Same as [`new`](Self::new), plus
    /// [`AgreementError::InvalidFraction`] for shares outside `[0, 1]`.
    pub fn with_default_opportunities(
        model: &'a BusinessModel,
        agreement: Agreement,
        baseline_x: FlowVec,
        baseline_y: FlowVec,
        reroute_share: f64,
        attract_share: f64,
    ) -> Result<Self> {
        for share in [reroute_share, attract_share] {
            if !share.is_finite() || !(0.0..=1.0).contains(&share) {
                return Err(AgreementError::InvalidFraction { value: share });
            }
        }
        let mut scenario = AgreementScenario::new(model, agreement, baseline_x, baseline_y)?;
        let segments = scenario.agreement.new_segments(model.graph());
        let count_for = |beneficiary: Asn| {
            segments
                .iter()
                .filter(|s| s.beneficiary == beneficiary)
                .count()
                .max(1) as f64
        };
        for segment in &segments {
            let baseline = scenario.baseline_of(segment.beneficiary);
            let nsegs = count_for(segment.beneficiary);
            let graph = model.graph();
            let reroutable: Vec<(Asn, f64)> = graph
                .providers(segment.beneficiary)
                .filter(|&p| p != segment.via)
                .map(|p| (p, reroute_share * baseline.get(p) / nsegs))
                .filter(|(_, v)| *v > 0.0)
                .collect();
            let mut attractable: Vec<(Asn, f64)> = graph
                .customers(segment.beneficiary)
                .map(|c| (c, attract_share * baseline.get(c) / nsegs))
                .filter(|(_, v)| *v > 0.0)
                .collect();
            let end_host = attract_share * baseline.end_host_flow() / nsegs;
            if end_host > 0.0 {
                attractable.push((segment.beneficiary, end_host));
            }
            let opportunity = SegmentOpportunity {
                segment: *segment,
                reroutable,
                attractable,
            };
            scenario.push_opportunity(opportunity)?;
        }
        Ok(scenario)
    }

    /// Adds an opportunity after validating it against the agreement.
    ///
    /// # Errors
    ///
    /// Returns [`AgreementError::InvalidGrant`] if the segment does not
    /// belong to the agreement, a reroutable entry names a non-provider,
    /// an attractable entry names a non-customer (other than the
    /// beneficiary's own end-host key), or any volume is negative.
    pub fn push_opportunity(&mut self, opportunity: SegmentOpportunity) -> Result<()> {
        let graph = self.model.graph();
        let segment = &opportunity.segment;
        let belongs = self
            .agreement
            .new_segments(graph)
            .iter()
            .any(|s| s == segment);
        if !belongs {
            return Err(AgreementError::InvalidGrant {
                grantor: segment.via,
                target: segment.target,
                reason: "segment is not created by this agreement".to_owned(),
            });
        }
        for &(provider, volume) in &opportunity.reroutable {
            if graph.neighbor_kind(segment.beneficiary, provider) != Some(NeighborKind::Provider) {
                return Err(AgreementError::InvalidGrant {
                    grantor: segment.beneficiary,
                    target: provider,
                    reason: "reroutable entries must name providers of the beneficiary".to_owned(),
                });
            }
            if !volume.is_finite() || volume < 0.0 {
                return Err(AgreementError::InvalidFraction { value: volume });
            }
        }
        for &(customer, volume) in &opportunity.attractable {
            let is_end_host = customer == segment.beneficiary;
            let is_customer =
                graph.neighbor_kind(segment.beneficiary, customer) == Some(NeighborKind::Customer);
            if !is_end_host && !is_customer {
                return Err(AgreementError::InvalidGrant {
                    grantor: segment.beneficiary,
                    target: customer,
                    reason: "attractable entries must name customers of the beneficiary".to_owned(),
                });
            }
            if !volume.is_finite() || volume < 0.0 {
                return Err(AgreementError::InvalidFraction { value: volume });
            }
        }
        self.opportunities.push(opportunity);
        Ok(())
    }

    /// The business model.
    #[must_use]
    pub fn model(&self) -> &BusinessModel {
        self.model
    }

    /// The agreement under evaluation.
    #[must_use]
    pub fn agreement(&self) -> &Agreement {
        &self.agreement
    }

    /// Baseline flows of party `X`.
    #[must_use]
    pub fn baseline_x(&self) -> &FlowVec {
        &self.baseline_x
    }

    /// Baseline flows of party `Y`.
    #[must_use]
    pub fn baseline_y(&self) -> &FlowVec {
        &self.baseline_y
    }

    /// Baseline flows of the given party.
    ///
    /// # Panics
    ///
    /// Panics if `party` is neither of the agreement parties.
    #[must_use]
    pub fn baseline_of(&self, party: Asn) -> &FlowVec {
        if party == self.agreement.x() {
            &self.baseline_x
        } else if party == self.agreement.y() {
            &self.baseline_y
        } else {
            panic!("{party} is not a party of the agreement")
        }
    }

    /// The segment opportunities (defines the optimizer's dimension).
    #[must_use]
    pub fn opportunities(&self) -> &[SegmentOpportunity] {
        &self.opportunities
    }

    /// Number of opportunities, i.e. the per-kind dimension of an
    /// [`OperatingPoint`](crate::OperatingPoint).
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.opportunities.len()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::Grant;
    use pan_econ::{CostFunction, PricingBook, PricingFunction};
    use pan_topology::fixtures::{asn, fig1};

    pub(crate) fn fig1_model() -> BusinessModel {
        let g = fig1();
        let mut book = PricingBook::new();
        for (p, c, rate) in [
            ('A', 'D', 2.0),
            ('B', 'E', 2.0),
            ('B', 'G', 2.0),
            ('D', 'H', 3.0),
            ('E', 'I', 3.0),
        ] {
            book.set_transit_price(asn(p), asn(c), PricingFunction::per_usage(rate).unwrap());
        }
        let mut m = BusinessModel::new(g, book);
        for c in ['D', 'E'] {
            m.set_internal_cost(asn(c), CostFunction::linear(0.05).unwrap());
        }
        m
    }

    pub(crate) fn eq6_agreement() -> Agreement {
        Agreement::new(
            asn('D'),
            asn('E'),
            Grant::from_sets([asn('A')], [], []),
            Grant::from_sets([asn('B')], [asn('F')], []),
        )
        .unwrap()
    }

    pub(crate) fn baselines() -> (FlowVec, FlowVec) {
        let mut fd = FlowVec::new(asn('D'));
        fd.set(asn('A'), 30.0); // D sends/receives 30 via provider A
        fd.set(asn('H'), 25.0); // customer H
        fd.set(asn('E'), 5.0); // existing peering
        let mut fe = FlowVec::new(asn('E'));
        fe.set(asn('B'), 28.0);
        fe.set(asn('I'), 22.0);
        fe.set(asn('D'), 5.0);
        (fd, fe)
    }

    #[test]
    fn scenario_construction_validates_parties() {
        let m = fig1_model();
        let (fd, fe) = baselines();
        let a = eq6_agreement();
        assert!(AgreementScenario::new(&m, a.clone(), fd.clone(), fe.clone()).is_ok());
        // Swapped baselines are rejected.
        assert!(AgreementScenario::new(&m, a, fe, fd).is_err());
    }

    #[test]
    fn default_opportunities_cover_all_segments() {
        let m = fig1_model();
        let (fd, fe) = baselines();
        let s =
            AgreementScenario::with_default_opportunities(&m, eq6_agreement(), fd, fe, 0.5, 0.2)
                .unwrap();
        assert_eq!(s.dimension(), 3);
        // D's segments (to B and F) may reroute from provider A.
        let d_opps: Vec<_> = s
            .opportunities()
            .iter()
            .filter(|o| o.segment.beneficiary == asn('D'))
            .collect();
        assert_eq!(d_opps.len(), 2);
        for opp in &d_opps {
            assert_eq!(opp.reroutable.len(), 1);
            assert_eq!(opp.reroutable[0].0, asn('A'));
            // 0.5 share of 30, split across 2 segments.
            assert!((opp.reroutable[0].1 - 7.5).abs() < 1e-9);
            // Attractable from customer H: 0.2 × 25 / 2.
            assert!((opp.attractable[0].1 - 2.5).abs() < 1e-9);
        }
    }

    #[test]
    fn default_opportunities_validate_shares() {
        let m = fig1_model();
        let (fd, fe) = baselines();
        assert!(AgreementScenario::with_default_opportunities(
            &m,
            eq6_agreement(),
            fd,
            fe,
            1.5,
            0.2
        )
        .is_err());
    }

    #[test]
    fn foreign_segment_is_rejected() {
        let m = fig1_model();
        let (fd, fe) = baselines();
        let mut s = AgreementScenario::new(&m, eq6_agreement(), fd, fe).unwrap();
        let bogus = SegmentOpportunity {
            segment: NewSegment {
                beneficiary: asn('D'),
                via: asn('E'),
                target: asn('I'), // not granted in Eq. 6
                target_role: NeighborKind::Customer,
            },
            reroutable: vec![],
            attractable: vec![],
        };
        assert!(s.push_opportunity(bogus).is_err());
    }

    #[test]
    fn reroutable_must_name_providers() {
        let m = fig1_model();
        let (fd, fe) = baselines();
        let mut s = AgreementScenario::new(&m, eq6_agreement(), fd, fe).unwrap();
        let segment = s.agreement().new_segments(m.graph())[0];
        let bad = SegmentOpportunity {
            segment,
            reroutable: vec![(asn('H'), 5.0)], // H is a customer, not provider
            attractable: vec![],
        };
        assert!(s.push_opportunity(bad).is_err());
    }

    #[test]
    fn attractable_accepts_end_host_key() {
        let m = fig1_model();
        let (fd, fe) = baselines();
        let mut s = AgreementScenario::new(&m, eq6_agreement(), fd, fe).unwrap();
        let segment = *s
            .agreement()
            .new_segments(m.graph())
            .iter()
            .find(|seg| seg.beneficiary == asn('D'))
            .unwrap();
        let opp = SegmentOpportunity {
            segment,
            reroutable: vec![],
            attractable: vec![(asn('D'), 3.0)], // end-host demand
        };
        assert!(s.push_opportunity(opp).is_ok());
    }

    #[test]
    fn negative_volumes_are_rejected() {
        let m = fig1_model();
        let (fd, fe) = baselines();
        let mut s = AgreementScenario::new(&m, eq6_agreement(), fd, fe).unwrap();
        let segment = *s
            .agreement()
            .new_segments(m.graph())
            .iter()
            .find(|seg| seg.beneficiary == asn('D'))
            .unwrap();
        let bad = SegmentOpportunity {
            segment,
            reroutable: vec![(asn('A'), -1.0)],
            attractable: vec![],
        };
        assert!(s.push_opportunity(bad).is_err());
    }
}
