//! Criterion microbenches for the three hot primitives of the dense
//! discovery engine — the units the raw-speed pass tiles and caches:
//!
//! - [`NodePrograms::build`]: the once-per-round collapse of every
//!   node's beneficiary-side deltas at fixed shares (amortized across
//!   all pairs of a noise-free round);
//! - [`derive_pair_transit`]: the per-pair, flow-independent exclusion
//!   scan the full engine caches across static rounds;
//! - [`evaluate_candidate_with`]: the per-pair grid search that remains
//!   on the hot path every round.
//!
//! Together they decompose the cost of one full-engine round, so a
//! regression in any layer shows up here before it shows up in the
//! `evolve` wall-clock. Runs in the CI `bench-smoke` job via
//! `cargo bench -p pan-core -- --quick`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pan_core::discovery::{
    derive_pair_transit, enumerate_candidates, evaluate_candidate_with, BatchContext,
    CandidatePolicy, NodePrograms, PairScratch,
};
use pan_datasets::{InternetConfig, SyntheticInternet};
use pan_econ::{CostFunction, DenseEconomics, FlowMatrix, PricingFunction};

fn testbed() -> (SyntheticInternet, DenseEconomics, FlowMatrix) {
    let net = SyntheticInternet::generate(
        &InternetConfig {
            num_ases: 600,
            tier1_count: 8,
            ..InternetConfig::default()
        },
        42,
    )
    .expect("valid config");
    let econ = DenseEconomics::build(
        &net.graph,
        |p, c| PricingFunction::per_usage(2.0 + f64::from((p.get() + c.get()) % 5) * 0.2).unwrap(),
        |_| PricingFunction::per_usage(2.5).unwrap(),
        |_| CostFunction::linear(0.05).unwrap(),
    );
    let flows = FlowMatrix::degree_gravity(&net.graph, 1.0);
    (net, econ, flows)
}

fn hot_paths(c: &mut Criterion) {
    let (net, econ, flows) = testbed();
    let ctx = BatchContext::new(&net.graph, &econ, &flows).expect("tables match");
    let candidates = enumerate_candidates(&net.graph, CandidatePolicy::PeeringAdjacent);
    let sample: Vec<_> = candidates.iter().copied().step_by(97).take(24).collect();
    let mut group = c.benchmark_group("hot_paths");

    group.bench_function("node_programs_build_600as", |b| {
        b.iter(|| black_box(NodePrograms::build(&ctx, 0.5, 0.2).expect("valid shares")));
    });

    group.bench_function("derive_pair_transit_24_pairs", |b| {
        b.iter(|| {
            let mut excluded = 0usize;
            for &pair in &sample {
                let transit = derive_pair_transit(&ctx, pair);
                excluded += transit.heap_bytes();
            }
            black_box(excluded)
        });
    });

    group.bench_function("evaluate_candidate_with_24_pairs", |b| {
        let programs = NodePrograms::build(&ctx, 0.5, 0.2).expect("valid shares");
        let transits: Vec<_> = sample
            .iter()
            .map(|&pair| derive_pair_transit(&ctx, pair))
            .collect();
        let mut scratch = PairScratch::new();
        b.iter(|| {
            let mut surplus = 0.0;
            for (&pair, transit) in sample.iter().zip(&transits) {
                surplus += evaluate_candidate_with(&ctx, &programs, transit, &mut scratch, pair, 5)
                    .expect("evaluation succeeds")
                    .surplus;
            }
            black_box(surplus)
        });
    });

    group.finish();
}

criterion_group!(benches, hot_paths);
criterion_main!(benches);
