//! Declarative scenario specification shared by every binary in this
//! crate.
//!
//! A [`ScenarioSpec`] fully describes a run: mode, seed, thread budget,
//! topology size, and the discovery knobs. It is a plain serde struct,
//! so it can be
//!
//! - parsed from the shared command-line flags (the former six copies of
//!   per-binary option parsing),
//! - loaded from a JSON file via `--spec run.json` (flags after `--spec`
//!   still override its values),
//! - dumped with `--dump-spec` to produce a complete, editable spec file.
//!
//! The JSON shape is exactly the serde serialization of [`ScenarioSpec`]
//! (the vendored serde has no per-field defaults, so spec files must be
//! complete — `--dump-spec` writes one).

use serde::{Deserialize, Serialize};

use pan_datasets::{InternetConfig, MarketSource, SyntheticInternet};
use pan_runtime::{ScenarioSweep, ThreadPool};

/// Market-source selection of a [`ScenarioSpec`].
///
/// Empty strings are the "unset" sentinel (the vendored serde has no
/// per-field defaults, so `Option` round-trips poorly through spec
/// files): an empty `caida` means the synthetic generator, an empty
/// `snapshot` means "resolve the newest snapshot in the directory".
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceSpec {
    /// CAIDA snapshot directory (`--caida <dir>`); empty = synthetic.
    pub caida: String,
    /// Snapshot name under the directory (`--snapshot <name>`); empty =
    /// newest.
    pub snapshot: String,
}

/// Discovery-sweep knobs of a [`ScenarioSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiscoverySpec {
    /// Reroutable share of provider traffic (`[0, 1]`).
    pub reroute_share: f64,
    /// Attractable share of customer/end-host traffic (`[0, 1]`).
    pub attract_share: f64,
    /// Operating-point grid per axis (quick mode lowers this to 3).
    pub grid: usize,
    /// Peering-mesh candidate distance (1 = existing peers only).
    pub khop: u8,
    /// Per-source candidate cap for `khop > 1` (0 = unbounded).
    pub khop_cap: usize,
    /// Per-pair share jitter (`[0, 1]`, 0 = deterministic shares).
    pub noise: f64,
    /// Outcomes kept in the report and printed as JSON (0 = all).
    pub top: usize,
}

impl Default for DiscoverySpec {
    fn default() -> Self {
        DiscoverySpec {
            reroute_share: 0.5,
            attract_share: 0.2,
            grid: 5,
            khop: 1,
            khop_cap: 64,
            noise: 0.0,
            top: 100,
        }
    }
}

/// Market-evolution knobs of a [`ScenarioSpec`] (the `evolve` binary).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvolutionSpec {
    /// Round cap (quick mode lowers this to 4).
    pub rounds: usize,
    /// Maximum agreements adopted per round.
    pub adopt_top: usize,
    /// Minimum NBS surplus an agreement must clear to be adopted.
    pub min_surplus: f64,
    /// Market-shock magnitude between rounds (`[0, 1]`, 0 = none).
    pub shock: f64,
}

impl Default for EvolutionSpec {
    fn default() -> Self {
        EvolutionSpec {
            rounds: 12,
            adopt_top: 25,
            min_surplus: 1e-3,
            shock: 0.0,
        }
    }
}

/// Command-line/JSON specification shared by the figure binaries and
/// `discover`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Use reduced problem sizes for a fast smoke run.
    pub quick: bool,
    /// Base RNG seed (master seed of every sweep of the run).
    pub seed: u64,
    /// Emit a JSON dump after the human-readable table.
    pub json: bool,
    /// Worker threads for the scenario sweeps.
    pub threads: usize,
    /// Topology-size override (0 = per-binary default: 600 quick / 4,000
    /// full for the figures, 10,000 for `discover`).
    pub ases: usize,
    /// Sample-size override for per-AS analyses (0 = 100 quick / 500 full).
    pub sample: usize,
    /// Discovery knobs (ignored by the figure binaries).
    pub discovery: DiscoverySpec,
    /// Market-evolution knobs (used by `evolve` only).
    pub evolution: EvolutionSpec,
    /// Market-source selection (synthetic generator vs CAIDA snapshot).
    pub source: SourceSpec,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            quick: false,
            seed: 42,
            json: false,
            threads: ThreadPool::with_available_parallelism().threads(),
            ases: 0,
            sample: 0,
            discovery: DiscoverySpec::default(),
            evolution: EvolutionSpec::default(),
            source: SourceSpec::default(),
        }
    }
}

const USAGE: &str = "--quick, --seed <u64>, --json, --threads <N>, --ases <N>, --sample <N>, \
     --reroute <f>, --attract <f>, --grid <N>, --khop <N>, --khop-cap <N>, --noise <f>, \
     --top <N>, --rounds <N>, --adopt-top <N>, --min-surplus <f>, --shock <f>, \
     --caida <dir>, --snapshot <name>, --spec <file.json>, --dump-spec";

impl ScenarioSpec {
    /// Parses the shared flags from an `std::env::args`-style iterator
    /// (program name first). `--spec <file>` loads a complete JSON spec
    /// first; every flag on the command line then overrides the loaded
    /// values **regardless of position** (the spec file is the base
    /// layer, flags are the override layer). `--dump-spec` prints the
    /// final spec as JSON and exits. The shared `--threads`/`--seed`
    /// parsing is delegated to [`pan_runtime::RunFlags`], so examples
    /// and figure binaries cannot drift apart. Unrecognized arguments
    /// are returned for binary-specific handling (use
    /// [`expect_no_extras`](Self::expect_no_extras) when there are none).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flag values or unreadable
    /// spec files.
    #[must_use]
    pub fn from_args(args: impl Iterator<Item = String>) -> (Self, Vec<String>) {
        // Pass 1: extract `--spec <file>` (the base layer) so that flag
        // position relative to it cannot matter.
        let raw: Vec<String> = args.skip(1).collect();
        let mut spec = ScenarioSpec::default();
        let mut remaining = Vec::with_capacity(raw.len());
        let mut raw = raw.into_iter();
        while let Some(arg) = raw.next() {
            if arg == "--spec" {
                let path = raw
                    .next()
                    .unwrap_or_else(|| panic!("--spec requires a value"));
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("cannot read spec file {path:?}: {e}"));
                spec = serde_json::from_str(&text)
                    .unwrap_or_else(|e| panic!("malformed spec file {path:?}: {e}"));
            } else {
                remaining.push(arg);
            }
        }

        // Pass 2: the shared runtime flags, via the one implementation.
        let (run_flags, remaining) = pan_runtime::RunFlags::parse(remaining.into_iter());
        if let Some(threads) = run_flags.threads {
            spec.threads = threads;
        }
        if let Some(seed) = run_flags.seed {
            spec.seed = seed;
        }

        // Pass 3: spec-specific flags.
        let mut rest = Vec::new();
        let mut dump = false;
        let mut args = remaining.into_iter();
        fn value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
            args.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        }
        fn parsed<T: std::str::FromStr>(raw: &str, flag: &str, kind: &str) -> T {
            raw.parse()
                .unwrap_or_else(|_| panic!("{flag} expects {kind}, got {raw:?}"))
        }
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => spec.quick = true,
                "--json" => spec.json = true,
                "--dump-spec" => dump = true,
                "--ases" => spec.ases = parsed(&value(&mut args, "--ases"), "--ases", "a count"),
                "--sample" => {
                    spec.sample = parsed(&value(&mut args, "--sample"), "--sample", "a count");
                }
                "--reroute" => {
                    spec.discovery.reroute_share =
                        parsed(&value(&mut args, "--reroute"), "--reroute", "a fraction");
                }
                "--attract" => {
                    spec.discovery.attract_share =
                        parsed(&value(&mut args, "--attract"), "--attract", "a fraction");
                }
                "--grid" => {
                    spec.discovery.grid = parsed(&value(&mut args, "--grid"), "--grid", "a count");
                }
                "--khop" => {
                    spec.discovery.khop =
                        parsed(&value(&mut args, "--khop"), "--khop", "a hop count");
                }
                "--khop-cap" => {
                    spec.discovery.khop_cap =
                        parsed(&value(&mut args, "--khop-cap"), "--khop-cap", "a count");
                }
                "--noise" => {
                    spec.discovery.noise =
                        parsed(&value(&mut args, "--noise"), "--noise", "a fraction");
                }
                "--top" => {
                    spec.discovery.top = parsed(&value(&mut args, "--top"), "--top", "a count");
                }
                "--rounds" => {
                    spec.evolution.rounds =
                        parsed(&value(&mut args, "--rounds"), "--rounds", "a count");
                }
                "--adopt-top" => {
                    spec.evolution.adopt_top =
                        parsed(&value(&mut args, "--adopt-top"), "--adopt-top", "a count");
                }
                "--min-surplus" => {
                    spec.evolution.min_surplus = parsed(
                        &value(&mut args, "--min-surplus"),
                        "--min-surplus",
                        "a utility",
                    );
                }
                "--shock" => {
                    spec.evolution.shock =
                        parsed(&value(&mut args, "--shock"), "--shock", "a fraction");
                }
                "--caida" => spec.source.caida = value(&mut args, "--caida"),
                "--snapshot" => spec.source.snapshot = value(&mut args, "--snapshot"),
                _ => rest.push(arg),
            }
        }
        if dump {
            println!("{}", serde_json::to_string(&spec).expect("specs serialize"));
            std::process::exit(0);
        }
        (spec, rest)
    }

    /// Parses [`std::env::args`], rejecting any argument the shared
    /// parser does not recognize — the one-liner for binaries with no
    /// flags of their own.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown or malformed arguments.
    #[must_use]
    pub fn from_env_strict() -> Self {
        let (spec, rest) = Self::from_args(std::env::args());
        Self::expect_no_extras(&rest);
        spec
    }

    /// Aborts with a usage message if binary-agnostic parsing left
    /// unrecognized arguments behind.
    ///
    /// # Panics
    ///
    /// Panics when `rest` is non-empty.
    pub fn expect_no_extras(rest: &[String]) {
        assert!(rest.is_empty(), "unknown flags {rest:?}; known: {USAGE}");
    }

    /// The thread pool configured by `--threads`.
    #[must_use]
    pub fn pool(&self) -> ThreadPool {
        ThreadPool::new(self.threads)
    }

    /// A [`ScenarioSweep`] over the configured pool and `--seed`.
    #[must_use]
    pub fn sweep(&self) -> ScenarioSweep {
        ScenarioSweep::new(self.pool(), self.seed)
    }

    /// Number of ASes for the standard figure topologies, honoring the
    /// `--ases` override.
    #[must_use]
    pub fn figure_ases(&self) -> usize {
        if self.ases > 0 {
            self.ases
        } else if self.quick {
            600
        } else {
            4_000
        }
    }

    /// The [`InternetConfig`] of the run's synthetic topology.
    #[must_use]
    pub fn internet_config(&self) -> InternetConfig {
        let num_ases = self.figure_ases();
        InternetConfig {
            num_ases,
            tier1_count: if num_ases <= 1_000 { 8 } else { 12 },
            ..InternetConfig::default()
        }
    }

    /// The run's [`MarketSource`]: the CAIDA snapshot named by
    /// `--caida`/`--snapshot` when given, the spec-derived synthetic
    /// generator otherwise.
    #[must_use]
    pub fn market_source(&self) -> MarketSource {
        if self.source.caida.is_empty() {
            MarketSource::Synthetic(self.internet_config())
        } else {
            MarketSource::Caida {
                dir: self.source.caida.clone().into(),
                snapshot: if self.source.snapshot.is_empty() {
                    None
                } else {
                    Some(self.source.snapshot.clone())
                },
            }
        }
    }

    /// Builds the run's market input data from its [`market_source`](Self::market_source).
    ///
    /// # Panics
    ///
    /// Panics with the source error when the market cannot be built
    /// (e.g. a missing snapshot directory) — the behavior every binary
    /// wants for a bad command line. Fallible callers use
    /// [`MarketSource::build`] directly.
    #[must_use]
    pub fn internet(&self) -> SyntheticInternet {
        self.market_source()
            .build(self.seed)
            .unwrap_or_else(|e| panic!("cannot build market source: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(items: &[&str]) -> std::vec::IntoIter<String> {
        let mut all = vec!["bin".to_owned()];
        all.extend(items.iter().map(|s| (*s).to_owned()));
        all.into_iter()
    }

    #[test]
    fn parse_defaults() {
        let (spec, rest) = ScenarioSpec::from_args(args(&[]));
        assert_eq!(spec, ScenarioSpec::default());
        assert!(rest.is_empty());
    }

    #[test]
    fn parse_flags() {
        let (spec, rest) = ScenarioSpec::from_args(args(&[
            "--quick",
            "--seed",
            "7",
            "--json",
            "--threads",
            "4",
            "--ases",
            "12000",
            "--grid",
            "3",
            "--khop",
            "2",
            "--noise",
            "0.1",
            "--top",
            "5",
        ]));
        assert!(spec.quick && spec.json);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.threads, 4);
        assert_eq!(spec.ases, 12_000);
        assert_eq!(spec.discovery.grid, 3);
        assert_eq!(spec.discovery.khop, 2);
        assert_eq!(spec.discovery.noise, 0.1);
        assert_eq!(spec.discovery.top, 5);
        assert!(rest.is_empty());
        assert_eq!(spec.pool().threads(), 4);
        assert_eq!(spec.sweep().master_seed(), 7);
    }

    #[test]
    fn parse_evolution_flags() {
        let (spec, rest) = ScenarioSpec::from_args(args(&[
            "--rounds",
            "6",
            "--adopt-top",
            "40",
            "--min-surplus",
            "0.5",
            "--shock",
            "0.25",
        ]));
        assert!(rest.is_empty());
        assert_eq!(spec.evolution.rounds, 6);
        assert_eq!(spec.evolution.adopt_top, 40);
        assert_eq!(spec.evolution.min_surplus, 0.5);
        assert_eq!(spec.evolution.shock, 0.25);
    }

    #[test]
    fn unknown_flags_are_returned_and_rejected_on_demand() {
        let (_, rest) = ScenarioSpec::from_args(args(&["--engine", "dense"]));
        assert_eq!(rest, vec!["--engine".to_owned(), "dense".to_owned()]);
        ScenarioSpec::expect_no_extras(&[]);
    }

    #[test]
    #[should_panic(expected = "unknown flags")]
    fn extras_panic_when_forbidden() {
        ScenarioSpec::expect_no_extras(&["--wat".to_owned()]);
    }

    #[test]
    fn spec_file_round_trips_through_json() {
        let spec = ScenarioSpec {
            quick: true,
            seed: 9,
            ases: 321,
            ..ScenarioSpec::default()
        };
        let json = serde_json::to_string(&spec).unwrap();
        let path = std::env::temp_dir().join("pan-bench-spec-test.json");
        std::fs::write(&path, &json).unwrap();
        let (loaded, rest) = ScenarioSpec::from_args(args(&[
            "--seed",
            "11", // flags override the file regardless of position …
            "--spec",
            path.to_str().unwrap(),
            "--threads",
            "3", // … before or after --spec
        ]));
        std::fs::remove_file(&path).ok();
        assert!(rest.is_empty());
        assert_eq!(loaded.quick, spec.quick);
        assert_eq!(loaded.ases, spec.ases);
        assert_eq!(loaded.seed, 11);
        assert_eq!(loaded.threads, 3);
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn source_flags_select_the_market_source() {
        let (spec, rest) = ScenarioSpec::from_args(args(&[]));
        assert!(rest.is_empty());
        assert_eq!(
            spec.market_source(),
            MarketSource::Synthetic(spec.internet_config())
        );

        let (spec, rest) =
            ScenarioSpec::from_args(args(&["--caida", "/data/caida", "--snapshot", "2024"]));
        assert!(rest.is_empty());
        assert_eq!(
            spec.market_source(),
            MarketSource::Caida {
                dir: "/data/caida".into(),
                snapshot: Some("2024".to_owned()),
            }
        );

        let (spec, _) = ScenarioSpec::from_args(args(&["--caida", "/data/caida"]));
        assert_eq!(
            spec.market_source(),
            MarketSource::Caida {
                dir: "/data/caida".into(),
                snapshot: None,
            }
        );
    }

    #[test]
    fn figure_sizes() {
        let quick = ScenarioSpec {
            quick: true,
            ..ScenarioSpec::default()
        };
        assert_eq!(quick.figure_ases(), 600);
        assert_eq!(quick.internet_config().tier1_count, 8);
        let full = ScenarioSpec::default();
        assert_eq!(full.figure_ases(), 4_000);
        let sized = ScenarioSpec {
            ases: 2_000,
            ..ScenarioSpec::default()
        };
        assert_eq!(sized.figure_ases(), 2_000);
    }
}
