//! Calibration sweep over peering densities: prints the Fig. 5/6 headline
//! fractions so the synthetic topology can be tuned to CAIDA-like
//! peering richness. Not part of the figure pipeline.
//!
//! Accepts the standard figure flags; `--quick` shrinks the topology,
//! `--threads` sizes the pool the calibration cells fan out over, and
//! `--json` dumps the per-cell statistics as a JSON array after the
//! table.

use pan_bench::ScenarioSpec;
use pan_datasets::{InternetConfig, MarketSource};
use pan_pathdiv::bandwidth::{analyze_pooled as analyze_bw, BandwidthConfig};
use pan_pathdiv::geodistance::{analyze_pooled as analyze_geo, GeodistanceConfig};
use pan_runtime::ThreadPool;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Cell {
    num_ases: usize,
    transit_peer_degree: f64,
    stub_peer_degree: f64,
    hub_fraction: f64,
    hub_same_region_attach: f64,
    hub_cross_region_attach: f64,
    peering_links: usize,
    pairs: usize,
    geo_below_min_k1: f64,
    geo_below_min_k5: f64,
    bw_above_max_k1: f64,
    geo_median_reduction: f64,
    bw_median_increase: f64,
}

fn main() {
    let options = ScenarioSpec::from_env_strict();
    let n = options.figure_ases();
    let cells: Vec<(usize, f64, f64, f64, f64, f64)> = vec![
        // (n, tp, sp, hub_frac, hub_same, hub_cross)
        (n, 12.0, 2.0, 0.06, 0.6, 0.08),
        (n, 12.0, 2.0, 0.08, 0.7, 0.10),
        (n, 12.0, 2.0, 0.12, 0.8, 0.15),
    ];
    // One worker per calibration cell, with the rest of the thread
    // budget split evenly across the pair analyses inside each cell
    // (both layers are bit-identical at any thread count, so the split
    // only affects scheduling). Non-divisible remainders are dropped
    // rather than oversubscribing the budget.
    let pool = ThreadPool::new(options.threads.min(cells.len()));
    let inner = ThreadPool::new((options.threads / pool.threads()).max(1));
    let rows = pool.map(&cells, |_idx, &(n, tp, sp, hf, hs, hc)| {
        // Each cell is a variation of the run's standard config, built
        // through the unified source layer — the same path the workload
        // binaries use, so calibration measures what they will get.
        let config = InternetConfig {
            num_ases: n,
            transit_peer_degree: tp,
            stub_peer_degree: sp,
            hub_fraction: hf,
            hub_same_region_attach: hs,
            hub_cross_region_attach: hc,
            ..options.internet_config()
        };
        let net = MarketSource::Synthetic(config)
            .build(options.seed)
            .expect("valid");
        let geo = analyze_geo(
            &net.graph,
            &net.geo,
            &GeodistanceConfig {
                sample_size: 80,
                seed: 5,
            },
            &inner,
        );
        let bw = analyze_bw(
            &net.graph,
            &net.capacities,
            &BandwidthConfig {
                sample_size: 80,
                seed: 6,
            },
            &inner,
        );
        Cell {
            num_ases: n,
            transit_peer_degree: tp,
            stub_peer_degree: sp,
            hub_fraction: hf,
            hub_same_region_attach: hs,
            hub_cross_region_attach: hc,
            peering_links: net.graph.peering_link_count(),
            pairs: geo.pairs.len(),
            geo_below_min_k1: geo.fraction_below_min(1),
            geo_below_min_k5: geo.fraction_below_min(5),
            bw_above_max_k1: bw.fraction_above_max(1),
            geo_median_reduction: geo.reduction_cdf().median().unwrap_or(0.0),
            bw_median_increase: bw.increase_cdf().median().unwrap_or(0.0),
        }
    });
    for c in &rows {
        println!(
            "n={:5} tp={:4.1} sp={:4.1} hub=({:.2},{:.2},{:.2}) | peering {:6} | pairs {:6} | geo<min k1 {:5.1}% k5 {:5.1}% | bw>max k1 {:5.1}% | geo med red {:4.1}% | bw med inc {:5.0}%",
            c.num_ases,
            c.transit_peer_degree,
            c.stub_peer_degree,
            c.hub_fraction,
            c.hub_same_region_attach,
            c.hub_cross_region_attach,
            c.peering_links,
            c.pairs,
            c.geo_below_min_k1 * 100.0,
            c.geo_below_min_k5 * 100.0,
            c.bw_above_max_k1 * 100.0,
            c.geo_median_reduction * 100.0,
            c.bw_median_increase * 100.0,
        );
    }
    if options.json {
        println!("{}", serde_json::to_string(&rows).expect("rows serialize"));
    }
}
