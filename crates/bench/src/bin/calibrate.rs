//! Calibration sweep over peering densities: prints the Fig. 5/6 headline
//! fractions so the synthetic topology can be tuned to CAIDA-like
//! peering richness. Not part of the figure pipeline.

use pan_datasets::{InternetConfig, SyntheticInternet};
use pan_pathdiv::bandwidth::{analyze as analyze_bw, BandwidthConfig};
use pan_pathdiv::geodistance::{analyze as analyze_geo, GeodistanceConfig};

fn main() {
    let cells: &[(usize, f64, f64, f64, f64, f64)] = &[
        // (n, tp, sp, hub_frac, hub_same, hub_cross)
        (4000, 12.0, 2.0, 0.06, 0.6, 0.08),
        (4000, 12.0, 2.0, 0.08, 0.7, 0.10),
        (4000, 12.0, 2.0, 0.12, 0.8, 0.15),
    ];
    for &(n, tp, sp, hf, hs, hc) in cells {
        let config = InternetConfig {
            num_ases: n,
            tier1_count: 8,
            transit_peer_degree: tp,
            stub_peer_degree: sp,
            hub_fraction: hf,
            hub_same_region_attach: hs,
            hub_cross_region_attach: hc,
            ..InternetConfig::default()
        };
        let net = SyntheticInternet::generate(&config, 42).expect("valid");
        let geo = analyze_geo(
            &net.graph,
            &net.geo,
            &GeodistanceConfig {
                sample_size: 80,
                seed: 5,
            },
        );
        let bw = analyze_bw(
            &net.graph,
            &net.capacities,
            &BandwidthConfig {
                sample_size: 80,
                seed: 6,
            },
        );
        println!(
            "n={n:5} tp={tp:4.1} sp={sp:4.1} hub=({hf:.2},{hs:.2},{hc:.2}) | peering {:6} | pairs {:6} | geo<min k1 {:5.1}% k5 {:5.1}% | bw>max k1 {:5.1}% | geo med red {:4.1}% | bw med inc {:5.0}%",
            net.graph.peering_link_count(),
            geo.pairs.len(),
            geo.fraction_below_min(1) * 100.0,
            geo.fraction_below_min(5) * 100.0,
            bw.fraction_above_max(1) * 100.0,
            geo.reduction_cdf().median().unwrap_or(0.0) * 100.0,
            bw.increase_cdf().median().unwrap_or(0.0) * 100.0,
        );
    }
}
