//! Regenerates **Fig. 3**: distribution of ASes with respect to the
//! number of length-3 paths starting at the AS, under increasing degrees
//! of MA conclusion (GRC only, Top-1/5/50 own MAs, all own MAs `MA*`,
//! and all MAs `MA`), plus the §VI-A aggregate statistics.
//!
//! Paper shape to reproduce: the MA curves sit far right of GRC; `MA` and
//! `MA*` nearly coincide (direct gains dominate); even Top-1 gains
//! thousands of paths.

use pan_bench::{evaluation_internet, print_header, sample_size, ScenarioSpec, CDF_QUANTILES};
use pan_pathdiv::diversity::{analyze_sample_pooled, DiversityConfig};
use pan_pathdiv::figures::fig3_series;

fn main() {
    let options = ScenarioSpec::from_env_strict();
    print_header(
        "Figure 3",
        "CDF of length-3 paths per AS under MA conclusion degrees",
        &options,
    );
    let net = evaluation_internet(&options);
    println!(
        "# topology: {} ASes, {} links ({} transit, {} peering)",
        net.graph.node_count(),
        net.graph.link_count(),
        net.graph.transit_link_count(),
        net.graph.peering_link_count()
    );

    let config = DiversityConfig {
        sample_size: sample_size(&options),
        seed: options.seed,
        top_n: vec![1, 5, 50],
    };
    let report = analyze_sample_pooled(&net.graph, &config, &options.pool());

    let series = fig3_series(&report);

    print!("{:<14}", "series");
    for q in CDF_QUANTILES {
        print!("{:>10}", format!("p{:02.0}", q * 100.0));
    }
    println!("{:>10}", "mean");
    for s in &series {
        print!("{:<14}", s.name);
        for q in CDF_QUANTILES {
            print!("{:>10.0}", s.cdf.quantile(q).unwrap_or(0.0));
        }
        println!("{:>10.0}", s.cdf.mean().unwrap_or(0.0));
    }

    println!(
        "# additional MA paths per AS: mean {:.0}, max {} (paper on full CAIDA: 22,891 / 196,796)",
        report.mean_additional_paths(),
        report.max_additional_paths()
    );
    // The "MA ≈ MA*" claim: compare the two means.
    let mean_star = series
        .iter()
        .find(|s| s.name == "MA*")
        .and_then(|s| s.cdf.mean())
        .unwrap_or(0.0);
    let mean_all = series
        .iter()
        .find(|s| s.name == "MA")
        .and_then(|s| s.cdf.mean())
        .unwrap_or(0.0);
    println!(
        "# direct share of MA gains: MA* mean / MA mean = {:.3} (paper: curves nearly coincide)",
        mean_star / mean_all.max(1.0)
    );

    if options.json {
        let dump: Vec<(String, Vec<(f64, f64)>)> = series
            .iter()
            .map(|s| (s.name.clone(), s.cdf.points()))
            .collect();
        println!(
            "{}",
            serde_json::to_string(&dump).expect("points serialize")
        );
    }
}
