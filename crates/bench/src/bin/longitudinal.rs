//! Longitudinal real-internet runs: walk a directory of yearly CAIDA
//! snapshots, run the same evolution configuration over every year, and
//! diff the adopted agreement sets across consecutive years — which
//! mutuality agreements survive topology churn, which appear, which
//! disappear.
//!
//! ```console
//! longitudinal --caida snapshots --quick --json
//! longitudinal --caida snapshots --rounds 8 --bench-out BENCH_longitudinal.json
//! ```
//!
//! Accepts the shared [`ScenarioSpec`] flags; `--caida <dir>` names a
//! directory with one subdirectory per snapshot (e.g. per year), each
//! holding a `relationships.txt` plus optional sidecars (see
//! `pan_topology::snapshot`). Every snapshot is evolved from the same
//! seed and configuration, so cross-year differences are differences in
//! the market, not the method. Plus:
//!
//! - `--bench-out <path>`: write the record `BENCH_longitudinal.json`
//!   commits — per-year build/evolve timings, allocation counts, peak
//!   RSS, and cache temperature on top of the deterministic report;
//! - `--metrics-out <path>`: enable engine-wide telemetry and write the
//!   final registry snapshot (snapshot parse/cache-load timings, phase
//!   breakdowns) as JSON.
//!
//! Timings and cache temperature go to **stderr**: stdout (and the
//! `--json` dump) is byte-identical at any `--threads` value and cache
//! state — the property the CI `longitudinal-smoke` job diffs.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Instant;

use serde::Serialize;

use pan_bench::{
    evolution_config, market_tier, print_header, CountingAllocator, MemoryReport, MetricsSink,
    ReportSink, ScenarioSpec,
};
use pan_core::dynamics::{evolve, MarketState};
use pan_datasets::MarketSource;
use pan_topology::snapshot;

/// Count every heap allocation so the per-year memory sections can
/// distinguish build-heavy years from evolve-heavy ones.
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Deterministic per-snapshot summary (no wall-clock, no cache state).
#[derive(Debug, Clone, Serialize)]
struct YearSummary {
    snapshot: String,
    ases: usize,
    links: usize,
    transit_links: usize,
    peering_links: usize,
    rounds: usize,
    fixed_point: bool,
    adopted: usize,
    total_surplus: f64,
    new_links: usize,
    /// Adopted agreements as sorted unordered ASN pairs — the unit the
    /// cross-year diffs are computed over.
    adopted_pairs: Vec<(u32, u32)>,
}

/// Adopted-set delta between two consecutive snapshots.
#[derive(Debug, Clone, Serialize)]
struct YearDiff {
    from: String,
    to: String,
    kept: usize,
    gained_pairs: Vec<(u32, u32)>,
    lost_pairs: Vec<(u32, u32)>,
}

/// The deterministic report (`--json` stdout dump).
#[derive(Debug, Serialize)]
struct LongitudinalReport {
    years: Vec<YearSummary>,
    diffs: Vec<YearDiff>,
}

/// Wall-clock, cache-state, and memory facts, kept out of stdout.
#[derive(Debug, Serialize)]
struct YearTiming {
    snapshot: String,
    cache_warm: bool,
    build_seconds: f64,
    evolve_seconds: f64,
    /// Cumulative allocation counters and peak RSS as of this year's
    /// finish — consecutive records subtract to per-year figures.
    memory: MemoryReport,
}

/// The `--bench-out` record (`BENCH_longitudinal.json`).
#[derive(Debug, Serialize)]
struct BenchRecord {
    threads: usize,
    seed: u64,
    quick: bool,
    timings: Vec<YearTiming>,
    report: LongitudinalReport,
}

fn sorted_pair(x: u32, y: u32) -> (u32, u32) {
    (x.min(y), x.max(y))
}

fn main() {
    let (spec, mut rest) = ScenarioSpec::from_args(std::env::args());
    let sink = ReportSink::from_spec(&spec, &mut rest);
    let metrics = MetricsSink::from_args(&mut rest);
    ScenarioSpec::expect_no_extras(&rest);
    assert!(
        !spec.source.caida.is_empty(),
        "longitudinal requires --caida <dir> (a directory with one subdirectory per snapshot)"
    );
    assert!(
        spec.source.snapshot.is_empty(),
        "longitudinal walks every snapshot in the directory; drop --snapshot"
    );
    let dir = PathBuf::from(&spec.source.caida);
    let names = snapshot::list_snapshots(&dir).unwrap_or_else(|e| panic!("{e}"));
    let config = evolution_config(&spec);

    print_header(
        "Longitudinal",
        "yearly CAIDA snapshots under one evolution configuration",
        &spec,
    );
    println!(
        "# snapshots: {} ({} … {}), rounds: {}, adopt-top: {}, min-surplus: {}",
        names.len(),
        names.first().expect("list_snapshots never returns empty"),
        names.last().expect("list_snapshots never returns empty"),
        config.rounds,
        config.adopt_top,
        config.min_surplus,
    );

    let mut years: Vec<YearSummary> = Vec::with_capacity(names.len());
    let mut timings: Vec<YearTiming> = Vec::with_capacity(names.len());
    let mut adopted_sets: Vec<BTreeSet<(u32, u32)>> = Vec::with_capacity(names.len());
    for name in &names {
        let source = MarketSource::Caida {
            dir: dir.clone(),
            snapshot: Some(name.clone()),
        };
        let t_build = Instant::now();
        let (net, status) = source
            .build_with_status(spec.seed)
            .unwrap_or_else(|e| panic!("cannot load snapshot {name}: {e}"));
        let build_seconds = t_build.elapsed().as_secs_f64();
        let mut state = MarketState::standard(net.graph.clone(), |asn| market_tier(&net, asn))
            .expect("tables match the graph");
        let t_evolve = Instant::now();
        let report = evolve(&mut state, &config, &spec.sweep()).expect("evolution succeeds");
        let evolve_seconds = t_evolve.elapsed().as_secs_f64();
        let cache_warm = status.cache.is_some_and(|c| c.is_warm());
        eprintln!(
            "# {name}: built {} ASes in {build_seconds:.2}s ({} cache), evolved {} rounds \
             in {evolve_seconds:.2}s",
            net.graph.node_count(),
            if cache_warm { "warm" } else { "cold" },
            report.rounds.len(),
        );

        let adopted: BTreeSet<(u32, u32)> = report
            .agreements
            .iter()
            .map(|a| sorted_pair(a.x.get(), a.y.get()))
            .collect();
        years.push(YearSummary {
            snapshot: name.clone(),
            ases: net.graph.node_count(),
            links: net.graph.link_count(),
            transit_links: net.graph.transit_link_count(),
            peering_links: net.graph.peering_link_count(),
            rounds: report.rounds.len(),
            fixed_point: report.fixed_point,
            adopted: adopted.len(),
            total_surplus: report.total_surplus,
            new_links: report.agreements.iter().filter(|a| a.new_link).count(),
            adopted_pairs: adopted.iter().copied().collect(),
        });
        timings.push(YearTiming {
            snapshot: name.clone(),
            cache_warm,
            build_seconds,
            evolve_seconds,
            memory: MemoryReport::capture(),
        });
        adopted_sets.push(adopted);
    }

    println!(
        "{:<10} {:>7} {:>7} {:>8} {:>8} {:>7} {:>8} {:>14} {:>6}",
        "snapshot", "ases", "links", "transit", "peering", "rounds", "adopted", "surplus", "new"
    );
    for y in &years {
        println!(
            "{:<10} {:>7} {:>7} {:>8} {:>8} {:>7} {:>8} {:>14.3} {:>6}",
            y.snapshot,
            y.ases,
            y.links,
            y.transit_links,
            y.peering_links,
            y.rounds,
            y.adopted,
            y.total_surplus,
            y.new_links,
        );
    }

    let mut diffs: Vec<YearDiff> = Vec::new();
    for i in 1..years.len() {
        let prev_set = &adopted_sets[i - 1];
        let next_set = &adopted_sets[i];
        let kept = prev_set.intersection(next_set).count();
        let gained: Vec<(u32, u32)> = next_set.difference(prev_set).copied().collect();
        let lost: Vec<(u32, u32)> = prev_set.difference(next_set).copied().collect();
        println!(
            "# {} → {}: {} kept, {} gained, {} lost",
            years[i - 1].snapshot,
            years[i].snapshot,
            kept,
            gained.len(),
            lost.len(),
        );
        diffs.push(YearDiff {
            from: years[i - 1].snapshot.clone(),
            to: years[i].snapshot.clone(),
            kept,
            gained_pairs: gained,
            lost_pairs: lost,
        });
    }

    let report = LongitudinalReport { years, diffs };
    sink.emit_json(&report);
    sink.write_record(&BenchRecord {
        threads: spec.threads,
        seed: spec.seed,
        quick: spec.quick,
        timings,
        report,
    });
    metrics.write();
}
