//! Regenerates **Fig. 2**: Price of Dishonesty (minimum and mean over
//! random choice-set trials) as a function of the choice-set cardinality
//! `W_X = W_Y`, for the two utility distributions of the paper:
//! `U(1) = Unif[−1, 1]²` and `U(2) = Unif[−½, 1]²`.
//!
//! Paper shape to reproduce: both series fall with `W`, plateau around
//! `W ≈ 50`, the minimum reaching ≈ 10%; the number of equilibrium
//! choices saturates around 4.

use pan_bench::{print_header, ScenarioSpec};
use pan_bosco::{
    expected_nash_product, expected_truthful_nash_product, find_equilibrium, BargainingGame,
    ChoiceSet, UtilityDistribution,
};
use rand_chacha::ChaCha12Rng;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    distribution: &'static str,
    choices: usize,
    trials: usize,
    min_pod: f64,
    mean_pod: f64,
    mean_active_choices: f64,
}

fn run_cell(
    distribution: &UtilityDistribution,
    name: &'static str,
    choices: usize,
    trials: usize,
    truthful: f64,
    mut rng: ChaCha12Rng,
) -> Row {
    let mut min_pod = f64::INFINITY;
    let mut pod_sum = 0.0;
    let mut active_sum = 0.0;
    let mut converged = 0usize;
    for _ in 0..trials {
        let cx =
            ChoiceSet::sample_from(distribution, choices, &mut rng).expect("positive choice count");
        let cy =
            ChoiceSet::sample_from(distribution, choices, &mut rng).expect("positive choice count");
        let game = BargainingGame::new(*distribution, *distribution, cx, cy);
        let Ok(eq) = find_equilibrium(&game, 600) else {
            continue;
        };
        let actual = expected_nash_product(&game, &eq);
        let pod = (1.0 - actual / truthful).clamp(0.0, 1.0);
        min_pod = min_pod.min(pod);
        pod_sum += pod;
        active_sum += (eq.strategy_x.active_choice_count(distribution) as f64
            + eq.strategy_y.active_choice_count(distribution) as f64)
            / 2.0;
        converged += 1;
    }
    Row {
        distribution: name,
        choices,
        trials: converged,
        min_pod,
        mean_pod: pod_sum / converged.max(1) as f64,
        mean_active_choices: active_sum / converged.max(1) as f64,
    }
}

fn main() {
    let options = ScenarioSpec::from_env_strict();
    print_header(
        "Figure 2",
        "Price of Dishonesty vs. number of choices (BOSCO)",
        &options,
    );

    let trials = if options.quick { 40 } else { 200 };
    let cardinalities: &[usize] = if options.quick {
        &[10, 20, 30, 40, 50]
    } else {
        &[10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60]
    };
    let u1 = UtilityDistribution::uniform(-1.0, 1.0).expect("valid bounds");
    let u2 = UtilityDistribution::uniform(-0.5, 1.0).expect("valid bounds");

    println!(
        "{:<6} {:>8} {:>8} {:>9} {:>9} {:>14}",
        "dist", "W", "trials", "min PoD", "mean PoD", "active choices"
    );
    // One sweep item per (distribution, cardinality) cell; each cell
    // draws from its own (seed, cell index)-derived stream, so the rows
    // are identical at every --threads value.
    let distributions = [(u1, "U(1)"), (u2, "U(2)")];
    let truthful: Vec<f64> = distributions
        .iter()
        .map(|(dist, _)| expected_truthful_nash_product(dist, dist, 768))
        .collect();
    let cells: Vec<(usize, usize)> = (0..distributions.len())
        .flat_map(|d| cardinalities.iter().map(move |&w| (d, w)))
        .collect();
    let rows = options.sweep().map(&cells, |_idx, &(d, w), rng| {
        let (dist, name) = &distributions[d];
        run_cell(dist, name, w, trials, truthful[d], rng)
    });
    for row in &rows {
        println!(
            "{:<6} {:>8} {:>8} {:>9.4} {:>9.4} {:>14.2}",
            row.distribution,
            row.choices,
            row.trials,
            row.min_pod,
            row.mean_pod,
            row.mean_active_choices
        );
    }

    // Paper-claim summary for EXPERIMENTS.md.
    let plateau: Vec<&Row> = rows.iter().filter(|r| r.choices >= 50).collect();
    if !plateau.is_empty() {
        let best = plateau
            .iter()
            .map(|r| r.min_pod)
            .fold(f64::INFINITY, f64::min);
        println!("# plateau (W >= 50): best min-PoD = {best:.4} (paper: ~0.10)");
    }
    if options.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).expect("rows serialize")
        );
    }
}
