//! Topology-wide agreement discovery: sweep an entire internet —
//! synthetic or loaded from a CAIDA snapshot — for profitable mutuality
//! agreements (§III–§IV at scale).
//!
//! ```console
//! discover --quick --json --threads 4          # CI smoke: 10k ASes, 3×3 grid
//! discover --ases 20000 --khop 2 --top 50      # bigger net, prospective pairs
//! discover --caida snapshots --snapshot 2024   # real-internet snapshot
//! discover --engine legacy --limit 200         # "before" engine, for benchmarking
//! ```
//!
//! Accepts the shared [`ScenarioSpec`] flags plus:
//!
//! - `--engine dense|legacy`: the dense batch engine (default) or the
//!   original per-pair `AgreementScenario` stack;
//! - `--limit <N>`: evaluate only the first `N` candidates (0 = all;
//!   default 200 for the legacy engine, which is orders of magnitude
//!   slower);
//! - `--bench-out <path>`: write a JSON timing record
//!   (candidate-pairs/second) for `BENCH_discovery.json`.
//!
//! Timings go to **stderr** so stdout stays byte-identical at any
//! `--threads` value — the property the CI `discovery-smoke` job diffs.

use std::time::Instant;

use serde::Serialize;

use pan_bench::{
    at_market_scale, discovery_config, market_tables, print_header, CountingAllocator,
    MemoryReport, ReportSink, ScenarioSpec,
};
use pan_core::discovery::{
    discover, enumerate_candidates, evaluate_candidate_legacy, BatchContext, DiscoveryReport,
    PairOutcome,
};

/// Count every heap allocation so the bench record's memory section can
/// distinguish steady-state allocation-free sweeps from regressions.
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[derive(Debug, Serialize)]
struct BenchRecord {
    engine: String,
    ases: usize,
    threads: usize,
    candidate_pairs: usize,
    seconds: f64,
    pairs_per_second: f64,
    memory: MemoryReport,
}

fn print_report(report: &DiscoveryReport, engine: &str) {
    println!(
        "# engine: {engine}, candidates: {}, concluded: flow-volume {} ({:.1}%), cash {} ({:.1}%)",
        report.candidates,
        report.concluded_flow_volume,
        100.0 * report.concluded_flow_volume as f64 / report.candidates.max(1) as f64,
        report.concluded_cash,
        100.0 * report.concluded_cash as f64 / report.candidates.max(1) as f64,
    );
    println!("# total NBS surplus: {:.3}", report.total_surplus);
    println!(
        "{:<5} {:>9} {:>9} {:>5} {:>9} {:>14} {:>14} {:>14}",
        "rank", "X", "Y", "hops", "segments", "fv-nash", "cash-joint", "transfer X→Y"
    );
    for (rank, o) in report.outcomes.iter().take(20).enumerate() {
        println!(
            "{:<5} {:>9} {:>9} {:>5} {:>9} {:>14} {:>14} {:>14}",
            rank + 1,
            o.x.to_string(),
            o.y.to_string(),
            o.peering_hops,
            format!("{}+{}", o.segments.0, o.segments.1),
            o.flow_volume
                .map_or_else(|| "—".to_owned(), |f| format!("{:.3}", f.nash_product())),
            o.cash
                .map_or_else(|| "—".to_owned(), |c| format!("{:.3}", c.joint_utility)),
            o.cash
                .map_or_else(|| "—".to_owned(), |c| format!("{:.3}", c.transfer_x_to_y)),
        );
    }
}

fn main() {
    let (spec, mut rest) = ScenarioSpec::from_args(std::env::args());
    let sink = ReportSink::from_spec(&spec, &mut rest);
    let mut engine = "dense".to_owned();
    let mut limit = 0usize;
    let mut rest = rest.into_iter();
    while let Some(arg) = rest.next() {
        let mut value = |flag: &str| {
            rest.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--engine" => engine = value("--engine"),
            "--limit" => {
                let raw = value("--limit");
                limit = raw
                    .parse()
                    .unwrap_or_else(|_| panic!("--limit expects a count, got {raw:?}"));
            }
            other => panic!(
                "unknown flag {other:?}; discover adds: --engine dense|legacy, --limit <N>, \
                 --bench-out <path>"
            ),
        }
    }
    assert!(
        engine == "dense" || engine == "legacy",
        "--engine must be dense or legacy, got {engine:?}"
    );
    // The discovery workload is internet-scale by definition; even
    // --quick sweeps a full 10k-AS topology (with a coarser grid).
    let spec = at_market_scale(spec);
    if engine == "legacy" && limit == 0 {
        limit = 200;
    }
    let config = discovery_config(&spec);
    let grid = config.grid;

    print_header(
        "Discovery",
        "topology-wide mutuality-agreement sweep, ranked by NBS surplus",
        &spec,
    );
    let t_gen = Instant::now();
    let (net, econ, flows) = market_tables(&spec);
    eprintln!(
        "# generated {} ASes in {:.2}s",
        net.graph.node_count(),
        t_gen.elapsed().as_secs_f64()
    );
    println!(
        "# topology: {} ASes, {} links ({} transit, {} peering)",
        net.graph.node_count(),
        net.graph.link_count(),
        net.graph.transit_link_count(),
        net.graph.peering_link_count()
    );
    let ctx = BatchContext::new(&net.graph, &econ, &flows).expect("tables match the graph");
    println!(
        "# policy: {:?}, shares: reroute {} / attract {}, grid {grid}×{grid}, noise {}",
        config.policy,
        spec.discovery.reroute_share,
        spec.discovery.attract_share,
        spec.discovery.noise
    );

    let (report, seconds) = if engine == "dense" {
        if limit > 0 {
            eprintln!("# note: --limit applies to the legacy engine; dense sweeps everything");
        }
        let t0 = Instant::now();
        let report = discover(&ctx, &config, &spec.sweep()).expect("discovery succeeds");
        (report, t0.elapsed().as_secs_f64())
    } else {
        // The pre-refactor path: per-pair sparse scenarios. Same math,
        // same grid — used as the benchmark baseline and sanity oracle.
        // `Agreement::mutuality` requires the parties to already peer,
        // so prospective (k-hop > 1) candidates are dense-engine-only.
        let model = econ.to_business_model(&net.graph);
        let mut candidates = enumerate_candidates(&net.graph, config.policy);
        let before = candidates.len();
        candidates.retain(|pair| pair.peering_hops == 1);
        if candidates.len() < before {
            eprintln!(
                "# note: legacy engine skips {} prospective (k-hop) candidates — \
                 the sparse stack only evaluates existing peers",
                before - candidates.len()
            );
        }
        if limit > 0 && candidates.len() > limit {
            candidates.truncate(limit);
        }
        let t0 = Instant::now();
        let outcomes: Vec<PairOutcome> = spec.pool().map(&candidates, |_i, pair| {
            let fx = flows.to_flow_vec(&net.graph, pair.x);
            let fy = flows.to_flow_vec(&net.graph, pair.y);
            evaluate_candidate_legacy(
                &model,
                &fx,
                &fy,
                spec.discovery.reroute_share,
                spec.discovery.attract_share,
                grid,
            )
            .expect("legacy evaluation succeeds")
        });
        let seconds = t0.elapsed().as_secs_f64();
        (
            DiscoveryReport::from_outcomes(outcomes, spec.discovery.top),
            seconds,
        )
    };

    print_report(&report, &engine);
    let rate = report.candidates as f64 / seconds.max(1e-9);
    eprintln!(
        "# swept {} candidate pairs in {seconds:.3}s — {rate:.0} pairs/s at {} threads",
        report.candidates, spec.threads
    );
    sink.emit_json(&report);
    sink.write_record(&BenchRecord {
        engine,
        ases: net.graph.node_count(),
        threads: spec.threads,
        candidate_pairs: report.candidates,
        seconds,
        pairs_per_second: rate,
        memory: MemoryReport::capture(),
    });
}
