//! Runs every figure binary's pipeline in sequence (quick settings by
//! default are *not* implied — pass `--quick` for a smoke run).
//!
//! This is a convenience wrapper so `cargo run -p pan-bench --bin
//! all_figures -- --quick` regenerates the whole evaluation in one go.
//! All flags (including `--threads <N>`) are forwarded verbatim to the
//! child binaries; output bytes are identical at every thread count, a
//! property CI enforces by diffing `--threads 1` against `--threads 4`.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current exe resolves")
        .parent()
        .expect("exe has a parent directory")
        .to_path_buf();
    for figure in ["fig2", "fig3", "fig4", "fig5", "fig6"] {
        println!("\n================ {figure} ================\n");
        let status = Command::new(exe_dir.join(figure))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {figure}: {e}"));
        assert!(status.success(), "{figure} exited with {status}");
    }
}
