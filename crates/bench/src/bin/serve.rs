//! Multi-tenant market server over the standard synthetic markets: keep
//! a table of resident `MarketState`s loaded and answer advisory
//! queries (cached per AS), stream evolution rounds, and
//! checkpoint/restore trajectories without rebuilding the world per
//! request. Speaks the v2 protocol (see `pan_serve::protocol`): every
//! request carries `"v": 2`, `load` returns a server-assigned market id
//! (`"m1"`, …), and the other verbs are market-scoped.
//!
//! ```console
//! serve --quick --threads 4                    # defaults: 127.0.0.1:4780
//! serve --addr 127.0.0.1:0 --max-markets 4     # OS-assigned port (logged)
//! serve-client --send '{"v":2,"verb":"load","market":{}}' ...   # drive it
//! ```
//!
//! Accepts the shared [`ScenarioSpec`] flags as the **base spec** of
//! synthetic loads; a `load` request's `market` object overrides
//! individual fields per load (`{"ases":500,"seed":7,"shock":0.2,…}`,
//! same vocabulary as the spec flags). Plus:
//!
//! - `--addr <host:port>`: listen address (default `127.0.0.1:4780`);
//! - `--engine <full|incremental>`: discovery engine resident markets
//!   step with (default `full`; replies are byte-identical either way);
//! - `--max-markets <n>`: session-table cap — further `load`s answer
//!   the `market_limit` error code (default 8);
//! - `--bench-out <path>`: write a service summary record on shutdown.
//!
//! The listen address and all timings go to **stderr**; protocol replies
//! are deterministic at any `--threads` value (the CI `serve-smoke` job
//! diffs streamed `step` rounds against an `evolve` trajectory).

use std::time::Instant;

use serde::{Serialize, Value};

use pan_bench::{at_market_scale, evolution_config, market_state, ReportSink, ScenarioSpec};
use pan_serve::{LoadedMarket, MarketServer};

#[derive(Debug, Serialize)]
struct BenchRecord {
    addr: String,
    threads: usize,
    connections: usize,
    requests: usize,
}

/// Applies a `load` request's `market` object onto the base spec. The
/// vocabulary mirrors the command-line flags, so a spec file, a flag,
/// and a load request all say `"ases"`, `"seed"`, `"shock"`, … for the
/// same knob.
fn apply_overrides(base: ScenarioSpec, market: &Value) -> Result<ScenarioSpec, String> {
    let Value::Map(entries) = market else {
        return Err(format!(
            "\"market\" must be an object, got {}",
            market.kind()
        ));
    };
    let mut spec = base;
    for (key, value) in entries {
        let bad = |kind: &str| format!("market field {key:?} must be {kind}");
        let as_u64 = || match value {
            Value::I64(n) if *n >= 0 => Ok(*n as u64),
            Value::U64(n) => Ok(*n),
            _ => Err(bad("a non-negative integer")),
        };
        let as_usize = || as_u64().map(|n| n as usize);
        let as_f64 = || match value {
            Value::F64(x) => Ok(*x),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            _ => Err(bad("a number")),
        };
        let as_bool = || match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(bad("a boolean")),
        };
        match key.as_str() {
            "quick" => spec.quick = as_bool()?,
            "seed" => spec.seed = as_u64()?,
            "ases" => spec.ases = as_usize()?,
            "reroute" => spec.discovery.reroute_share = as_f64()?,
            "attract" => spec.discovery.attract_share = as_f64()?,
            "grid" => spec.discovery.grid = as_usize()?,
            "khop" => {
                spec.discovery.khop =
                    u8::try_from(as_u64()?).map_err(|_| bad("a small hop count"))?;
            }
            "khop_cap" => spec.discovery.khop_cap = as_usize()?,
            "noise" => spec.discovery.noise = as_f64()?,
            "adopt_top" => spec.evolution.adopt_top = as_usize()?,
            "min_surplus" => spec.evolution.min_surplus = as_f64()?,
            "shock" => spec.evolution.shock = as_f64()?,
            other => {
                return Err(format!(
                    "unknown market field {other:?}; known: quick, seed, ases, reroute, \
                     attract, grid, khop, khop_cap, noise, adopt_top, min_surplus, shock"
                ));
            }
        }
    }
    Ok(spec)
}

fn main() {
    let (spec, mut rest) = ScenarioSpec::from_args(std::env::args());
    let sink = ReportSink::from_spec(&spec, &mut rest);
    let mut addr = "127.0.0.1:4780".to_owned();
    let mut engine = pan_core::Engine::Full;
    let mut max_markets = pan_serve::DEFAULT_MAX_MARKETS;
    let mut rest = rest.into_iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--addr" => {
                addr = rest
                    .next()
                    .unwrap_or_else(|| panic!("--addr requires a value"));
            }
            "--engine" => {
                let value = rest
                    .next()
                    .unwrap_or_else(|| panic!("--engine requires a value: full, incremental"));
                engine = value.parse().unwrap_or_else(|e| panic!("{e}"));
            }
            "--max-markets" => {
                let value = rest
                    .next()
                    .unwrap_or_else(|| panic!("--max-markets requires a value"));
                max_markets = value
                    .parse()
                    .unwrap_or_else(|e| panic!("--max-markets: {e}"));
            }
            other => {
                panic!(
                    "unknown flag {other:?}; serve adds: --addr <host:port>, \
                     --engine <full|incremental>, --max-markets <n>, --bench-out <path>"
                )
            }
        }
    }

    let server = MarketServer::bind(&addr, spec.threads)
        .unwrap_or_else(|e| panic!("cannot bind {addr:?}: {e}"))
        .with_engine(engine)
        .with_max_markets(max_markets);
    let local = server.local_addr().expect("bound sockets have an address");
    eprintln!(
        "# serving on {local} at {} threads, {engine} engine, up to {max_markets} markets \
         (base spec: seed {}, quick {})",
        spec.threads, spec.seed, spec.quick
    );

    let loader = move |market: &Value| -> Result<LoadedMarket, String> {
        let loaded_spec = at_market_scale(apply_overrides(spec, market)?);
        let t0 = Instant::now();
        let (net, state) = market_state(&loaded_spec);
        eprintln!(
            "# built {}-AS market (seed {}) in {:.2}s",
            net.graph.node_count(),
            loaded_spec.seed,
            t0.elapsed().as_secs_f64()
        );
        Ok(LoadedMarket {
            state,
            config: evolution_config(&loaded_spec),
            seed: loaded_spec.seed,
            label: format!(
                "synthetic:{}-as:seed-{}",
                net.graph.node_count(),
                loaded_spec.seed
            ),
        })
    };
    let summary = server.serve(&loader).expect("the serve loop runs");
    sink.write_record(&BenchRecord {
        addr: local.to_string(),
        threads: spec.threads,
        connections: summary.connections,
        requests: summary.requests,
    });
}
