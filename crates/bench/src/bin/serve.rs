//! Multi-tenant market server over the standard markets (synthetic or
//! CAIDA-loaded through the unified source layer): keep
//! a table of resident `MarketState`s loaded and answer advisory
//! queries (cached per AS), stream evolution rounds, and
//! checkpoint/restore trajectories without rebuilding the world per
//! request. Speaks the v2 protocol (see `pan_serve::protocol`): every
//! request carries `"v": 2`, `load` returns a server-assigned market id
//! (`"m1"`, …), and the other verbs are market-scoped.
//!
//! ```console
//! serve --quick --threads 4                    # defaults: 127.0.0.1:4780
//! serve --addr 127.0.0.1:0 --max-markets 4     # OS-assigned port (logged)
//! serve-client --send '{"v":2,"verb":"load","market":{}}' ...   # drive it
//! ```
//!
//! Accepts the shared [`ScenarioSpec`] flags as the **base spec** of
//! loads (including `--caida <dir>`/`--snapshot <name>` for real-internet
//! snapshots); a `load` request's `market` object overrides individual
//! fields per load (`{"ases":500,"seed":7,"shock":0.2,…}`, same
//! vocabulary as the spec flags, plus `"source"` — `"synthetic"` or
//! `{"caida": <dir>, "snapshot": <name>}`). Plus:
//!
//! - `--addr <host:port>`: listen address (default `127.0.0.1:4780`);
//! - `--engine <full|incremental>`: discovery engine resident markets
//!   step with (default `full`; replies are byte-identical either way);
//! - `--max-markets <n>`: session-table cap — further `load`s answer
//!   the `market_limit` error code (default 8);
//! - `--slow-ms <ms>`: only stderr-log requests at least this slow
//!   (default 1 ms; `0` logs every request);
//! - `--bench-out <path>`: write a service summary record on shutdown;
//! - `--metrics-out <path>`: also dump the final telemetry registry
//!   snapshot on shutdown (the live registry is always queryable via
//!   the `metrics` verb while the server runs).
//!
//! The listen address and all timings go to **stderr**; protocol replies
//! are deterministic at any `--threads` value (the CI `serve-smoke` job
//! diffs streamed `step` rounds against an `evolve` trajectory).

use std::time::{Duration, Instant};

use serde::{Serialize, Value};

use pan_bench::{load_market_request, MetricsSink, ReportSink, ScenarioSpec};
use pan_serve::{LoadedMarket, MarketServer};

#[derive(Debug, Serialize)]
struct BenchRecord {
    addr: String,
    threads: usize,
    connections: usize,
    requests: usize,
}

fn main() {
    let (spec, mut rest) = ScenarioSpec::from_args(std::env::args());
    let sink = ReportSink::from_spec(&spec, &mut rest);
    let metrics = MetricsSink::from_args(&mut rest);
    let mut addr = "127.0.0.1:4780".to_owned();
    let mut engine = pan_core::Engine::Full;
    let mut max_markets = pan_serve::DEFAULT_MAX_MARKETS;
    let mut slow_ms = 1.0f64;
    let mut rest = rest.into_iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--addr" => {
                addr = rest
                    .next()
                    .unwrap_or_else(|| panic!("--addr requires a value"));
            }
            "--engine" => {
                let value = rest
                    .next()
                    .unwrap_or_else(|| panic!("--engine requires a value: full, incremental"));
                engine = value.parse().unwrap_or_else(|e| panic!("{e}"));
            }
            "--max-markets" => {
                let value = rest
                    .next()
                    .unwrap_or_else(|| panic!("--max-markets requires a value"));
                max_markets = value
                    .parse()
                    .unwrap_or_else(|e| panic!("--max-markets: {e}"));
            }
            "--slow-ms" => {
                let value = rest
                    .next()
                    .unwrap_or_else(|| panic!("--slow-ms requires a value"));
                slow_ms = value.parse().unwrap_or_else(|e| panic!("--slow-ms: {e}"));
                assert!(
                    slow_ms >= 0.0 && slow_ms.is_finite(),
                    "--slow-ms must be a non-negative number of milliseconds"
                );
            }
            other => {
                panic!(
                    "unknown flag {other:?}; serve adds: --addr <host:port>, \
                     --engine <full|incremental>, --max-markets <n>, --slow-ms <ms>, \
                     --bench-out <path>, --metrics-out <path>"
                )
            }
        }
    }

    let server = MarketServer::bind(&addr, spec.threads)
        .unwrap_or_else(|e| panic!("cannot bind {addr:?}: {e}"))
        .with_engine(engine)
        .with_max_markets(max_markets)
        .with_slow_log(Duration::from_secs_f64(slow_ms / 1e3));
    let local = server.local_addr().expect("bound sockets have an address");
    eprintln!(
        "# serving on {local} at {} threads, {engine} engine, up to {max_markets} markets \
         (base spec: seed {}, quick {})",
        spec.threads, spec.seed, spec.quick
    );

    let base = spec.clone();
    let loader = move |market: &Value| -> Result<LoadedMarket, String> {
        let t0 = Instant::now();
        let loaded: LoadedMarket = load_market_request(&base, market)?;
        eprintln!(
            "# built {}-AS market ({}) in {:.2}s",
            loaded.state.graph().node_count(),
            loaded.label,
            t0.elapsed().as_secs_f64()
        );
        Ok(loaded)
    };
    let summary = server.serve(&loader).expect("the serve loop runs");
    sink.write_record(&BenchRecord {
        addr: local.to_string(),
        threads: spec.threads,
        connections: summary.connections,
        requests: summary.requests,
    });
    metrics.write();
}
