//! Regenerates **Fig. 6**: the bandwidth analysis.
//!
//! - Fig. 6a: distribution of AS pairs by the number of additional MA
//!   paths whose (degree-gravity) bandwidth beats the maximum / median /
//!   minimum bandwidth of the pair's GRC paths.
//! - Fig. 6b: distribution of the relative bandwidth increase over the
//!   pairs that improved.
//!
//! Paper shape to reproduce: ~35% of pairs gain a path beating the
//! max-bandwidth GRC path; among those, the median increase is ≈150%.

use pan_bench::{evaluation_internet, pct, print_header, sample_size, ScenarioSpec};
use pan_pathdiv::bandwidth::{analyze_pooled, BandwidthConfig};

fn main() {
    let options = ScenarioSpec::from_env_strict();
    print_header("Figure 6", "bandwidth of additional MA paths", &options);
    let net = evaluation_internet(&options);
    let report = analyze_pooled(
        &net.graph,
        &net.capacities,
        &BandwidthConfig {
            sample_size: sample_size(&options),
            seed: options.seed,
        },
        &options.pool(),
    );
    println!("# analyzed AS pairs: {}", report.pairs.len());

    println!("\n## Fig. 6a — fraction of AS pairs with ≥ k MA paths beating the GRC threshold");
    println!(
        "{:<6} {:>14} {:>14} {:>14}",
        "k", "> GRC min", "> GRC median", "> GRC max"
    );
    for k in [1usize, 2, 5, 10, 20, 50, 100] {
        println!(
            "{:<6} {:>14} {:>14} {:>14}",
            k,
            pct(report.fraction_above_min(k)),
            pct(report.fraction_above_median(k)),
            pct(report.fraction_above_max(k)),
        );
    }

    println!("\n## Fig. 6b — relative bandwidth increase (improved pairs only)");
    let cdf = report.increase_cdf();
    println!("# improved pairs: {}", cdf.len());
    println!("{:<12} {:>10}", "quantile", "increase");
    for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
        if let Some(v) = cdf.quantile(q) {
            println!("{:<12} {:>9.0}%", format!("p{:02.0}", q * 100.0), v * 100.0);
        }
    }
    if let Some(median) = cdf.median() {
        println!(
            "# median increase: {:.0}% (paper: ~150%); pairs beating GRC max: {} (paper: ~35%)",
            median * 100.0,
            pct(report.fraction_above_max(1))
        );
    }

    if options.json {
        println!(
            "{}",
            serde_json::to_string(&report.pairs).expect("pairs serialize")
        );
    }
}
