//! Regenerates **Fig. 4**: distribution of ASes with respect to the
//! number of destinations reachable over length-3 paths, under the same
//! MA-conclusion degrees as Fig. 3.
//!
//! Paper shape to reproduce: MAs shift the reachable-destination CDF
//! right (e.g. the share of ASes reaching > 5,000 destinations grows
//! from 40% to 57% on the CAIDA graph); very few MAs per AS already
//! capture most of the gain; destination gains are more evenly
//! distributed than path gains.

use pan_bench::{evaluation_internet, print_header, sample_size, ScenarioSpec, CDF_QUANTILES};
use pan_pathdiv::diversity::{analyze_sample_pooled, DiversityConfig};
use pan_pathdiv::figures::fig4_series;

fn main() {
    let options = ScenarioSpec::from_env_strict();
    print_header(
        "Figure 4",
        "CDF of destinations reachable over length-3 paths",
        &options,
    );
    let net = evaluation_internet(&options);
    let config = DiversityConfig {
        sample_size: sample_size(&options),
        seed: options.seed,
        top_n: vec![1, 5, 50],
    };
    let report = analyze_sample_pooled(&net.graph, &config, &options.pool());

    let series = fig4_series(&report);

    print!("{:<14}", "series");
    for q in CDF_QUANTILES {
        print!("{:>10}", format!("p{:02.0}", q * 100.0));
    }
    println!("{:>10}", "mean");
    for s in &series {
        print!("{:<14}", s.name);
        for q in CDF_QUANTILES {
            print!("{:>10.0}", s.cdf.quantile(q).unwrap_or(0.0));
        }
        println!("{:>10.0}", s.cdf.mean().unwrap_or(0.0));
    }

    println!(
        "# additional destinations per AS: mean {:.0}, max {} (paper: 2,181 / 7,144)",
        report.mean_additional_destinations(),
        report.max_additional_destinations()
    );
    // The paper's "40% → 57% reach > 5,000 destinations" claim, scaled to
    // the median GRC reach of this topology as the threshold.
    let grc = &series[0].cdf;
    let ma = &series.last().expect("series non-empty").cdf;
    let threshold = grc.quantile(0.6).unwrap_or(0.0);
    println!(
        "# share of ASes reaching > {:.0} destinations: GRC {:.0}%, MA {:.0}%",
        threshold,
        grc.survival(threshold) * 100.0,
        ma.survival(threshold) * 100.0
    );

    if options.json {
        let dump: Vec<(String, Vec<(f64, f64)>)> = series
            .iter()
            .map(|s| (s.name.clone(), s.cdf.points()))
            .collect();
        println!(
            "{}",
            serde_json::to_string(&dump).expect("points serialize")
        );
    }
}
