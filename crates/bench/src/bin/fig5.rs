//! Regenerates **Fig. 5**: the geodistance analysis.
//!
//! - Fig. 5a: distribution of AS pairs by the number of additional MA
//!   paths whose geodistance beats the maximum / median / minimum
//!   geodistance of the pair's GRC paths.
//! - Fig. 5b: distribution of the relative geodistance reduction over
//!   the pairs that improved.
//!
//! Paper shape to reproduce: ~50% of pairs gain ≥1 path beating the GRC
//! minimum; ~25% gain ≥5; the median relative reduction is ≈24%.

use pan_bench::{evaluation_internet, pct, print_header, sample_size, ScenarioSpec};
use pan_pathdiv::geodistance::{analyze_pooled, GeodistanceConfig};

fn main() {
    let options = ScenarioSpec::from_env_strict();
    print_header("Figure 5", "geodistance of additional MA paths", &options);
    let net = evaluation_internet(&options);
    let report = analyze_pooled(
        &net.graph,
        &net.geo,
        &GeodistanceConfig {
            sample_size: sample_size(&options),
            seed: options.seed,
        },
        &options.pool(),
    );
    println!("# analyzed AS pairs: {}", report.pairs.len());

    println!("\n## Fig. 5a — fraction of AS pairs with ≥ k MA paths beating the GRC threshold");
    println!(
        "{:<6} {:>14} {:>14} {:>14}",
        "k", "< GRC max", "< GRC median", "< GRC min"
    );
    for k in [1usize, 2, 5, 10, 20, 50, 100] {
        println!(
            "{:<6} {:>14} {:>14} {:>14}",
            k,
            pct(report.fraction_below_max(k)),
            pct(report.fraction_below_median(k)),
            pct(report.fraction_below_min(k)),
        );
    }

    println!("\n## Fig. 5b — relative geodistance reduction (improved pairs only)");
    let cdf = report.reduction_cdf();
    println!("# improved pairs: {}", cdf.len());
    println!("{:<12} {:>10}", "quantile", "reduction");
    for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
        if let Some(v) = cdf.quantile(q) {
            println!("{:<12} {:>10}", format!("p{:02.0}", q * 100.0), pct(v));
        }
    }
    if let Some(median) = cdf.median() {
        println!(
            "# median reduction: {} (paper: ~24%); pairs gaining ≥1 below-min path: {} (paper: ~50%)",
            pct(median),
            pct(report.fraction_below_min(1))
        );
    }

    if options.json {
        println!(
            "{}",
            serde_json::to_string(&report.pairs).expect("pairs serialize")
        );
    }
}
