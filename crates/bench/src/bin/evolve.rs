//! Multi-round agreement adoption dynamics on an internet — synthetic
//! or loaded from a CAIDA snapshot: discover profitable mutuality
//! agreements, adopt the best, let flows and cash respond, optionally
//! shock the market, and repeat until the economy reaches a fixed point
//! (or the round cap).
//!
//! ```console
//! evolve --quick --threads 4                   # CI smoke: 10k ASes, 4 rounds
//! evolve --rounds 20 --adopt-top 50 --shock 0.3
//! evolve --khop 2 --rounds 8                   # prospective pairs create links
//! evolve --caida snapshots --snapshot 2024     # real-internet snapshot
//! ```
//!
//! Accepts the shared [`ScenarioSpec`] flags (notably `--rounds`,
//! `--adopt-top`, `--min-surplus`, `--shock`) plus:
//!
//! - `--engine <full|incremental>`: discovery engine (default `full`);
//!   both produce byte-identical stdout — the CI `incremental-smoke`
//!   job diffs them;
//! - `--compare-engines`: run the trajectory under both engines,
//!   assert equality, and record per-round timings of each;
//! - `--bench-out <path>`: write the round-by-round trajectory as a JSON
//!   record (`BENCH_evolution.json`);
//! - `--metrics-out <path>`: enable engine-wide telemetry and write the
//!   final registry snapshot (per-round phase breakdown, cache hit
//!   rates, pool accounting) as JSON.
//!
//! Timings (and the engine note) go to **stderr** so stdout stays
//! byte-identical at any `--threads` value and either `--engine` — the
//! property the CI `evolution-smoke` and `incremental-smoke` jobs diff.

use std::time::Instant;

use serde::Serialize;

use pan_bench::{
    at_market_scale, evolution_config, market_state, print_header, CountingAllocator, MemoryReport,
    MetricsSink, ReportSink, ScenarioSpec,
};
use pan_core::dynamics::{evolve_with_engine, Engine, EvolutionReport};

/// Count every heap allocation so the bench record's memory section can
/// distinguish allocation-free steady-state rounds from regressions.
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[derive(Debug, Serialize)]
struct BenchRecord {
    ases: usize,
    threads: usize,
    rounds_configured: usize,
    adopt_top: usize,
    shock: f64,
    fixed_point: bool,
    total_adopted: usize,
    total_surplus: f64,
    new_links: usize,
    seconds: f64,
    memory: MemoryReport,
    report: EvolutionReport,
}

/// The `--compare-engines` record: one trajectory, two engines, with
/// the per-round wall-clock of each side by side.
#[derive(Debug, Serialize)]
struct CompareRecord {
    ases: usize,
    threads: usize,
    rounds_configured: usize,
    adopt_top: usize,
    shock: f64,
    fixed_point: bool,
    total_adopted: usize,
    total_surplus: f64,
    new_links: usize,
    full_seconds: f64,
    incremental_seconds: f64,
    /// Whole-run wall-clock ratio (includes the incremental engine's
    /// cold first round).
    speedup: f64,
    /// Ratio over rounds after the first — the steady state a resident
    /// market lives in.
    warm_speedup: f64,
    full_round_seconds: Vec<f64>,
    incremental_round_seconds: Vec<f64>,
    memory: MemoryReport,
    report: EvolutionReport,
}

fn print_report(report: &EvolutionReport) {
    println!(
        "{:<6} {:>10} {:>9} {:>14} {:>8} {:>14} {:>6} {:>7} {:>7} {:>14}",
        "round",
        "candidates",
        "cash-ok",
        "surplus-seen",
        "adopted",
        "surplus-taken",
        "links",
        "shocks",
        "fails",
        "total-flow"
    );
    for r in &report.rounds {
        println!(
            "{:<6} {:>10} {:>9} {:>14.3} {:>8} {:>14.3} {:>6} {:>7} {:>7} {:>14.1}",
            r.round,
            r.candidates,
            r.concluded_cash,
            r.discovered_surplus,
            r.adopted,
            r.adopted_surplus,
            r.new_links,
            r.price_shocks,
            r.failed_links,
            r.total_flow,
        );
    }
    println!(
        "# {} after {} rounds: {} agreements adopted, cumulative surplus {:.3}, {} new peering links",
        if report.fixed_point {
            "fixed point"
        } else {
            "round cap"
        },
        report.rounds.len(),
        report.total_adopted(),
        report.total_surplus,
        report.agreements.iter().filter(|a| a.new_link).count(),
    );
    if !report.agreements.is_empty() {
        println!(
            "{:<5} {:>9} {:>9} {:>5} {:>5} {:>4} {:>11} {:>14} {:>14}",
            "#", "X", "Y", "round", "hops", "new", "point r/a", "joint", "transfer X→Y"
        );
        for (rank, a) in report.agreements.iter().take(10).enumerate() {
            println!(
                "{:<5} {:>9} {:>9} {:>5} {:>5} {:>4} {:>11} {:>14.3} {:>14.3}",
                rank + 1,
                a.x.to_string(),
                a.y.to_string(),
                a.round,
                a.peering_hops,
                if a.new_link { "yes" } else { "—" },
                format!("{:.2}/{:.2}", a.reroute, a.attract),
                a.joint_utility,
                a.transfer_x_to_y,
            );
        }
    }
}

fn main() {
    let (spec, mut rest) = ScenarioSpec::from_args(std::env::args());
    let sink = ReportSink::from_spec(&spec, &mut rest);
    let metrics = MetricsSink::from_args(&mut rest);
    let mut engine = Engine::Full;
    let mut compare = false;
    let mut extras = Vec::new();
    let mut args = rest.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--engine" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| panic!("--engine requires a value: full, incremental"));
                engine = value.parse().unwrap_or_else(|e| panic!("{e}"));
            }
            "--compare-engines" => compare = true,
            _ => extras.push(arg),
        }
    }
    ScenarioSpec::expect_no_extras(&extras);
    // Like `discover`, the evolution workload is internet-scale by
    // definition; --quick keeps the grid coarse and the rounds few.
    let spec = at_market_scale(spec);
    let config = evolution_config(&spec);
    let grid = config.discovery.grid;

    print_header(
        "Evolution",
        "multi-round agreement adoption dynamics to a market fixed point",
        &spec,
    );
    let t_gen = Instant::now();
    let (net, mut state) = market_state(&spec);
    eprintln!(
        "# generated {} ASes in {:.2}s",
        net.graph.node_count(),
        t_gen.elapsed().as_secs_f64()
    );
    println!(
        "# topology: {} ASes, {} links ({} transit, {} peering)",
        net.graph.node_count(),
        net.graph.link_count(),
        net.graph.transit_link_count(),
        net.graph.peering_link_count()
    );
    println!(
        "# policy: {:?}, shares: reroute {} / attract {}, grid {grid}×{grid}, noise {}",
        config.discovery.policy,
        spec.discovery.reroute_share,
        spec.discovery.attract_share,
        spec.discovery.noise
    );
    println!(
        "# rounds: {}, adopt-top: {}, min-surplus: {}, shock: {}",
        config.rounds, config.adopt_top, config.min_surplus, config.shock
    );

    if compare {
        // Same pristine market under both engines (the clone has a
        // fresh dirty journal, so neither run sees the other).
        let mut full_state = state.clone();
        eprintln!("# engine: full (reference pass)");
        let t_full = Instant::now();
        let full = evolve_with_engine(&mut full_state, &config, &spec.sweep(), Engine::Full)
            .expect("evolution succeeds");
        let full_seconds = t_full.elapsed().as_secs_f64();
        eprintln!("# engine: incremental (comparison pass)");
        let t_incr = Instant::now();
        let incremental =
            evolve_with_engine(&mut state, &config, &spec.sweep(), Engine::Incremental)
                .expect("evolution succeeds");
        let incremental_seconds = t_incr.elapsed().as_secs_f64();
        assert_eq!(
            full.with_zeroed_timings(),
            incremental.with_zeroed_timings(),
            "the engines diverged — the equivalence contract is broken"
        );

        print_report(&full);
        let per_round = |report: &EvolutionReport| -> Vec<f64> {
            report.rounds.iter().map(|r| r.seconds).collect()
        };
        let warm = |seconds: &[f64]| -> f64 {
            let tail = &seconds[1.min(seconds.len())..];
            tail.iter().sum::<f64>() / tail.len().max(1) as f64
        };
        let full_rounds = per_round(&full);
        let incremental_rounds = per_round(&incremental);
        let warm_speedup = warm(&full_rounds) / warm(&incremental_rounds).max(f64::MIN_POSITIVE);
        eprintln!(
            "# engines agree over {} rounds: full {full_seconds:.3}s, incremental \
             {incremental_seconds:.3}s ({:.1}x overall, {warm_speedup:.1}x warm rounds)",
            full.rounds.len(),
            full_seconds / incremental_seconds.max(f64::MIN_POSITIVE),
        );
        sink.emit_json(&full.with_zeroed_timings());
        sink.write_record(&CompareRecord {
            ases: net.graph.node_count(),
            threads: spec.threads,
            rounds_configured: config.rounds,
            adopt_top: config.adopt_top,
            shock: config.shock,
            fixed_point: full.fixed_point,
            total_adopted: full.total_adopted(),
            total_surplus: full.total_surplus,
            new_links: full.agreements.iter().filter(|a| a.new_link).count(),
            full_seconds,
            incremental_seconds,
            speedup: full_seconds / incremental_seconds.max(f64::MIN_POSITIVE),
            warm_speedup,
            full_round_seconds: full_rounds,
            incremental_round_seconds: incremental_rounds,
            memory: MemoryReport::capture(),
            report: full,
        });
        metrics.write();
        return;
    }

    eprintln!("# engine: {engine}");
    let t0 = Instant::now();
    let report =
        evolve_with_engine(&mut state, &config, &spec.sweep(), engine).expect("evolution succeeds");
    let seconds = t0.elapsed().as_secs_f64();

    print_report(&report);
    eprintln!(
        "# evolved {} rounds in {seconds:.3}s ({:.3}s/round) at {} threads",
        report.rounds.len(),
        seconds / report.rounds.len().max(1) as f64,
        spec.threads
    );
    // stdout must stay byte-identical at any thread count and engine:
    // the JSON dump zeroes the per-round wall-clock; the bench record
    // keeps it.
    sink.emit_json(&report.with_zeroed_timings());
    sink.write_record(&BenchRecord {
        ases: net.graph.node_count(),
        threads: spec.threads,
        rounds_configured: config.rounds,
        adopt_top: config.adopt_top,
        shock: config.shock,
        fixed_point: report.fixed_point,
        total_adopted: report.total_adopted(),
        total_surplus: report.total_surplus,
        new_links: report.agreements.iter().filter(|a| a.new_link).count(),
        seconds,
        memory: MemoryReport::capture(),
        report: report.clone(),
    });
    metrics.write();
}
