//! Load generator for the multi-tenant `serve` binary: drives N
//! concurrent clients over mixed advise/step workloads against a
//! running server and records advise throughput, latency percentiles,
//! and the server's cache hit ratio.
//!
//! ```console
//! serve --quick --ases 2000 --threads 4 &      # the service under test
//! serve-bench --quick --markets 2 --clients 4 --quit \
//!   --bench-out BENCH_serving.json
//! ```
//!
//! Four measured phases, after loading `--markets` sessions (each from
//! the server's base spec at a distinct seed):
//!
//! 1. **cold** — one sequential advise per (market, AS) pair, every one
//!    a cache miss: the uncached evaluation baseline;
//! 2. **warm** — the same sequential pairs re-queried, every one a
//!    generation-keyed cache hit: the like-for-like latency comparison
//!    behind the reported cold-over-warm speedup;
//! 3. **concurrent** — `--clients` connections hammering the cached
//!    pairs in parallel: the advise-QPS number;
//! 4. **mixed** — the same concurrent advise load while the control
//!    connection steps each market once mid-phase, invalidating its
//!    cache and forcing recomputation under load.
//!
//! The phase stats go to stdout and (with `--bench-out`) into a bench
//! record together with the server-side per-market cache counters from
//! `stats`. Flags beyond the shared [`ScenarioSpec`] set:
//!
//! - `--addr <host:port>`: server address (default `127.0.0.1:4780`);
//! - `--markets <n>`: sessions to load (default 2);
//! - `--clients <n>`: concurrent advise connections (default 4);
//! - `--requests <n>`: advises per client per concurrent phase
//!   (default 100 quick / 400 full);
//! - `--quit`: shut the server down when done;
//! - `--metrics-out <path>`: write the client-side latency histograms
//!   (`serve_bench.phase.*_us`) as a telemetry snapshot.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use serde::{Serialize, Value};

use pan_bench::{MetricsSink, ReportSink, ScenarioSpec};

struct Options {
    addr: String,
    markets: usize,
    clients: usize,
    requests: usize,
    quit: bool,
}

/// One blocking client connection speaking the v2 protocol.
struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn connect(addr: &str) -> Conn {
        let budget = Duration::from_millis(15_000);
        let started = Instant::now();
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(stream) => break stream,
                Err(e) => {
                    assert!(started.elapsed() < budget, "cannot connect to {addr}: {e}");
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        };
        stream.set_nodelay(true).expect("nodelay sets");
        Conn {
            writer: stream.try_clone().expect("streams clone"),
            reader: BufReader::new(stream),
        }
    }

    fn recv(&mut self) -> Value {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("reply reads");
        assert!(n > 0, "server closed the connection mid-reply");
        serde_json::from_str(line.trim_end()).expect("replies parse")
    }

    /// Sends one request and reads the single reply line, asserting
    /// success.
    fn roundtrip(&mut self, request: &str) -> Value {
        writeln!(self.writer, "{request}").expect("request writes");
        let reply = self.recv();
        assert!(
            matches!(reply.field("ok"), Ok(Value::Bool(true))),
            "request {request:?} failed: {reply:?}"
        );
        reply
    }

    /// Sends a `step` and drains the streamed `round` lines plus the
    /// closing summary.
    fn step(&mut self, market: &str, rounds: usize) {
        writeln!(
            self.writer,
            r#"{{"v":2,"verb":"step","market":"{market}","rounds":{rounds}}}"#
        )
        .expect("request writes");
        loop {
            let reply = self.recv();
            assert!(
                matches!(reply.field("ok"), Ok(Value::Bool(true))),
                "step on {market} failed: {reply:?}"
            );
            if !matches!(reply.field("verb"), Ok(Value::Str(v)) if v == "round") {
                break;
            }
        }
    }
}

fn str_field(value: &Value, key: &str) -> String {
    match value.field(key) {
        Ok(Value::Str(s)) => s.clone(),
        other => panic!("field {key} is not a string: {other:?}"),
    }
}

fn int_field(value: &Value, key: &str) -> u64 {
    match value.field(key) {
        Ok(Value::I64(n)) => u64::try_from(*n).expect("non-negative"),
        Ok(Value::U64(n)) => *n,
        other => panic!("field {key} is not an integer: {other:?}"),
    }
}

fn bool_field(value: &Value, key: &str) -> bool {
    match value.field(key) {
        Ok(Value::Bool(b)) => *b,
        other => panic!("field {key} is not a boolean: {other:?}"),
    }
}

#[derive(Debug, Serialize)]
struct PhaseStats {
    requests: usize,
    seconds: f64,
    qps: f64,
    mean_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
}

impl PhaseStats {
    /// Aggregates per-request round-trip latencies measured over
    /// `seconds` of wall clock, and mirrors them into the (opt-in)
    /// telemetry registry as `serve_bench.phase.<name>_us`.
    fn from_latencies(name: &str, mut millis: Vec<f64>, seconds: f64) -> PhaseStats {
        assert!(!millis.is_empty(), "a phase must measure something");
        let sink = pan_telemetry::histogram(&format!("serve_bench.phase.{name}_us"));
        if sink.is_live() {
            for &ms in &millis {
                sink.record((ms * 1e3) as u64);
            }
        }
        millis.sort_by(f64::total_cmp);
        // Nearest-rank on the sorted sample: the smallest observation
        // covering at least `p` of the distribution. The previous
        // `round(p * (len-1))` index math could pick an observation
        // *below* the requested rank, under-reporting p50/p99 on the
        // small sequential phases.
        let percentile = |p: f64| {
            let rank = (p * millis.len() as f64).ceil().max(1.0) as usize;
            millis[rank.min(millis.len()) - 1]
        };
        PhaseStats {
            requests: millis.len(),
            seconds,
            qps: millis.len() as f64 / seconds,
            mean_ms: millis.iter().sum::<f64>() / millis.len() as f64,
            p50_ms: percentile(0.50),
            p99_ms: percentile(0.99),
        }
    }
}

#[derive(Debug, Serialize)]
struct CacheStats {
    advises: u64,
    hits: u64,
    misses: u64,
    hit_ratio: f64,
}

#[derive(Debug, Serialize)]
struct BenchRecord {
    addr: String,
    quick: bool,
    markets: usize,
    clients: usize,
    asns_per_market: usize,
    requests_per_client: usize,
    cold: PhaseStats,
    warm: PhaseStats,
    concurrent: PhaseStats,
    mixed: PhaseStats,
    warm_speedup_over_cold: f64,
    cache: CacheStats,
}

/// The advise targets: the first `count` ASNs of each market (synthetic
/// internets number their ASes `1..=n`).
fn targets(markets: &[String], count: usize) -> Vec<(String, u32)> {
    let mut pairs = Vec::new();
    for market in markets {
        for asn in 1..=count as u32 {
            pairs.push((market.clone(), asn));
        }
    }
    pairs
}

fn advise_line(market: &str, asn: u32) -> String {
    format!(r#"{{"v":2,"verb":"advise","market":"{market}","asn":{asn},"top":5}}"#)
}

/// Runs `clients` concurrent connections, each issuing `requests`
/// advises round-robin over the targets, and returns the merged
/// per-request latencies plus the phase's wall-clock seconds.
fn concurrent_advises(
    addr: &str,
    pairs: &[(String, u32)],
    clients: usize,
    requests: usize,
) -> (Vec<f64>, f64) {
    let t0 = Instant::now();
    let latencies = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut conn = Conn::connect(addr);
                    let mut millis = Vec::with_capacity(requests);
                    for i in 0..requests {
                        // Offset per client so connections touch
                        // different markets at the same moment.
                        let (market, asn) = &pairs[(c + i) % pairs.len()];
                        let line = advise_line(market, *asn);
                        let t = Instant::now();
                        conn.roundtrip(&line);
                        millis.push(t.elapsed().as_secs_f64() * 1e3);
                    }
                    millis
                })
            })
            .collect();
        let mut all = Vec::new();
        for handle in handles {
            all.extend(handle.join().expect("client threads join"));
        }
        all
    });
    (latencies, t0.elapsed().as_secs_f64())
}

fn main() {
    let (spec, mut rest) = ScenarioSpec::from_args(std::env::args());
    let sink = ReportSink::from_spec(&spec, &mut rest);
    let metrics = MetricsSink::from_args(&mut rest);
    let mut options = Options {
        addr: "127.0.0.1:4780".to_owned(),
        markets: 2,
        clients: 4,
        requests: if spec.quick { 100 } else { 400 },
        quit: false,
    };
    let mut rest = rest.into_iter();
    while let Some(arg) = rest.next() {
        let mut value = |flag: &str| {
            rest.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--addr" => options.addr = value("--addr"),
            "--markets" => {
                options.markets = value("--markets").parse().expect("--markets is a count");
            }
            "--clients" => {
                options.clients = value("--clients").parse().expect("--clients is a count");
            }
            "--requests" => {
                options.requests = value("--requests").parse().expect("--requests is a count");
            }
            "--quit" => options.quit = true,
            other => panic!(
                "unknown flag {other:?}; serve-bench adds: --addr <host:port>, --markets <n>, \
                 --clients <n>, --requests <n>, --quit, --bench-out <path>, --metrics-out <path>"
            ),
        }
    }
    let asns_per_market = if spec.quick { 6 } else { 12 };

    let addr = options.addr.as_str();
    let mut control = Conn::connect(addr);
    let mut markets = Vec::new();
    for i in 0..options.markets {
        let seed = spec.seed + i as u64;
        let t0 = Instant::now();
        let reply = control.roundtrip(&format!(
            r#"{{"v":2,"verb":"load","market":{{"seed":{seed}}}}}"#
        ));
        let market = str_field(&reply, "market");
        eprintln!(
            "# loaded {market} ({} ases, seed {seed}) in {:.2}s",
            int_field(&reply, "ases"),
            t0.elapsed().as_secs_f64()
        );
        markets.push(market);
    }
    let pairs = targets(&markets, asns_per_market);

    // Phase 1: cold — every (market, AS) pair once, all misses.
    let t0 = Instant::now();
    let mut cold_ms = Vec::with_capacity(pairs.len());
    for (market, asn) in &pairs {
        let line = advise_line(market, *asn);
        let t = Instant::now();
        let reply = control.roundtrip(&line);
        cold_ms.push(t.elapsed().as_secs_f64() * 1e3);
        assert!(!bool_field(&reply, "cached"), "cold advise hit the cache");
    }
    let cold = PhaseStats::from_latencies("cold", cold_ms, t0.elapsed().as_secs_f64());
    eprintln!(
        "# cold: {} advises, p50 {:.3} ms, p99 {:.3} ms",
        cold.requests, cold.p50_ms, cold.p99_ms
    );

    // Phase 2: warm — the same sequential pairs on the same connection,
    // now all cache hits: the like-for-like latency comparison.
    let warm_passes = 5;
    let t0 = Instant::now();
    let mut warm_ms = Vec::with_capacity(pairs.len() * warm_passes);
    for _ in 0..warm_passes {
        for (market, asn) in &pairs {
            let line = advise_line(market, *asn);
            let t = Instant::now();
            let reply = control.roundtrip(&line);
            warm_ms.push(t.elapsed().as_secs_f64() * 1e3);
            assert!(bool_field(&reply, "cached"), "warm advise missed the cache");
        }
    }
    let warm = PhaseStats::from_latencies("warm", warm_ms, t0.elapsed().as_secs_f64());
    eprintln!(
        "# warm: {} advises, p50 {:.3} ms, p99 {:.3} ms ({:.1}x over cold)",
        warm.requests,
        warm.p50_ms,
        warm.p99_ms,
        cold.p50_ms / warm.p50_ms
    );

    // Phase 3: concurrent — clients hammering the cached pairs in
    // parallel (latencies here include head-of-line queueing at the
    // single owner thread; the warm phase above is the clean number).
    let (concurrent_ms, concurrent_secs) =
        concurrent_advises(addr, &pairs, options.clients, options.requests);
    let concurrent = PhaseStats::from_latencies("concurrent", concurrent_ms, concurrent_secs);
    eprintln!(
        "# concurrent: {} advises over {} clients, {:.0} qps, p50 {:.3} ms, p99 {:.3} ms",
        concurrent.requests, options.clients, concurrent.qps, concurrent.p50_ms, concurrent.p99_ms
    );

    // Phase 4: mixed — the same concurrent load while the control
    // connection steps every market once, invalidating its cache
    // mid-phase.
    let (mixed_ms, mixed_secs) = std::thread::scope(|scope| {
        let markets = &markets;
        let stepper = scope.spawn(move || {
            let mut conn = Conn::connect(addr);
            for market in markets {
                conn.step(market, 1);
            }
        });
        let result = concurrent_advises(addr, &pairs, options.clients, options.requests);
        stepper.join().expect("the stepper joins");
        result
    });
    let mixed = PhaseStats::from_latencies("mixed", mixed_ms, mixed_secs);
    eprintln!(
        "# mixed: {} advises + {} steps, {:.0} qps, p50 {:.3} ms, p99 {:.3} ms",
        mixed.requests,
        markets.len(),
        mixed.qps,
        mixed.p50_ms,
        mixed.p99_ms
    );

    // Server-side truth: per-market cache counters over the whole run.
    let mut cache = CacheStats {
        advises: 0,
        hits: 0,
        misses: 0,
        hit_ratio: 0.0,
    };
    for market in &markets {
        let stats = control.roundtrip(&format!(r#"{{"v":2,"verb":"stats","market":"{market}"}}"#));
        cache.advises += int_field(&stats, "advises");
        cache.hits += int_field(&stats, "cache_hits");
        cache.misses += int_field(&stats, "cache_misses");
    }
    cache.hit_ratio = cache.hits as f64 / cache.advises.max(1) as f64;
    if options.quit {
        control.roundtrip(r#"{"v":2,"verb":"quit"}"#);
    }

    let record = BenchRecord {
        addr: options.addr.clone(),
        quick: spec.quick,
        markets: options.markets,
        clients: options.clients,
        asns_per_market,
        requests_per_client: options.requests,
        warm_speedup_over_cold: cold.p50_ms / warm.p50_ms,
        cold,
        warm,
        concurrent,
        mixed,
        cache,
    };
    println!(
        "serving: {} markets, {} clients | cold p50 {:.3} ms | warm p50 {:.3} ms \
         ({:.1}x speedup) | concurrent {:.0} qps | mixed p50 {:.3} ms | cache hit ratio {:.3}",
        record.markets,
        record.clients,
        record.cold.p50_ms,
        record.warm.p50_ms,
        record.warm_speedup_over_cold,
        record.concurrent.qps,
        record.mixed.p50_ms,
        record.cache.hit_ratio
    );
    sink.write_record(&record);
    metrics.write();
}

#[cfg(test)]
mod tests {
    use super::PhaseStats;

    #[test]
    fn percentiles_use_nearest_rank_on_the_sorted_sample() {
        // Ten samples 1..=10 ms: nearest-rank p50 is the 5th smallest
        // (5.0) — the old round(p·(len-1)) index picked the 6th — and
        // p99 is the ⌈9.9⌉ = 10th (the maximum).
        let millis: Vec<f64> = (1..=10).map(f64::from).collect();
        let stats = PhaseStats::from_latencies("test", millis, 1.0);
        assert_eq!(stats.p50_ms, 5.0);
        assert_eq!(stats.p99_ms, 10.0);
        // Order of arrival must not matter.
        let shuffled = vec![9.0, 2.0, 10.0, 4.0, 6.0, 8.0, 1.0, 3.0, 7.0, 5.0];
        let stats = PhaseStats::from_latencies("test", shuffled, 1.0);
        assert_eq!(stats.p50_ms, 5.0);
        assert_eq!(stats.p99_ms, 10.0);
        // A single observation is every percentile.
        let one = PhaseStats::from_latencies("test", vec![3.0], 1.0);
        assert_eq!(one.p50_ms, 3.0);
        assert_eq!(one.p99_ms, 3.0);
    }
}
