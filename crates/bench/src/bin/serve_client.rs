//! Scripted client for the `serve` binary — the driver tests and CI use
//! to exercise the serving layer without hand-typed netcat sessions.
//! Scripts speak the v2 protocol: every request carries `"v": 2`,
//! `load` assigns a market id (the first load of a fresh server is
//! always `"m1"`), and the other verbs name their market.
//!
//! ```console
//! serve-client --addr 127.0.0.1:4780 \
//!   --send '{"v":2,"verb":"load","market":{}}' \
//!   --send '{"v":2,"verb":"step","market":"m1","rounds":4}' \
//!   --send '{"v":2,"verb":"quit"}' \
//!   --expect-trajectory BENCH_evolution.json
//! ```
//!
//! Every request is sent in order; every reply line is echoed to stdout
//! verbatim. Exit codes: `0` success, `1` trajectory mismatch or a
//! reply with `"ok":false` (unless `--allow-errors`), `2` usage or
//! connection failure.
//!
//! - `--addr <host:port>`: server address (default `127.0.0.1:4780`);
//! - `--send <json>`: a request line (repeatable, sent in order);
//! - `--script <file>`: requests from a file, one JSON object per line
//!   (`#` comments and blank lines skipped), sent before any `--send`;
//! - `--connect-timeout-ms <n>`: retry budget while the server starts
//!   (default 15000);
//! - `--allow-errors`: do not fail on `"ok":false` replies (for scripts
//!   probing error paths);
//! - `--expect-trajectory <path>`: after the script, compare the
//!   streamed `round` records against the `report.rounds` of an
//!   `evolve --bench-out` record, wall-clock fields zeroed — the CI
//!   check that a served trajectory is byte-identical to the batch one.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::exit;
use std::time::{Duration, Instant};

use serde::{Deserialize, Value};

use pan_core::dynamics::RoundRecord;

struct Options {
    addr: String,
    requests: Vec<String>,
    connect_timeout: Duration,
    allow_errors: bool,
    expect_trajectory: Option<String>,
}

fn usage(message: &str) -> ! {
    eprintln!(
        "error: {message}\nusage: serve-client [--addr <host:port>] [--script <file>] \
         [--send <json>]... [--connect-timeout-ms <n>] [--allow-errors] \
         [--expect-trajectory <bench.json>]"
    );
    exit(2);
}

fn parse_options() -> Options {
    let mut options = Options {
        addr: "127.0.0.1:4780".to_owned(),
        requests: Vec::new(),
        connect_timeout: Duration::from_millis(15_000),
        allow_errors: false,
        expect_trajectory: None,
    };
    let mut sends = Vec::new();
    let mut script: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| usage(&format!("{flag} requires a value")))
        };
        match arg.as_str() {
            "--addr" => options.addr = value("--addr"),
            "--send" => sends.push(value("--send")),
            "--script" => script = Some(value("--script")),
            "--connect-timeout-ms" => {
                let raw = value("--connect-timeout-ms");
                let ms: u64 = raw
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("bad --connect-timeout-ms {raw:?}")));
                options.connect_timeout = Duration::from_millis(ms);
            }
            "--allow-errors" => options.allow_errors = true,
            "--expect-trajectory" => options.expect_trajectory = Some(value("--expect-trajectory")),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    if let Some(path) = script {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| usage(&format!("cannot read script {path:?}: {e}")));
        for line in text.lines() {
            let line = line.trim();
            if !line.is_empty() && !line.starts_with('#') {
                options.requests.push(line.to_owned());
            }
        }
    }
    options.requests.extend(sends);
    if options.requests.is_empty() {
        usage("nothing to send; give --send or --script");
    }
    options
}

fn connect(addr: &str, budget: Duration) -> TcpStream {
    let started = Instant::now();
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return stream,
            Err(e) => {
                if started.elapsed() >= budget {
                    eprintln!("error: cannot connect to {addr}: {e}");
                    exit(2);
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

fn is_ok(reply: &Value) -> bool {
    matches!(reply.field("ok"), Ok(Value::Bool(true)))
}

fn reply_verb(reply: &Value) -> &str {
    match reply.field("verb") {
        Ok(Value::Str(s)) => s.as_str(),
        _ => "",
    }
}

fn main() {
    let options = parse_options();
    let stream = connect(&options.addr, options.connect_timeout);
    let mut writer = stream.try_clone().expect("streams clone");
    let mut reader = BufReader::new(stream);
    let mut rounds: Vec<RoundRecord> = Vec::new();
    let mut failures = 0usize;

    for request in &options.requests {
        writeln!(writer, "{request}").expect("request writes");
        // Every verb answers with exactly one line, except `step`, which
        // streams `round` lines until its closing `step` summary (or an
        // error line) — so: read lines until something other than a
        // `round` arrives.
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).expect("reply reads") == 0 {
                eprintln!("error: server closed the connection mid-reply");
                exit(2);
            }
            let line = line.trim_end();
            println!("{line}");
            let reply: Value = serde_json::from_str(line).unwrap_or_else(|e| {
                eprintln!("error: unparseable reply {line:?}: {e}");
                exit(2);
            });
            if !is_ok(&reply) {
                failures += 1;
                break;
            }
            if reply_verb(&reply) == "round" {
                let record = reply
                    .field("record")
                    .and_then(RoundRecord::from_value)
                    .unwrap_or_else(|e| {
                        eprintln!("error: malformed round record in {line:?}: {e}");
                        exit(2);
                    });
                rounds.push(record);
                continue;
            }
            break;
        }
    }

    if failures > 0 && !options.allow_errors {
        eprintln!("error: {failures} request(s) failed");
        exit(1);
    }

    if let Some(path) = &options.expect_trajectory {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read trajectory {path:?}: {e}");
            exit(2);
        });
        let record: Value = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("error: malformed trajectory record {path:?}: {e}");
            exit(2);
        });
        let expected: Vec<RoundRecord> = record
            .field("report")
            .and_then(|report| report.field("rounds"))
            .and_then(Vec::<RoundRecord>::from_value)
            .unwrap_or_else(|e| {
                eprintln!("error: {path:?} is not an evolve bench record: {e}");
                exit(2);
            });
        let streamed: Vec<RoundRecord> = rounds.iter().map(|r| r.with_zeroed_timing()).collect();
        let expected: Vec<RoundRecord> = expected.iter().map(|r| r.with_zeroed_timing()).collect();
        if streamed != expected {
            eprintln!(
                "error: served trajectory diverged from {path:?} ({} streamed vs {} expected \
                 rounds)",
                streamed.len(),
                expected.len()
            );
            for (i, (s, e)) in streamed.iter().zip(&expected).enumerate() {
                if s != e {
                    eprintln!(
                        "  first divergent round {i}:\n    served:   {s:?}\n    expected: {e:?}"
                    );
                    break;
                }
            }
            exit(1);
        }
        eprintln!(
            "# served trajectory matches {path:?} ({} rounds, timings zeroed)",
            streamed.len()
        );
    }
}
