//! Memory accounting for the workload binaries: peak RSS plus heap
//! allocation counters, reported into `--bench-out` records so the
//! scale benchmarks (`BENCH_scale.json`, `BENCH_evolution.json`) carry
//! a memory budget next to their wall-clock numbers.
//!
//! Two independent sources feed one [`MemoryReport`]:
//!
//! - **Peak RSS** comes from the kernel (`VmHWM` in
//!   `/proc/self/status`), so it covers everything the process ever
//!   held resident — heap, stacks, mapped files. On non-Linux hosts it
//!   reads as zero rather than failing.
//! - **Allocation counts** come from [`CountingAllocator`], a thin
//!   [`GlobalAlloc`] shim over [`System`] that a binary opts into with
//!   `#[global_allocator]`. The counters make "allocation-free rounds"
//!   checkable: a steady-state round that mallocs shows up as a
//!   non-flat `allocations` delta, which is how the allocation-free
//!   claim of the raw-speed pass is validated rather than asserted.
//!
//! This is the one module in the workspace allowed to use `unsafe`
//! (the crate is `deny(unsafe_code)`, the workspace `forbid`s it):
//! [`GlobalAlloc`] is an unsafe trait by definition. The shim adds no
//! invariants of its own — every method delegates verbatim to
//! [`System`] after bumping two relaxed atomics.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use serde::Serialize;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Counting [`GlobalAlloc`] over [`System`]: every `alloc`/`realloc`
/// bumps a process-wide allocation counter and a cumulative byte
/// counter (both relaxed — the counters are telemetry, not
/// synchronization). Install in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: pan_bench::CountingAllocator = pan_bench::CountingAllocator;
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Heap counters since process start: `(allocations, cumulative bytes
/// requested)`. Both read zero unless the binary installed
/// [`CountingAllocator`] as its `#[global_allocator]`.
#[must_use]
pub fn allocation_counts() -> (u64, u64) {
    (
        ALLOCATIONS.load(Ordering::Relaxed),
        ALLOCATED_BYTES.load(Ordering::Relaxed),
    )
}

/// Peak resident set size of this process in bytes — `VmHWM` from
/// `/proc/self/status` on Linux, `0` where the procfs field is
/// unavailable (the record stays well-formed off-Linux; consumers
/// treat zero as "not measured").
#[must_use]
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kib * 1024;
        }
    }
    0
}

/// The memory section of a bench record: kernel peak RSS plus the heap
/// counters at capture time. Captured once, right after the timed work,
/// so `BENCH_*.json` carries the budget the run actually needed.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MemoryReport {
    /// Peak resident set size in bytes (`VmHWM`; 0 = not measured).
    pub peak_rss_bytes: u64,
    /// Heap allocations since process start (0 unless the binary
    /// installed [`CountingAllocator`]).
    pub allocations: u64,
    /// Cumulative bytes requested from the heap since process start
    /// (same caveat).
    pub allocated_bytes: u64,
}

impl MemoryReport {
    /// Snapshots both sources now.
    #[must_use]
    pub fn capture() -> MemoryReport {
        let (allocations, allocated_bytes) = allocation_counts();
        MemoryReport {
            peak_rss_bytes: peak_rss_bytes(),
            allocations,
            allocated_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_measured_on_linux() {
        let peak = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            // A running test process has certainly held a page.
            assert!(peak > 0, "VmHWM should parse to a positive figure");
        }
    }

    #[test]
    fn capture_is_coherent() {
        let report = MemoryReport::capture();
        // The test harness does not install the counting allocator, so
        // the counters stay at zero — the capture must still be
        // well-formed and serializable.
        assert_eq!(report.allocations, allocation_counts().0);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("peak_rss_bytes"), "{json}");
    }

    #[test]
    fn counting_allocator_counts_what_it_serves() {
        let alloc = CountingAllocator;
        let layout = Layout::from_size_align(64, 8).unwrap();
        let before = allocation_counts();
        // Drive the shim directly (it is not the harness's global
        // allocator): one alloc must bump the counter by exactly one
        // and the byte counter by the layout size.
        unsafe {
            let ptr = alloc.alloc(layout);
            assert!(!ptr.is_null());
            alloc.dealloc(ptr, layout);
        }
        let after = allocation_counts();
        assert_eq!(after.0, before.0 + 1);
        assert_eq!(after.1, before.1 + 64);
    }
}
