//! Shared harness utilities for the figure-regeneration binaries and
//! Criterion benches.
//!
//! Every figure of the paper has a binary in `src/bin/` that prints the
//! same series the paper plots (as aligned text tables plus optional
//! JSON), and `discover` runs the topology-wide agreement-discovery
//! sweep:
//!
//! | binary | paper section | what it prints |
//! |--------|---------------|----------------|
//! | `fig2` | Fig. 2 | Price of Dishonesty (min & mean) vs. choice count |
//! | `fig3` | Fig. 3 | CDF of length-3 paths per AS under GRC/Top-n/MA*/MA |
//! | `fig4` | Fig. 4 | CDF of destinations reachable over length-3 paths |
//! | `fig5` | Fig. 5 | geodistance: paths beating GRC min/median/max + reduction CDF |
//! | `fig6` | Fig. 6 | bandwidth: paths beating GRC max/median/min + increase CDF |
//! | `all_figures` | all | everything above with quick settings |
//! | `discover` | §III–IV at scale | profitable mutuality pairs of a 10k-AS internet, ranked by surplus |
//! | `evolve` | §III–IV iterated | multi-round adoption dynamics: discover → adopt → shock → repeat, to a fixed point |
//!
//! All binaries share one declarative, serde-serializable
//! [`ScenarioSpec`] (flags, `--spec file.json`, `--dump-spec`) instead
//! of per-binary option parsing. Output bytes are identical at every
//! thread count — the sweeps derive per-item RNG streams from `(seed,
//! item index)` via `pan-runtime`, and the thread count is deliberately
//! never printed.

// `deny` rather than the workspace's `forbid`: the `mem` module needs
// one `allow(unsafe_code)` island for its `GlobalAlloc` shim.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod mem;
mod spec;

pub use mem::{allocation_counts, peak_rss_bytes, CountingAllocator, MemoryReport};
pub use spec::{DiscoverySpec, EvolutionSpec, ScenarioSpec};

use pan_core::discovery::CandidatePolicy;
use pan_core::dynamics::MarketState;
use pan_core::{DiscoveryConfig, EvolutionConfig};
use pan_datasets::{SyntheticInternet, Tier};
use pan_econ::{CostFunction, DenseEconomics, FlowMatrix, PricingFunction};
use pan_topology::Asn;
use serde::Serialize;

/// The standard evaluation topology of the spec: the full-size variant
/// mirrors the structural richness the §VI analysis needs; the quick
/// variant keeps smoke runs under a second.
#[must_use]
pub fn evaluation_internet(spec: &ScenarioSpec) -> SyntheticInternet {
    spec.internet()
}

/// Deterministic per-link price jitter in `[0.85, 1.15]` (FNV-1a over the
/// endpoint ASNs), giving the synthetic economy the heterogeneity that
/// makes discovery rankings non-trivial.
#[must_use]
pub fn link_jitter(a: Asn, b: Asn) -> f64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for v in [a.get(), b.get()] {
        hash ^= u64::from(v);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    0.85 + (hash % 1000) as f64 * 0.0003
}

/// Tier-aware synthetic economy shared by `discover` and `evolve`: stubs
/// pay the steepest transit rates and earn the most end-host revenue;
/// the core is cheap to run.
#[must_use]
pub fn synthetic_economics(net: &SyntheticInternet) -> DenseEconomics {
    DenseEconomics::build(
        &net.graph,
        |provider, customer| {
            let base = match net.tier(customer) {
                Tier::Stub => 3.0,
                Tier::Transit => 2.2,
                Tier::Tier1 => 2.0,
            };
            PricingFunction::per_usage(base * link_jitter(provider, customer))
                .expect("positive rates are valid")
        },
        |asn| {
            let rate = match net.tier(asn) {
                Tier::Stub => 3.0,
                Tier::Transit => 1.2,
                Tier::Tier1 => 0.8,
            };
            PricingFunction::per_usage(rate).expect("positive rates are valid")
        },
        |asn| {
            let rate = match net.tier(asn) {
                Tier::Stub => 0.08,
                Tier::Transit => 0.04,
                Tier::Tier1 => 0.02,
            };
            CostFunction::linear(rate).expect("positive rates are valid")
        },
    )
}

/// The spec at market scale: `--ases 0` defaults to the 10,000-AS
/// internet the discovery/evolution/serving workloads target (the figure
/// binaries keep their smaller per-figure defaults).
#[must_use]
pub fn at_market_scale(mut spec: ScenarioSpec) -> ScenarioSpec {
    if spec.ases == 0 {
        spec.ases = 10_000;
    }
    spec
}

/// The discovery configuration of a spec: candidate policy from the
/// k-hop knobs, quick-mode grid clamp, `--top` for report truncation.
/// The single translation `discover`, `evolve`, and `serve` share.
#[must_use]
pub fn discovery_config(spec: &ScenarioSpec) -> DiscoveryConfig {
    let policy = if spec.discovery.khop <= 1 {
        CandidatePolicy::PeeringAdjacent
    } else {
        CandidatePolicy::PeeringKHop {
            k: spec.discovery.khop,
            per_source_cap: spec.discovery.khop_cap,
        }
    };
    DiscoveryConfig {
        policy,
        reroute_share: spec.discovery.reroute_share,
        attract_share: spec.discovery.attract_share,
        grid: if spec.quick {
            spec.discovery.grid.min(3)
        } else {
            spec.discovery.grid
        },
        noise: spec.discovery.noise,
        top: spec.discovery.top,
    }
}

/// The evolution configuration of a spec (quick mode caps the rounds;
/// the per-round discovery always ranks the full candidate set, so its
/// `top` is zeroed).
#[must_use]
pub fn evolution_config(spec: &ScenarioSpec) -> EvolutionConfig {
    EvolutionConfig {
        discovery: DiscoveryConfig {
            top: 0,
            ..discovery_config(spec)
        },
        rounds: if spec.quick {
            spec.evolution.rounds.min(4)
        } else {
            spec.evolution.rounds
        },
        adopt_top: spec.evolution.adopt_top,
        min_surplus: spec.evolution.min_surplus,
        shock: spec.evolution.shock,
    }
}

/// The standard market tables of a spec: synthetic internet, tier-aware
/// economics, degree-gravity flows.
#[must_use]
pub fn market_tables(spec: &ScenarioSpec) -> (SyntheticInternet, DenseEconomics, FlowMatrix) {
    let net = spec.internet();
    let econ = synthetic_economics(&net);
    let flows = FlowMatrix::degree_gravity(&net.graph, 1.0);
    (net, econ, flows)
}

/// The standard resident market of a spec ([`market_tables`] assembled
/// into a [`MarketState`]) — what `evolve` and `serve` operate on.
#[must_use]
pub fn market_state(spec: &ScenarioSpec) -> (SyntheticInternet, MarketState) {
    let (net, econ, flows) = market_tables(spec);
    let state = MarketState::new(net.graph.clone(), econ, flows).expect("tables match the graph");
    (net, state)
}

/// Unified `--json` / `--bench-out` report emission — the one
/// implementation `discover`, `evolve`, and `serve` share: the
/// deterministic report JSON goes to stdout (diffable across thread
/// counts), the timing-bearing bench record goes to the `--bench-out`
/// file with a stderr note.
#[derive(Debug, Clone)]
pub struct ReportSink {
    json: bool,
    bench_out: Option<String>,
}

impl ReportSink {
    /// Couples the spec's `--json` flag with a `--bench-out <path>` flag
    /// extracted (and removed) from the binary-specific leftover
    /// arguments.
    ///
    /// # Panics
    ///
    /// Panics when `--bench-out` is given without a value.
    #[must_use]
    pub fn from_spec(spec: &ScenarioSpec, rest: &mut Vec<String>) -> ReportSink {
        let mut bench_out = None;
        if let Some(at) = rest.iter().position(|arg| arg == "--bench-out") {
            rest.remove(at);
            if at >= rest.len() {
                panic!("--bench-out requires a value");
            }
            bench_out = Some(rest.remove(at));
        }
        ReportSink {
            json: spec.json,
            bench_out,
        }
    }

    /// `true` when `--bench-out` was given.
    #[must_use]
    pub fn wants_record(&self) -> bool {
        self.bench_out.is_some()
    }

    /// Prints `report` as one JSON line on stdout when `--json` was
    /// given. The report must be deterministic at any thread count —
    /// strip wall-clock fields first (e.g.
    /// [`pan_core::EvolutionReport::with_zeroed_timings`]).
    pub fn emit_json<T: Serialize>(&self, report: &T) {
        if self.json {
            println!(
                "{}",
                serde_json::to_string(report).expect("reports serialize")
            );
        }
    }

    /// Writes the bench record when `--bench-out` was given, with a
    /// stderr note (stdout stays deterministic).
    ///
    /// # Panics
    ///
    /// Panics when the file cannot be written.
    pub fn write_record<T: Serialize>(&self, record: &T) {
        if let Some(path) = &self.bench_out {
            std::fs::write(
                path,
                serde_json::to_string(record).expect("records serialize"),
            )
            .unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
            eprintln!("# wrote bench record to {path}");
        }
    }
}

/// Sample size for per-AS analyses (paper: 500), honoring `--sample`.
#[must_use]
pub fn sample_size(spec: &ScenarioSpec) -> usize {
    if spec.sample > 0 {
        spec.sample
    } else if spec.quick {
        100
    } else {
        500
    }
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:5.1}%", fraction * 100.0)
}

/// Prints a standard figure header.
pub fn print_header(figure: &str, description: &str, spec: &ScenarioSpec) {
    println!("# {figure} — {description}");
    println!(
        "# mode: {}, seed: {}",
        if spec.quick { "quick" } else { "full" },
        spec.seed
    );
}

/// Quantile grid used when printing CDF summaries.
pub const CDF_QUANTILES: [f64; 9] = [0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_internet_is_small() {
        let spec = ScenarioSpec {
            quick: true,
            ..ScenarioSpec::default()
        };
        let net = evaluation_internet(&spec);
        assert_eq!(net.graph.node_count(), 600);
        assert_eq!(sample_size(&spec), 100);
        assert_eq!(sample_size(&ScenarioSpec { sample: 42, ..spec }), 42);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), " 50.0%");
    }

    #[test]
    fn shared_configs_translate_the_spec() {
        let mut spec = ScenarioSpec {
            quick: true,
            ..ScenarioSpec::default()
        };
        spec.discovery.grid = 5;
        spec.discovery.top = 17;
        spec.evolution.rounds = 12;
        let discovery = discovery_config(&spec);
        assert_eq!(discovery.grid, 3, "quick clamps the grid");
        assert_eq!(discovery.top, 17);
        assert_eq!(discovery.policy, CandidatePolicy::PeeringAdjacent);
        let evolution = evolution_config(&spec);
        assert_eq!(evolution.rounds, 4, "quick caps the rounds");
        assert_eq!(evolution.discovery.top, 0, "evolution ranks everything");

        spec.discovery.khop = 2;
        spec.discovery.khop_cap = 9;
        assert_eq!(
            discovery_config(&spec).policy,
            CandidatePolicy::PeeringKHop {
                k: 2,
                per_source_cap: 9
            }
        );
        assert_eq!(at_market_scale(spec).ases, 10_000);
        assert_eq!(at_market_scale(ScenarioSpec { ases: 77, ..spec }).ases, 77);
    }

    #[test]
    fn report_sink_extracts_bench_out() {
        let spec = ScenarioSpec::default();
        let mut rest = vec![
            "--engine".to_owned(),
            "dense".to_owned(),
            "--bench-out".to_owned(),
            "out.json".to_owned(),
        ];
        let sink = ReportSink::from_spec(&spec, &mut rest);
        assert!(sink.wants_record());
        assert_eq!(rest, vec!["--engine".to_owned(), "dense".to_owned()]);
        let mut rest = Vec::new();
        let sink = ReportSink::from_spec(&spec, &mut rest);
        assert!(!sink.wants_record());
    }

    #[test]
    fn market_state_matches_the_tables() {
        let spec = ScenarioSpec {
            quick: true,
            ases: 120,
            ..ScenarioSpec::default()
        };
        let (net, econ, flows) = market_tables(&spec);
        let (net2, state) = market_state(&spec);
        assert_eq!(net.graph.node_count(), 120);
        assert_eq!(net2.graph.node_count(), 120);
        assert_eq!(state.econ(), &econ);
        assert_eq!(state.flows(), &flows);
    }
}
