//! Shared harness utilities for the figure-regeneration binaries and
//! Criterion benches.
//!
//! Every figure of the paper has a binary in `src/bin/` that prints the
//! same series the paper plots (as aligned text tables plus optional
//! JSON):
//!
//! | binary | paper figure | what it prints |
//! |--------|--------------|----------------|
//! | `fig2` | Fig. 2 | Price of Dishonesty (min & mean) vs. choice count |
//! | `fig3` | Fig. 3 | CDF of length-3 paths per AS under GRC/Top-n/MA*/MA |
//! | `fig4` | Fig. 4 | CDF of destinations reachable over length-3 paths |
//! | `fig5` | Fig. 5 | geodistance: paths beating GRC min/median/max + reduction CDF |
//! | `fig6` | Fig. 6 | bandwidth: paths beating GRC max/median/min + increase CDF |
//! | `all_figures` | all | everything above with quick settings |
//!
//! All binaries accept `--quick` (smaller topology/trials for smoke
//! runs), `--seed <u64>`, `--json` (machine-readable dump after the
//! table), and `--threads <N>` (worker threads for the sweeps; default:
//! available parallelism). Output bytes are identical at every thread
//! count — the sweeps derive per-item RNG streams from `(seed, item
//! index)` via `pan-runtime`, and the thread count is deliberately never
//! printed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pan_datasets::{InternetConfig, SyntheticInternet};
use pan_runtime::{ScenarioSweep, ThreadPool};

/// Command-line options shared by all figure binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FigureOptions {
    /// Use reduced problem sizes for a fast smoke run.
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Emit a JSON dump after the human-readable table.
    pub json: bool,
    /// Worker threads for the scenario sweeps.
    pub threads: usize,
}

impl Default for FigureOptions {
    fn default() -> Self {
        FigureOptions {
            quick: false,
            seed: 42,
            json: false,
            threads: ThreadPool::with_available_parallelism().threads(),
        }
    }
}

impl FigureOptions {
    /// Parses options from `std::env::args`-style input; unknown flags
    /// abort with a usage message.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on unknown flags or malformed
    /// numeric values.
    #[must_use]
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut options = FigureOptions::default();
        let mut args = args.skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => options.quick = true,
                "--json" => options.json = true,
                "--seed" => {
                    let value = args
                        .next()
                        .unwrap_or_else(|| panic!("--seed requires a value"));
                    options.seed = value
                        .parse()
                        .unwrap_or_else(|_| panic!("--seed expects a u64, got {value:?}"));
                }
                "--threads" => {
                    let value = args
                        .next()
                        .unwrap_or_else(|| panic!("--threads requires a value"));
                    let threads: usize = value
                        .parse()
                        .unwrap_or_else(|_| panic!("--threads expects a count, got {value:?}"));
                    options.threads = threads.max(1);
                }
                other => panic!(
                    "unknown flag {other:?}; known: --quick, --seed <u64>, --json, \
                     --threads <N>"
                ),
            }
        }
        options
    }

    /// The thread pool configured by `--threads`.
    #[must_use]
    pub fn pool(&self) -> ThreadPool {
        ThreadPool::new(self.threads)
    }

    /// A [`ScenarioSweep`] over the configured pool and `--seed`.
    #[must_use]
    pub fn sweep(&self) -> ScenarioSweep {
        ScenarioSweep::new(self.pool(), self.seed)
    }
}

/// The standard evaluation topology: the full-size variant mirrors the
/// structural richness the §VI analysis needs; the quick variant keeps
/// smoke runs under a second.
#[must_use]
pub fn evaluation_internet(options: &FigureOptions) -> SyntheticInternet {
    let config = if options.quick {
        InternetConfig {
            num_ases: 600,
            tier1_count: 8,
            ..InternetConfig::default()
        }
    } else {
        InternetConfig::default() // 4,000 ASes
    };
    SyntheticInternet::generate(&config, options.seed).expect("default configs are valid")
}

/// Sample size for per-AS analyses (paper: 500).
#[must_use]
pub fn sample_size(options: &FigureOptions) -> usize {
    if options.quick {
        100
    } else {
        500
    }
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:5.1}%", fraction * 100.0)
}

/// Prints a standard figure header.
pub fn print_header(figure: &str, description: &str, options: &FigureOptions) {
    println!("# {figure} — {description}");
    println!(
        "# mode: {}, seed: {}",
        if options.quick { "quick" } else { "full" },
        options.seed
    );
}

/// Quantile grid used when printing CDF summaries.
pub const CDF_QUANTILES: [f64; 9] = [0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0];

#[cfg(test)]
mod tests {
    use super::*;

    fn args(items: &[&str]) -> std::vec::IntoIter<String> {
        let mut all = vec!["bin".to_owned()];
        all.extend(items.iter().map(|s| (*s).to_owned()));
        all.into_iter()
    }

    #[test]
    fn parse_defaults() {
        let o = FigureOptions::parse(args(&[]));
        assert_eq!(o, FigureOptions::default());
    }

    #[test]
    fn parse_flags() {
        let o = FigureOptions::parse(args(&["--quick", "--seed", "7", "--json"]));
        assert!(o.quick);
        assert!(o.json);
        assert_eq!(o.seed, 7);
    }

    #[test]
    fn parse_threads() {
        let o = FigureOptions::parse(args(&["--threads", "4"]));
        assert_eq!(o.threads, 4);
        assert_eq!(o.pool().threads(), 4);
        assert_eq!(o.sweep().threads(), 4);
        // Zero is clamped to one worker.
        let o = FigureOptions::parse(args(&["--threads", "0"]));
        assert_eq!(o.threads, 1);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn parse_rejects_unknown() {
        let _ = FigureOptions::parse(args(&["--wat"]));
    }

    #[test]
    fn quick_internet_is_small() {
        let o = FigureOptions {
            quick: true,
            ..FigureOptions::default()
        };
        let net = evaluation_internet(&o);
        assert_eq!(net.graph.node_count(), 600);
        assert_eq!(sample_size(&o), 100);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), " 50.0%");
    }
}
