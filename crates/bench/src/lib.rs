//! Shared harness utilities for the figure-regeneration binaries and
//! Criterion benches.
//!
//! Every figure of the paper has a binary in `src/bin/` that prints the
//! same series the paper plots (as aligned text tables plus optional
//! JSON), and `discover` runs the topology-wide agreement-discovery
//! sweep:
//!
//! | binary | paper section | what it prints |
//! |--------|---------------|----------------|
//! | `fig2` | Fig. 2 | Price of Dishonesty (min & mean) vs. choice count |
//! | `fig3` | Fig. 3 | CDF of length-3 paths per AS under GRC/Top-n/MA*/MA |
//! | `fig4` | Fig. 4 | CDF of destinations reachable over length-3 paths |
//! | `fig5` | Fig. 5 | geodistance: paths beating GRC min/median/max + reduction CDF |
//! | `fig6` | Fig. 6 | bandwidth: paths beating GRC max/median/min + increase CDF |
//! | `all_figures` | all | everything above with quick settings |
//! | `discover` | §III–IV at scale | profitable mutuality pairs of a 10k-AS internet, ranked by surplus |
//! | `evolve` | §III–IV iterated | multi-round adoption dynamics: discover → adopt → shock → repeat, to a fixed point |
//!
//! All binaries share one declarative, serde-serializable
//! [`ScenarioSpec`] (flags, `--spec file.json`, `--dump-spec`) instead
//! of per-binary option parsing. Output bytes are identical at every
//! thread count — the sweeps derive per-item RNG streams from `(seed,
//! item index)` via `pan-runtime`, and the thread count is deliberately
//! never printed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod spec;

pub use spec::{DiscoverySpec, EvolutionSpec, ScenarioSpec};

use pan_datasets::{SyntheticInternet, Tier};
use pan_econ::{CostFunction, DenseEconomics, PricingFunction};
use pan_topology::Asn;

/// The standard evaluation topology of the spec: the full-size variant
/// mirrors the structural richness the §VI analysis needs; the quick
/// variant keeps smoke runs under a second.
#[must_use]
pub fn evaluation_internet(spec: &ScenarioSpec) -> SyntheticInternet {
    spec.internet()
}

/// Deterministic per-link price jitter in `[0.85, 1.15]` (FNV-1a over the
/// endpoint ASNs), giving the synthetic economy the heterogeneity that
/// makes discovery rankings non-trivial.
#[must_use]
pub fn link_jitter(a: Asn, b: Asn) -> f64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for v in [a.get(), b.get()] {
        hash ^= u64::from(v);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    0.85 + (hash % 1000) as f64 * 0.0003
}

/// Tier-aware synthetic economy shared by `discover` and `evolve`: stubs
/// pay the steepest transit rates and earn the most end-host revenue;
/// the core is cheap to run.
#[must_use]
pub fn synthetic_economics(net: &SyntheticInternet) -> DenseEconomics {
    DenseEconomics::build(
        &net.graph,
        |provider, customer| {
            let base = match net.tier(customer) {
                Tier::Stub => 3.0,
                Tier::Transit => 2.2,
                Tier::Tier1 => 2.0,
            };
            PricingFunction::per_usage(base * link_jitter(provider, customer))
                .expect("positive rates are valid")
        },
        |asn| {
            let rate = match net.tier(asn) {
                Tier::Stub => 3.0,
                Tier::Transit => 1.2,
                Tier::Tier1 => 0.8,
            };
            PricingFunction::per_usage(rate).expect("positive rates are valid")
        },
        |asn| {
            let rate = match net.tier(asn) {
                Tier::Stub => 0.08,
                Tier::Transit => 0.04,
                Tier::Tier1 => 0.02,
            };
            CostFunction::linear(rate).expect("positive rates are valid")
        },
    )
}

/// Sample size for per-AS analyses (paper: 500), honoring `--sample`.
#[must_use]
pub fn sample_size(spec: &ScenarioSpec) -> usize {
    if spec.sample > 0 {
        spec.sample
    } else if spec.quick {
        100
    } else {
        500
    }
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:5.1}%", fraction * 100.0)
}

/// Prints a standard figure header.
pub fn print_header(figure: &str, description: &str, spec: &ScenarioSpec) {
    println!("# {figure} — {description}");
    println!(
        "# mode: {}, seed: {}",
        if spec.quick { "quick" } else { "full" },
        spec.seed
    );
}

/// Quantile grid used when printing CDF summaries.
pub const CDF_QUANTILES: [f64; 9] = [0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_internet_is_small() {
        let spec = ScenarioSpec {
            quick: true,
            ..ScenarioSpec::default()
        };
        let net = evaluation_internet(&spec);
        assert_eq!(net.graph.node_count(), 600);
        assert_eq!(sample_size(&spec), 100);
        assert_eq!(sample_size(&ScenarioSpec { sample: 42, ..spec }), 42);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), " 50.0%");
    }
}
