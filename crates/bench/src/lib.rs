//! Shared harness utilities for the figure-regeneration binaries and
//! Criterion benches.
//!
//! Every figure of the paper has a binary in `src/bin/` that prints the
//! same series the paper plots (as aligned text tables plus optional
//! JSON), and `discover` runs the topology-wide agreement-discovery
//! sweep:
//!
//! | binary | paper section | what it prints |
//! |--------|---------------|----------------|
//! | `fig2` | Fig. 2 | Price of Dishonesty (min & mean) vs. choice count |
//! | `fig3` | Fig. 3 | CDF of length-3 paths per AS under GRC/Top-n/MA*/MA |
//! | `fig4` | Fig. 4 | CDF of destinations reachable over length-3 paths |
//! | `fig5` | Fig. 5 | geodistance: paths beating GRC min/median/max + reduction CDF |
//! | `fig6` | Fig. 6 | bandwidth: paths beating GRC max/median/min + increase CDF |
//! | `all_figures` | all | everything above with quick settings |
//! | `discover` | §III–IV at scale | profitable mutuality pairs of a 10k-AS internet, ranked by surplus |
//! | `evolve` | §III–IV iterated | multi-round adoption dynamics: discover → adopt → shock → repeat, to a fixed point |
//! | `longitudinal` | §III–IV over time | per-snapshot evolution over a directory of yearly CAIDA snapshots, with cross-year adopted-set diffs |
//!
//! All binaries share one declarative, serde-serializable
//! [`ScenarioSpec`] (flags, `--spec file.json`, `--dump-spec`) instead
//! of per-binary option parsing. Output bytes are identical at every
//! thread count — the sweeps derive per-item RNG streams from `(seed,
//! item index)` via `pan-runtime`, and the thread count is deliberately
//! never printed.

// `deny` rather than the workspace's `forbid`: the `mem` module needs
// one `allow(unsafe_code)` island for its `GlobalAlloc` shim.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod mem;
mod spec;

pub use mem::{allocation_counts, peak_rss_bytes, CountingAllocator, MemoryReport};
pub use spec::{DiscoverySpec, EvolutionSpec, ScenarioSpec, SourceSpec};

use pan_core::discovery::CandidatePolicy;
use pan_core::dynamics::MarketState;
use pan_core::{DiscoveryConfig, EvolutionConfig};
use pan_datasets::{SyntheticInternet, Tier};
use pan_econ::{DenseEconomics, FlowMatrix, MarketTier};
use pan_serve::LoadedMarket;
use pan_topology::Asn;
use serde::{Serialize, Value};

pub use pan_econ::market::link_jitter;

/// The standard evaluation topology of the spec: the full-size variant
/// mirrors the structural richness the §VI analysis needs; the quick
/// variant keeps smoke runs under a second.
#[must_use]
pub fn evaluation_internet(spec: &ScenarioSpec) -> SyntheticInternet {
    spec.internet()
}

/// Maps a dataset tier onto the economy's [`MarketTier`] vocabulary —
/// the glue between the source layer (which knows how an AS was
/// generated or loaded) and the shared table synthesis in
/// [`pan_econ::market`].
#[must_use]
pub fn market_tier(net: &SyntheticInternet, asn: Asn) -> MarketTier {
    match net.tier(asn) {
        Tier::Tier1 => MarketTier::Core,
        Tier::Transit => MarketTier::Transit,
        Tier::Stub => MarketTier::Stub,
    }
}

/// Tier-aware synthetic economy shared by `discover` and `evolve`: the
/// shared [`pan_econ::market::standard_economics`] rates keyed by the
/// net's tier table.
#[must_use]
pub fn synthetic_economics(net: &SyntheticInternet) -> DenseEconomics {
    pan_econ::market::standard_economics(&net.graph, |asn| market_tier(net, asn))
}

/// The spec at market scale: `--ases 0` defaults to the 10,000-AS
/// internet the discovery/evolution/serving workloads target (the figure
/// binaries keep their smaller per-figure defaults).
#[must_use]
pub fn at_market_scale(mut spec: ScenarioSpec) -> ScenarioSpec {
    if spec.ases == 0 {
        spec.ases = 10_000;
    }
    spec
}

/// The discovery configuration of a spec: candidate policy from the
/// k-hop knobs, quick-mode grid clamp, `--top` for report truncation.
/// The single translation `discover`, `evolve`, and `serve` share.
#[must_use]
pub fn discovery_config(spec: &ScenarioSpec) -> DiscoveryConfig {
    let policy = if spec.discovery.khop <= 1 {
        CandidatePolicy::PeeringAdjacent
    } else {
        CandidatePolicy::PeeringKHop {
            k: spec.discovery.khop,
            per_source_cap: spec.discovery.khop_cap,
        }
    };
    DiscoveryConfig {
        policy,
        reroute_share: spec.discovery.reroute_share,
        attract_share: spec.discovery.attract_share,
        grid: if spec.quick {
            spec.discovery.grid.min(3)
        } else {
            spec.discovery.grid
        },
        noise: spec.discovery.noise,
        top: spec.discovery.top,
    }
}

/// The evolution configuration of a spec (quick mode caps the rounds;
/// the per-round discovery always ranks the full candidate set, so its
/// `top` is zeroed).
#[must_use]
pub fn evolution_config(spec: &ScenarioSpec) -> EvolutionConfig {
    EvolutionConfig {
        discovery: DiscoveryConfig {
            top: 0,
            ..discovery_config(spec)
        },
        rounds: if spec.quick {
            spec.evolution.rounds.min(4)
        } else {
            spec.evolution.rounds
        },
        adopt_top: spec.evolution.adopt_top,
        min_surplus: spec.evolution.min_surplus,
        shock: spec.evolution.shock,
    }
}

/// The standard market tables of a spec: the source-built internet
/// (synthetic or CAIDA) with the shared tier-aware economics and
/// degree-gravity flows from [`pan_econ::market::standard_tables`].
#[must_use]
pub fn market_tables(spec: &ScenarioSpec) -> (SyntheticInternet, DenseEconomics, FlowMatrix) {
    let net = spec.internet();
    let (econ, flows) =
        pan_econ::market::standard_tables(&net.graph, |asn| market_tier(&net, asn), 1.0);
    (net, econ, flows)
}

/// Fallible [`market_state`]: the one construction path `discover`,
/// `evolve`, `serve`, and `longitudinal` share, with source errors (a
/// missing snapshot directory, a malformed relationships file) reported
/// instead of aborting the process — what a server loading markets on
/// behalf of clients needs.
///
/// # Errors
///
/// The rendered [`pan_datasets::DatasetError`] when the source cannot be
/// built.
pub fn try_market_state(spec: &ScenarioSpec) -> Result<(SyntheticInternet, MarketState), String> {
    let net = spec
        .market_source()
        .build(spec.seed)
        .map_err(|e| e.to_string())?;
    let state = MarketState::standard(net.graph.clone(), |asn| market_tier(&net, asn))
        .map_err(|e| e.to_string())?;
    Ok((net, state))
}

/// The standard resident market of a spec ([`market_tables`] assembled
/// into a [`MarketState`]) — what `evolve` and `serve` operate on.
///
/// # Panics
///
/// Panics when the market source cannot be built — the behavior every
/// binary wants for a bad command line; servers use
/// [`try_market_state`].
#[must_use]
pub fn market_state(spec: &ScenarioSpec) -> (SyntheticInternet, MarketState) {
    try_market_state(spec).unwrap_or_else(|e| panic!("cannot build market: {e}"))
}

fn apply_source_override(source: &mut SourceSpec, value: &Value) -> Result<(), String> {
    match value {
        Value::Str(name) if name == "synthetic" => {
            *source = SourceSpec::default();
            Ok(())
        }
        Value::Map(fields) => {
            let mut next = SourceSpec::default();
            for (key, field) in fields {
                let Value::Str(text) = field else {
                    return Err(format!("source field {key:?} must be a string"));
                };
                match key.as_str() {
                    "caida" => next.caida.clone_from(text),
                    "snapshot" => next.snapshot.clone_from(text),
                    other => {
                        return Err(format!(
                            "unknown source field {other:?}; known: caida, snapshot"
                        ));
                    }
                }
            }
            if next.caida.is_empty() {
                return Err("source object requires a \"caida\" directory".to_owned());
            }
            *source = next;
            Ok(())
        }
        other => Err(format!(
            "\"source\" must be \"synthetic\" or {{\"caida\": <dir>, \"snapshot\": <name>}}, \
             got {}",
            other.kind()
        )),
    }
}

/// Applies a `load` request's `market` object onto the base spec. The
/// vocabulary mirrors the command-line flags, so a spec file, a flag,
/// and a load request all say `"ases"`, `"seed"`, `"shock"`, … for the
/// same knob; `"source"` selects the market source (`"synthetic"` or
/// `{"caida": <dir>, "snapshot": <name>}`), mirroring
/// `--caida`/`--snapshot`.
///
/// # Errors
///
/// A rendered protocol error for non-object `market` values, unknown
/// fields, and ill-typed field values.
pub fn apply_market_overrides(base: &ScenarioSpec, market: &Value) -> Result<ScenarioSpec, String> {
    let Value::Map(entries) = market else {
        return Err(format!(
            "\"market\" must be an object, got {}",
            market.kind()
        ));
    };
    let mut spec = base.clone();
    for (key, value) in entries {
        let bad = |kind: &str| format!("market field {key:?} must be {kind}");
        let as_u64 = || match value {
            Value::I64(n) if *n >= 0 => Ok(*n as u64),
            Value::U64(n) => Ok(*n),
            _ => Err(bad("a non-negative integer")),
        };
        let as_usize = || as_u64().map(|n| n as usize);
        let as_f64 = || match value {
            Value::F64(x) => Ok(*x),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            _ => Err(bad("a number")),
        };
        let as_bool = || match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(bad("a boolean")),
        };
        match key.as_str() {
            "quick" => spec.quick = as_bool()?,
            "seed" => spec.seed = as_u64()?,
            "ases" => spec.ases = as_usize()?,
            "reroute" => spec.discovery.reroute_share = as_f64()?,
            "attract" => spec.discovery.attract_share = as_f64()?,
            "grid" => spec.discovery.grid = as_usize()?,
            "khop" => {
                spec.discovery.khop =
                    u8::try_from(as_u64()?).map_err(|_| bad("a small hop count"))?;
            }
            "khop_cap" => spec.discovery.khop_cap = as_usize()?,
            "noise" => spec.discovery.noise = as_f64()?,
            "adopt_top" => spec.evolution.adopt_top = as_usize()?,
            "min_surplus" => spec.evolution.min_surplus = as_f64()?,
            "shock" => spec.evolution.shock = as_f64()?,
            "source" => apply_source_override(&mut spec.source, value)?,
            other => {
                return Err(format!(
                    "unknown market field {other:?}; known: quick, seed, ases, reroute, \
                     attract, grid, khop, khop_cap, noise, adopt_top, min_surplus, shock, source"
                ));
            }
        }
    }
    Ok(spec)
}

/// The shared `load`-verb implementation: overrides applied onto the
/// base spec, scaled to market size, built through the unified source
/// layer, labelled by its source. `serve` wraps this in a closure that
/// adds a stderr timing line; tests call it directly to predict what a
/// server built.
///
/// # Errors
///
/// A rendered protocol error for malformed `market` objects or
/// unbuildable sources.
pub fn load_market_request(base: &ScenarioSpec, market: &Value) -> Result<LoadedMarket, String> {
    let spec = at_market_scale(apply_market_overrides(base, market)?);
    let (_, state) = try_market_state(&spec)?;
    Ok(LoadedMarket {
        config: evolution_config(&spec),
        seed: spec.seed,
        label: format!("{}:seed-{}", spec.market_source().label(), spec.seed),
        state,
    })
}

/// Unified `--json` / `--bench-out` report emission — the one
/// implementation `discover`, `evolve`, and `serve` share: the
/// deterministic report JSON goes to stdout (diffable across thread
/// counts), the timing-bearing bench record goes to the `--bench-out`
/// file with a stderr note.
#[derive(Debug, Clone)]
pub struct ReportSink {
    json: bool,
    bench_out: Option<String>,
}

impl ReportSink {
    /// Couples the spec's `--json` flag with a `--bench-out <path>` flag
    /// extracted (and removed) from the binary-specific leftover
    /// arguments.
    ///
    /// # Panics
    ///
    /// Panics when `--bench-out` is given without a value.
    #[must_use]
    pub fn from_spec(spec: &ScenarioSpec, rest: &mut Vec<String>) -> ReportSink {
        let mut bench_out = None;
        if let Some(at) = rest.iter().position(|arg| arg == "--bench-out") {
            rest.remove(at);
            if at >= rest.len() {
                panic!("--bench-out requires a value");
            }
            bench_out = Some(rest.remove(at));
        }
        ReportSink {
            json: spec.json,
            bench_out,
        }
    }

    /// `true` when `--bench-out` was given.
    #[must_use]
    pub fn wants_record(&self) -> bool {
        self.bench_out.is_some()
    }

    /// Prints `report` as one JSON line on stdout when `--json` was
    /// given. The report must be deterministic at any thread count —
    /// strip wall-clock fields first (e.g.
    /// [`pan_core::EvolutionReport::with_zeroed_timings`]).
    pub fn emit_json<T: Serialize>(&self, report: &T) {
        if self.json {
            println!(
                "{}",
                serde_json::to_string(report).expect("reports serialize")
            );
        }
    }

    /// Writes the bench record when `--bench-out` was given, with a
    /// stderr note (stdout stays deterministic).
    ///
    /// # Panics
    ///
    /// Panics when the file cannot be written.
    pub fn write_record<T: Serialize>(&self, record: &T) {
        if let Some(path) = &self.bench_out {
            std::fs::write(
                path,
                serde_json::to_string(record).expect("records serialize"),
            )
            .unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
            eprintln!("# wrote bench record to {path}");
        }
    }
}

/// Unified `--metrics-out <path>` handling for the bench binaries: when
/// the flag is present the process-wide [`pan_telemetry`] registry is
/// enabled up front (so every instrumented layer starts recording) and
/// [`write`](Self::write) dumps its final snapshot as JSON with a
/// stderr note. Without the flag every telemetry call in the engines
/// stays a disabled no-op and stdout bytes are untouched either way —
/// metrics never reach a deterministic output channel.
#[derive(Debug, Clone)]
pub struct MetricsSink {
    metrics_out: Option<String>,
}

impl MetricsSink {
    /// Extracts (and removes) `--metrics-out <path>` from the
    /// binary-specific leftover arguments, enabling the global
    /// telemetry registry when present.
    ///
    /// # Panics
    ///
    /// Panics when `--metrics-out` is given without a value.
    #[must_use]
    pub fn from_args(rest: &mut Vec<String>) -> MetricsSink {
        let mut metrics_out = None;
        if let Some(at) = rest.iter().position(|arg| arg == "--metrics-out") {
            rest.remove(at);
            if at >= rest.len() {
                panic!("--metrics-out requires a value");
            }
            metrics_out = Some(rest.remove(at));
        }
        if metrics_out.is_some() {
            pan_telemetry::enable();
        }
        MetricsSink { metrics_out }
    }

    /// `true` when `--metrics-out` was given.
    #[must_use]
    pub fn wants_metrics(&self) -> bool {
        self.metrics_out.is_some()
    }

    /// Writes the global registry snapshot when `--metrics-out` was
    /// given, with a stderr note (stdout stays deterministic).
    ///
    /// # Panics
    ///
    /// Panics when the file cannot be written.
    pub fn write(&self) {
        if let Some(path) = &self.metrics_out {
            let json = pan_telemetry::global().snapshot().to_json();
            std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
            eprintln!("# wrote telemetry snapshot to {path}");
        }
    }
}

/// Sample size for per-AS analyses (paper: 500), honoring `--sample`.
#[must_use]
pub fn sample_size(spec: &ScenarioSpec) -> usize {
    if spec.sample > 0 {
        spec.sample
    } else if spec.quick {
        100
    } else {
        500
    }
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:5.1}%", fraction * 100.0)
}

/// Prints a standard figure header.
pub fn print_header(figure: &str, description: &str, spec: &ScenarioSpec) {
    println!("# {figure} — {description}");
    println!(
        "# mode: {}, seed: {}",
        if spec.quick { "quick" } else { "full" },
        spec.seed
    );
}

/// Quantile grid used when printing CDF summaries.
pub const CDF_QUANTILES: [f64; 9] = [0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_internet_is_small() {
        let spec = ScenarioSpec {
            quick: true,
            ..ScenarioSpec::default()
        };
        let net = evaluation_internet(&spec);
        assert_eq!(net.graph.node_count(), 600);
        assert_eq!(sample_size(&spec), 100);
        assert_eq!(sample_size(&ScenarioSpec { sample: 42, ..spec }), 42);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), " 50.0%");
    }

    #[test]
    fn shared_configs_translate_the_spec() {
        let mut spec = ScenarioSpec {
            quick: true,
            ..ScenarioSpec::default()
        };
        spec.discovery.grid = 5;
        spec.discovery.top = 17;
        spec.evolution.rounds = 12;
        let discovery = discovery_config(&spec);
        assert_eq!(discovery.grid, 3, "quick clamps the grid");
        assert_eq!(discovery.top, 17);
        assert_eq!(discovery.policy, CandidatePolicy::PeeringAdjacent);
        let evolution = evolution_config(&spec);
        assert_eq!(evolution.rounds, 4, "quick caps the rounds");
        assert_eq!(evolution.discovery.top, 0, "evolution ranks everything");

        spec.discovery.khop = 2;
        spec.discovery.khop_cap = 9;
        assert_eq!(
            discovery_config(&spec).policy,
            CandidatePolicy::PeeringKHop {
                k: 2,
                per_source_cap: 9
            }
        );
        assert_eq!(at_market_scale(spec.clone()).ases, 10_000);
        assert_eq!(at_market_scale(ScenarioSpec { ases: 77, ..spec }).ases, 77);
    }

    #[test]
    fn market_overrides_apply_onto_the_base_spec() {
        let base = ScenarioSpec::default();
        let market = Value::Map(vec![
            ("ases".to_owned(), Value::U64(500)),
            ("seed".to_owned(), Value::I64(7)),
            ("shock".to_owned(), Value::F64(0.2)),
        ]);
        let spec = apply_market_overrides(&base, &market).unwrap();
        assert_eq!(spec.ases, 500);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.evolution.shock, 0.2);

        let err = apply_market_overrides(&base, &Value::Bool(true)).unwrap_err();
        assert!(err.contains("must be an object"), "{err}");
        let err =
            apply_market_overrides(&base, &Value::Map(vec![("wat".to_owned(), Value::U64(1))]))
                .unwrap_err();
        assert!(err.contains("unknown market field"), "{err}");
        assert!(err.contains("source"), "source is advertised: {err}");
    }

    #[test]
    fn source_overrides_select_the_market_source() {
        let mut base = ScenarioSpec::default();
        base.source.caida = "/data/caida".to_owned();

        // "synthetic" resets a CAIDA base back to the generator.
        let market = Value::Map(vec![(
            "source".to_owned(),
            Value::Str("synthetic".to_owned()),
        )]);
        let spec = apply_market_overrides(&base, &market).unwrap();
        assert_eq!(spec.source, SourceSpec::default());

        // An object selects a snapshot directory.
        let market = Value::Map(vec![(
            "source".to_owned(),
            Value::Map(vec![
                ("caida".to_owned(), Value::Str("/snaps".to_owned())),
                ("snapshot".to_owned(), Value::Str("2024".to_owned())),
            ]),
        )]);
        let spec = apply_market_overrides(&ScenarioSpec::default(), &market).unwrap();
        assert_eq!(spec.source.caida, "/snaps");
        assert_eq!(spec.source.snapshot, "2024");

        for bad in [
            Value::Str("wat".to_owned()),
            Value::Map(vec![("snapshot".to_owned(), Value::Str("2024".to_owned()))]),
            Value::Map(vec![("caida".to_owned(), Value::U64(3))]),
        ] {
            let market = Value::Map(vec![("source".to_owned(), bad)]);
            assert!(
                apply_market_overrides(&ScenarioSpec::default(), &market).is_err(),
                "{market:?} should be rejected"
            );
        }
    }

    #[test]
    fn load_market_request_labels_by_source() {
        let base = ScenarioSpec {
            quick: true,
            ases: 80,
            ..ScenarioSpec::default()
        };
        let market = Value::Map(vec![("seed".to_owned(), Value::U64(9))]);
        let loaded = load_market_request(&base, &market).unwrap();
        assert_eq!(loaded.label, "synthetic:80-as:seed-9");
        assert_eq!(loaded.seed, 9);
        assert_eq!(loaded.state.graph().node_count(), 80);

        let market = Value::Map(vec![(
            "source".to_owned(),
            Value::Map(vec![(
                "caida".to_owned(),
                Value::Str("/nonexistent-snapshots".to_owned()),
            )]),
        )]);
        let err = load_market_request(&base, &market).unwrap_err();
        assert!(err.contains("nonexistent-snapshots"), "{err}");
    }

    #[test]
    fn report_sink_extracts_bench_out() {
        let spec = ScenarioSpec::default();
        let mut rest = vec![
            "--engine".to_owned(),
            "dense".to_owned(),
            "--bench-out".to_owned(),
            "out.json".to_owned(),
        ];
        let sink = ReportSink::from_spec(&spec, &mut rest);
        assert!(sink.wants_record());
        assert_eq!(rest, vec!["--engine".to_owned(), "dense".to_owned()]);
        let mut rest = Vec::new();
        let sink = ReportSink::from_spec(&spec, &mut rest);
        assert!(!sink.wants_record());
    }

    #[test]
    fn metrics_sink_extracts_metrics_out_and_enables_telemetry() {
        let mut rest = vec![
            "--threads".to_owned(),
            "2".to_owned(),
            "--metrics-out".to_owned(),
            "metrics.json".to_owned(),
        ];
        let sink = MetricsSink::from_args(&mut rest);
        assert!(sink.wants_metrics());
        assert!(pan_telemetry::is_enabled());
        assert_eq!(rest, vec!["--threads".to_owned(), "2".to_owned()]);
        let mut rest = Vec::new();
        let sink = MetricsSink::from_args(&mut rest);
        assert!(!sink.wants_metrics());
    }

    #[test]
    fn market_state_matches_the_tables() {
        let spec = ScenarioSpec {
            quick: true,
            ases: 120,
            ..ScenarioSpec::default()
        };
        let (net, econ, flows) = market_tables(&spec);
        let (net2, state) = market_state(&spec);
        assert_eq!(net.graph.node_count(), 120);
        assert_eq!(net2.graph.node_count(), 120);
        assert_eq!(state.econ(), &econ);
        assert_eq!(state.flows(), &flows);
    }
}
