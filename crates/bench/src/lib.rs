//! Shared harness utilities for the figure-regeneration binaries and
//! Criterion benches.
//!
//! Every figure of the paper has a binary in `src/bin/` that prints the
//! same series the paper plots (as aligned text tables plus optional
//! JSON), and `discover` runs the topology-wide agreement-discovery
//! sweep:
//!
//! | binary | paper section | what it prints |
//! |--------|---------------|----------------|
//! | `fig2` | Fig. 2 | Price of Dishonesty (min & mean) vs. choice count |
//! | `fig3` | Fig. 3 | CDF of length-3 paths per AS under GRC/Top-n/MA*/MA |
//! | `fig4` | Fig. 4 | CDF of destinations reachable over length-3 paths |
//! | `fig5` | Fig. 5 | geodistance: paths beating GRC min/median/max + reduction CDF |
//! | `fig6` | Fig. 6 | bandwidth: paths beating GRC max/median/min + increase CDF |
//! | `all_figures` | all | everything above with quick settings |
//! | `discover` | §III–IV at scale | profitable mutuality pairs of a 10k-AS internet, ranked by surplus |
//!
//! All binaries share one declarative, serde-serializable
//! [`ScenarioSpec`] (flags, `--spec file.json`, `--dump-spec`) instead
//! of per-binary option parsing. Output bytes are identical at every
//! thread count — the sweeps derive per-item RNG streams from `(seed,
//! item index)` via `pan-runtime`, and the thread count is deliberately
//! never printed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod spec;

pub use spec::{DiscoverySpec, ScenarioSpec};

use pan_datasets::SyntheticInternet;

/// The standard evaluation topology of the spec: the full-size variant
/// mirrors the structural richness the §VI analysis needs; the quick
/// variant keeps smoke runs under a second.
#[must_use]
pub fn evaluation_internet(spec: &ScenarioSpec) -> SyntheticInternet {
    spec.internet()
}

/// Sample size for per-AS analyses (paper: 500), honoring `--sample`.
#[must_use]
pub fn sample_size(spec: &ScenarioSpec) -> usize {
    if spec.sample > 0 {
        spec.sample
    } else if spec.quick {
        100
    } else {
        500
    }
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:5.1}%", fraction * 100.0)
}

/// Prints a standard figure header.
pub fn print_header(figure: &str, description: &str, spec: &ScenarioSpec) {
    println!("# {figure} — {description}");
    println!(
        "# mode: {}, seed: {}",
        if spec.quick { "quick" } else { "full" },
        spec.seed
    );
}

/// Quantile grid used when printing CDF summaries.
pub const CDF_QUANTILES: [f64; 9] = [0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_internet_is_small() {
        let spec = ScenarioSpec {
            quick: true,
            ..ScenarioSpec::default()
        };
        let net = evaluation_internet(&spec);
        assert_eq!(net.graph.node_count(), 600);
        assert_eq!(sample_size(&spec), 100);
        assert_eq!(sample_size(&ScenarioSpec { sample: 42, ..spec }), 42);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), " 50.0%");
    }
}
