//! Regenerates the committed CAIDA fixture snapshots under
//! `fixtures/caida/` — the tiny two-year corpus the `--caida` tests and
//! the CI `longitudinal-smoke` job run against.
//!
//! ```console
//! cargo run -p pan-bench --example make_fixture_snapshots
//! ```
//!
//! The 2023 snapshot is a 30-AS synthetic internet dumped in CAIDA
//! serial-2 form, with geolocation and prefix-to-AS sidecars for a
//! subset of its ASes (real sidecars are partial too). The 2024 snapshot
//! is the same internet a year later: one peering broke up, a new stub
//! AS (9001) joined under a provider and brought one peering of its own,
//! and no sidecars were published. Deterministic — rerunning writes the
//! same bytes.

use std::fmt::Write as _;
use std::path::Path;

use pan_datasets::{InternetConfig, SyntheticInternet};
use pan_topology::caida;

const SEED: u64 = 11;

fn main() {
    let config = InternetConfig {
        num_ases: 30,
        tier1_count: 3,
        ..InternetConfig::default()
    };
    let net = SyntheticInternet::generate(&config, SEED).expect("valid fixture config");
    let relationships_2023 = caida::to_string(&net.graph);

    // Geo sidecar: measured locations for the first 8 ASes (sorted, so
    // the subset is stable across runs).
    let mut ases: Vec<_> = net.graph.ases().collect();
    ases.sort_unstable();
    let mut geo = String::from("# <asn>|<lat>|<lon>\n");
    for &asn in ases.iter().take(8) {
        let point = net
            .geo
            .as_location(asn)
            .expect("generated ASes are located");
        let _ = writeln!(
            geo,
            "{}|{:.4}|{:.4}",
            asn.get(),
            point.lat_deg(),
            point.lon_deg()
        );
    }

    // Prefix sidecar: the portfolios of the first 12 ASes.
    let mut pfx = String::from("# <addr> <len> <origin-asn>\n");
    for &asn in ases.iter().take(12) {
        for &prefix in net.prefixes.prefixes_of(asn) {
            let a = prefix.addr();
            let _ = writeln!(
                pfx,
                "{}.{}.{}.{}\t{}\t{}",
                a >> 24,
                (a >> 16) & 0xff,
                (a >> 8) & 0xff,
                a & 0xff,
                prefix.len(),
                asn.get()
            );
        }
    }

    // 2024: drop the first peering of 2023, connect new stub AS 9001
    // under the first peer (as provider) with a peering to the second.
    let mut removed_peering = None;
    let mut relationships_2024 = String::new();
    for line in relationships_2023.lines() {
        if removed_peering.is_none() && !line.starts_with('#') && line.contains("|0|") {
            let mut fields = line.split('|');
            let a = fields.next().expect("peering lines have fields").to_owned();
            let b = fields.next().expect("peering lines have fields").to_owned();
            removed_peering = Some((a, b));
            continue;
        }
        relationships_2024.push_str(line);
        relationships_2024.push('\n');
    }
    let (a, b) = removed_peering.expect("the fixture net has peering links");
    let _ = writeln!(relationships_2024, "{a}|9001|-1|synthetic");
    let _ = writeln!(relationships_2024, "{b}|9001|0|synthetic");

    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures/caida");
    let write = |rel: &str, text: &str| {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("fixture files have parents"))
            .expect("fixture directories are writable");
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
        println!("wrote {} ({} bytes)", path.display(), text.len());
    };
    write("2023/relationships.txt", &relationships_2023);
    write("2023/geo.txt", &geo);
    write("2023/prefix2as.txt", &pfx);
    write("2024/relationships.txt", &relationships_2024);
}
