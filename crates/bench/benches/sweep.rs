//! Criterion benches for the `pan-runtime` scenario-sweep runtime: pool
//! dispatch overhead, and the figure workloads at 1 vs. available
//! threads (the `BENCH_sweep.json` before/after evidence).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pan_datasets::{InternetConfig, SyntheticInternet};
use pan_pathdiv::diversity::{analyze_sample_pooled, DiversityConfig};
use pan_pathdiv::geodistance::{analyze_pooled, GeodistanceConfig};
use pan_runtime::{ScenarioSweep, ThreadPool};

fn net(n: usize) -> SyntheticInternet {
    SyntheticInternet::generate(
        &InternetConfig {
            num_ases: n,
            ..InternetConfig::default()
        },
        42,
    )
    .expect("valid config")
}

fn thread_counts() -> Vec<usize> {
    let available = ThreadPool::with_available_parallelism().threads();
    let mut counts = vec![1];
    if available > 1 {
        counts.push(available);
    }
    counts
}

fn bench_pool_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep/dispatch_1000_items");
    for &threads in &thread_counts() {
        let sweep = ScenarioSweep::new(ThreadPool::new(threads), 7);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                black_box(sweep.run(1_000, |i, _rng| i as u64));
            });
        });
    }
    group.finish();
}

fn bench_diversity_pooled(c: &mut Criterion) {
    let internet = net(600);
    let config = DiversityConfig {
        sample_size: 100,
        seed: 42,
        top_n: vec![1, 5, 50],
    };
    let mut group = c.benchmark_group("sweep/diversity_600as_100src");
    group.sample_size(10);
    for &threads in &thread_counts() {
        let pool = ThreadPool::new(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| black_box(analyze_sample_pooled(&internet.graph, &config, &pool)));
        });
    }
    group.finish();
}

fn bench_geodistance_pooled(c: &mut Criterion) {
    let internet = net(600);
    let config = GeodistanceConfig {
        sample_size: 100,
        seed: 42,
    };
    let mut group = c.benchmark_group("sweep/geodistance_600as_100src");
    group.sample_size(10);
    for &threads in &thread_counts() {
        let pool = ThreadPool::new(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                black_box(analyze_pooled(
                    &internet.graph,
                    &internet.geo,
                    &config,
                    &pool,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pool_dispatch,
    bench_diversity_pooled,
    bench_geodistance_pooled
);
criterion_main!(benches);
