//! Criterion benches for agreement optimization (§IV): the flow-volume
//! Nash-product optimizer vs. the cash-compensation optimizer, plus the
//! grid-resolution ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pan_core::{Agreement, AgreementScenario, CashOptimizer, FlowVolumeOptimizer};
use pan_econ::{BusinessModel, CostFunction, FlowVec, PricingBook, PricingFunction};
use pan_topology::fixtures::{asn, fig1};

fn model() -> BusinessModel {
    let g = fig1();
    let mut book = PricingBook::new();
    for (p, c, rate) in [
        ('A', 'D', 2.0),
        ('B', 'E', 2.0),
        ('B', 'G', 2.0),
        ('D', 'H', 3.0),
        ('E', 'I', 3.0),
    ] {
        book.set_transit_price(
            asn(p),
            asn(c),
            PricingFunction::per_usage(rate).expect("valid rate"),
        );
    }
    let mut m = BusinessModel::new(g, book);
    m.set_internal_cost(asn('D'), CostFunction::linear(0.05).expect("valid"));
    m.set_internal_cost(asn('E'), CostFunction::linear(0.05).expect("valid"));
    m
}

fn scenario(model: &BusinessModel) -> AgreementScenario<'_> {
    let ma = Agreement::mutuality(model.graph(), asn('D'), asn('E')).expect("D,E peer");
    let mut fd = FlowVec::new(asn('D'));
    fd.set(asn('A'), 30.0);
    fd.set(asn('H'), 25.0);
    fd.set(asn('E'), 5.0);
    let mut fe = FlowVec::new(asn('E'));
    fe.set(asn('B'), 28.0);
    fe.set(asn('I'), 22.0);
    fe.set(asn('D'), 5.0);
    AgreementScenario::with_default_opportunities(model, ma, fd, fe, 0.6, 0.4)
        .expect("valid scenario")
}

fn bench_flow_volume(c: &mut Criterion) {
    let m = model();
    let s = scenario(&m);
    let mut group = c.benchmark_group("optimization/flow_volume");
    group.sample_size(10);
    // Grid-resolution ablation: coarser grids trade optimality for speed.
    for &grid in &[9usize, 17, 33] {
        let optimizer = FlowVolumeOptimizer {
            grid_points: grid,
            ..FlowVolumeOptimizer::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(grid), &grid, |b, _| {
            b.iter(|| black_box(optimizer.optimize(black_box(&s)).expect("optimizes")));
        });
    }
    group.finish();
}

fn bench_cash(c: &mut Criterion) {
    let m = model();
    let s = scenario(&m);
    let mut group = c.benchmark_group("optimization/cash");
    group.sample_size(10);
    let optimizer = CashOptimizer::new();
    group.bench_function("default", |b| {
        b.iter(|| black_box(optimizer.optimize(black_box(&s)).expect("optimizes")));
    });
    group.finish();
}

fn bench_evaluate(c: &mut Criterion) {
    let m = model();
    let s = scenario(&m);
    let point = pan_core::OperatingPoint::uniform(s.dimension(), 0.5, 0.5).expect("valid");
    c.bench_function("optimization/evaluate_once", |b| {
        b.iter(|| {
            black_box(pan_core::evaluate(black_box(&s), black_box(&point)).expect("evaluates"))
        });
    });
}

criterion_group!(benches, bench_flow_volume, bench_cash, bench_evaluate);
criterion_main!(benches);
