//! Criterion benches contrasting the two routing substrates of §II:
//! BGP path-vector convergence (and oscillation detection) vs. PAN
//! beaconing and header-path forwarding.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bgp_sim::{gadgets, policy, Engine, Schedule};
use pan_core::Agreement;
use pan_sim::{beaconing, Network};
use pan_topology::fixtures::{asn, fig1};

fn bench_bgp(c: &mut Criterion) {
    let g = fig1();
    let grc = policy::grc_instance(&g, asn('A'), 6).expect("valid instance");
    c.bench_function("bgp/grc_convergence_fig1", |b| {
        b.iter(|| {
            let mut engine = Engine::new(&grc);
            black_box(engine.run(Schedule::round_robin(), 1_000))
        });
    });
    let bad = gadgets::bad_gadget();
    c.bench_function("bgp/bad_gadget_oscillation_detection", |b| {
        b.iter(|| {
            let mut engine = Engine::new(&bad);
            black_box(engine.run(Schedule::round_robin(), 1_000))
        });
    });
    c.bench_function("bgp/stable_paths_solver_disagree", |b| {
        b.iter(|| black_box(bgp_sim::stable_paths::solve(&gadgets::disagree())));
    });
}

fn bench_pan(c: &mut Criterion) {
    let g = fig1();
    c.bench_function("pan/beaconing_fig1", |b| {
        b.iter(|| black_box(beaconing::run_beaconing(black_box(&g), 6, 4)));
    });
    let mut network = Network::new(g);
    let ma = Agreement::mutuality(network.graph(), asn('D'), asn('E')).expect("peers");
    network.authorize_agreement(&ma);
    let path = [asn('H'), asn('D'), asn('E'), asn('B'), asn('G')];
    c.bench_function("pan/forward_5_hop_ma_path", |b| {
        b.iter(|| black_box(network.send(black_box(&path)).expect("authorized")));
    });
}

criterion_group!(benches, bench_bgp, bench_pan);
criterion_main!(benches);
