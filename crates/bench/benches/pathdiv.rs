//! Criterion benches for the path-diversity pipeline (backs Figs. 3–6):
//! length-3 enumeration, the sampled diversity analysis, and the
//! geodistance/bandwidth pair analyses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pan_datasets::{InternetConfig, SyntheticInternet};
use pan_pathdiv::bandwidth::{analyze as analyze_bw, BandwidthConfig};
use pan_pathdiv::diversity::{analyze_sample, DiversityConfig};
use pan_pathdiv::geodistance::{analyze as analyze_geo, GeodistanceConfig};
use pan_pathdiv::length3::Length3Enumerator;

fn net(n: usize) -> SyntheticInternet {
    SyntheticInternet::generate(
        &InternetConfig {
            num_ases: n,
            ..InternetConfig::default()
        },
        42,
    )
    .expect("valid config")
}

fn bench_enumeration(c: &mut Criterion) {
    let internet = net(1_000);
    let enumerator = Length3Enumerator::new(&internet.graph);
    let mut group = c.benchmark_group("pathdiv/enumerate_all_sources");
    group.sample_size(20);
    group.bench_function("grc", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for src in 0..internet.graph.node_count() as u32 {
                total += enumerator.count_grc(src);
            }
            black_box(total)
        });
    });
    group.bench_function("ma_all", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for src in 0..internet.graph.node_count() as u32 {
                total += enumerator.count_ma_all(src);
            }
            black_box(total)
        });
    });
    group.finish();
}

fn bench_diversity(c: &mut Criterion) {
    let mut group = c.benchmark_group("pathdiv/analyze_sample_50");
    group.sample_size(10);
    for &n in &[500usize, 1_000] {
        let internet = net(n);
        let config = DiversityConfig {
            sample_size: 50,
            seed: 1,
            top_n: vec![1, 5, 50],
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(analyze_sample(&internet.graph, &config)));
        });
    }
    group.finish();
}

fn bench_pair_analyses(c: &mut Criterion) {
    let internet = net(600);
    let mut group = c.benchmark_group("pathdiv/pair_analyses_30");
    group.sample_size(10);
    group.bench_function("geodistance", |b| {
        b.iter(|| {
            black_box(analyze_geo(
                &internet.graph,
                &internet.geo,
                &GeodistanceConfig {
                    sample_size: 30,
                    seed: 1,
                },
            ))
        });
    });
    group.bench_function("bandwidth", |b| {
        b.iter(|| {
            black_box(analyze_bw(
                &internet.graph,
                &internet.capacities,
                &BandwidthConfig {
                    sample_size: 30,
                    seed: 1,
                },
            ))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_enumeration,
    bench_diversity,
    bench_pair_analyses
);
criterion_main!(benches);
