//! Criterion benches for the BOSCO mechanism (backs Fig. 2): best-response
//! computation, equilibrium search, and Price-of-Dishonesty evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pan_bosco::{
    best_response, expected_nash_product, expected_truthful_nash_product, find_equilibrium,
    BargainingGame, ChoiceSet, ThresholdStrategy, UtilityDistribution,
};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn game(choices: usize, seed: u64) -> BargainingGame {
    let d = UtilityDistribution::uniform(-1.0, 1.0).expect("valid");
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let cx = ChoiceSet::sample_from(&d, choices, &mut rng).expect("positive count");
    let cy = ChoiceSet::sample_from(&d, choices, &mut rng).expect("positive count");
    BargainingGame::new(d, d, cx, cy)
}

fn bench_best_response(c: &mut Criterion) {
    let mut group = c.benchmark_group("bosco/best_response");
    for &w in &[10usize, 30, 60] {
        let g = game(w, 1);
        let opponent = ThresholdStrategy::floor(g.choices_y.clone());
        group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, _| {
            b.iter(|| {
                black_box(best_response(
                    &g.choices_x,
                    black_box(&opponent),
                    &g.distribution_y,
                ))
            });
        });
    }
    group.finish();
}

fn bench_equilibrium(c: &mut Criterion) {
    let mut group = c.benchmark_group("bosco/find_equilibrium");
    group.sample_size(20);
    for &w in &[10usize, 30, 60] {
        let g = game(w, 2);
        group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, _| {
            b.iter(|| black_box(find_equilibrium(black_box(&g), 600).expect("converges")));
        });
    }
    group.finish();
}

fn bench_efficiency(c: &mut Criterion) {
    let g = game(40, 3);
    let eq = find_equilibrium(&g, 600).expect("converges");
    c.bench_function("bosco/expected_nash_product", |b| {
        b.iter(|| black_box(expected_nash_product(black_box(&g), black_box(&eq))));
    });
    c.bench_function("bosco/expected_truthful_nash_product_512", |b| {
        b.iter(|| {
            black_box(expected_truthful_nash_product(
                &g.distribution_x,
                &g.distribution_y,
                512,
            ))
        });
    });
}

criterion_group!(
    benches,
    bench_best_response,
    bench_equilibrium,
    bench_efficiency
);
criterion_main!(benches);
