//! Criterion benches for the topology-wide discovery engine: the dense
//! batch path vs. the legacy per-pair `AgreementScenario` path — the
//! before/after pair recorded in `BENCH_discovery.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pan_core::discovery::{
    discover, enumerate_candidates, evaluate_candidate, evaluate_candidate_legacy, BatchContext,
    CandidatePolicy, DiscoveryConfig, PairScratch,
};
use pan_datasets::{InternetConfig, SyntheticInternet};
use pan_econ::{CostFunction, DenseEconomics, FlowMatrix, PricingFunction};
use pan_runtime::ScenarioSweep;

fn testbed() -> (SyntheticInternet, DenseEconomics, FlowMatrix) {
    let net = SyntheticInternet::generate(
        &InternetConfig {
            num_ases: 600,
            tier1_count: 8,
            ..InternetConfig::default()
        },
        42,
    )
    .expect("valid config");
    let econ = DenseEconomics::build(
        &net.graph,
        |p, c| PricingFunction::per_usage(2.0 + f64::from((p.get() + c.get()) % 5) * 0.2).unwrap(),
        |_| PricingFunction::per_usage(2.5).unwrap(),
        |_| CostFunction::linear(0.05).unwrap(),
    );
    let flows = FlowMatrix::degree_gravity(&net.graph, 1.0);
    (net, econ, flows)
}

fn pair_evaluation(c: &mut Criterion) {
    let (net, econ, flows) = testbed();
    let ctx = BatchContext::new(&net.graph, &econ, &flows).expect("tables match");
    let model = econ.to_business_model(&net.graph);
    let candidates = enumerate_candidates(&net.graph, CandidatePolicy::PeeringAdjacent);
    let sample: Vec<_> = candidates.iter().copied().step_by(97).take(24).collect();
    let mut group = c.benchmark_group("discovery");

    group.bench_function(BenchmarkId::new("evaluate_24_pairs", "dense"), |b| {
        let mut scratch = PairScratch::new();
        b.iter(|| {
            let mut surplus = 0.0;
            for &pair in &sample {
                surplus += evaluate_candidate(&ctx, &mut scratch, pair, 0.5, 0.2, 5)
                    .expect("evaluation succeeds")
                    .surplus;
            }
            black_box(surplus)
        });
    });

    group.bench_function(BenchmarkId::new("evaluate_24_pairs", "legacy"), |b| {
        b.iter(|| {
            let mut surplus = 0.0;
            for &pair in &sample {
                let fx = flows.to_flow_vec(&net.graph, pair.x);
                let fy = flows.to_flow_vec(&net.graph, pair.y);
                surplus += evaluate_candidate_legacy(&model, &fx, &fy, 0.5, 0.2, 5)
                    .expect("evaluation succeeds")
                    .surplus;
            }
            black_box(surplus)
        });
    });

    group.bench_function(BenchmarkId::new("full_sweep_600as", "dense"), |b| {
        let config = DiscoveryConfig {
            top: 10,
            ..DiscoveryConfig::default()
        };
        let sweep = ScenarioSweep::sequential(42);
        b.iter(|| {
            black_box(
                discover(&ctx, &config, &sweep)
                    .expect("sweep succeeds")
                    .candidates,
            )
        });
    });

    group.finish();
}

criterion_group!(benches, pair_evaluation);
criterion_main!(benches);
