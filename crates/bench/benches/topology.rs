//! Criterion benches for the topology substrate: synthetic Internet
//! generation and CAIDA serial-2 round-trips.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pan_datasets::{InternetConfig, SyntheticInternet};
use pan_topology::caida;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology/generate");
    group.sample_size(10);
    for &n in &[500usize, 2_000] {
        let config = InternetConfig {
            num_ases: n,
            ..InternetConfig::default()
        };
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(SyntheticInternet::generate(&config, 42).expect("valid")));
        });
    }
    group.finish();
}

fn bench_caida_round_trip(c: &mut Criterion) {
    let net = SyntheticInternet::generate(
        &InternetConfig {
            num_ases: 2_000,
            ..InternetConfig::default()
        },
        42,
    )
    .expect("valid");
    let text = caida::to_string(&net.graph);
    let mut group = c.benchmark_group("topology/caida");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("serialize", |b| {
        b.iter(|| black_box(caida::to_string(black_box(&net.graph))));
    });
    group.bench_function("parse", |b| {
        b.iter(|| black_box(caida::parse(black_box(&text)).expect("round trip parses")));
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_caida_round_trip);
criterion_main!(benches);
