//! Integration tests of the unified market-ingestion layer over the
//! committed fixture snapshots (`fixtures/caida/`, regenerate with the
//! `make_fixture_snapshots` example): CAIDA-loaded markets must be
//! byte-identical across thread counts and cache temperature, and a
//! serve session loaded from a CAIDA source must step exactly like an
//! offline `evolve` over the same snapshot.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Value};

use pan_bench::{evolution_config, load_market_request, market_state, ScenarioSpec};
use pan_core::dynamics::{evolve, RoundRecord};
use pan_datasets::MarketSource;
use pan_runtime::{ScenarioSweep, ThreadPool};
use pan_serve::MarketServer;

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures/caida")
}

/// The run under test: the committed two-snapshot fixture corpus with
/// shocks and share noise on, so the whole perturbation pipeline runs.
fn caida_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec {
        seed: 23,
        ..ScenarioSpec::default()
    };
    spec.source.caida = fixture_dir().display().to_string();
    spec.source.snapshot = "2023".to_owned();
    spec.discovery.grid = 3;
    spec.discovery.noise = 0.1;
    spec.evolution.rounds = 5;
    spec.evolution.adopt_top = 5;
    spec.evolution.shock = 0.3;
    spec
}

fn zeroed(records: &[RoundRecord]) -> Vec<RoundRecord> {
    records.iter().map(|r| r.with_zeroed_timing()).collect()
}

#[test]
fn caida_evolution_is_byte_identical_across_thread_counts() {
    let spec = caida_spec();
    let config = evolution_config(&spec);
    let mut rounds_by_threads = Vec::new();
    for threads in [1, 4] {
        let (_, mut state) = market_state(&spec);
        let report = evolve(
            &mut state,
            &config,
            &ScenarioSweep::new(ThreadPool::new(threads), spec.seed),
        )
        .unwrap();
        assert!(report.total_adopted() > 0, "the fixture market must trade");
        rounds_by_threads.push(serde_json::to_string(&zeroed(&report.rounds)).unwrap());
    }
    assert_eq!(
        rounds_by_threads[0], rounds_by_threads[1],
        "1-thread and 4-thread CAIDA evolutions diverged"
    );
}

#[test]
fn warm_cache_load_is_bit_equal_to_a_cold_parse() {
    // A private copy of the fixture snapshot, so deleting the cache here
    // cannot race the other tests (which tolerate either temperature).
    let scratch = std::env::temp_dir().join(format!("pan-caida-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(scratch.join("2023")).unwrap();
    for file in ["relationships.txt", "geo.txt", "prefix2as.txt"] {
        std::fs::copy(
            fixture_dir().join("2023").join(file),
            scratch.join("2023").join(file),
        )
        .unwrap();
    }

    let source = MarketSource::Caida {
        dir: scratch.clone(),
        snapshot: Some("2023".to_owned()),
    };
    let (cold_net, cold_status) = source.build_with_status(23).unwrap();
    assert!(
        !cold_status.cache.unwrap().is_warm(),
        "first load must parse"
    );
    assert!(cold_status.prefix_sidecar && cold_status.geo_sidecar);
    let (warm_net, warm_status) = source.build_with_status(23).unwrap();
    assert!(warm_status.cache.unwrap().is_warm(), "second load must hit");

    assert_eq!(
        serde_json::to_string(&cold_net.graph).unwrap(),
        serde_json::to_string(&warm_net.graph).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&cold_net.prefixes).unwrap(),
        serde_json::to_string(&warm_net.prefixes).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&cold_net.capacities).unwrap(),
        serde_json::to_string(&warm_net.capacities).unwrap()
    );
    for asn in cold_net.graph.ases() {
        assert_eq!(cold_net.geo.as_location(asn), warm_net.geo.as_location(asn));
        assert_eq!(cold_net.tier(asn), warm_net.tier(asn));
        assert_eq!(
            cold_net.graph.providers(asn).collect::<Vec<_>>(),
            warm_net.graph.providers(asn).collect::<Vec<_>>(),
        );
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        Client {
            writer: stream.try_clone().expect("streams clone"),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("request writes");
    }

    fn recv_ok(&mut self) -> Value {
        let mut line = String::new();
        assert!(
            self.reader.read_line(&mut line).expect("reply reads") > 0,
            "server closed the connection"
        );
        let reply: Value = serde_json::from_str(line.trim()).expect("replies parse");
        assert_eq!(
            reply.field("ok").unwrap(),
            &Value::Bool(true),
            "reply: {reply:?}"
        );
        reply
    }

    fn step(&mut self, market: &str, rounds: usize) -> Vec<RoundRecord> {
        self.send(&format!(
            r#"{{"v":2,"verb":"step","market":"{market}","rounds":{rounds}}}"#
        ));
        let mut records = Vec::new();
        loop {
            let reply = self.recv_ok();
            match reply.field("verb").unwrap() {
                Value::Str(verb) if verb == "round" => records.push(
                    RoundRecord::from_value(reply.field("record").unwrap())
                        .expect("round records parse"),
                ),
                Value::Str(verb) if verb == "step" => return records,
                other => panic!("unexpected verb {other:?}"),
            }
        }
    }
}

#[test]
fn serve_session_from_caida_steps_like_offline_evolve() {
    let spec = caida_spec();
    let config = evolution_config(&spec);

    // Offline reference over the same snapshot, threads 1.
    let reference = {
        let (_, mut state) = market_state(&spec);
        let report = evolve(&mut state, &config, &ScenarioSweep::sequential(spec.seed)).unwrap();
        zeroed(&report.rounds)
    };

    // A server whose *base* spec is synthetic: the load request itself
    // selects the CAIDA source, exercising the protocol's "source" field.
    let base = ScenarioSpec {
        seed: spec.seed,
        ases: 120,
        discovery: spec.discovery,
        evolution: spec.evolution,
        ..ScenarioSpec::default()
    };
    let server = MarketServer::bind("127.0.0.1:0", 2).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve(&move |m| load_market_request(&base, m)));

    let mut client = Client::connect(addr);
    let dir = serde_json::to_string(&fixture_dir().display().to_string()).unwrap();
    client.send(&format!(
        r#"{{"v":2,"verb":"load","market":{{"source":{{"caida":{dir},"snapshot":"2023"}}}}}}"#
    ));
    let reply = client.recv_ok();
    assert_eq!(reply.field("market").unwrap(), &Value::Str("m1".to_owned()));
    let label = match reply.field("label").unwrap() {
        Value::Str(label) => label.clone(),
        other => panic!("label: {other:?}"),
    };
    assert!(label.starts_with("caida:"), "label: {label}");
    assert!(label.ends_with("/2023:seed-23"), "label: {label}");

    let streamed = client.step("m1", config.rounds);
    assert_eq!(
        zeroed(&streamed),
        reference,
        "served CAIDA rounds diverged from offline evolve"
    );

    client.send(r#"{"v":2,"verb":"quit"}"#);
    client.recv_ok();
    handle.join().unwrap().unwrap();
}
