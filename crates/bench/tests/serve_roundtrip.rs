//! Client/server integration test of the serving layer: load a 500-AS
//! synthetic market, advise an AS, stream 3 evolution rounds, snapshot,
//! kill the server, restore into a **new** server (at a different
//! thread count), stream 3 more rounds — and assert the stitched
//! trajectory is byte-identical to an uninterrupted 6-round `evolve`
//! run at threads 1 and 4 (wall-clock fields zeroed).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use serde::{Deserialize, Value};

use pan_bench::{evolution_config, market_state, ScenarioSpec};
use pan_core::dynamics::{evolve, RoundRecord};
use pan_runtime::{ScenarioSweep, ThreadPool};
use pan_serve::{LoadedMarket, MarketServer};

/// The run under test: a 500-AS market with shocks and share noise on,
/// so both the perturbation stream and the per-pair jitter must survive
/// the checkpoint.
fn test_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec {
        quick: false,
        seed: 23,
        ases: 500,
        ..ScenarioSpec::default()
    };
    spec.discovery.grid = 3;
    spec.discovery.noise = 0.1;
    spec.evolution.rounds = 6;
    spec.evolution.adopt_top = 5;
    spec.evolution.min_surplus = 1e-3;
    spec.evolution.shock = 0.3;
    spec
}

fn loaded_market(spec: &ScenarioSpec) -> LoadedMarket {
    let (net, state) = market_state(spec);
    LoadedMarket {
        state,
        config: evolution_config(spec),
        seed: spec.seed,
        label: format!("test:{}-as", net.graph.node_count()),
    }
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        Client {
            writer: stream.try_clone().expect("streams clone"),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("request writes");
    }

    fn recv(&mut self) -> Value {
        let mut line = String::new();
        assert!(
            self.reader.read_line(&mut line).expect("reply reads") > 0,
            "server closed the connection"
        );
        serde_json::from_str(line.trim()).expect("replies parse")
    }

    fn recv_ok(&mut self) -> Value {
        let reply = self.recv();
        assert_eq!(
            reply.field("ok").unwrap(),
            &Value::Bool(true),
            "reply: {reply:?}"
        );
        reply
    }

    /// Sends a `step` request and collects the streamed round records;
    /// asserts the closing summary matches the round count.
    fn step(&mut self, market: &str, rounds: usize) -> Vec<RoundRecord> {
        self.send(&format!(
            r#"{{"v":2,"verb":"step","market":"{market}","rounds":{rounds}}}"#
        ));
        let mut records = Vec::new();
        loop {
            let reply = self.recv_ok();
            match reply.field("verb").unwrap() {
                Value::Str(verb) if verb == "round" => {
                    records.push(
                        RoundRecord::from_value(reply.field("record").unwrap())
                            .expect("round records parse"),
                    );
                }
                Value::Str(verb) if verb == "step" => {
                    let streamed = match reply.field("rounds").unwrap() {
                        Value::I64(n) => *n as usize,
                        Value::U64(n) => *n as usize,
                        other => panic!("rounds: {other:?}"),
                    };
                    assert_eq!(streamed, records.len());
                    return records;
                }
                other => panic!("unexpected verb {other:?}"),
            }
        }
    }
}

fn zeroed(records: &[RoundRecord]) -> Vec<RoundRecord> {
    records.iter().map(|r| r.with_zeroed_timing()).collect()
}

#[test]
fn snapshot_restore_reproduces_the_uninterrupted_trajectory() {
    let spec = test_spec();
    let config = evolution_config(&spec);

    // Uninterrupted references at two thread counts: byte-identical to
    // each other by the sweep determinism contract.
    let reference = {
        let (_, mut state) = market_state(&spec);
        let report = evolve(&mut state, &config, &ScenarioSweep::sequential(spec.seed)).unwrap();
        assert_eq!(report.rounds.len(), 6, "shocked runs hit the round cap");
        assert!(report.total_adopted() > 0, "the market must trade");
        zeroed(&report.rounds)
    };
    {
        let (_, mut state) = market_state(&spec);
        let report = evolve(
            &mut state,
            &config,
            &ScenarioSweep::new(ThreadPool::new(4), spec.seed),
        )
        .unwrap();
        assert_eq!(
            zeroed(&report.rounds),
            reference,
            "4-thread evolve diverged"
        );
    }

    let checkpoint =
        std::env::temp_dir().join(format!("pan-serve-roundtrip-{}.json", std::process::id()));
    let checkpoint_json = serde_json::to_string(&checkpoint.to_str().unwrap()).unwrap();

    // Session 1: load, advise, step 3, snapshot, kill.
    let first_half = {
        let server = MarketServer::bind("127.0.0.1:0", 2).unwrap();
        let addr = server.local_addr().unwrap();
        let load_spec = spec.clone();
        let handle =
            std::thread::spawn(move || server.serve(&move |_| Ok(loaded_market(&load_spec))));
        let mut client = Client::connect(addr);
        client.send(r#"{"v":2,"verb":"load","market":{}}"#);
        let reply = client.recv_ok();
        assert_eq!(
            reply.field("market").unwrap(),
            &Value::Str("m1".to_owned()),
            "the first load of a fresh server is m1"
        );
        assert_eq!(reply.field("ases").unwrap(), &Value::I64(500));

        // The advisory query answers from the resident state, sweeping
        // only the one AS's candidate slice.
        let asn = {
            let (net, _) = market_state(&spec);
            let hub = (0..net.graph.node_count() as u32)
                .max_by_key(|&i| net.graph.peer_indices(i).len())
                .unwrap();
            net.graph.asn_at(hub).get()
        };
        let started = std::time::Instant::now();
        client.send(&format!(
            r#"{{"v":2,"verb":"advise","market":"m1","asn":{asn},"top":5}}"#
        ));
        let reply = client.recv_ok();
        let advise_ms = started.elapsed().as_secs_f64() * 1e3;
        let candidates = match reply.field("candidates").unwrap() {
            Value::I64(n) => *n as usize,
            Value::U64(n) => *n as usize,
            other => panic!("candidates: {other:?}"),
        };
        assert!(candidates > 0, "the hub has peers to advise about");
        eprintln!("# advise answered in {advise_ms:.1} ms over {candidates} candidates");

        let records = client.step("m1", 3);
        client.send(&format!(
            r#"{{"v":2,"verb":"snapshot","market":"m1","path":{checkpoint_json}}}"#
        ));
        client.recv_ok();
        client.send(r#"{"v":2,"verb":"quit"}"#);
        client.recv_ok();
        handle.join().unwrap().unwrap();
        records
    };
    assert_eq!(first_half.len(), 3);

    // Session 2: a fresh server (different thread count) restores the
    // checkpoint and steps the remaining rounds.
    let second_half = {
        let server = MarketServer::bind("127.0.0.1:0", 4).unwrap();
        let addr = server.local_addr().unwrap();
        let handle =
            std::thread::spawn(move || server.serve(&|_| Err("restore-only session".to_owned())));
        let mut client = Client::connect(addr);
        client.send(&format!(
            r#"{{"v":2,"verb":"load","checkpoint":{checkpoint_json}}}"#
        ));
        let reply = client.recv_ok();
        assert_eq!(
            reply.field("verb").unwrap(),
            &Value::Str("load".to_owned()),
            "checkpoint loads echo the request's verb"
        );
        assert_eq!(reply.field("rounds_done").unwrap(), &Value::I64(3));
        let records = client.step("m1", 3);
        client.send(r#"{"v":2,"verb":"quit"}"#);
        client.recv_ok();
        handle.join().unwrap().unwrap();
        records
    };
    assert_eq!(second_half.len(), 3);
    std::fs::remove_file(&checkpoint).ok();

    let mut stitched = first_half;
    stitched.extend(second_half);
    assert_eq!(
        zeroed(&stitched),
        reference,
        "kill/restore trajectory diverged from the uninterrupted run"
    );
    // Byte-identical, not just equal: compare the serialized records.
    assert_eq!(
        serde_json::to_string(&zeroed(&stitched)).unwrap(),
        serde_json::to_string(&reference).unwrap()
    );
}
