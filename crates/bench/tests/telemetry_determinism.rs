//! Telemetry must be a pure observer: enabling it (`--metrics-out`)
//! must leave `evolve`'s stdout byte-identical at every thread count,
//! and the written snapshot must actually carry the per-round phase
//! breakdown — the tentpole contract of the observability layer.

use std::path::PathBuf;
use std::process::Command;

fn run_evolve(args: &[&str]) -> std::process::Output {
    let output = Command::new(env!("CARGO_BIN_EXE_evolve"))
        .args(args)
        .output()
        .expect("evolve runs");
    assert!(
        output.status.success(),
        "evolve {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pan-telemetry-test-{}-{name}", std::process::id()))
}

#[test]
fn metrics_collection_leaves_stdout_byte_identical() {
    let base = ["--quick", "--ases", "300", "--json"];
    let metrics_path = scratch("t1.json");
    let metrics = metrics_path.to_str().unwrap();

    // Thread count 1: with vs without telemetry.
    let plain_t1 = run_evolve(&[&base[..], &["--threads", "1"]].concat());
    let metered_t1 =
        run_evolve(&[&base[..], &["--threads", "1", "--metrics-out", metrics]].concat());
    assert_eq!(
        String::from_utf8_lossy(&plain_t1.stdout),
        String::from_utf8_lossy(&metered_t1.stdout),
        "telemetry changed stdout at 1 thread"
    );

    // Thread count 4: telemetry on, still identical to the 1-thread run.
    let metrics4_path = scratch("t4.json");
    let metered_t4 = run_evolve(
        &[
            &base[..],
            &[
                "--threads",
                "4",
                "--metrics-out",
                metrics4_path.to_str().unwrap(),
            ],
        ]
        .concat(),
    );
    assert_eq!(
        String::from_utf8_lossy(&metered_t1.stdout),
        String::from_utf8_lossy(&metered_t4.stdout),
        "telemetry broke thread-count determinism"
    );

    // The snapshot itself must hold the phase breakdown the run traced.
    let snapshot = std::fs::read_to_string(&metrics_path).expect("snapshot written");
    for key in [
        "core.phase.enumerate_ns",
        "core.phase.evaluate_ns",
        "core.phase.adopt_ns",
        "core.round_ns",
        "runtime.worker.busy_ns",
    ] {
        assert!(snapshot.contains(key), "snapshot lacks {key}:\n{snapshot}");
    }

    std::fs::remove_file(&metrics_path).ok();
    std::fs::remove_file(&metrics4_path).ok();
}
