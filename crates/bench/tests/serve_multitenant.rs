//! Multi-tenant determinism: two markets resident in ONE server, their
//! `step`s interleaved round by round (with advise traffic mixed in),
//! must each produce a trajectory byte-identical to the same market
//! run in isolation by `evolve` — at worker-thread counts 1 and 4.
//!
//! This is the session-isolation contract of the serving layer: a
//! market's trajectory depends only on its own (state, config, seed),
//! never on what its neighbors in the session table are doing.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use serde::{Deserialize, Value};

use pan_bench::{evolution_config, market_state, ScenarioSpec};
use pan_core::dynamics::{evolve, RoundRecord};
use pan_runtime::{ScenarioSweep, ThreadPool};
use pan_serve::{LoadedMarket, MarketServer};

const ROUNDS: usize = 4;

/// Both tenants: 300-AS markets with shocks and share noise on (so the
/// perturbation and jitter streams must stay per-session), differing in
/// seed — different topologies, economies, and trajectories.
fn tenant_spec(seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec {
        quick: false,
        seed,
        ases: 300,
        ..ScenarioSpec::default()
    };
    spec.discovery.grid = 3;
    spec.discovery.noise = 0.1;
    spec.evolution.rounds = ROUNDS;
    spec.evolution.adopt_top = 5;
    spec.evolution.min_surplus = 1e-3;
    spec.evolution.shock = 0.3;
    spec
}

/// The loader of the test server: `{"seed": n}` selects the tenant.
fn loader(market: &Value) -> Result<LoadedMarket, String> {
    let seed = match market.field("seed") {
        Ok(Value::I64(n)) => *n as u64,
        Ok(Value::U64(n)) => *n,
        other => return Err(format!("test loader wants a seed, got {other:?}")),
    };
    let spec = tenant_spec(seed);
    let (net, state) = market_state(&spec);
    Ok(LoadedMarket {
        state,
        config: evolution_config(&spec),
        seed,
        label: format!("tenant:{}-as:seed-{}", net.graph.node_count(), seed),
    })
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        Client {
            writer: stream.try_clone().expect("streams clone"),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("request writes");
    }

    fn recv_ok(&mut self) -> Value {
        let mut line = String::new();
        assert!(
            self.reader.read_line(&mut line).expect("reply reads") > 0,
            "server closed the connection"
        );
        let reply: Value = serde_json::from_str(line.trim()).expect("replies parse");
        assert_eq!(
            reply.field("ok").unwrap(),
            &Value::Bool(true),
            "reply: {reply:?}"
        );
        reply
    }

    /// Steps one round of one market, returning its record.
    fn step_one(&mut self, market: &str) -> RoundRecord {
        self.send(&format!(
            r#"{{"v":2,"verb":"step","market":"{market}","rounds":1}}"#
        ));
        let round = self.recv_ok();
        assert_eq!(round.field("verb").unwrap(), &Value::Str("round".into()));
        let record =
            RoundRecord::from_value(round.field("record").unwrap()).expect("round records parse");
        let summary = self.recv_ok();
        assert_eq!(summary.field("verb").unwrap(), &Value::Str("step".into()));
        record
    }
}

fn zeroed(records: &[RoundRecord]) -> Vec<RoundRecord> {
    records.iter().map(|r| r.with_zeroed_timing()).collect()
}

/// Isolated single-market reference trajectory via the batch engine.
fn reference(seed: u64, threads: usize) -> Vec<RoundRecord> {
    let spec = tenant_spec(seed);
    let (_, mut state) = market_state(&spec);
    let sweep = if threads <= 1 {
        ScenarioSweep::sequential(seed)
    } else {
        ScenarioSweep::new(ThreadPool::new(threads), seed)
    };
    let report = evolve(&mut state, &evolution_config(&spec), &sweep).unwrap();
    assert_eq!(
        report.rounds.len(),
        ROUNDS,
        "shocked runs hit the round cap"
    );
    zeroed(&report.rounds)
}

/// Interleaves both tenants round by round on one server and returns
/// their trajectories.
fn interleaved_on_server(threads: usize) -> (Vec<RoundRecord>, Vec<RoundRecord>) {
    let server = MarketServer::bind("127.0.0.1:0", threads)
        .unwrap()
        .with_max_markets(2);
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve(&loader));
    let mut client = Client::connect(addr);

    client.send(r#"{"v":2,"verb":"load","market":{"seed":23}}"#);
    let m_a = client.recv_ok();
    assert_eq!(m_a.field("market").unwrap(), &Value::Str("m1".into()));
    client.send(r#"{"v":2,"verb":"load","market":{"seed":91}}"#);
    let m_b = client.recv_ok();
    assert_eq!(m_b.field("market").unwrap(), &Value::Str("m2".into()));

    let mut rounds_a = Vec::new();
    let mut rounds_b = Vec::new();
    for i in 0..ROUNDS {
        // Alternate the stepping order per round, with advise traffic in
        // between — neither the interleaving nor the cache activity may
        // leak into either trajectory.
        if i % 2 == 0 {
            rounds_a.push(client.step_one("m1"));
            client.send(r#"{"v":2,"verb":"advise","market":"m2","asn":1,"top":3}"#);
            client.recv_ok();
            rounds_b.push(client.step_one("m2"));
        } else {
            rounds_b.push(client.step_one("m2"));
            client.send(r#"{"v":2,"verb":"advise","market":"m1","asn":1,"top":3}"#);
            client.recv_ok();
            rounds_a.push(client.step_one("m1"));
        }
    }

    client.send(r#"{"v":2,"verb":"quit"}"#);
    client.recv_ok();
    handle.join().unwrap().unwrap();
    (rounds_a, rounds_b)
}

#[test]
fn interleaved_sessions_match_isolated_trajectories_at_any_thread_count() {
    // Thread-count independence of the references themselves.
    let reference_a = reference(23, 1);
    let reference_b = reference(91, 1);
    assert_eq!(reference(23, 4), reference_a, "4-thread evolve diverged");
    assert_eq!(reference(91, 4), reference_b, "4-thread evolve diverged");
    assert!(
        reference_a != reference_b,
        "the tenants must be genuinely different markets"
    );

    for threads in [1, 4] {
        let (rounds_a, rounds_b) = interleaved_on_server(threads);
        // Byte-identical, not just equal: compare serialized records.
        assert_eq!(
            serde_json::to_string(&zeroed(&rounds_a)).unwrap(),
            serde_json::to_string(&reference_a).unwrap(),
            "market m1 diverged under interleaving at {threads} thread(s)"
        );
        assert_eq!(
            serde_json::to_string(&zeroed(&rounds_b)).unwrap(),
            serde_json::to_string(&reference_b).unwrap(),
            "market m2 diverged under interleaving at {threads} thread(s)"
        );
    }
}
