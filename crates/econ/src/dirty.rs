//! Dirty-row tracking for the dense tables.
//!
//! The dense batch layer ([`FlowMatrix`](crate::FlowMatrix) /
//! [`DenseEconomics`](crate::DenseEconomics)) stores one packed row per
//! AS. Every quantity a candidate-pair evaluation reads lives in the two
//! endpoint rows (plus their row totals), so an incremental consumer
//! only needs to know **which rows changed** since it last looked —
//! entry-level granularity would buy nothing. [`DirtyRows`] is that
//! row-level change journal: mutation hooks mark rows, the incremental
//! discovery engine drains the accumulated set once per round.
//!
//! The tracker is epoch-stamped so a drain is `O(marked)`, not
//! `O(nodes)`: each row records the epoch it was last marked in, and a
//! drain simply advances the epoch. [`DirtyRows::mark_all`] is the
//! conservative escape hatch (used after whole-table perturbations and
//! on freshly built states) — it flags every row without touching any
//! of them.

/// What a [`DirtyRows::drain`] found: either everything (no per-row
/// list was kept) or the sorted set of marked rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirtyDrain {
    /// Every row must be treated as changed.
    All,
    /// Exactly these rows changed (sorted ascending, deduplicated).
    Rows(Vec<u32>),
}

/// An epoch-stamped set of dense-table rows that changed since the last
/// [`drain`](DirtyRows::drain); see the [module docs](self).
#[derive(Debug, Clone)]
pub struct DirtyRows {
    /// Epoch a row was last marked in; `epoch` means "currently dirty".
    stamp: Vec<u32>,
    /// Rows marked in the current epoch, in mark order (deduplicated by
    /// the stamp check, sorted on drain).
    marked: Vec<u32>,
    epoch: u32,
    all: bool,
}

impl DirtyRows {
    /// A tracker for `nodes` rows with **every row initially dirty** —
    /// a consumer that has never drained has never seen any row.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        DirtyRows {
            stamp: vec![0; nodes],
            marked: Vec::new(),
            epoch: 1,
            all: true,
        }
    }

    /// Number of rows tracked.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.stamp.len()
    }

    /// Bytes resident in the journal's stamp and mark lists — feeds the
    /// workspace's memory-budget accounting.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        (self.stamp.capacity() + self.marked.capacity()) * std::mem::size_of::<u32>()
    }

    /// Marks one row as changed. Out-of-range rows are ignored (the
    /// trailing end-host slot of a packed row belongs to its row).
    pub fn mark(&mut self, row: u32) {
        if self.all {
            return;
        }
        let Some(stamp) = self.stamp.get_mut(row as usize) else {
            return;
        };
        if *stamp != self.epoch {
            *stamp = self.epoch;
            self.marked.push(row);
        }
    }

    /// Marks every row as changed without touching per-row state — the
    /// conservative hook for whole-table mutations (perturbation passes,
    /// table rebuilds). Any superset of the true change set is sound for
    /// an exact incremental consumer; it only costs re-evaluations.
    pub fn mark_all(&mut self) {
        self.all = true;
        self.marked.clear();
    }

    /// `true` if the row changed since the last drain.
    #[must_use]
    pub fn is_dirty(&self, row: u32) -> bool {
        self.all || self.stamp.get(row as usize) == Some(&self.epoch)
    }

    /// `true` if every row is flagged via [`mark_all`](Self::mark_all).
    #[must_use]
    pub fn all_dirty(&self) -> bool {
        self.all
    }

    /// `true` if nothing changed since the last drain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        !self.all && self.marked.is_empty()
    }

    /// Takes the accumulated change set and resets the tracker to
    /// "nothing dirty".
    pub fn drain(&mut self) -> DirtyDrain {
        let drained = if self.all {
            self.all = false;
            pan_telemetry::counter("econ.dirty.drain_all").inc();
            DirtyDrain::All
        } else {
            let mut rows = std::mem::take(&mut self.marked);
            rows.sort_unstable();
            pan_telemetry::histogram("econ.dirty.drain_rows").record(rows.len() as u64);
            DirtyDrain::Rows(rows)
        };
        self.advance_epoch();
        drained
    }

    fn advance_epoch(&mut self) {
        self.marked.clear();
        if self.epoch == u32::MAX {
            // Stamp wrap-around: reset every stamp so no stale epoch can
            // alias the restarted counter.
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_fresh_tracker_is_all_dirty_until_drained() {
        let mut dirty = DirtyRows::new(4);
        assert!(dirty.all_dirty());
        assert!(dirty.is_dirty(0) && dirty.is_dirty(3));
        assert!(!dirty.is_empty());
        assert_eq!(dirty.drain(), DirtyDrain::All);
        assert!(dirty.is_empty());
        assert!(!dirty.is_dirty(0));
    }

    #[test]
    fn marks_accumulate_sorted_and_deduplicated() {
        let mut dirty = DirtyRows::new(8);
        dirty.drain();
        for row in [5, 1, 5, 7, 1, 0] {
            dirty.mark(row);
        }
        assert!(dirty.is_dirty(1) && dirty.is_dirty(7));
        assert!(!dirty.is_dirty(2));
        assert_eq!(dirty.drain(), DirtyDrain::Rows(vec![0, 1, 5, 7]));
        // The drain reset everything.
        assert!(!dirty.is_dirty(1));
        assert_eq!(dirty.drain(), DirtyDrain::Rows(Vec::new()));
    }

    #[test]
    fn mark_all_supersedes_individual_marks() {
        let mut dirty = DirtyRows::new(3);
        dirty.drain();
        dirty.mark(1);
        dirty.mark_all();
        dirty.mark(2); // absorbed: everything is already dirty
        assert!(dirty.is_dirty(0));
        assert_eq!(dirty.drain(), DirtyDrain::All);
        assert_eq!(dirty.drain(), DirtyDrain::Rows(Vec::new()));
    }

    #[test]
    fn out_of_range_marks_are_ignored() {
        let mut dirty = DirtyRows::new(2);
        dirty.drain();
        dirty.mark(9);
        assert!(dirty.is_empty());
        assert!(!dirty.is_dirty(9));
        assert_eq!(dirty.drain(), DirtyDrain::Rows(Vec::new()));
    }

    #[test]
    fn epochs_do_not_alias_across_many_drains() {
        let mut dirty = DirtyRows::new(2);
        dirty.drain();
        for round in 0..100u32 {
            dirty.mark(round % 2);
            assert_eq!(dirty.drain(), DirtyDrain::Rows(vec![round % 2]));
            assert!(dirty.is_empty(), "round {round} left residue");
        }
    }
}
