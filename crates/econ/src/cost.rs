use serde::{Deserialize, Serialize};

use crate::{EconError, Result};

/// An internal-cost function `i_X(f_X)`: non-negative and monotonically
/// increasing in the total flow through the AS (§III-A).
///
/// Internal cost covers network equipment, power, and operations
/// attributable to carried traffic.
///
/// # Example
///
/// ```
/// use pan_econ::CostFunction;
///
/// let cost = CostFunction::affine(10.0, 0.5)?;
/// assert_eq!(cost.eval(0.0)?, 10.0);
/// assert_eq!(cost.eval(20.0)?, 20.0);
/// # Ok::<(), pan_econ::EconError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum CostFunction {
    /// No internal cost.
    #[default]
    Zero,
    /// `i(f) = rate · f`.
    Linear {
        /// Cost per traffic unit.
        rate: f64,
    },
    /// `i(f) = base + rate · f` — fixed infrastructure plus usage cost.
    Affine {
        /// Flow-independent base cost.
        base: f64,
        /// Cost per traffic unit.
        rate: f64,
    },
    /// `i(f) = coef · f^exp` with `exp ≥ 1` — convex costs capturing
    /// capacity upgrades under load.
    PowerLaw {
        /// Multiplicative coefficient.
        coef: f64,
        /// Exponent (at least 1).
        exp: f64,
    },
}

impl CostFunction {
    /// Creates `i(f) = rate · f`.
    ///
    /// # Errors
    ///
    /// Returns [`EconError::InvalidParameter`] for a negative or
    /// non-finite rate.
    pub fn linear(rate: f64) -> Result<Self> {
        validate("rate", rate)?;
        Ok(CostFunction::Linear { rate })
    }

    /// Creates `i(f) = base + rate · f`.
    ///
    /// # Errors
    ///
    /// Returns [`EconError::InvalidParameter`] for negative or non-finite
    /// parameters.
    pub fn affine(base: f64, rate: f64) -> Result<Self> {
        validate("base", base)?;
        validate("rate", rate)?;
        Ok(CostFunction::Affine { base, rate })
    }

    /// Creates `i(f) = coef · f^exp`.
    ///
    /// # Errors
    ///
    /// Returns [`EconError::InvalidParameter`] unless `coef ≥ 0` and
    /// `exp ≥ 1` (monotonicity requires a non-shrinking exponent).
    pub fn power_law(coef: f64, exp: f64) -> Result<Self> {
        validate("coef", coef)?;
        if !exp.is_finite() || exp < 1.0 {
            return Err(EconError::InvalidParameter {
                name: "exp",
                value: exp,
            });
        }
        Ok(CostFunction::PowerLaw { coef, exp })
    }

    /// The constant marginal rate of the cost function, if it has one
    /// (cost *deltas* of linear and affine functions depend only on the
    /// flow delta). `None` for genuinely nonlinear costs.
    #[must_use]
    pub fn linear_rate(self) -> Option<f64> {
        match self {
            CostFunction::Zero => Some(0.0),
            CostFunction::Linear { rate } | CostFunction::Affine { rate, .. } => Some(rate),
            CostFunction::PowerLaw { coef, exp } => {
                if coef == 0.0 {
                    Some(0.0)
                } else if exp == 1.0 {
                    Some(coef)
                } else {
                    None
                }
            }
        }
    }

    /// Re-runs the constructor validation — the deserialization hook for
    /// cost functions read from an untrusted wire format, where the
    /// derive bypasses the constructors.
    ///
    /// # Errors
    ///
    /// Returns [`EconError::InvalidParameter`] for parameters outside the
    /// constructor domain.
    pub fn validate_params(self) -> Result<()> {
        match self {
            CostFunction::Zero => Ok(()),
            CostFunction::Linear { rate } => Self::linear(rate).map(|_| ()),
            CostFunction::Affine { base, rate } => Self::affine(base, rate).map(|_| ()),
            CostFunction::PowerLaw { coef, exp } => Self::power_law(coef, exp).map(|_| ()),
        }
    }

    /// Evaluates the internal cost at total flow `f`.
    ///
    /// # Errors
    ///
    /// Returns [`EconError::InvalidFlow`] for a negative or non-finite flow.
    pub fn eval(self, flow: f64) -> Result<f64> {
        if !flow.is_finite() || flow < 0.0 {
            return Err(EconError::InvalidFlow { volume: flow });
        }
        Ok(match self {
            CostFunction::Zero => 0.0,
            CostFunction::Linear { rate } => rate * flow,
            CostFunction::Affine { base, rate } => base + rate * flow,
            CostFunction::PowerLaw { coef, exp } => coef * flow.powf(exp),
        })
    }
}

fn validate(name: &'static str, value: f64) -> Result<()> {
    if !value.is_finite() || value < 0.0 {
        return Err(EconError::InvalidParameter { name, value });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_validate() {
        assert!(CostFunction::linear(-1.0).is_err());
        assert!(CostFunction::affine(-1.0, 0.0).is_err());
        assert!(CostFunction::affine(0.0, f64::NAN).is_err());
        assert!(CostFunction::power_law(1.0, 0.5).is_err());
        assert!(CostFunction::power_law(1.0, 1.0).is_ok());
    }

    #[test]
    fn zero_costs_nothing() {
        assert_eq!(CostFunction::Zero.eval(1e9).unwrap(), 0.0);
        assert_eq!(CostFunction::default().eval(5.0).unwrap(), 0.0);
    }

    #[test]
    fn evaluations() {
        assert_eq!(CostFunction::linear(2.0).unwrap().eval(3.0).unwrap(), 6.0);
        assert_eq!(
            CostFunction::affine(1.0, 2.0).unwrap().eval(3.0).unwrap(),
            7.0
        );
        assert_eq!(
            CostFunction::power_law(2.0, 2.0)
                .unwrap()
                .eval(3.0)
                .unwrap(),
            18.0
        );
    }

    #[test]
    fn rejects_bad_flow() {
        assert!(CostFunction::Zero.eval(-1.0).is_err());
        assert!(CostFunction::Zero.eval(f64::NAN).is_err());
    }

    fn arbitrary_cost() -> impl Strategy<Value = CostFunction> {
        prop_oneof![
            Just(CostFunction::Zero),
            (0.0..10.0f64).prop_map(|r| CostFunction::linear(r).unwrap()),
            (0.0..10.0f64, 0.0..10.0f64).prop_map(|(b, r)| CostFunction::affine(b, r).unwrap()),
            (0.0..10.0f64, 1.0..3.0f64).prop_map(|(c, e)| CostFunction::power_law(c, e).unwrap()),
        ]
    }

    proptest! {
        #[test]
        fn cost_is_monotone_and_nonnegative(
            cost in arbitrary_cost(),
            f in 0.0..1e6f64,
            delta in 0.0..1e6f64,
        ) {
            let lo = cost.eval(f).unwrap();
            let hi = cost.eval(f + delta).unwrap();
            prop_assert!(lo >= 0.0);
            prop_assert!(hi >= lo - 1e-9);
        }
    }
}
