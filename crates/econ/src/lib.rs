//! Economic model of AS interconnection (§III-A of the paper).
//!
//! This crate formalizes the business calculation of an autonomous system:
//!
//! - [`PricingFunction`]: the per-link pricing function `p(f) = α·f^β`
//!   covering flat-rate (`β = 0`), pay-per-usage (`β = 1`), and
//!   congestion pricing (`β > 1`).
//! - [`CostFunction`]: non-negative, monotonically increasing internal-cost
//!   functions `i_X(f_X)`.
//! - [`FlowVec`] and [`SegmentFlows`]: per-neighbor flow decomposition
//!   `f_XY` and direction-independent path-segment volumes `f_XYZ`.
//! - [`PricingBook`]: the pricing functions of all provider–customer links
//!   (including the virtual end-host link `ℓ'` of each AS).
//! - [`BusinessModel`]: revenue, cost, and utility per Eq. (1):
//!   `U_X(f_X) = r_X(f_X) − c_X(f_X)`.
//! - [`traffic`]: gravity-model traffic matrices and path-based flow
//!   accounting to derive realistic baseline flows.
//!
//! # Example
//!
//! The paper's first worked example: for transit AS `D` in Fig. 1 to be
//! profitable, revenue from its customer `H` and its end-hosts must cover
//! the charge from provider `A` plus internal cost.
//!
//! ```
//! use pan_econ::{BusinessModel, CostFunction, FlowVec, PricingBook, PricingFunction};
//! use pan_topology::fixtures::{asn, fig1};
//!
//! let graph = fig1();
//! let (a, d, h) = (asn('A'), asn('D'), asn('H'));
//!
//! let mut book = PricingBook::new();
//! book.set_transit_price(a, d, PricingFunction::per_usage(2.0)?); // A charges D
//! book.set_transit_price(d, h, PricingFunction::per_usage(3.0)?); // D charges H
//!
//! let mut model = BusinessModel::new(graph, book);
//! model.set_internal_cost(d, CostFunction::linear(0.1)?);
//!
//! let mut flows = FlowVec::new(d);
//! flows.set(a, 10.0); // 10 units exchanged with provider A
//! flows.set(h, 10.0); // 10 units exchanged with customer H
//!
//! let utility = model.utility(&flows)?;
//! // revenue 3.0·10 = 30, provider cost 2.0·10 = 20, internal 0.1·20 = 2.
//! assert!((utility - 8.0).abs() < 1e-9);
//! # Ok::<(), pan_econ::EconError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod business;
mod cost;
mod error;
mod flow;
mod pricing;

pub mod dense;
pub mod dirty;
pub mod market;
pub mod traffic;

pub use business::{BusinessModel, PricingBook};
pub use cost::CostFunction;
pub use dense::{DenseEconomics, FlowMatrix, PricedEntry};
pub use dirty::{DirtyDrain, DirtyRows};
pub use error::EconError;
pub use flow::{FlowVec, SegmentFlows, SegmentKey};
pub use market::MarketTier;
pub use pricing::PricingFunction;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, EconError>;
