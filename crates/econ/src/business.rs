use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use pan_topology::{AsGraph, Asn};

use crate::{CostFunction, FlowVec, PricingFunction, Result};

/// The pricing functions of all provider–customer links.
///
/// Keys are directed `(provider, customer)` pairs. The **virtual end-host
/// link** `ℓ' = (X, Γ_X)` of an AS `X` is stored under `(X, X)`, matching
/// the [`FlowVec`] convention. Links without an explicit entry fall back
/// to the book's default function (initially [`PricingFunction::free`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PricingBook {
    prices: HashMap<(Asn, Asn), PricingFunction>,
    default: PricingFunction,
}

impl Default for PricingBook {
    fn default() -> Self {
        PricingBook {
            prices: HashMap::new(),
            default: PricingFunction::free(),
        }
    }
}

impl PricingBook {
    /// Creates an empty book whose default price is free.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty book with an explicit fallback pricing function.
    #[must_use]
    pub fn with_default(default: PricingFunction) -> Self {
        PricingBook {
            prices: HashMap::new(),
            default,
        }
    }

    /// Sets the price `provider` charges `customer`.
    pub fn set_transit_price(&mut self, provider: Asn, customer: Asn, price: PricingFunction) {
        self.prices.insert((provider, customer), price);
    }

    /// Sets the price AS `asn` charges its own end-hosts (virtual link `ℓ'`).
    pub fn set_end_host_price(&mut self, asn: Asn, price: PricingFunction) {
        self.prices.insert((asn, asn), price);
    }

    /// The pricing function of the link `provider → customer`.
    #[must_use]
    pub fn transit_price(&self, provider: Asn, customer: Asn) -> PricingFunction {
        self.prices
            .get(&(provider, customer))
            .copied()
            .unwrap_or(self.default)
    }

    /// The end-host pricing function of `asn`.
    #[must_use]
    pub fn end_host_price(&self, asn: Asn) -> PricingFunction {
        self.transit_price(asn, asn)
    }

    /// Returns `true` if an explicit entry exists for `provider → customer`.
    #[must_use]
    pub fn has_explicit_price(&self, provider: Asn, customer: Asn) -> bool {
        self.prices.contains_key(&(provider, customer))
    }

    /// Number of explicit entries in the book.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prices.len()
    }

    /// Returns `true` if the book has no explicit entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prices.is_empty()
    }
}

/// The business calculation of Eq. (1): revenue, cost, and utility of an
/// AS given its flow decomposition.
///
/// ```text
/// r_X(f_X) = Σ_{Y ∈ γ(X)} p_XY(f_XY)            (+ end-host revenue)
/// c_X(f_X) = i_X(f_X) + Σ_{Y ∈ π(X)} p_YX(f_XY)
/// U_X(f_X) = r_X(f_X) − c_X(f_X)
/// ```
///
/// Peering links are settlement-free and contribute neither revenue nor
/// link cost (they do contribute internal cost through the total flow).
#[derive(Debug, Clone)]
pub struct BusinessModel {
    graph: AsGraph,
    book: PricingBook,
    internal_costs: HashMap<Asn, CostFunction>,
}

impl BusinessModel {
    /// Creates a model over a topology and a pricing book.
    ///
    /// All ASes start with zero internal cost; see
    /// [`set_internal_cost`](Self::set_internal_cost).
    #[must_use]
    pub fn new(graph: AsGraph, book: PricingBook) -> Self {
        BusinessModel {
            graph,
            book,
            internal_costs: HashMap::new(),
        }
    }

    /// The underlying topology.
    #[must_use]
    pub fn graph(&self) -> &AsGraph {
        &self.graph
    }

    /// The pricing book.
    #[must_use]
    pub fn book(&self) -> &PricingBook {
        &self.book
    }

    /// Mutable access to the pricing book.
    pub fn book_mut(&mut self) -> &mut PricingBook {
        &mut self.book
    }

    /// Sets the internal-cost function of an AS.
    pub fn set_internal_cost(&mut self, asn: Asn, cost: CostFunction) {
        self.internal_costs.insert(asn, cost);
    }

    /// The internal-cost function of an AS (defaults to zero).
    #[must_use]
    pub fn internal_cost(&self, asn: Asn) -> CostFunction {
        self.internal_costs
            .get(&asn)
            .copied()
            .unwrap_or(CostFunction::Zero)
    }

    /// Revenue `r_X(f_X)`: customer transit charges plus end-host revenue
    /// (Eq. 1a).
    ///
    /// # Errors
    ///
    /// Returns [`EconError::Topology`](crate::EconError::Topology) if the AS is unknown and
    /// [`EconError::InvalidFlow`](crate::EconError::InvalidFlow) for invalid volumes.
    pub fn revenue(&self, flows: &FlowVec) -> Result<f64> {
        let x = flows.asn();
        self.graph.index_of(x)?;
        let mut revenue = 0.0;
        for customer in self.graph.customers(x) {
            revenue += self
                .book
                .transit_price(x, customer)
                .price(flows.get(customer))?;
        }
        revenue += self.book.end_host_price(x).price(flows.end_host_flow())?;
        Ok(revenue)
    }

    /// Cost `c_X(f_X)`: internal cost plus provider transit charges (Eq. 1b).
    ///
    /// # Errors
    ///
    /// Returns [`EconError::Topology`](crate::EconError::Topology) if the AS is unknown and
    /// [`EconError::InvalidFlow`](crate::EconError::InvalidFlow) for invalid volumes.
    pub fn cost(&self, flows: &FlowVec) -> Result<f64> {
        let x = flows.asn();
        self.graph.index_of(x)?;
        let mut cost = self.internal_cost(x).eval(flows.total())?;
        for provider in self.graph.providers(x) {
            cost += self
                .book
                .transit_price(provider, x)
                .price(flows.get(provider))?;
        }
        Ok(cost)
    }

    /// Utility (profit) `U_X(f_X) = r_X(f_X) − c_X(f_X)` (Eq. 1).
    ///
    /// # Errors
    ///
    /// Same as [`revenue`](Self::revenue) and [`cost`](Self::cost).
    pub fn utility(&self, flows: &FlowVec) -> Result<f64> {
        Ok(self.revenue(flows)? - self.cost(flows)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EconError;
    use pan_topology::fixtures::{asn, fig1};

    /// Standard setup used throughout: per-usage pricing on all Fig. 1
    /// transit links and on end-hosts of D.
    fn model() -> BusinessModel {
        let g = fig1();
        let mut book = PricingBook::new();
        for (p, c, rate) in [
            ('A', 'D', 2.0),
            ('B', 'E', 2.0),
            ('B', 'G', 2.0),
            ('D', 'H', 3.0),
            ('E', 'I', 3.0),
        ] {
            book.set_transit_price(asn(p), asn(c), PricingFunction::per_usage(rate).unwrap());
        }
        book.set_end_host_price(asn('D'), PricingFunction::per_usage(4.0).unwrap());
        let mut m = BusinessModel::new(g, book);
        m.set_internal_cost(asn('D'), CostFunction::linear(0.1).unwrap());
        m
    }

    #[test]
    fn revenue_counts_customers_and_end_hosts() {
        let m = model();
        let mut f = FlowVec::new(asn('D'));
        f.set(asn('H'), 10.0); // customer H: 3.0/unit
        f.set_end_host_flow(5.0); // end-hosts: 4.0/unit
        f.set(asn('A'), 15.0); // provider flow — not revenue
        assert_eq!(m.revenue(&f).unwrap(), 30.0 + 20.0);
    }

    #[test]
    fn cost_counts_providers_and_internal() {
        let m = model();
        let mut f = FlowVec::new(asn('D'));
        f.set(asn('A'), 15.0); // provider A charges 2.0/unit
        f.set(asn('H'), 10.0);
        // internal: 0.1 × total (25)
        let expected = 30.0 + 0.1 * 25.0;
        assert!((m.cost(&f).unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn peering_flow_contributes_only_internal_cost() {
        let m = model();
        let mut f = FlowVec::new(asn('D'));
        f.set(asn('E'), 10.0); // peer flow
        assert_eq!(m.revenue(&f).unwrap(), 0.0);
        assert!((m.cost(&f).unwrap() - 1.0).abs() < 1e-9); // 0.1 × 10
    }

    #[test]
    fn paper_profitability_condition_for_d() {
        // Eq. in §III-A: p_DH(f_DH) + p_DΓ(f_DΓ) > p_AD(f_AD) + i_D(f_D)
        // must hold for D to profit.
        let m = model();
        let mut f = FlowVec::new(asn('D'));
        f.set(asn('H'), 10.0);
        f.set_end_host_flow(5.0);
        f.set(asn('A'), 15.0);
        let revenue = m.revenue(&f).unwrap();
        let cost = m.cost(&f).unwrap();
        let utility = m.utility(&f).unwrap();
        assert!((utility - (revenue - cost)).abs() < 1e-12);
        assert!(utility > 0.0, "D should profit in this configuration");
    }

    #[test]
    fn unknown_as_is_an_error() {
        let m = model();
        let f = FlowVec::new(Asn::new(999));
        assert!(matches!(m.utility(&f), Err(EconError::Topology(_))));
    }

    #[test]
    fn default_pricing_is_free() {
        let book = PricingBook::new();
        assert_eq!(book.transit_price(Asn::new(1), Asn::new(2)).alpha(), 0.0);
        assert!(!book.has_explicit_price(Asn::new(1), Asn::new(2)));
    }

    #[test]
    fn with_default_pricing_applies_to_unset_links() {
        let book = PricingBook::with_default(PricingFunction::per_usage(1.5).unwrap());
        let p = book.transit_price(Asn::new(1), Asn::new(2));
        assert_eq!(p.price(2.0).unwrap(), 3.0);
    }

    #[test]
    fn flat_rate_provider_fee_charged_even_at_zero_flow() {
        let g = fig1();
        let mut book = PricingBook::new();
        book.set_transit_price(
            asn('A'),
            asn('D'),
            PricingFunction::flat_rate(100.0).unwrap(),
        );
        let m = BusinessModel::new(g, book);
        let f = FlowVec::new(asn('D'));
        assert_eq!(m.cost(&f).unwrap(), 100.0);
    }
}
