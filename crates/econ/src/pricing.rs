use serde::{Deserialize, Serialize};

use crate::{EconError, Result};

/// A provider–customer pricing function `p(f) = α·f^β` (§III-A).
///
/// The exponent selects the pricing regime:
///
/// | `β`      | regime                      | constructor |
/// |----------|-----------------------------|-------------|
/// | `0`      | flat rate (fee `α`)         | [`flat_rate`](Self::flat_rate) |
/// | `1`      | pay-per-usage (unit cost `α`)| [`per_usage`](Self::per_usage) |
/// | `> 1`    | congestion pricing          | [`congestion`](Self::congestion) |
///
/// The flow argument `f` can be interpreted as median, average, or
/// 95th-percentile volume — whatever the billing period uses; the model is
/// agnostic.
///
/// # Example
///
/// ```
/// use pan_econ::PricingFunction;
///
/// let flat = PricingFunction::flat_rate(100.0)?;
/// assert_eq!(flat.price(0.0)?, 100.0);
/// assert_eq!(flat.price(42.0)?, 100.0);
///
/// let usage = PricingFunction::per_usage(2.5)?;
/// assert_eq!(usage.price(4.0)?, 10.0);
///
/// let congestion = PricingFunction::congestion(1.0, 2.0)?;
/// assert_eq!(congestion.price(3.0)?, 9.0);
/// # Ok::<(), pan_econ::EconError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PricingFunction {
    alpha: f64,
    beta: f64,
}

impl PricingFunction {
    /// Creates a pricing function with explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`EconError::InvalidParameter`] unless `α ≥ 0`, `β ≥ 0`,
    /// and both are finite.
    pub fn new(alpha: f64, beta: f64) -> Result<Self> {
        if !alpha.is_finite() || alpha < 0.0 {
            return Err(EconError::InvalidParameter {
                name: "alpha",
                value: alpha,
            });
        }
        if !beta.is_finite() || beta < 0.0 {
            return Err(EconError::InvalidParameter {
                name: "beta",
                value: beta,
            });
        }
        Ok(PricingFunction { alpha, beta })
    }

    /// Flat-rate pricing: `p(f) = fee` regardless of volume (`β = 0`).
    ///
    /// # Errors
    ///
    /// Returns [`EconError::InvalidParameter`] for a negative or
    /// non-finite fee.
    pub fn flat_rate(fee: f64) -> Result<Self> {
        PricingFunction::new(fee, 0.0)
    }

    /// Pay-per-usage pricing: `p(f) = unit_cost · f` (`β = 1`).
    ///
    /// # Errors
    ///
    /// Returns [`EconError::InvalidParameter`] for a negative or
    /// non-finite unit cost.
    pub fn per_usage(unit_cost: f64) -> Result<Self> {
        PricingFunction::new(unit_cost, 1.0)
    }

    /// Congestion pricing: superlinear `p(f) = α·f^β` with `β > 1`.
    ///
    /// # Errors
    ///
    /// Returns [`EconError::InvalidParameter`] unless `α ≥ 0` and `β > 1`.
    pub fn congestion(alpha: f64, beta: f64) -> Result<Self> {
        if !beta.is_finite() || beta <= 1.0 {
            return Err(EconError::InvalidParameter {
                name: "beta",
                value: beta,
            });
        }
        PricingFunction::new(alpha, beta)
    }

    /// Zero pricing (settlement-free): `p(f) = 0`.
    #[must_use]
    pub fn free() -> Self {
        PricingFunction {
            alpha: 0.0,
            beta: 0.0,
        }
    }

    /// The same pricing curve with its coefficient scaled:
    /// `α·f^β → (factor·α)·f^β`. The market-shock primitive — a price
    /// rises or falls uniformly across all volumes without changing the
    /// curve's shape.
    ///
    /// # Errors
    ///
    /// Returns [`EconError::InvalidParameter`] for a negative or
    /// non-finite factor.
    pub fn scaled(self, factor: f64) -> Result<Self> {
        if !factor.is_finite() || factor < 0.0 {
            return Err(EconError::InvalidParameter {
                name: "factor",
                value: factor,
            });
        }
        Ok(PricingFunction {
            alpha: self.alpha * factor,
            beta: self.beta,
        })
    }

    /// Re-runs the constructor validation — the deserialization hook for
    /// pricing functions read from an untrusted wire format, where the
    /// derive bypasses [`new`](Self::new).
    ///
    /// # Errors
    ///
    /// Returns [`EconError::InvalidParameter`] for parameters outside the
    /// constructor domain.
    pub fn validate_params(self) -> Result<()> {
        Self::new(self.alpha, self.beta).map(|_| ())
    }

    /// The coefficient `α`.
    #[must_use]
    pub const fn alpha(self) -> f64 {
        self.alpha
    }

    /// The exponent `β`.
    #[must_use]
    pub const fn beta(self) -> f64 {
        self.beta
    }

    /// Evaluates the price for flow volume `f`.
    ///
    /// By convention `p(0) = α` for flat-rate functions (`β = 0`): a flat
    /// fee is owed even with zero traffic, matching real transit contracts.
    ///
    /// # Errors
    ///
    /// Returns [`EconError::InvalidFlow`] for a negative or non-finite
    /// volume.
    pub fn price(self, flow: f64) -> Result<f64> {
        if !flow.is_finite() || flow < 0.0 {
            return Err(EconError::InvalidFlow { volume: flow });
        }
        // 0^0 = 1 in IEEE powf, which gives the flat-fee convention for free.
        Ok(self.alpha * flow.powf(self.beta))
    }

    /// The constant marginal rate of the function, if it has one: `α` for
    /// pay-per-usage (`β = 1`) and `0` for flat-rate (`β = 0`, where the
    /// fee does not depend on volume). `None` for genuinely nonlinear
    /// pricing — batch evaluators use this to collapse price *deltas*
    /// into a single per-party coefficient instead of re-pricing every
    /// entry per candidate operating point.
    #[must_use]
    pub fn linear_rate(self) -> Option<f64> {
        if self.beta == 1.0 {
            Some(self.alpha)
        } else if self.beta == 0.0 || self.alpha == 0.0 {
            Some(0.0)
        } else {
            None
        }
    }

    /// Marginal price `dp/df` at volume `f` (used by optimizers).
    ///
    /// # Errors
    ///
    /// Returns [`EconError::InvalidFlow`] for a negative or non-finite
    /// volume.
    pub fn marginal(self, flow: f64) -> Result<f64> {
        if !flow.is_finite() || flow < 0.0 {
            return Err(EconError::InvalidFlow { volume: flow });
        }
        if self.beta == 0.0 {
            return Ok(0.0);
        }
        Ok(self.alpha * self.beta * flow.powf(self.beta - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_validate() {
        assert!(PricingFunction::new(-1.0, 1.0).is_err());
        assert!(PricingFunction::new(1.0, -0.5).is_err());
        assert!(PricingFunction::new(f64::NAN, 1.0).is_err());
        assert!(PricingFunction::congestion(1.0, 1.0).is_err());
        assert!(PricingFunction::congestion(1.0, 0.5).is_err());
        assert!(PricingFunction::congestion(1.0, 2.0).is_ok());
    }

    #[test]
    fn flat_rate_ignores_volume() {
        let p = PricingFunction::flat_rate(50.0).unwrap();
        assert_eq!(p.price(0.0).unwrap(), 50.0);
        assert_eq!(p.price(1e6).unwrap(), 50.0);
        assert_eq!(p.marginal(10.0).unwrap(), 0.0);
    }

    #[test]
    fn per_usage_is_linear() {
        let p = PricingFunction::per_usage(2.0).unwrap();
        assert_eq!(p.price(0.0).unwrap(), 0.0);
        assert_eq!(p.price(7.0).unwrap(), 14.0);
        assert_eq!(p.marginal(7.0).unwrap(), 2.0);
    }

    #[test]
    fn congestion_is_superlinear() {
        let p = PricingFunction::congestion(1.0, 2.0).unwrap();
        assert!(p.price(4.0).unwrap() > 2.0 * p.price(2.0).unwrap());
    }

    #[test]
    fn free_is_zero_everywhere() {
        let p = PricingFunction::free();
        assert_eq!(p.price(123.0).unwrap(), 0.0);
    }

    #[test]
    fn rejects_bad_flow() {
        let p = PricingFunction::per_usage(1.0).unwrap();
        assert!(p.price(-1.0).is_err());
        assert!(p.price(f64::NAN).is_err());
        assert!(p.marginal(f64::INFINITY).is_err());
    }

    proptest! {
        #[test]
        fn price_is_monotone_in_flow(
            alpha in 0.0..100.0f64,
            beta in 0.0..3.0f64,
            f1 in 0.0..1e6f64,
            delta in 0.0..1e6f64,
        ) {
            let p = PricingFunction::new(alpha, beta).unwrap();
            let lo = p.price(f1).unwrap();
            let hi = p.price(f1 + delta).unwrap();
            prop_assert!(hi >= lo - 1e-9);
        }

        #[test]
        fn price_is_nonnegative(
            alpha in 0.0..100.0f64,
            beta in 0.0..3.0f64,
            f in 0.0..1e6f64,
        ) {
            let p = PricingFunction::new(alpha, beta).unwrap();
            prop_assert!(p.price(f).unwrap() >= 0.0);
        }
    }
}
