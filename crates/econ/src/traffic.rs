//! Traffic matrices and path-based flow accounting.
//!
//! Agreement evaluation needs realistic *baseline* flows `f_X` for the
//! parties. This module provides a gravity-model traffic matrix (demand
//! between two ASes proportional to the product of their sizes) and a
//! router that accumulates a demand along an AS path into the per-AS
//! [`FlowVec`]s and the per-segment [`SegmentFlows`] used by the paper's
//! business calculations.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use pan_topology::{AsGraph, Asn};

use crate::{EconError, FlowVec, Result, SegmentFlows};

/// A sparse traffic matrix: demand volumes between ordered AS pairs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    demands: BTreeMap<(Asn, Asn), f64>,
}

impl TrafficMatrix {
    /// Creates an empty matrix.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the demand from `src` to `dst`.
    ///
    /// # Errors
    ///
    /// Returns [`EconError::InvalidFlow`] for negative or non-finite volumes.
    pub fn set(&mut self, src: Asn, dst: Asn, volume: f64) -> Result<()> {
        if !volume.is_finite() || volume < 0.0 {
            return Err(EconError::InvalidFlow { volume });
        }
        self.demands.insert((src, dst), volume);
        Ok(())
    }

    /// The demand from `src` to `dst` (0 if absent).
    #[must_use]
    pub fn get(&self, src: Asn, dst: Asn) -> f64 {
        self.demands.get(&(src, dst)).copied().unwrap_or(0.0)
    }

    /// Iterates over `((src, dst), volume)` entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = ((Asn, Asn), f64)> + '_ {
        self.demands.iter().map(|(&k, &v)| (k, v))
    }

    /// Total demand over all pairs.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.demands.values().sum()
    }

    /// Number of non-default entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.demands.len()
    }

    /// Returns `true` if the matrix has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.demands.is_empty()
    }

    /// Builds a gravity-model matrix: `demand(s, d) = scale · w_s · w_d`
    /// for all ordered pairs of distinct ASes with positive weight.
    ///
    /// Weights are typically AS degree or prefix count. Pairs with zero
    /// product are omitted to keep the matrix sparse.
    ///
    /// # Errors
    ///
    /// Returns [`EconError::InvalidFlow`] if any weight or the scale is
    /// negative or non-finite.
    pub fn gravity(weights: &HashMap<Asn, f64>, scale: f64) -> Result<Self> {
        if !scale.is_finite() || scale < 0.0 {
            return Err(EconError::InvalidFlow { volume: scale });
        }
        for (_, &w) in weights.iter() {
            if !w.is_finite() || w < 0.0 {
                return Err(EconError::InvalidFlow { volume: w });
            }
        }
        let mut sorted: Vec<(Asn, f64)> = weights.iter().map(|(&a, &w)| (a, w)).collect();
        sorted.sort_unstable_by_key(|&(a, _)| a);
        let mut matrix = TrafficMatrix::new();
        for &(s, ws) in &sorted {
            for &(d, wd) in &sorted {
                if s != d {
                    let volume = scale * ws * wd;
                    if volume > 0.0 {
                        matrix.demands.insert((s, d), volume);
                    }
                }
            }
        }
        Ok(matrix)
    }
}

/// Accumulates per-AS flows and per-segment flows as demands are routed
/// along explicit AS paths.
#[derive(Debug, Clone, Default)]
pub struct FlowAccumulator {
    flows: HashMap<Asn, FlowVec>,
    segments: SegmentFlows,
}

impl FlowAccumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Routes `volume` units along `path`, updating:
    ///
    /// - `f_XY` for every on-path AS `X` and its on-path neighbor(s) `Y`,
    /// - end-host flow at the source and destination ASes,
    /// - `f_XYZ` for every consecutive AS triple.
    ///
    /// # Errors
    ///
    /// Returns [`EconError::InvalidFlow`] for bad volumes and
    /// [`EconError::Topology`] if consecutive path ASes are not adjacent.
    pub fn route(&mut self, graph: &AsGraph, path: &[Asn], volume: f64) -> Result<()> {
        if !volume.is_finite() || volume < 0.0 {
            return Err(EconError::InvalidFlow { volume });
        }
        if path.len() < 2 || volume == 0.0 {
            return Ok(());
        }
        for pair in path.windows(2) {
            if graph.link_between(pair[0], pair[1]).is_none() {
                return Err(pan_topology::TopologyError::UnknownLink {
                    a: pair[0],
                    b: pair[1],
                }
                .into());
            }
        }
        // Per-neighbor flows: each AS sees the volume on each incident
        // on-path link; end-hosts terminate the flow at both ends.
        for (i, &x) in path.iter().enumerate() {
            let entry = self.flows.entry(x).or_insert_with(|| FlowVec::new(x));
            if i > 0 {
                entry.add(path[i - 1], volume);
            }
            if i + 1 < path.len() {
                entry.add(path[i + 1], volume);
            }
        }
        let src_entry = self
            .flows
            .get_mut(&path[0])
            .expect("source flow vector was created above");
        let src = path[0];
        src_entry.add(src, volume);
        let dst = *path.last().expect("path has at least two hops");
        let dst_entry = self.flows.entry(dst).or_insert_with(|| FlowVec::new(dst));
        dst_entry.add(dst, volume);

        // Segment flows for every consecutive triple.
        for triple in path.windows(3) {
            self.segments.add(triple[0], triple[1], triple[2], volume);
        }
        Ok(())
    }

    /// The accumulated flow vector of an AS (empty if it carried nothing).
    #[must_use]
    pub fn flows_of(&self, asn: Asn) -> FlowVec {
        self.flows
            .get(&asn)
            .cloned()
            .unwrap_or_else(|| FlowVec::new(asn))
    }

    /// The accumulated segment flows.
    #[must_use]
    pub fn segments(&self) -> &SegmentFlows {
        &self.segments
    }

    /// Number of ASes that carried at least one routed flow.
    #[must_use]
    pub fn active_as_count(&self) -> usize {
        self.flows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pan_topology::fixtures::{asn, fig1};

    #[test]
    fn gravity_matrix_is_proportional() {
        let mut w = HashMap::new();
        w.insert(Asn::new(1), 2.0);
        w.insert(Asn::new(2), 3.0);
        w.insert(Asn::new(3), 0.0);
        let m = TrafficMatrix::gravity(&w, 1.0).unwrap();
        assert_eq!(m.get(Asn::new(1), Asn::new(2)), 6.0);
        assert_eq!(m.get(Asn::new(2), Asn::new(1)), 6.0);
        assert_eq!(m.get(Asn::new(1), Asn::new(3)), 0.0);
        assert_eq!(m.get(Asn::new(1), Asn::new(1)), 0.0, "no self demand");
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn gravity_rejects_bad_inputs() {
        let mut w = HashMap::new();
        w.insert(Asn::new(1), -1.0);
        assert!(TrafficMatrix::gravity(&w, 1.0).is_err());
        let w2: HashMap<Asn, f64> = HashMap::new();
        assert!(TrafficMatrix::gravity(&w2, -1.0).is_err());
    }

    #[test]
    fn route_accumulates_neighbor_flows() {
        let g = fig1();
        let mut acc = FlowAccumulator::new();
        // H → D → E → I with 10 units.
        acc.route(&g, &[asn('H'), asn('D'), asn('E'), asn('I')], 10.0)
            .unwrap();
        let d = acc.flows_of(asn('D'));
        assert_eq!(d.get(asn('H')), 10.0);
        assert_eq!(d.get(asn('E')), 10.0);
        assert_eq!(d.end_host_flow(), 0.0, "D is a pure transit hop");
        let h = acc.flows_of(asn('H'));
        assert_eq!(h.get(asn('D')), 10.0);
        assert_eq!(h.end_host_flow(), 10.0, "flow originates at H's end-hosts");
        let i = acc.flows_of(asn('I'));
        assert_eq!(i.end_host_flow(), 10.0, "flow terminates at I's end-hosts");
    }

    #[test]
    fn route_accumulates_segment_flows() {
        let g = fig1();
        let mut acc = FlowAccumulator::new();
        acc.route(&g, &[asn('H'), asn('D'), asn('E'), asn('I')], 10.0)
            .unwrap();
        assert_eq!(acc.segments().get(asn('H'), asn('D'), asn('E')), 10.0);
        assert_eq!(acc.segments().get(asn('D'), asn('E'), asn('I')), 10.0);
        // Direction independence: reverse query sees the same volume.
        assert_eq!(acc.segments().get(asn('E'), asn('D'), asn('H')), 10.0);
    }

    #[test]
    fn multiple_routes_add_up() {
        let g = fig1();
        let mut acc = FlowAccumulator::new();
        acc.route(&g, &[asn('H'), asn('D'), asn('A')], 5.0).unwrap();
        acc.route(&g, &[asn('A'), asn('D'), asn('H')], 7.0).unwrap();
        let d = acc.flows_of(asn('D'));
        assert_eq!(d.get(asn('H')), 12.0);
        assert_eq!(d.get(asn('A')), 12.0);
        assert_eq!(acc.segments().get(asn('H'), asn('D'), asn('A')), 12.0);
    }

    #[test]
    fn route_rejects_disconnected_paths() {
        let g = fig1();
        let mut acc = FlowAccumulator::new();
        assert!(acc.route(&g, &[asn('H'), asn('E')], 1.0).is_err());
        assert!(acc.route(&g, &[asn('H'), asn('D')], -1.0).is_err());
    }

    #[test]
    fn trivial_or_zero_routes_are_noops() {
        let g = fig1();
        let mut acc = FlowAccumulator::new();
        acc.route(&g, &[asn('H')], 5.0).unwrap();
        acc.route(&g, &[asn('H'), asn('D')], 0.0).unwrap();
        assert_eq!(acc.active_as_count(), 0);
    }
}
