use std::fmt;

use pan_topology::{Asn, TopologyError};

/// Errors produced by the economic model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EconError {
    /// A pricing or cost parameter is out of its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A flow volume is negative or non-finite.
    InvalidFlow {
        /// The rejected volume.
        volume: f64,
    },
    /// A business-calculation referenced a link with no pricing function.
    MissingPrice {
        /// The provider side of the link.
        provider: Asn,
        /// The customer side of the link.
        customer: Asn,
    },
    /// An underlying topology operation failed.
    Topology(TopologyError),
}

impl fmt::Display for EconError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EconError::InvalidParameter { name, value } => {
                write!(f, "parameter {name} out of domain: {value}")
            }
            EconError::InvalidFlow { volume } => {
                write!(
                    f,
                    "flow volumes must be finite and non-negative, got {volume}"
                )
            }
            EconError::MissingPrice { provider, customer } => {
                write!(f, "no pricing function for link {provider} → {customer}")
            }
            EconError::Topology(err) => write!(f, "topology error: {err}"),
        }
    }
}

impl std::error::Error for EconError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EconError::Topology(err) => Some(err),
            _ => None,
        }
    }
}

impl From<TopologyError> for EconError {
    fn from(err: TopologyError) -> Self {
        EconError::Topology(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_parties() {
        let err = EconError::MissingPrice {
            provider: Asn::new(1),
            customer: Asn::new(2),
        };
        let text = err.to_string();
        assert!(text.contains("AS1") && text.contains("AS2"));
    }
}
