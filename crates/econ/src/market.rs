//! Standard market-table synthesis: the one set of economic parameters
//! every binary, server, and test builds its market from.
//!
//! The rates were originally hard-coded in `pan-bench`; they live here so
//! `discover`, `evolve`, `serve`, `calibrate`, and the test suites all
//! construct byte-identical [`DenseEconomics`]/[`FlowMatrix`] tables from
//! any source graph — synthetic or a real-internet snapshot. The only
//! input beyond the graph is a tier classifier, so callers that know
//! their tiers from generation (`pan-datasets`) and callers that derive
//! them from the provider hierarchy (snapshot loading) share the rest.

use pan_topology::{AsGraph, Asn};

use crate::{CostFunction, DenseEconomics, FlowMatrix, PricingFunction};

/// The market-level hierarchy class of an AS, as the economy sees it.
///
/// Deliberately distinct from `pan-datasets`' generator tier enum: this
/// crate sits below the dataset layer, and snapshot-derived markets
/// classify ASes by their position in the provider hierarchy rather than
/// by how they were generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarketTier {
    /// Provider-free core AS (tier-1 clique member).
    Core,
    /// Sells transit to customers while buying it above.
    Transit,
    /// Pure transit customer.
    Stub,
}

/// Deterministic per-link price jitter in `[0.85, 1.15]` (FNV-1a over the
/// endpoint ASNs), giving the synthetic economy the heterogeneity that
/// makes discovery rankings non-trivial.
#[must_use]
pub fn link_jitter(a: Asn, b: Asn) -> f64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for v in [a.get(), b.get()] {
        hash ^= u64::from(v);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    0.85 + (hash % 1000) as f64 * 0.0003
}

/// The standard tier-aware economy: stubs pay the steepest transit rates
/// and earn the most end-host revenue; the core is cheap to run.
///
/// `tier_of` classifies every AS of `graph`; unknown ASes should map to
/// [`MarketTier::Stub`].
#[must_use]
pub fn standard_economics(graph: &AsGraph, tier_of: impl Fn(Asn) -> MarketTier) -> DenseEconomics {
    // `Fn`, not `FnMut`: all three rate closures share the classifier.
    let tier_of = &tier_of;
    DenseEconomics::build(
        graph,
        |provider: Asn, customer: Asn| {
            let base = match tier_of(customer) {
                MarketTier::Stub => 3.0,
                MarketTier::Transit => 2.2,
                MarketTier::Core => 2.0,
            };
            PricingFunction::per_usage(base * link_jitter(provider, customer))
                .expect("positive rates are valid")
        },
        |asn| {
            let rate = match tier_of(asn) {
                MarketTier::Stub => 3.0,
                MarketTier::Transit => 1.2,
                MarketTier::Core => 0.8,
            };
            PricingFunction::per_usage(rate).expect("positive rates are valid")
        },
        |asn| {
            let rate = match tier_of(asn) {
                MarketTier::Stub => 0.08,
                MarketTier::Transit => 0.04,
                MarketTier::Core => 0.02,
            };
            CostFunction::linear(rate).expect("positive rates are valid")
        },
    )
}

/// The standard market tables from any source graph: tier-aware
/// [`standard_economics`] plus degree-gravity flows at `gravity_scale`.
#[must_use]
pub fn standard_tables(
    graph: &AsGraph,
    tier_of: impl Fn(Asn) -> MarketTier,
    gravity_scale: f64,
) -> (DenseEconomics, FlowMatrix) {
    let econ = standard_economics(graph, tier_of);
    let flows = FlowMatrix::degree_gravity(graph, gravity_scale);
    (econ, flows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_jitter_is_deterministic_and_bounded() {
        let a = Asn::new(17);
        let b = Asn::new(4242);
        assert_eq!(link_jitter(a, b), link_jitter(a, b));
        assert_ne!(link_jitter(a, b), link_jitter(b, a), "direction matters");
        for x in 1..200u32 {
            let j = link_jitter(Asn::new(x), Asn::new(x + 1));
            assert!((0.85..=1.15).contains(&j), "jitter {j} out of range");
        }
    }

    #[test]
    fn standard_tables_cover_the_graph() {
        let graph = pan_topology::fixtures::fig1();
        let provider_free: Vec<Asn> = graph.provider_free_ases().collect();
        let (econ, flows) = standard_tables(
            &graph,
            |asn| {
                if provider_free.contains(&asn) {
                    MarketTier::Core
                } else {
                    MarketTier::Stub
                }
            },
            1.0,
        );
        assert_eq!(econ.node_count(), graph.node_count());
        assert_eq!(flows.node_count(), graph.node_count());
    }
}
