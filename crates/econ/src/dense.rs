//! Dense, index-keyed flow and pricing tables for topology-wide batch
//! evaluation.
//!
//! The per-pair types of this crate ([`FlowVec`],
//! [`PricingBook`](crate::PricingBook), [`BusinessModel`]) are
//! `BTreeMap`/`HashMap`-keyed — fine for one
//! hand-picked agreement, hostile to a sweep over every candidate pair of
//! a 10k-AS internet. This module provides the batch counterparts, all
//! aligned with the CSR adjacency of [`AsGraph`]:
//!
//! - [`FlowMatrix`]: the flow decomposition `f_X` of *every* AS at once,
//!   one packed `f64` row per AS in [`AsGraph::neighbor_indices`] order
//!   plus a trailing end-host slot — reading `f_XY` is one indexed load.
//! - [`DenseEconomics`]: the pricing function and revenue/cost direction
//!   of every adjacency entry, the end-host price, and the internal-cost
//!   function of every AS, resolved once at construction so the hot loop
//!   never touches a hash table.
//!
//! Together they make the agreement utilities of Eq. (1)/(3) computable
//! per-entry and incrementally: a candidate agreement touches `O(degree)`
//! row entries, and its utility delta is the sum of the per-entry price
//! deltas plus the internal-cost delta — no flow-vector clones, no map
//! lookups, no re-evaluation of untouched flows.

use serde::{Deserialize, Serialize};

use pan_topology::{AsGraph, Asn};

use crate::{BusinessModel, CostFunction, DirtyRows, EconError, FlowVec, PricingFunction, Result};

/// Dense per-AS flow decompositions for an entire topology.
///
/// Row `i` (an [`AsGraph`] node index) holds one volume per packed
/// neighbor of `i` — same order as [`AsGraph::neighbor_indices`] — plus a
/// trailing **end-host** slot (`f_{X,Γ_X}`), mirroring the [`FlowVec`]
/// convention.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowMatrix {
    /// `node_count + 1` prefix offsets; row `i` spans
    /// `offsets[i]..offsets[i+1]` of `values` (length `degree(i) + 1`).
    offsets: Vec<u32>,
    values: Vec<f64>,
}

impl FlowMatrix {
    /// An all-zero matrix shaped for `graph`.
    #[must_use]
    pub fn zeros(graph: &AsGraph) -> Self {
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut total = 0u32;
        offsets.push(0);
        for i in 0..n as u32 {
            total += graph.degree_of_index(i) as u32 + 1;
            offsets.push(total);
        }
        FlowMatrix {
            offsets,
            values: vec![0.0; total as usize],
        }
    }

    /// Degree-gravity baselines: the flow exchanged over every link is
    /// `scale · deg(a) · deg(b)` (the same model the bandwidth analysis
    /// of §VI-C uses for capacities), and the end-host flow of an AS is
    /// `scale · deg(X)²` — its "self-gravity" demand. One pass over the
    /// adjacency, no quadratic work.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive.
    #[must_use]
    pub fn degree_gravity(graph: &AsGraph, scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "scale must be positive and finite, got {scale}"
        );
        let mut matrix = FlowMatrix::zeros(graph);
        for i in 0..graph.node_count() as u32 {
            let di = graph.degree_of_index(i) as f64;
            let start = matrix.offsets[i as usize] as usize;
            for (p, &j) in graph.neighbor_indices(i).iter().enumerate() {
                let dj = graph.degree_of_index(j) as f64;
                matrix.values[start + p] = scale * di * dj;
            }
            let end = matrix.offsets[i as usize + 1] as usize;
            matrix.values[end - 1] = scale * di * di;
        }
        matrix
    }

    /// Number of rows (ASes).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The packed row of node `i`: neighbor volumes followed by the
    /// end-host volume.
    #[inline]
    #[must_use]
    pub fn row(&self, node: u32) -> &[f64] {
        &self.values[self.offsets[node as usize] as usize..self.offsets[node as usize + 1] as usize]
    }

    /// Mutable access to the packed row of node `i`.
    #[inline]
    pub fn row_mut(&mut self, node: u32) -> &mut [f64] {
        &mut self.values
            [self.offsets[node as usize] as usize..self.offsets[node as usize + 1] as usize]
    }

    /// The flow to the neighbor at packed position `pos` of node `i`.
    #[inline]
    #[must_use]
    pub fn flow(&self, node: u32, pos: usize) -> f64 {
        self.values[self.offsets[node as usize] as usize + pos]
    }

    /// Sets the flow to the neighbor at packed position `pos` of node `i`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds for negative or non-finite volumes.
    #[inline]
    pub fn set(&mut self, node: u32, pos: usize, volume: f64) {
        debug_assert!(
            volume.is_finite() && volume >= 0.0,
            "flow volume must be finite and non-negative, got {volume}"
        );
        self.values[self.offsets[node as usize] as usize + pos] = volume.max(0.0);
    }

    /// [`set`](Self::set) with a change-journal hook: additionally marks
    /// the mutated row in `dirty`, so incremental consumers learn which
    /// AS rows moved. A symmetric link update must call this once per
    /// mirror entry — each call marks only its own row owner.
    #[inline]
    pub fn set_tracked(&mut self, dirty: &mut DirtyRows, node: u32, pos: usize, volume: f64) {
        self.set(node, pos, volume);
        dirty.mark(node);
    }

    /// The end-host flow `f_{X,Γ_X}` of node `i`.
    #[inline]
    #[must_use]
    pub fn end_host(&self, node: u32) -> f64 {
        self.values[self.offsets[node as usize + 1] as usize - 1]
    }

    /// Sets the end-host flow of node `i`.
    #[inline]
    pub fn set_end_host(&mut self, node: u32, volume: f64) {
        debug_assert!(
            volume.is_finite() && volume >= 0.0,
            "flow volume must be finite and non-negative, got {volume}"
        );
        let at = self.offsets[node as usize + 1] as usize - 1;
        self.values[at] = volume.max(0.0);
    }

    /// [`set_end_host`](Self::set_end_host) with a change-journal hook;
    /// see [`set_tracked`](Self::set_tracked).
    #[inline]
    pub fn set_end_host_tracked(&mut self, dirty: &mut DirtyRows, node: u32, volume: f64) {
        self.set_end_host(node, volume);
        dirty.mark(node);
    }

    /// Total flow through node `i` (sum of the row, end-hosts included).
    #[must_use]
    pub fn total(&self, node: u32) -> f64 {
        self.row(node).iter().sum()
    }

    /// All per-node totals in node-index order (precompute once before a
    /// sweep instead of summing rows per candidate pair).
    #[must_use]
    pub fn totals(&self) -> Vec<f64> {
        (0..self.node_count() as u32)
            .map(|i| self.total(i))
            .collect()
    }

    /// Writes the per-node totals into `out` (cleared first) — the
    /// allocation-free twin of [`totals`](Self::totals), bitwise
    /// identical output.
    pub fn totals_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.node_count() as u32).map(|i| self.total(i)));
    }

    /// Total flow through the whole matrix: the sum of the per-node
    /// totals in node order, without materializing them — bitwise
    /// identical to `totals().iter().sum()` (same per-row partial sums,
    /// same outer summation order).
    #[must_use]
    pub fn grand_total(&self) -> f64 {
        (0..self.node_count() as u32).map(|i| self.total(i)).sum()
    }

    /// Bytes resident in this matrix's heap allocations (capacities, not
    /// lengths — what the allocator actually holds).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.offsets.capacity() * size_of::<u32>() + self.values.capacity() * size_of::<f64>()
    }

    /// Overwrites the row of `flows.asn()` from a [`FlowVec`].
    ///
    /// # Errors
    ///
    /// Returns [`EconError::Topology`] if the AS or one of its flow
    /// neighbors is unknown to `graph` / not adjacent.
    pub fn set_row(&mut self, graph: &AsGraph, flows: &FlowVec) -> Result<()> {
        let node = graph.index_of(flows.asn())?;
        let start = self.offsets[node as usize] as usize;
        self.row_mut(node).fill(0.0);
        for (neighbor, volume) in flows.iter() {
            if neighbor == flows.asn() {
                self.set_end_host(node, volume);
                continue;
            }
            let j = graph.index_of(neighbor)?;
            let pos = graph.neighbor_position(node, j).ok_or_else(|| {
                EconError::Topology(pan_topology::TopologyError::UnknownLink {
                    a: flows.asn(),
                    b: neighbor,
                })
            })?;
            self.values[start + pos] = volume;
        }
        Ok(())
    }

    /// Remaps the matrix onto `new_graph`: a graph with the **same nodes
    /// at the same dense indices** as `old_graph` (the graph this matrix
    /// was built for) but possibly additional links — the shape produced
    /// by [`AsGraph::with_added_peering_links`]. Every existing volume
    /// follows its link to the link's new packed position; entries of new
    /// links start at zero.
    ///
    /// # Errors
    ///
    /// Returns [`EconError::Topology`] if the graphs disagree on the node
    /// set or `new_graph` dropped a link of `old_graph`.
    pub fn remapped(&self, old_graph: &AsGraph, new_graph: &AsGraph) -> Result<FlowMatrix> {
        check_same_nodes(old_graph, new_graph)?;
        let mut out = FlowMatrix::zeros(new_graph);
        for i in 0..old_graph.node_count() as u32 {
            for (old_pos, &j) in old_graph.neighbor_indices(i).iter().enumerate() {
                let new_pos = new_graph.neighbor_position(i, j).ok_or_else(|| {
                    EconError::Topology(pan_topology::TopologyError::UnknownLink {
                        a: old_graph.asn_at(i),
                        b: old_graph.asn_at(j),
                    })
                })?;
                out.set(i, new_pos, self.flow(i, old_pos));
            }
            out.set_end_host(i, self.end_host(i));
        }
        Ok(out)
    }

    /// Deserialization hook: checks that the matrix is internally
    /// consistent and shaped for `graph` (one row per node, each of
    /// length `degree + 1`, finite non-negative volumes). The derive
    /// bypasses every constructor, so a matrix read from a checkpoint
    /// must pass here before any indexed accessor touches it.
    ///
    /// # Errors
    ///
    /// Returns [`EconError::Topology`] /
    /// [`pan_topology::TopologyError::CorruptWire`] naming the first
    /// violation, or [`EconError::InvalidFlow`] for an invalid volume.
    pub fn validate_shape(&self, graph: &AsGraph) -> Result<()> {
        validate_offsets(&self.offsets, graph, 1, "flow matrix")?;
        if self.values.len() != *self.offsets.last().expect("validated non-empty") as usize {
            return Err(corrupt(format!(
                "flow matrix stores {} values for {} row slots",
                self.values.len(),
                self.offsets.last().expect("validated non-empty")
            )));
        }
        for &volume in &self.values {
            if !volume.is_finite() || volume < 0.0 {
                return Err(EconError::InvalidFlow { volume });
            }
        }
        Ok(())
    }

    /// Extracts the row of node `i` as an ASN-keyed [`FlowVec`]
    /// (zero-volume entries are skipped, matching sparse conventions).
    #[must_use]
    pub fn to_flow_vec(&self, graph: &AsGraph, node: u32) -> FlowVec {
        let mut flows = FlowVec::new(graph.asn_at(node));
        for (pos, &j) in graph.neighbor_indices(node).iter().enumerate() {
            let volume = self.flow(node, pos);
            if volume > 0.0 {
                flows.set(graph.asn_at(j), volume);
            }
        }
        let end_host = self.end_host(node);
        if end_host > 0.0 {
            flows.set_end_host_flow(end_host);
        }
        flows
    }
}

fn corrupt(reason: String) -> EconError {
    EconError::Topology(pan_topology::TopologyError::CorruptWire { reason })
}

/// Shared offset-table check for the dense wire formats: `node_count + 1`
/// monotone offsets starting at 0, with row `i` spanning
/// `degree(i) + extra_slots` entries.
fn validate_offsets(
    offsets: &[u32],
    graph: &AsGraph,
    extra_slots: usize,
    what: &str,
) -> Result<()> {
    let n = graph.node_count();
    if offsets.len() != n + 1 || offsets[0] != 0 {
        return Err(corrupt(format!(
            "{what} has {} offsets for {n} nodes",
            offsets.len()
        )));
    }
    for i in 0..n {
        let expected = graph.degree_of_index(i as u32) + extra_slots;
        let actual = offsets[i + 1].checked_sub(offsets[i]).map(|w| w as usize);
        if actual != Some(expected) {
            return Err(corrupt(format!(
                "{what} row {i} spans {actual:?} entries, graph degree implies {expected}"
            )));
        }
    }
    Ok(())
}

/// Both remap targets require the node sets (and their dense indices) to
/// be identical — only links may differ.
fn check_same_nodes(old_graph: &AsGraph, new_graph: &AsGraph) -> Result<()> {
    if old_graph.node_count() != new_graph.node_count()
        || (0..old_graph.node_count() as u32).any(|i| old_graph.asn_at(i) != new_graph.asn_at(i))
    {
        return Err(EconError::Topology(
            pan_topology::TopologyError::UnknownAs {
                asn: new_graph
                    .ases()
                    .find(|&asn| !old_graph.contains(asn))
                    .unwrap_or_else(|| old_graph.asn_at(0)),
            },
        ));
    }
    Ok(())
}

/// The pricing attached to one packed adjacency entry of an AS: the
/// function, and whether its value is revenue (`+1`, customers), cost
/// (`−1`, providers), or settlement-free (`0`, peers) for the row owner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PricedEntry {
    /// The pricing function of the link, from the row owner's side.
    pub price: PricingFunction,
    /// `+1.0` revenue, `−1.0` cost, `0.0` settlement-free.
    pub sign: f64,
}

impl PricedEntry {
    /// The signed utility delta of moving this entry from `flow` to
    /// `flow + delta` (clamped at zero, as flows cannot go negative).
    ///
    /// # Errors
    ///
    /// Propagates [`EconError::InvalidFlow`] for non-finite flows.
    #[inline]
    pub fn utility_delta(&self, flow: f64, delta: f64) -> Result<f64> {
        if self.sign == 0.0 || delta == 0.0 {
            return Ok(0.0);
        }
        if let Some(rate) = self.price.linear_rate() {
            // Linear fast path — exact as long as the new flow stays
            // non-negative, which callers guarantee (reroute never moves
            // more than the baseline).
            return Ok(self.sign * rate * ((flow + delta).max(0.0) - flow));
        }
        let new = (flow + delta).max(0.0);
        Ok(self.sign * (self.price.price(new)? - self.price.price(flow)?))
    }
}

/// The SoA lane classification of one entry. Mirrors the hot-loop
/// dispatch order exactly: settlement-free entries are skipped *before*
/// the price is inspected, so a peer entry with a nonlinear price is
/// `(0.0, false)` — not nonlinear — just as the dispatching loops never
/// pushed it to their nonlinear side lists.
#[inline]
fn lane_of(entry: &PricedEntry) -> (f64, bool) {
    if entry.sign == 0.0 {
        (0.0, false)
    } else {
        match entry.price.linear_rate() {
            Some(rate) => (entry.sign * rate, false),
            None => (0.0, true),
        }
    }
}

/// Dense per-entry economics for an entire topology: the batch
/// counterpart of [`BusinessModel`].
///
/// `entries` is parallel to the packed CSR adjacency (one [`PricedEntry`]
/// per `(node, neighbor position)`), so evaluating or perturbing the
/// utility of Eq. (1) is pure indexed arithmetic.
///
/// Alongside the entry table the struct maintains two derived
/// structure-of-arrays lanes, also parallel to the adjacency:
/// [`signed_rate_row`](Self::signed_rate_row) holds `sign · linear_rate`
/// for every linearly priced entry (and `0.0` for peers and nonlinear
/// entries), and [`nonlinear_row`](Self::nonlinear_row) flags the entries
/// whose price has no linear rate. The Σ sign·rate transit collapses of
/// the discovery engine stream the `f64` lane branch-free instead of
/// dispatching on the pricing enum per entry. The lanes are derived
/// state: they are rebuilt by every constructor and mutator and are
/// excluded from the wire format (the serialized form is unchanged from
/// pre-SoA checkpoints).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DenseEconomics {
    /// `node_count + 1` prefix offsets into `entries` (row `i` has
    /// `degree(i)` entries).
    offsets: Vec<u32>,
    entries: Vec<PricedEntry>,
    end_host_price: Vec<PricingFunction>,
    internal_cost: Vec<CostFunction>,
    /// SoA lane: `sign · linear_rate` per entry, `0.0` where the entry is
    /// settlement-free or nonlinear. Derived from `entries`; not wired.
    #[serde(skip)]
    signed_rate: Vec<f64>,
    /// SoA lane: `true` where the entry carries a nonlinear price that
    /// the linear lane cannot represent. Derived from `entries`.
    #[serde(skip)]
    nonlinear: Vec<bool>,
}

/// The wire format of [`DenseEconomics`] predates the SoA lanes, so
/// deserialization mirrors the derive field-by-field and then rebuilds
/// the derived lanes — every instance read from a checkpoint has valid
/// lanes without caller cooperation.
impl Deserialize for DenseEconomics {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let mut econ = DenseEconomics {
            offsets: Deserialize::from_value(v.field("offsets")?)?,
            entries: Deserialize::from_value(v.field("entries")?)?,
            end_host_price: Deserialize::from_value(v.field("end_host_price")?)?,
            internal_cost: Deserialize::from_value(v.field("internal_cost")?)?,
            signed_rate: Vec::new(),
            nonlinear: Vec::new(),
        };
        econ.rebuild_lanes();
        Ok(econ)
    }
}

impl DenseEconomics {
    /// Builds the dense tables from closures — the constructor for
    /// synthetic economies, where prices are derived from the topology
    /// rather than read from a hash-keyed book.
    ///
    /// `transit_price(provider, customer)` returns the price `provider`
    /// charges `customer`; it is invoked from both endpoints of a transit
    /// link with identical arguments, so it must be a pure function of
    /// them. `end_host_price` and `internal_cost` are invoked once per AS.
    pub fn build(
        graph: &AsGraph,
        mut transit_price: impl FnMut(Asn, Asn) -> PricingFunction,
        mut end_host_price: impl FnMut(Asn) -> PricingFunction,
        mut internal_cost: impl FnMut(Asn) -> CostFunction,
    ) -> Self {
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut entries = Vec::new();
        let mut end_host = Vec::with_capacity(n);
        let mut internal = Vec::with_capacity(n);
        for i in 0..n as u32 {
            let me = graph.asn_at(i);
            let (p_end, e_end) = graph.class_boundaries(i);
            for (pos, &j) in graph.neighbor_indices(i).iter().enumerate() {
                let other = graph.asn_at(j);
                let entry = if pos < p_end {
                    // Provider of `me`: the provider charges `me`.
                    PricedEntry {
                        price: transit_price(other, me),
                        sign: -1.0,
                    }
                } else if pos < e_end {
                    PricedEntry {
                        price: PricingFunction::free(),
                        sign: 0.0,
                    }
                } else {
                    // Customer of `me`: `me` charges the customer.
                    PricedEntry {
                        price: transit_price(me, other),
                        sign: 1.0,
                    }
                };
                entries.push(entry);
            }
            offsets.push(entries.len() as u32);
            end_host.push(end_host_price(me));
            internal.push(internal_cost(me));
        }
        let mut econ = DenseEconomics {
            offsets,
            entries,
            end_host_price: end_host,
            internal_cost: internal,
            signed_rate: Vec::new(),
            nonlinear: Vec::new(),
        };
        econ.rebuild_lanes();
        econ
    }

    /// Resolves a map-keyed [`BusinessModel`] into dense tables (one
    /// hash lookup per link at build time, zero afterwards).
    #[must_use]
    pub fn from_model(model: &BusinessModel) -> Self {
        let book = model.book();
        DenseEconomics::build(
            model.graph(),
            |provider, customer| book.transit_price(provider, customer),
            |asn| book.end_host_price(asn),
            |asn| model.internal_cost(asn),
        )
    }

    /// Rebuilds an equivalent map-keyed [`BusinessModel`] (for the
    /// sparse per-pair optimizers and as the oracle in equivalence
    /// tests). `graph` must be the graph the tables were built from.
    #[must_use]
    pub fn to_business_model(&self, graph: &AsGraph) -> BusinessModel {
        let mut book = crate::PricingBook::new();
        for i in 0..graph.node_count() as u32 {
            let me = graph.asn_at(i);
            let (_, e_end) = graph.class_boundaries(i);
            for (pos, &j) in graph.neighbor_indices(i).iter().enumerate() {
                if pos >= e_end {
                    // Record each transit price once, from the provider side.
                    book.set_transit_price(me, graph.asn_at(j), self.entry(i, pos).price);
                }
            }
            book.set_end_host_price(me, self.end_host_price(i));
        }
        let mut model = BusinessModel::new(graph.clone(), book);
        for i in 0..graph.node_count() as u32 {
            model.set_internal_cost(graph.asn_at(i), self.internal_cost(i));
        }
        model
    }

    /// Remaps the tables onto `new_graph` (same nodes and indices as
    /// `old_graph`, possibly more links — see [`FlowMatrix::remapped`]).
    /// Existing entries follow their link; entries of new links must be
    /// **peering** links and become settlement-free
    /// (`sign == 0`, [`PricingFunction::free`]) — exactly what adopting a
    /// prospective mutuality agreement creates.
    ///
    /// # Errors
    ///
    /// Returns [`EconError::Topology`] if the node sets differ, a link of
    /// `old_graph` is missing from `new_graph`, or a new link is not a
    /// peering link (transit links need a priced contract, which a remap
    /// cannot invent).
    pub fn remapped(&self, old_graph: &AsGraph, new_graph: &AsGraph) -> Result<DenseEconomics> {
        check_same_nodes(old_graph, new_graph)?;
        let n = new_graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut entries = Vec::new();
        for i in 0..n as u32 {
            let (p_end, e_end) = new_graph.class_boundaries(i);
            let mut carried = 0usize;
            for (pos, &j) in new_graph.neighbor_indices(i).iter().enumerate() {
                let entry = match old_graph.neighbor_position(i, j) {
                    Some(old_pos) => {
                        carried += 1;
                        self.entry(i, old_pos)
                    }
                    None if pos >= p_end && pos < e_end => PricedEntry {
                        price: PricingFunction::free(),
                        sign: 0.0,
                    },
                    None => {
                        return Err(EconError::Topology(
                            pan_topology::TopologyError::UnknownLink {
                                a: new_graph.asn_at(i),
                                b: new_graph.asn_at(j),
                            },
                        ));
                    }
                };
                entries.push(entry);
            }
            offsets.push(entries.len() as u32);
            // Every old link must have carried its entry into the new
            // row — a dropped link is an error even when additions keep
            // the row length unchanged.
            if carried < old_graph.degree_of_index(i) {
                let missing = old_graph
                    .neighbor_indices(i)
                    .iter()
                    .find(|&&j| new_graph.neighbor_position(i, j).is_none())
                    .copied()
                    .unwrap_or(i);
                return Err(EconError::Topology(
                    pan_topology::TopologyError::UnknownLink {
                        a: old_graph.asn_at(i),
                        b: old_graph.asn_at(missing),
                    },
                ));
            }
        }
        let mut out = DenseEconomics {
            offsets,
            entries,
            end_host_price: self.end_host_price.clone(),
            internal_cost: self.internal_cost.clone(),
            signed_rate: Vec::new(),
            nonlinear: Vec::new(),
        };
        out.rebuild_lanes();
        Ok(out)
    }

    /// Scales the price of the packed adjacency entry at `pos` of `node`
    /// by `factor` (see [`PricingFunction::scaled`]) — one side of a
    /// market price shock. Transit links have **two** entries (one per
    /// endpoint); shock both for a consistent book.
    ///
    /// # Errors
    ///
    /// Returns [`EconError::InvalidParameter`] for a negative or
    /// non-finite factor.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is not a position of `node`'s row — a silent
    /// out-of-range write would reprice a different AS's link.
    pub fn scale_entry_price(&mut self, node: u32, pos: usize, factor: f64) -> Result<()> {
        let row = self.offsets[node as usize] as usize;
        let row_len = self.offsets[node as usize + 1] as usize - row;
        assert!(
            pos < row_len,
            "entry position {pos} out of range for node {node} (degree {row_len})"
        );
        let at = row + pos;
        self.entries[at].price = self.entries[at].price.scaled(factor)?;
        let (rate, nonlinear) = lane_of(&self.entries[at]);
        self.signed_rate[at] = rate;
        self.nonlinear[at] = nonlinear;
        Ok(())
    }

    /// [`scale_entry_price`](Self::scale_entry_price) with a
    /// change-journal hook: additionally marks the repriced row in
    /// `dirty` (both sides of a link must be scaled — and marked — in
    /// separate calls, one per row owner).
    ///
    /// # Errors
    ///
    /// Returns [`EconError::InvalidParameter`] for a negative or
    /// non-finite factor; the row is only marked on success.
    pub fn scale_entry_price_tracked(
        &mut self,
        dirty: &mut DirtyRows,
        node: u32,
        pos: usize,
        factor: f64,
    ) -> Result<()> {
        self.scale_entry_price(node, pos, factor)?;
        dirty.mark(node);
        Ok(())
    }

    /// Scales the end-host price of `node` by `factor`.
    ///
    /// # Errors
    ///
    /// Returns [`EconError::InvalidParameter`] for a negative or
    /// non-finite factor.
    pub fn scale_end_host_price(&mut self, node: u32, factor: f64) -> Result<()> {
        let price = &mut self.end_host_price[node as usize];
        *price = price.scaled(factor)?;
        Ok(())
    }

    /// Deserialization hook: checks that the tables are internally
    /// consistent and shaped for `graph` — one entry per packed adjacency
    /// slot, per-AS end-host and internal-cost tables of the right
    /// length, every pricing/cost function inside its constructor domain,
    /// and every entry sign consistent with the link's class (providers
    /// cost, customers earn, peers are settlement-free).
    ///
    /// # Errors
    ///
    /// Returns [`EconError::Topology`] /
    /// [`pan_topology::TopologyError::CorruptWire`] naming the first
    /// shape violation, or [`EconError::InvalidParameter`] for a function
    /// outside its domain.
    pub fn validate_shape(&self, graph: &AsGraph) -> Result<()> {
        let n = graph.node_count();
        validate_offsets(&self.offsets, graph, 0, "pricing table")?;
        if self.entries.len() != *self.offsets.last().expect("validated non-empty") as usize {
            return Err(corrupt(format!(
                "pricing table stores {} entries for {} adjacency slots",
                self.entries.len(),
                self.offsets.last().expect("validated non-empty")
            )));
        }
        for (name, len) in [
            ("end-host price", self.end_host_price.len()),
            ("internal cost", self.internal_cost.len()),
        ] {
            if len != n {
                return Err(corrupt(format!(
                    "{name} table has {len} rows for {n} nodes"
                )));
            }
        }
        for i in 0..n as u32 {
            let (p_end, e_end) = graph.class_boundaries(i);
            for pos in 0..graph.degree_of_index(i) {
                let entry = self.entry(i, pos);
                entry.price.validate_params()?;
                let expected_sign = if pos < p_end {
                    -1.0
                } else if pos < e_end {
                    0.0
                } else {
                    1.0
                };
                if entry.sign != expected_sign {
                    return Err(corrupt(format!(
                        "pricing entry ({i}, {pos}) has sign {}, link class implies {expected_sign}",
                        entry.sign
                    )));
                }
            }
            self.end_host_price(i).validate_params()?;
            self.internal_cost(i).validate_params()?;
        }
        Ok(())
    }

    /// Recomputes the SoA lanes from the entry table. Every constructor
    /// and entry mutator must leave the lanes in sync; this is the single
    /// place that derives them.
    fn rebuild_lanes(&mut self) {
        self.signed_rate.clear();
        self.nonlinear.clear();
        self.signed_rate.reserve_exact(self.entries.len());
        self.nonlinear.reserve_exact(self.entries.len());
        for entry in &self.entries {
            let (rate, nonlinear) = lane_of(entry);
            self.signed_rate.push(rate);
            self.nonlinear.push(nonlinear);
        }
    }

    /// The priced entry at packed position `pos` of node `i`.
    #[inline]
    #[must_use]
    pub fn entry(&self, node: u32, pos: usize) -> PricedEntry {
        self.entries[self.offsets[node as usize] as usize + pos]
    }

    /// SoA lane of node `i`: `sign · linear_rate` per packed adjacency
    /// position (`0.0` for settlement-free and nonlinear entries), in
    /// [`AsGraph::neighbor_indices`] order. Summing a prefix of this row
    /// is bitwise identical to the dispatching loop it replaces: the
    /// skipped entries contribute `+0.0`, and an accumulator that starts
    /// at `+0.0` is unchanged by adding either zero.
    #[inline]
    #[must_use]
    pub fn signed_rate_row(&self, node: u32) -> &[f64] {
        &self.signed_rate
            [self.offsets[node as usize] as usize..self.offsets[node as usize + 1] as usize]
    }

    /// SoA lane of node `i`: which packed adjacency positions carry a
    /// nonlinear price (and therefore need the [`entry`](Self::entry)
    /// side table). Parallel to [`signed_rate_row`](Self::signed_rate_row).
    #[inline]
    #[must_use]
    pub fn nonlinear_row(&self, node: u32) -> &[bool] {
        &self.nonlinear
            [self.offsets[node as usize] as usize..self.offsets[node as usize + 1] as usize]
    }

    /// Bytes resident in this table's heap allocations (capacities, not
    /// lengths — what the allocator actually holds).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.offsets.capacity() * size_of::<u32>()
            + self.entries.capacity() * size_of::<PricedEntry>()
            + self.end_host_price.capacity() * size_of::<PricingFunction>()
            + self.internal_cost.capacity() * size_of::<CostFunction>()
            + self.signed_rate.capacity() * size_of::<f64>()
            + self.nonlinear.capacity() * size_of::<bool>()
    }

    /// The end-host pricing function of node `i`.
    #[inline]
    #[must_use]
    pub fn end_host_price(&self, node: u32) -> PricingFunction {
        self.end_host_price[node as usize]
    }

    /// The internal-cost function of node `i`.
    #[inline]
    #[must_use]
    pub fn internal_cost(&self, node: u32) -> CostFunction {
        self.internal_cost[node as usize]
    }

    /// Number of rows (ASes).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Utility `U_X(f_X)` of node `i` per Eq. (1), evaluated from the
    /// dense row — the batch equivalent of [`BusinessModel::utility`].
    ///
    /// # Errors
    ///
    /// Propagates [`EconError::InvalidFlow`] for invalid volumes.
    pub fn utility(&self, flows: &FlowMatrix, node: u32) -> Result<f64> {
        let row = flows.row(node);
        let base = self.offsets[node as usize] as usize;
        let mut utility = 0.0;
        for (pos, &volume) in row[..row.len() - 1].iter().enumerate() {
            let entry = self.entries[base + pos];
            if entry.sign != 0.0 {
                utility += entry.sign * entry.price.price(volume)?;
            }
        }
        utility += self.end_host_price[node as usize].price(flows.end_host(node))?;
        utility -= self.internal_cost[node as usize].eval(flows.total(node))?;
        Ok(utility)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PricingBook;
    use pan_topology::fixtures::{asn, fig1};
    use proptest::prelude::*;

    fn model() -> BusinessModel {
        let g = fig1();
        let mut book = PricingBook::new();
        for (p, c, rate) in [
            ('A', 'D', 2.0),
            ('B', 'E', 2.0),
            ('B', 'G', 2.0),
            ('D', 'H', 3.0),
            ('E', 'I', 3.0),
        ] {
            book.set_transit_price(asn(p), asn(c), PricingFunction::per_usage(rate).unwrap());
        }
        book.set_end_host_price(asn('D'), PricingFunction::per_usage(4.0).unwrap());
        let mut m = BusinessModel::new(g, book);
        m.set_internal_cost(asn('D'), CostFunction::linear(0.1).unwrap());
        m
    }

    #[test]
    fn flow_matrix_round_trips_flow_vecs() {
        let g = fig1();
        let mut matrix = FlowMatrix::zeros(&g);
        let mut f = FlowVec::new(asn('D'));
        f.set(asn('A'), 15.0);
        f.set(asn('H'), 10.0);
        f.set(asn('E'), 5.0);
        f.set_end_host_flow(3.0);
        matrix.set_row(&g, &f).unwrap();
        let node = g.index_of(asn('D')).unwrap();
        assert_eq!(matrix.total(node), 33.0);
        assert_eq!(matrix.end_host(node), 3.0);
        let back = matrix.to_flow_vec(&g, node);
        assert_eq!(back, f);
    }

    #[test]
    fn set_row_rejects_non_neighbors() {
        let g = fig1();
        let mut matrix = FlowMatrix::zeros(&g);
        let mut f = FlowVec::new(asn('D'));
        f.set(asn('I'), 1.0); // I is not adjacent to D
        assert!(matrix.set_row(&g, &f).is_err());
        let f2 = FlowVec::new(Asn::new(999));
        assert!(matrix.set_row(&g, &f2).is_err());
    }

    #[test]
    fn dense_utility_matches_business_model() {
        let g = fig1();
        let m = model();
        let dense = DenseEconomics::from_model(&m);
        let mut matrix = FlowMatrix::zeros(&g);
        let mut f = FlowVec::new(asn('D'));
        f.set(asn('A'), 15.0);
        f.set(asn('H'), 10.0);
        f.set(asn('E'), 7.0);
        f.set_end_host_flow(5.0);
        matrix.set_row(&g, &f).unwrap();
        let node = g.index_of(asn('D')).unwrap();
        let sparse = m.utility(&f).unwrap();
        let fast = dense.utility(&matrix, node).unwrap();
        assert!(
            (sparse - fast).abs() < 1e-9,
            "sparse {sparse} vs dense {fast}"
        );
    }

    #[test]
    fn dense_utility_matches_for_every_as() {
        let g = fig1();
        let m = model();
        let dense = DenseEconomics::from_model(&m);
        let matrix = FlowMatrix::degree_gravity(&g, 1.0);
        for i in 0..g.node_count() as u32 {
            let f = matrix.to_flow_vec(&g, i);
            let sparse = m.utility(&f).unwrap();
            let fast = dense.utility(&matrix, i).unwrap();
            assert!(
                (sparse - fast).abs() < 1e-9,
                "AS {}: sparse {sparse} vs dense {fast}",
                g.asn_at(i)
            );
        }
    }

    #[test]
    fn business_model_round_trip_preserves_utilities() {
        let g = fig1();
        let m = model();
        let dense = DenseEconomics::from_model(&m);
        let rebuilt = dense.to_business_model(&g);
        let matrix = FlowMatrix::degree_gravity(&g, 2.0);
        for i in 0..g.node_count() as u32 {
            let f = matrix.to_flow_vec(&g, i);
            assert!(
                (m.utility(&f).unwrap() - rebuilt.utility(&f).unwrap()).abs() < 1e-9,
                "utility mismatch at {}",
                g.asn_at(i)
            );
        }
    }

    #[test]
    fn priced_entry_deltas_match_full_reevaluation() {
        let linear = PricedEntry {
            price: PricingFunction::per_usage(2.0).unwrap(),
            sign: -1.0,
        };
        assert_eq!(linear.utility_delta(10.0, -4.0).unwrap(), 8.0);
        let congestion = PricedEntry {
            price: PricingFunction::congestion(0.5, 2.0).unwrap(),
            sign: 1.0,
        };
        let expected = 0.5 * (12.0f64.powi(2) - 10.0f64.powi(2));
        assert!((congestion.utility_delta(10.0, 2.0).unwrap() - expected).abs() < 1e-9);
        let peer = PricedEntry {
            price: PricingFunction::free(),
            sign: 0.0,
        };
        assert_eq!(peer.utility_delta(10.0, 5.0).unwrap(), 0.0);
    }

    #[test]
    fn degree_gravity_is_symmetric_per_link() {
        let g = fig1();
        let matrix = FlowMatrix::degree_gravity(&g, 1.0);
        for i in 0..g.node_count() as u32 {
            for (pos, &j) in g.neighbor_indices(i).iter().enumerate() {
                let back = g.neighbor_position(j, i).unwrap();
                assert_eq!(matrix.flow(i, pos), matrix.flow(j, back));
            }
        }
    }

    #[test]
    fn entry_classification_matches_graph_roles() {
        let g = fig1();
        let dense = DenseEconomics::from_model(&model());
        for i in 0..g.node_count() as u32 {
            for (pos, &j) in g.neighbor_indices(i).iter().enumerate() {
                let expected = match g.neighbor_kind_by_index(i, j).unwrap() {
                    pan_topology::NeighborKind::Provider => -1.0,
                    pan_topology::NeighborKind::Peer => 0.0,
                    pan_topology::NeighborKind::Customer => 1.0,
                };
                assert_eq!(dense.entry(i, pos).sign, expected);
            }
        }
    }

    #[test]
    fn remap_follows_links_onto_an_extended_graph() {
        let g = fig1();
        let m = model();
        let dense = DenseEconomics::from_model(&m);
        let flows = FlowMatrix::degree_gravity(&g, 1.0);
        // C–E is not a link of fig1; add it as adopted peering.
        let (c, e) = (g.index_of(asn('C')).unwrap(), g.index_of(asn('E')).unwrap());
        let extended = g.with_added_peering_links(&[(c, e)]).unwrap();
        let flows2 = flows.remapped(&g, &extended).unwrap();
        let dense2 = dense.remapped(&g, &extended).unwrap();
        assert_eq!(flows2.node_count(), flows.node_count());
        // Every old volume and priced entry followed its link.
        for i in 0..g.node_count() as u32 {
            for (old_pos, &j) in g.neighbor_indices(i).iter().enumerate() {
                let new_pos = extended.neighbor_position(i, j).unwrap();
                assert_eq!(flows2.flow(i, new_pos), flows.flow(i, old_pos));
                assert_eq!(dense2.entry(i, new_pos), dense.entry(i, old_pos));
            }
            assert_eq!(flows2.end_host(i), flows.end_host(i));
        }
        // The new link starts settlement-free with zero flow on both ends.
        let pos_ce = extended.neighbor_position(c, e).unwrap();
        let pos_ec = extended.neighbor_position(e, c).unwrap();
        assert_eq!(flows2.flow(c, pos_ce), 0.0);
        assert_eq!(flows2.flow(e, pos_ec), 0.0);
        assert_eq!(dense2.entry(c, pos_ce).sign, 0.0);
        assert_eq!(dense2.entry(e, pos_ec).sign, 0.0);
        // Utilities are invariant under the remap (free zero-flow links
        // contribute nothing).
        for i in 0..g.node_count() as u32 {
            let before = dense.utility(&flows, i).unwrap();
            let after = dense2.utility(&flows2, i).unwrap();
            assert!((before - after).abs() < 1e-12, "AS {}", g.asn_at(i));
        }
    }

    #[test]
    fn remap_detects_dropped_links_even_at_unchanged_degrees() {
        use pan_topology::{AsGraphBuilder, Relationship};
        // old: 1→2 and 3→4 transit. new: same nodes (same indices), the
        // transit links dropped, 1–3 and 2–4 peering added — every row
        // keeps its degree, so only per-link tracking can catch it.
        let mut b = AsGraphBuilder::new();
        b.add_link(Asn::new(1), Asn::new(2), Relationship::ProviderToCustomer)
            .unwrap();
        b.add_link(Asn::new(3), Asn::new(4), Relationship::ProviderToCustomer)
            .unwrap();
        let old = b.build().unwrap();
        let mut b = AsGraphBuilder::new();
        for n in 1..=4 {
            b.add_as(Asn::new(n));
        }
        b.add_link(Asn::new(1), Asn::new(3), Relationship::PeerToPeer)
            .unwrap();
        b.add_link(Asn::new(2), Asn::new(4), Relationship::PeerToPeer)
            .unwrap();
        let new = b.build().unwrap();
        let dense = DenseEconomics::build(
            &old,
            |_, _| PricingFunction::per_usage(2.0).unwrap(),
            |_| PricingFunction::free(),
            |_| CostFunction::linear(0.1).unwrap(),
        );
        let flows = FlowMatrix::degree_gravity(&old, 1.0);
        assert!(dense.remapped(&old, &new).is_err(), "dropped link missed");
        assert!(flows.remapped(&old, &new).is_err(), "dropped link missed");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn scale_entry_price_rejects_out_of_row_positions() {
        let g = fig1();
        let mut dense = DenseEconomics::from_model(&model());
        let d = g.index_of(asn('D')).unwrap();
        // D's degree is 4; position 4 belongs to the next row.
        dense
            .scale_entry_price(d, g.degree_of_index(d), 1.1)
            .unwrap();
    }

    #[test]
    fn remap_rejects_mismatched_node_sets() {
        let g = fig1();
        let other = pan_topology::fixtures::diamond();
        let dense = DenseEconomics::from_model(&model());
        let flows = FlowMatrix::degree_gravity(&g, 1.0);
        assert!(flows.remapped(&g, &other).is_err());
        assert!(dense.remapped(&g, &other).is_err());
    }

    #[test]
    fn price_scaling_shocks_one_entry() {
        let g = fig1();
        let mut dense = DenseEconomics::from_model(&model());
        let d = g.index_of(asn('D')).unwrap();
        let a = g.index_of(asn('A')).unwrap();
        let pos = g.neighbor_position(d, a).unwrap();
        let before = dense.entry(d, pos).price;
        dense.scale_entry_price(d, pos, 1.5).unwrap();
        assert_eq!(dense.entry(d, pos).price.alpha(), before.alpha() * 1.5);
        assert_eq!(dense.entry(d, pos).price.beta(), before.beta());
        assert!(dense.scale_entry_price(d, pos, -1.0).is_err());
        let eh_before = dense.end_host_price(d);
        dense.scale_end_host_price(d, 0.5).unwrap();
        assert_eq!(dense.end_host_price(d).alpha(), eh_before.alpha() * 0.5);
        assert!(dense.scale_end_host_price(d, f64::NAN).is_err());
    }

    #[test]
    fn shape_validation_accepts_round_trips_and_rejects_corruption() {
        let g = fig1();
        let dense = DenseEconomics::from_model(&model());
        let flows = FlowMatrix::degree_gravity(&g, 1.0);
        flows.validate_shape(&g).expect("fresh matrix is valid");
        dense.validate_shape(&g).expect("fresh tables are valid");

        // Serde round trips stay valid.
        let flows_rt: FlowMatrix =
            serde_json::from_str(&serde_json::to_string(&flows).unwrap()).unwrap();
        flows_rt.validate_shape(&g).expect("round-tripped matrix");
        let dense_rt: DenseEconomics =
            serde_json::from_str(&serde_json::to_string(&dense).unwrap()).unwrap();
        dense_rt.validate_shape(&g).expect("round-tripped tables");

        // Wrong graph: fig1 tables against the diamond fixture.
        let other = pan_topology::fixtures::diamond();
        assert!(flows.validate_shape(&other).is_err());
        assert!(dense.validate_shape(&other).is_err());

        // Truncated values / negative volume.
        let mut corrupt = flows.clone();
        corrupt.values.pop();
        assert!(corrupt.validate_shape(&g).is_err());
        let mut corrupt = flows.clone();
        corrupt.values[0] = -1.0;
        assert!(matches!(
            corrupt.validate_shape(&g),
            Err(EconError::InvalidFlow { .. })
        ));

        // A sign inconsistent with the link class.
        let mut corrupt = dense.clone();
        corrupt.entries[0].sign = 0.5;
        assert!(corrupt.validate_shape(&g).is_err());
        let mut corrupt = dense.clone();
        // The derive bypasses the constructors, so a checkpoint can smuggle
        // in out-of-domain parameters — exactly what the hook must catch.
        corrupt.entries[0].price =
            serde_json::from_str(r#"{"alpha":-1.0,"beta":1.0}"#).expect("derive skips validation");
        assert!(corrupt.validate_shape(&g).is_err());
        let mut corrupt = dense.clone();
        corrupt.internal_cost[0] = CostFunction::Linear { rate: -3.0 };
        assert!(matches!(
            corrupt.validate_shape(&g),
            Err(EconError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn totals_and_zeros_shapes() {
        let g = fig1();
        let zeros = FlowMatrix::zeros(&g);
        assert_eq!(zeros.node_count(), g.node_count());
        assert!(zeros.totals().iter().all(|&t| t == 0.0));
        for i in 0..g.node_count() as u32 {
            assert_eq!(zeros.row(i).len(), g.degree_of_index(i) + 1);
        }
    }

    #[test]
    fn totals_twins_are_bitwise_identical() {
        let g = fig1();
        let flows = FlowMatrix::degree_gravity(&g, 0.37);
        let allocated = flows.totals();
        let mut reused = vec![f64::NAN; 3];
        flows.totals_into(&mut reused);
        assert_eq!(allocated.len(), reused.len());
        for (a, b) in allocated.iter().zip(&reused) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let grand: f64 = allocated.iter().sum();
        assert_eq!(grand.to_bits(), flows.grand_total().to_bits());
    }

    #[test]
    fn resident_bytes_track_the_tables() {
        let g = fig1();
        let flows = FlowMatrix::degree_gravity(&g, 1.0);
        let dense = DenseEconomics::from_model(&model());
        let n = g.node_count();
        let slots: usize = (0..n as u32).map(|i| g.degree_of_index(i)).sum();
        assert!(flows.resident_bytes() >= (n + 1) * 4 + (slots + n) * 8);
        // Entry table + both SoA lanes + per-AS tables.
        assert!(dense.resident_bytes() >= (n + 1) * 4 + slots * (24 + 8 + 1));
    }

    /// The wire format must not grow the SoA lanes (pre-SoA checkpoints
    /// stay readable and new checkpoints stay readable by the pre-SoA
    /// code), and deserialization must rebuild them.
    #[test]
    fn soa_lanes_stay_off_the_wire() {
        let g = fig1();
        let dense = DenseEconomics::from_model(&model());
        let json = serde_json::to_string(&dense).unwrap();
        assert!(!json.contains("signed_rate"));
        assert!(!json.contains("nonlinear"));
        let back: DenseEconomics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dense);
        back.validate_shape(&g).unwrap();
        for i in 0..g.node_count() as u32 {
            assert_eq!(back.signed_rate_row(i), dense.signed_rate_row(i));
            assert_eq!(back.nonlinear_row(i), dense.nonlinear_row(i));
        }
    }

    /// What the dispatching hot loops computed per entry, for the
    /// differential lane tests: skip settlement-free entries before
    /// looking at the price, then split on the linear rate.
    fn dispatch_lane(entry: PricedEntry) -> (f64, bool) {
        if entry.sign == 0.0 {
            return (0.0, false);
        }
        match entry.price.linear_rate() {
            Some(rate) => (entry.sign * rate, false),
            None => (0.0, true),
        }
    }

    proptest! {
        /// SoA lanes agree bitwise with per-entry enum dispatch on random
        /// economics, including after a repricing mutation, and the
        /// branch-free stream sum over the rate lane reproduces the
        /// dispatching skip-loop's sum bit for bit (the `+0.0` terms the
        /// stream adds for skipped entries are summation identities).
        #[test]
        fn soa_lanes_agree_with_enum_dispatch(
            alphas in prop::collection::vec(0.0..50.0f64, 16),
            betas in prop::collection::vec(0.0..3.0f64, 16),
            end_alpha in 0.0..10.0f64,
            factor in 0.1..4.0f64,
        ) {
            let g = fig1();
            let mut next = 0usize;
            let mut pick = move || {
                let p = PricingFunction::new(alphas[next % 16], betas[next % 16]).unwrap();
                next += 1;
                p
            };
            let mut econ = DenseEconomics::build(
                &g,
                |_, _| pick(),
                |_| PricingFunction::new(end_alpha, 1.0).unwrap(),
                |_| CostFunction::linear(0.05).unwrap(),
            );
            // A mutation must keep the lanes in sync too.
            let node = 0u32;
            if g.degree_of_index(node) > 0 {
                econ.scale_entry_price(node, 0, factor).unwrap();
            }
            for i in 0..g.node_count() as u32 {
                let rates = econ.signed_rate_row(i);
                let nonlinear = econ.nonlinear_row(i);
                let mut dispatched = 0.0f64;
                for pos in 0..g.degree_of_index(i) {
                    let entry = econ.entry(i, pos);
                    let (want_rate, want_nonlinear) = dispatch_lane(entry);
                    prop_assert_eq!(rates[pos].to_bits(), want_rate.to_bits());
                    prop_assert_eq!(nonlinear[pos], want_nonlinear);
                    if entry.sign != 0.0 {
                        if let Some(rate) = entry.price.linear_rate() {
                            dispatched += entry.sign * rate;
                        }
                    }
                }
                let streamed: f64 = rates.iter().sum();
                prop_assert_eq!(streamed.to_bits(), dispatched.to_bits());
            }
        }
    }
}
