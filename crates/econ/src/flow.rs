use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use pan_topology::Asn;

use crate::{EconError, Result};

/// The per-neighbor flow decomposition `f_X` of an AS `X` (§III-A).
///
/// `f_XY` — accessed via [`get`](Self::get) / [`set`](Self::set) — is the
/// share of the total flow through `X` that is exchanged directly with
/// neighbor `Y` (in either direction). The paper models the customer
/// end-hosts of `X` as a virtual stub `Γ_X`; this type reserves the key
/// `X` itself for that virtual neighbor (an AS is never its own neighbor,
/// so the encoding is unambiguous), exposed through
/// [`end_host_flow`](Self::end_host_flow) /
/// [`set_end_host_flow`](Self::set_end_host_flow).
///
/// Total flow through the AS is the sum of all entries, since every unit
/// of traffic enters or leaves through some neighbor (or terminates at an
/// end-host).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FlowVec {
    asn: Asn,
    flows: BTreeMap<Asn, f64>,
}

impl FlowVec {
    /// Creates an empty flow vector for AS `asn`.
    #[must_use]
    pub fn new(asn: Asn) -> Self {
        FlowVec {
            asn,
            flows: BTreeMap::new(),
        }
    }

    /// The AS this vector describes.
    #[must_use]
    pub fn asn(&self) -> Asn {
        self.asn
    }

    /// The flow `f_XY` exchanged with neighbor `neighbor` (0 if absent).
    #[must_use]
    pub fn get(&self, neighbor: Asn) -> f64 {
        self.flows.get(&neighbor).copied().unwrap_or(0.0)
    }

    /// Sets the flow exchanged with `neighbor`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `volume` is negative or non-finite; use
    /// [`try_set`](Self::try_set) for fallible insertion.
    pub fn set(&mut self, neighbor: Asn, volume: f64) {
        debug_assert!(
            volume.is_finite() && volume >= 0.0,
            "flow volume must be finite and non-negative, got {volume}"
        );
        self.flows.insert(neighbor, volume.max(0.0));
    }

    /// Fallible variant of [`set`](Self::set).
    ///
    /// # Errors
    ///
    /// Returns [`EconError::InvalidFlow`] for negative or non-finite volumes.
    pub fn try_set(&mut self, neighbor: Asn, volume: f64) -> Result<()> {
        if !volume.is_finite() || volume < 0.0 {
            return Err(EconError::InvalidFlow { volume });
        }
        self.flows.insert(neighbor, volume);
        Ok(())
    }

    /// Adds `delta` to the flow exchanged with `neighbor`, clamping at zero.
    pub fn add(&mut self, neighbor: Asn, delta: f64) {
        let updated = (self.get(neighbor) + delta).max(0.0);
        self.flows.insert(neighbor, updated);
    }

    /// The end-host flow `f_{X,Γ_X}` (traffic terminating at `X`'s own
    /// customers' end-hosts).
    #[must_use]
    pub fn end_host_flow(&self) -> f64 {
        self.get(self.asn)
    }

    /// Sets the end-host flow `f_{X,Γ_X}`.
    pub fn set_end_host_flow(&mut self, volume: f64) {
        let asn = self.asn;
        self.set(asn, volume);
    }

    /// Total flow through the AS: the sum over all neighbors and end-hosts.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.flows.values().sum()
    }

    /// Iterates over `(neighbor, volume)` pairs in ascending ASN order.
    ///
    /// The virtual end-host entry, if set, appears under the AS's own ASN.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, f64)> + '_ {
        self.flows.iter().map(|(&a, &v)| (a, v))
    }

    /// Number of neighbors with recorded flow.
    #[must_use]
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Returns `true` if no flows are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }
}

/// A direction-independent key for the path segment `(X, Y, Z)` (§III-A:
/// "`f_XYZ` is the flow volume on the path segment consisting of ASes
/// X, Y, and Z in that order, independent of direction").
///
/// `(X, Y, Z)` and `(Z, Y, X)` normalize to the same key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SegmentKey {
    first: Asn,
    middle: Asn,
    last: Asn,
}

impl SegmentKey {
    /// Creates the canonical key for segment `x–y–z`.
    #[must_use]
    pub fn new(x: Asn, y: Asn, z: Asn) -> Self {
        if x <= z {
            SegmentKey {
                first: x,
                middle: y,
                last: z,
            }
        } else {
            SegmentKey {
                first: z,
                middle: y,
                last: x,
            }
        }
    }

    /// The endpoints and middle AS in canonical order.
    #[must_use]
    pub fn parts(self) -> (Asn, Asn, Asn) {
        (self.first, self.middle, self.last)
    }

    /// The transit AS in the middle of the segment.
    #[must_use]
    pub fn middle(self) -> Asn {
        self.middle
    }
}

/// Per-segment flow volumes `f_XYZ`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SegmentFlows {
    volumes: BTreeMap<SegmentKey, f64>,
}

impl SegmentFlows {
    /// Creates an empty segment-flow table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The volume on segment `x–y–z` (0 if absent).
    #[must_use]
    pub fn get(&self, x: Asn, y: Asn, z: Asn) -> f64 {
        self.volumes
            .get(&SegmentKey::new(x, y, z))
            .copied()
            .unwrap_or(0.0)
    }

    /// Sets the volume on segment `x–y–z`.
    pub fn set(&mut self, x: Asn, y: Asn, z: Asn, volume: f64) {
        debug_assert!(
            volume.is_finite() && volume >= 0.0,
            "segment volume must be finite and non-negative, got {volume}"
        );
        self.volumes
            .insert(SegmentKey::new(x, y, z), volume.max(0.0));
    }

    /// Adds `delta` to the volume on segment `x–y–z`, clamping at zero.
    pub fn add(&mut self, x: Asn, y: Asn, z: Asn, delta: f64) {
        let key = SegmentKey::new(x, y, z);
        let updated = (self.volumes.get(&key).copied().unwrap_or(0.0) + delta).max(0.0);
        self.volumes.insert(key, updated);
    }

    /// Iterates over `(segment, volume)` pairs in canonical key order.
    pub fn iter(&self) -> impl Iterator<Item = (SegmentKey, f64)> + '_ {
        self.volumes.iter().map(|(&k, &v)| (k, v))
    }

    /// Sum of volumes over all segments whose middle AS is `y`.
    #[must_use]
    pub fn transit_volume(&self, y: Asn) -> f64 {
        self.volumes
            .iter()
            .filter(|(k, _)| k.middle() == y)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Number of recorded segments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.volumes.len()
    }

    /// Returns `true` if no segments are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.volumes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u32) -> Asn {
        Asn::new(n)
    }

    #[test]
    fn get_set_add() {
        let mut f = FlowVec::new(a(1));
        assert_eq!(f.get(a(2)), 0.0);
        f.set(a(2), 5.0);
        assert_eq!(f.get(a(2)), 5.0);
        f.add(a(2), 3.0);
        assert_eq!(f.get(a(2)), 8.0);
        f.add(a(2), -100.0);
        assert_eq!(f.get(a(2)), 0.0, "flows clamp at zero");
    }

    #[test]
    fn end_host_convention() {
        let mut f = FlowVec::new(a(1));
        f.set_end_host_flow(7.0);
        assert_eq!(f.end_host_flow(), 7.0);
        assert_eq!(f.get(a(1)), 7.0);
        f.set(a(2), 3.0);
        assert_eq!(f.total(), 10.0);
    }

    #[test]
    fn try_set_validates() {
        let mut f = FlowVec::new(a(1));
        assert!(f.try_set(a(2), -1.0).is_err());
        assert!(f.try_set(a(2), f64::NAN).is_err());
        assert!(f.try_set(a(2), 1.0).is_ok());
    }

    #[test]
    fn iteration_is_sorted() {
        let mut f = FlowVec::new(a(1));
        f.set(a(9), 1.0);
        f.set(a(2), 1.0);
        f.set(a(5), 1.0);
        let keys: Vec<Asn> = f.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![a(2), a(5), a(9)]);
    }

    #[test]
    fn segment_key_is_direction_independent() {
        assert_eq!(
            SegmentKey::new(a(1), a(2), a(3)),
            SegmentKey::new(a(3), a(2), a(1))
        );
        assert_ne!(
            SegmentKey::new(a(1), a(2), a(3)),
            SegmentKey::new(a(1), a(3), a(2))
        );
        assert_eq!(
            SegmentKey::new(a(3), a(2), a(1)).parts(),
            (a(1), a(2), a(3))
        );
    }

    #[test]
    fn segment_flows_accumulate_by_canonical_key() {
        let mut s = SegmentFlows::new();
        s.add(a(1), a(2), a(3), 4.0);
        s.add(a(3), a(2), a(1), 6.0);
        assert_eq!(s.get(a(1), a(2), a(3)), 10.0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn transit_volume_sums_middle_as() {
        let mut s = SegmentFlows::new();
        s.set(a(1), a(2), a(3), 4.0);
        s.set(a(5), a(2), a(6), 6.0);
        s.set(a(1), a(9), a(3), 100.0);
        assert_eq!(s.transit_volume(a(2)), 10.0);
        assert_eq!(s.transit_volume(a(9)), 100.0);
        assert_eq!(s.transit_volume(a(1)), 0.0);
    }
}
