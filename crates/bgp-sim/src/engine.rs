//! Asynchronous path-vector dynamics over an SPP instance.
//!
//! Each activation lets one AS re-evaluate its route choice: among its
//! permitted paths, those whose next hop currently selects exactly the
//! path's tail are *available*; the AS adopts the best-ranked available
//! path (or withdraws). This is the standard abstract model of BGP's
//! decision process; the next-hop principle of §II is captured by the
//! availability condition.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use pan_topology::Asn;

use crate::{RoutePath, SppInstance};

/// The routing state: each AS's currently selected path (if any).
pub type RoutingState = BTreeMap<Asn, Option<RoutePath>>;

/// An activation schedule: the order in which ASes re-evaluate routes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Schedule {
    /// Every AS activates once per round, in ascending ASN order.
    RoundRobin,
    /// Every AS activates once per round, in a seeded random order that
    /// is reshuffled each round.
    Random {
        /// RNG seed for the shuffles.
        seed: u64,
    },
    /// Like [`Random`](Self::Random), but reading a specific ChaCha
    /// stream of the seed — the schedule form batch sweeps use so every
    /// batch item gets an independent, index-derived schedule.
    RandomStream {
        /// RNG seed (the batch's master seed).
        seed: u64,
        /// ChaCha stream id (derived from the batch item index).
        stream: u64,
    },
    /// An explicit, cyclic activation sequence.
    Explicit {
        /// Activation order (repeated until convergence or budget).
        order: Vec<Asn>,
    },
}

impl Schedule {
    /// Round-robin schedule.
    #[must_use]
    pub fn round_robin() -> Self {
        Schedule::RoundRobin
    }

    /// Seeded random schedule.
    #[must_use]
    pub fn random(seed: u64) -> Self {
        Schedule::Random { seed }
    }

    /// Seeded random schedule reading a specific ChaCha stream.
    #[must_use]
    pub fn random_stream(seed: u64, stream: u64) -> Self {
        Schedule::RandomStream { seed, stream }
    }

    /// Explicit cyclic schedule.
    #[must_use]
    pub fn explicit(order: Vec<Asn>) -> Self {
        Schedule::Explicit { order }
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunResult {
    /// A full round produced no change: the state is stable.
    Converged {
        /// The stable routing state.
        state: RoutingState,
        /// Number of rounds executed (including the final quiet round).
        rounds: usize,
    },
    /// A previously seen state recurred after changes: the dynamics
    /// oscillate persistently (e.g. BAD GADGET).
    Oscillated {
        /// Round at which the repeated state was first seen.
        first_seen_round: usize,
        /// Round at which it recurred.
        repeat_round: usize,
    },
}

impl RunResult {
    /// Returns the stable state if the run converged.
    #[must_use]
    pub fn converged_state(&self) -> Option<&RoutingState> {
        match self {
            RunResult::Converged { state, .. } => Some(state),
            RunResult::Oscillated { .. } => None,
        }
    }

    /// Returns `true` if the run converged.
    #[must_use]
    pub fn is_converged(&self) -> bool {
        matches!(self, RunResult::Converged { .. })
    }
}

/// The path-vector simulation engine.
#[derive(Debug, Clone)]
pub struct Engine<'a> {
    instance: &'a SppInstance,
    state: RoutingState,
}

impl<'a> Engine<'a> {
    /// Creates an engine in the initial state: only the origin has a
    /// path (its trivial one); everyone else has withdrawn.
    #[must_use]
    pub fn new(instance: &'a SppInstance) -> Self {
        let mut state = RoutingState::new();
        for asn in instance.ases() {
            let initial = if asn == instance.origin() {
                Some(instance.permitted(asn)[0].clone())
            } else {
                None
            };
            state.insert(asn, initial);
        }
        Engine { instance, state }
    }

    /// The current routing state.
    #[must_use]
    pub fn state(&self) -> &RoutingState {
        &self.state
    }

    /// Overrides the current state (for exploring specific configurations).
    pub fn set_state(&mut self, state: RoutingState) {
        self.state = state;
    }

    /// The best available path of `asn` under the current state.
    #[must_use]
    pub fn best_available(&self, asn: Asn) -> Option<RoutePath> {
        if asn == self.instance.origin() {
            return Some(self.instance.permitted(asn)[0].clone());
        }
        self.instance
            .permitted(asn)
            .iter()
            .find(|path| self.is_available(path))
            .cloned()
    }

    /// A path is available iff its next hop currently selects its tail
    /// (the next-hop principle).
    #[must_use]
    pub fn is_available(&self, path: &RoutePath) -> bool {
        let Some(next) = path.next_hop() else {
            return true;
        };
        match self.state.get(&next) {
            Some(Some(selected)) => selected.hops() == path.tail(),
            _ => false,
        }
    }

    /// Activates one AS; returns `true` if its selection changed.
    pub fn activate(&mut self, asn: Asn) -> bool {
        if asn == self.instance.origin() {
            return false;
        }
        let best = self.best_available(asn);
        let changed = self.state.get(&asn) != Some(&best);
        self.state.insert(asn, best);
        changed
    }

    /// Runs rounds of the schedule until convergence, state recurrence,
    /// or the round budget is exhausted (which is reported as an
    /// oscillation, since no progress guarantee remains).
    pub fn run(&mut self, schedule: Schedule, max_rounds: usize) -> RunResult {
        let ases: Vec<Asn> = self
            .instance
            .ases()
            .filter(|&a| a != self.instance.origin())
            .collect();
        let mut rng = match &schedule {
            Schedule::Random { seed } => Some(ChaCha12Rng::seed_from_u64(*seed)),
            Schedule::RandomStream { seed, stream } => {
                let mut rng = ChaCha12Rng::seed_from_u64(*seed);
                rng.set_stream(*stream);
                Some(rng)
            }
            _ => None,
        };
        let mut seen: HashMap<u64, usize> = HashMap::new();
        seen.insert(self.state_hash(), 0);

        for round in 1..=max_rounds {
            let order: Vec<Asn> = match &schedule {
                Schedule::RoundRobin => ases.clone(),
                Schedule::Random { .. } | Schedule::RandomStream { .. } => {
                    let mut shuffled = ases.clone();
                    shuffled.shuffle(rng.as_mut().expect("random schedule has an RNG"));
                    shuffled
                }
                Schedule::Explicit { order } => order.clone(),
            };
            let mut any_change = false;
            for asn in order {
                any_change |= self.activate(asn);
            }
            if !any_change {
                return RunResult::Converged {
                    state: self.state.clone(),
                    rounds: round,
                };
            }
            let h = self.state_hash();
            if let Some(&first) = seen.get(&h) {
                return RunResult::Oscillated {
                    first_seen_round: first,
                    repeat_round: round,
                };
            }
            seen.insert(h, round);
        }
        RunResult::Oscillated {
            first_seen_round: 0,
            repeat_round: max_rounds,
        }
    }

    fn state_hash(&self) -> u64 {
        let mut hasher = DefaultHasher::new();
        self.state.hash(&mut hasher);
        hasher.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets;

    fn a(n: u32) -> Asn {
        Asn::new(n)
    }

    #[test]
    fn trivial_instance_converges_immediately() {
        let spp = SppInstance::new(a(0));
        let mut engine = Engine::new(&spp);
        let result = engine.run(Schedule::round_robin(), 10);
        assert!(result.is_converged());
    }

    #[test]
    fn linear_chain_converges() {
        let mut spp = SppInstance::new(a(0));
        spp.set_permitted(a(1), vec![RoutePath::new(vec![a(1), a(0)]).unwrap()])
            .unwrap();
        spp.set_permitted(a(2), vec![RoutePath::new(vec![a(2), a(1), a(0)]).unwrap()])
            .unwrap();
        let mut engine = Engine::new(&spp);
        let result = engine.run(Schedule::round_robin(), 100);
        let state = result.converged_state().expect("chain converges");
        assert_eq!(state[&a(2)].as_ref().unwrap().hops(), &[a(2), a(1), a(0)]);
    }

    #[test]
    fn disagree_converges_but_nondeterministically() {
        let spp = gadgets::disagree();
        // Two explicit schedules reaching the two different stable states:
        // activating 1 before 2 lets 1 grab its preferred route via 2? No —
        // whoever moves *second* sees the other's direct route and climbs
        // onto it.
        let mut e1 = Engine::new(&spp);
        let r1 = e1.run(Schedule::explicit(vec![a(1), a(2), a(1), a(2)]), 100);
        let mut e2 = Engine::new(&spp);
        let r2 = e2.run(Schedule::explicit(vec![a(2), a(1), a(2), a(1)]), 100);
        let s1 = r1.converged_state().expect("DISAGREE converges");
        let s2 = r2.converged_state().expect("DISAGREE converges");
        assert_ne!(
            s1, s2,
            "different activation orders reach different stable states"
        );
    }

    #[test]
    fn bad_gadget_oscillates_under_every_schedule() {
        let spp = gadgets::bad_gadget();
        for schedule in [
            Schedule::round_robin(),
            Schedule::random(1),
            Schedule::random(2),
        ] {
            let mut engine = Engine::new(&spp);
            let result = engine.run(schedule.clone(), 5_000);
            assert!(
                !result.is_converged(),
                "BAD GADGET converged under {schedule:?}"
            );
        }
    }

    #[test]
    fn availability_respects_next_hop_principle() {
        let spp = gadgets::disagree();
        let engine = Engine::new(&spp);
        // Initially only the origin has a route, so 1's path via 2 is
        // unavailable but its direct path is available.
        let via2 = RoutePath::new(vec![a(1), a(2), a(0)]).unwrap();
        let direct = RoutePath::new(vec![a(1), a(0)]).unwrap();
        assert!(!engine.is_available(&via2));
        assert!(engine.is_available(&direct));
    }

    #[test]
    fn converged_state_is_a_fixpoint() {
        let spp = gadgets::disagree();
        let mut engine = Engine::new(&spp);
        let result = engine.run(Schedule::round_robin(), 100);
        let state = result.converged_state().unwrap().clone();
        // Re-activating anyone must not change anything.
        for asn in [a(1), a(2)] {
            assert!(!engine.activate(asn));
        }
        assert_eq!(engine.state(), &state);
    }
}
