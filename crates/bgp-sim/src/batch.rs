//! Parallel batches of simulation runs and safety explorations.
//!
//! The §II stability evidence is statistical: many activation schedules
//! per instance (does *any* sampled schedule oscillate? how many distinct
//! stable states are reachable?) and many gadget instances per claim.
//! Both shapes are embarrassingly parallel, and this module fans them
//! out over a [`ThreadPool`] with the workspace's deterministic
//! seed-derivation scheme: batch item `i` runs
//! [`Schedule::random_stream(master_seed, i + 1)`](Schedule::random_stream),
//! so the batch result is bit-identical at any thread count.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use pan_runtime::ThreadPool;

use crate::safety::{explore, SafetyReport};
use crate::{Engine, RunResult, Schedule, SppInstance};

/// Configuration of a schedule-sweep batch over one SPP instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleBatch {
    /// Number of random activation schedules to sample.
    pub schedules: usize,
    /// Round budget per run.
    pub max_rounds: usize,
    /// Master seed; item `i` reads ChaCha stream `i + 1` of it.
    pub master_seed: u64,
}

impl Default for ScheduleBatch {
    fn default() -> Self {
        ScheduleBatch {
            schedules: 64,
            max_rounds: 1_000,
            master_seed: 42,
        }
    }
}

/// Aggregate over one schedule-sweep batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Per-schedule results, in batch-item order.
    pub runs: Vec<RunResult>,
    /// Number of runs that converged.
    pub converged: usize,
    /// Distinct stable states reached by the converging runs. `> 1`
    /// means the outcome is schedule-dependent (a "wedgie").
    pub distinct_stable_states: usize,
}

impl BatchReport {
    /// Fraction of schedules that converged.
    #[must_use]
    pub fn convergence_rate(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.converged as f64 / self.runs.len() as f64
    }

    /// `true` iff every sampled schedule converged to the same state.
    #[must_use]
    pub fn is_deterministically_convergent(&self) -> bool {
        self.converged == self.runs.len() && self.distinct_stable_states == 1
    }
}

/// Runs `batch.schedules` independent random-schedule simulations of
/// `instance` over `pool` and aggregates the outcomes.
#[must_use]
pub fn run_schedule_batch(
    instance: &SppInstance,
    batch: &ScheduleBatch,
    pool: &ThreadPool,
) -> BatchReport {
    let runs: Vec<RunResult> = pool.run(batch.schedules, |i| {
        let mut engine = Engine::new(instance);
        engine.run(
            Schedule::random_stream(batch.master_seed, i as u64 + 1),
            batch.max_rounds,
        )
    });
    let converged = runs.iter().filter(|r| r.is_converged()).count();
    let distinct_stable_states = runs
        .iter()
        .filter_map(RunResult::converged_state)
        .collect::<BTreeSet<_>>()
        .len();
    BatchReport {
        runs,
        converged,
        distinct_stable_states,
    }
}

/// Exhaustively explores a list of instances (e.g. a gadget family) in
/// parallel; element `i` of the result is `explore(&instances[i],
/// state_budget)`.
///
/// # Panics
///
/// Panics if any exploration exceeds `state_budget` distinct states,
/// like [`explore`] itself.
#[must_use]
pub fn explore_batch(
    instances: &[SppInstance],
    state_budget: usize,
    pool: &ThreadPool,
) -> Vec<SafetyReport> {
    pool.map(instances, |_idx, instance| explore(instance, state_budget))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets;

    #[test]
    fn batch_results_are_thread_count_independent() {
        let instance = gadgets::disagree();
        let batch = ScheduleBatch {
            schedules: 24,
            max_rounds: 200,
            master_seed: 7,
        };
        let reference = run_schedule_batch(&instance, &batch, &ThreadPool::new(1));
        for threads in [2, 4, 8] {
            let parallel = run_schedule_batch(&instance, &batch, &ThreadPool::new(threads));
            assert_eq!(reference, parallel, "{threads} threads diverged");
        }
    }

    #[test]
    fn disagree_batch_finds_both_stable_states() {
        let report = run_schedule_batch(
            &gadgets::disagree(),
            &ScheduleBatch::default(),
            &ThreadPool::new(4),
        );
        assert_eq!(report.converged, report.runs.len());
        assert_eq!(report.distinct_stable_states, 2, "the wedgie");
        assert!(!report.is_deterministically_convergent());
        assert!((report.convergence_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bad_gadget_batch_never_converges() {
        let batch = ScheduleBatch {
            schedules: 16,
            max_rounds: 2_000,
            master_seed: 3,
        };
        let report = run_schedule_batch(&gadgets::bad_gadget(), &batch, &ThreadPool::new(4));
        assert_eq!(report.converged, 0);
        assert_eq!(report.distinct_stable_states, 0);
    }

    #[test]
    fn good_gadget_batch_is_deterministically_convergent() {
        let report = run_schedule_batch(
            &gadgets::good_gadget(),
            &ScheduleBatch::default(),
            &ThreadPool::new(4),
        );
        assert!(report.is_deterministically_convergent());
    }

    #[test]
    fn explore_batch_matches_sequential_explore() {
        let instances = vec![
            gadgets::disagree(),
            gadgets::good_gadget(),
            gadgets::bad_gadget(),
        ];
        let pooled = explore_batch(&instances, 100_000, &ThreadPool::new(3));
        for (instance, report) in instances.iter().zip(&pooled) {
            assert_eq!(report, &explore(instance, 100_000));
        }
        assert!(pooled[0].safe);
        assert!(pooled[1].safe);
        assert!(!pooled[2].safe);
    }

    #[test]
    fn empty_batch_is_empty() {
        let batch = ScheduleBatch {
            schedules: 0,
            ..ScheduleBatch::default()
        };
        let report = run_schedule_batch(&gadgets::disagree(), &batch, &ThreadPool::new(4));
        assert!(report.runs.is_empty());
        assert_eq!(report.convergence_rate(), 0.0);
    }
}
