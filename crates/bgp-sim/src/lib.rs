//! A BGP route-propagation simulator with policy control.
//!
//! §II of Scherrer et al. (DSN 2021) argues that the Gao–Rexford
//! conditions (GRC) are needed for stability in a BGP/IP Internet but not
//! in a path-aware one. This crate provides the machinery behind that
//! argument:
//!
//! - [`SppInstance`]: the *stable-paths problem* formulation of BGP
//!   (Griffin–Shepherd–Wilfong): per-AS ranked lists of permitted paths
//!   to an origin.
//! - [`policy`]: derives SPP instances from an
//!   [`AsGraph`](pan_topology::AsGraph) under Gao–Rexford export and
//!   preference rules — or under GRC-violating "sibling"/mutuality
//!   policies.
//! - [`Engine`]: asynchronous path-vector dynamics under configurable
//!   activation schedules, detecting convergence, oscillation, and
//!   schedule-dependent (non-deterministic) outcomes.
//! - [`gadgets`]: the classic DISAGREE and BAD GADGET instances plus the
//!   paper's Fig. 1 wedgie.
//! - [`stable_paths`]: an exhaustive solver enumerating *all* stable
//!   states of small instances (DISAGREE has two, BAD GADGET none).
//!
//! # Example: BAD GADGET oscillates, GRC converges
//!
//! ```
//! use bgp_sim::{gadgets, Engine, RunResult, Schedule};
//!
//! let bad = gadgets::bad_gadget();
//! let mut engine = Engine::new(&bad);
//! match engine.run(Schedule::round_robin(), 10_000) {
//!     RunResult::Oscillated { .. } => {} // persistent route oscillation
//!     RunResult::Converged { .. } => panic!("BAD GADGET must not converge"),
//! }
//!
//! let disagree = gadgets::disagree();
//! assert_eq!(bgp_sim::stable_paths::solve(&disagree).len(), 2); // wedgie
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod engine;
mod error;
mod instance;

pub mod batch;
pub mod gadgets;
pub mod policy;
pub mod safety;
pub mod stable_paths;

pub use batch::{explore_batch, run_schedule_batch, BatchReport, ScheduleBatch};
pub use engine::{Engine, RunResult, Schedule};
pub use error::BgpError;
pub use instance::{RoutePath, SppInstance};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, BgpError>;
