use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use pan_topology::Asn;

use crate::{BgpError, Result};

/// An AS-level route: the path from the owning AS (first element) to the
/// instance origin (last element).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RoutePath(Vec<Asn>);

impl RoutePath {
    /// Creates a route path.
    ///
    /// # Errors
    ///
    /// Returns [`BgpError::InvalidPath`] for empty or looping paths.
    pub fn new(hops: Vec<Asn>) -> Result<Self> {
        let Some(&first) = hops.first() else {
            return Err(BgpError::InvalidPath {
                asn: Asn::new(0),
                reason: "route paths must be non-empty".to_owned(),
            });
        };
        let mut sorted = hops.clone();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(BgpError::InvalidPath {
                asn: first,
                reason: "route paths must be loop-free".to_owned(),
            });
        }
        Ok(RoutePath(hops))
    }

    /// The hops, owner first, origin last.
    #[must_use]
    pub fn hops(&self) -> &[Asn] {
        &self.0
    }

    /// The AS owning (advertising from) this path.
    #[must_use]
    pub fn owner(&self) -> Asn {
        self.0[0]
    }

    /// The next hop, or `None` for the origin's trivial path.
    #[must_use]
    pub fn next_hop(&self) -> Option<Asn> {
        self.0.get(1).copied()
    }

    /// The sub-path starting at the next hop (what the neighbor must have
    /// selected for this path to be available).
    #[must_use]
    pub fn tail(&self) -> &[Asn] {
        &self.0[1..]
    }

    /// Number of hops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Route paths are validated non-empty, so this is always `false`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns `true` for the origin's trivial single-hop path.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.0.len() == 1
    }
}

impl fmt::Display for RoutePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.0.iter().map(ToString::to_string).collect();
        write!(f, "{}", parts.join(" "))
    }
}

/// A stable-paths-problem instance: an origin AS plus, for every other
/// participating AS, a ranked list of permitted paths (most preferred
/// first). The empty route (no path to the origin) is always implicitly
/// permitted and ranked last.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SppInstance {
    origin: Asn,
    /// Ranked permitted paths per AS (most preferred first).
    permitted: BTreeMap<Asn, Vec<RoutePath>>,
}

impl SppInstance {
    /// Creates an instance with the given origin and no other ASes yet.
    #[must_use]
    pub fn new(origin: Asn) -> Self {
        let mut permitted = BTreeMap::new();
        permitted.insert(origin, vec![RoutePath(vec![origin])]);
        SppInstance { origin, permitted }
    }

    /// The origin (destination) AS.
    #[must_use]
    pub fn origin(&self) -> Asn {
        self.origin
    }

    /// Registers the ranked permitted paths of an AS (most preferred
    /// first). Replaces any previous registration.
    ///
    /// # Errors
    ///
    /// Returns [`BgpError::InvalidPath`] if a path does not start at
    /// `asn`, does not end at the origin, or `asn` is the origin itself.
    pub fn set_permitted(&mut self, asn: Asn, paths: Vec<RoutePath>) -> Result<()> {
        if asn == self.origin {
            return Err(BgpError::InvalidPath {
                asn,
                reason: "the origin's permitted path is fixed".to_owned(),
            });
        }
        for path in &paths {
            if path.owner() != asn {
                return Err(BgpError::InvalidPath {
                    asn,
                    reason: format!("path {path} does not start at {asn}"),
                });
            }
            if *path.hops().last().expect("paths are non-empty") != self.origin {
                return Err(BgpError::InvalidPath {
                    asn,
                    reason: format!("path {path} does not end at the origin {}", self.origin),
                });
            }
        }
        self.permitted.insert(asn, paths);
        Ok(())
    }

    /// The ranked permitted paths of an AS (empty slice if unknown).
    #[must_use]
    pub fn permitted(&self, asn: Asn) -> &[RoutePath] {
        self.permitted.get(&asn).map_or(&[], Vec::as_slice)
    }

    /// Rank of a path in its owner's preference list (0 = best).
    #[must_use]
    pub fn rank(&self, path: &RoutePath) -> Option<usize> {
        self.permitted(path.owner()).iter().position(|p| p == path)
    }

    /// All participating ASes (origin included), in ascending ASN order.
    pub fn ases(&self) -> impl Iterator<Item = Asn> + '_ {
        self.permitted.keys().copied()
    }

    /// Number of participating ASes including the origin.
    #[must_use]
    pub fn len(&self) -> usize {
        self.permitted.len()
    }

    /// An instance always contains at least the origin.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u32) -> Asn {
        Asn::new(n)
    }

    #[test]
    fn route_path_validation() {
        assert!(RoutePath::new(vec![]).is_err());
        assert!(RoutePath::new(vec![a(1), a(2), a(1)]).is_err());
        let p = RoutePath::new(vec![a(1), a(2), a(0)]).unwrap();
        assert_eq!(p.owner(), a(1));
        assert_eq!(p.next_hop(), Some(a(2)));
        assert_eq!(p.tail(), &[a(2), a(0)]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.to_string(), "AS1 AS2 AS0");
    }

    #[test]
    fn trivial_path() {
        let p = RoutePath::new(vec![a(0)]).unwrap();
        assert!(p.is_trivial());
        assert_eq!(p.next_hop(), None);
    }

    #[test]
    fn instance_set_permitted_validates() {
        let mut spp = SppInstance::new(a(0));
        // Path not starting at the AS.
        assert!(spp
            .set_permitted(a(1), vec![RoutePath::new(vec![a(2), a(0)]).unwrap()])
            .is_err());
        // Path not ending at the origin.
        assert!(spp
            .set_permitted(a(1), vec![RoutePath::new(vec![a(1), a(2)]).unwrap()])
            .is_err());
        // The origin cannot be reconfigured.
        assert!(spp.set_permitted(a(0), vec![]).is_err());
        // Valid registration.
        assert!(spp
            .set_permitted(a(1), vec![RoutePath::new(vec![a(1), a(0)]).unwrap()])
            .is_ok());
        assert_eq!(spp.permitted(a(1)).len(), 1);
    }

    #[test]
    fn rank_reflects_registration_order() {
        let mut spp = SppInstance::new(a(0));
        let p1 = RoutePath::new(vec![a(1), a(2), a(0)]).unwrap();
        let p2 = RoutePath::new(vec![a(1), a(0)]).unwrap();
        spp.set_permitted(a(1), vec![p1.clone(), p2.clone()])
            .unwrap();
        assert_eq!(spp.rank(&p1), Some(0));
        assert_eq!(spp.rank(&p2), Some(1));
    }

    #[test]
    fn origin_has_trivial_path() {
        let spp = SppInstance::new(a(0));
        assert_eq!(spp.permitted(a(0)).len(), 1);
        assert!(spp.permitted(a(0))[0].is_trivial());
        assert_eq!(spp.len(), 1);
    }
}
