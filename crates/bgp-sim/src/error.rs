use std::fmt;

use pan_topology::Asn;

/// Errors produced by the BGP simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BgpError {
    /// A permitted path is structurally invalid.
    InvalidPath {
        /// The AS the path was registered for.
        asn: Asn,
        /// Human-readable reason.
        reason: String,
    },
    /// An operation referenced an AS with no permitted paths.
    UnknownAs {
        /// The missing AS.
        asn: Asn,
    },
}

impl fmt::Display for BgpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BgpError::InvalidPath { asn, reason } => {
                write!(f, "invalid permitted path for {asn}: {reason}")
            }
            BgpError::UnknownAs { asn } => write!(f, "{asn} is not part of the SPP instance"),
        }
    }
}

impl std::error::Error for BgpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let err = BgpError::UnknownAs { asn: Asn::new(9) };
        assert!(err.to_string().contains("AS9"));
    }
}
