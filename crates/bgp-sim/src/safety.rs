//! Exhaustive safety analysis of SPP instances.
//!
//! The [`Engine`] samples *particular* activation
//! schedules; this module explores **all** of them. The transition system
//! has one state per routing assignment and one transition per single-AS
//! activation that changes the state. An instance is *safe* iff no cycle
//! is reachable from the initial state — i.e. every fair execution
//! converges — which is decidable by exhaustive search for gadget-scale
//! instances.
//!
//! This gives the precise version of the §II claims: Gao–Rexford
//! instances are safe, DISAGREE is safe but reaches two distinct sinks
//! (non-determinism), and BAD GADGET is unsafe.

use std::collections::{BTreeSet, HashMap, HashSet};

use serde::{Deserialize, Serialize};

use pan_topology::Asn;

use crate::engine::RoutingState;
use crate::{Engine, SppInstance};

/// The verdict of exhaustive exploration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SafetyReport {
    /// `true` iff no activation interleaving can cycle: every execution
    /// converges.
    pub safe: bool,
    /// All *sink* states (states where no activation changes anything)
    /// reachable from the initial state. More than one sink means the
    /// protocol outcome is schedule-dependent (a "wedgie").
    pub reachable_sinks: Vec<RoutingState>,
    /// Number of distinct states explored.
    pub states_explored: usize,
}

impl SafetyReport {
    /// `true` iff the instance is safe *and* has a unique reachable
    /// outcome — the gold standard GRC instances meet.
    #[must_use]
    pub fn is_deterministically_convergent(&self) -> bool {
        self.safe && self.reachable_sinks.len() == 1
    }
}

/// Exhaustively explores the activation transition system.
///
/// # Panics
///
/// Panics if more than `state_budget` distinct states are reachable —
/// the explorer is meant for gadget-scale instances (the state space is
/// bounded by `Π (|permitted(v)| + 1)`).
#[must_use]
pub fn explore(instance: &SppInstance, state_budget: usize) -> SafetyReport {
    let ases: Vec<Asn> = instance
        .ases()
        .filter(|&a| a != instance.origin())
        .collect();
    let engine = Engine::new(instance);
    let initial = engine.state().clone();

    // Iterative DFS with colors for cycle detection (white/grey/black).
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        Grey,
        Black,
    }
    let mut colors: HashMap<RoutingState, Color> = HashMap::new();
    let mut sinks: HashSet<BTreeSet<(Asn, Option<String>)>> = HashSet::new();
    let mut sink_states: Vec<RoutingState> = Vec::new();
    let mut safe = true;

    // Stack frames: (state, next successor index, successors).
    let successors = |state: &RoutingState| -> Vec<RoutingState> {
        let mut result = Vec::new();
        for &asn in &ases {
            let mut e = Engine::new(instance);
            e.set_state(state.clone());
            if e.activate(asn) {
                result.push(e.state().clone());
            }
        }
        result
    };

    let mut stack: Vec<(RoutingState, usize, Vec<RoutingState>)> = Vec::new();
    let initial_succ = successors(&initial);
    colors.insert(initial.clone(), Color::Grey);
    stack.push((initial.clone(), 0, initial_succ));

    while let Some((state, idx, succ)) = stack.last_mut() {
        if succ.is_empty() && *idx == 0 {
            // Sink state: record once.
            let key: BTreeSet<(Asn, Option<String>)> = state
                .iter()
                .map(|(&a, p)| (a, p.as_ref().map(ToString::to_string)))
                .collect();
            if sinks.insert(key) {
                sink_states.push(state.clone());
            }
        }
        if *idx >= succ.len() {
            colors.insert(state.clone(), Color::Black);
            stack.pop();
            continue;
        }
        let next = succ[*idx].clone();
        *idx += 1;
        match colors.get(&next) {
            Some(Color::Grey) => {
                // Back edge: a cycle of activations exists.
                safe = false;
            }
            Some(Color::Black) => {}
            None => {
                assert!(
                    colors.len() < state_budget,
                    "state budget of {state_budget} exhausted; \
                     the explorer is for gadget-scale instances"
                );
                let next_succ = successors(&next);
                colors.insert(next.clone(), Color::Grey);
                stack.push((next, 0, next_succ));
            }
        }
    }

    SafetyReport {
        safe,
        reachable_sinks: sink_states,
        states_explored: colors.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets;
    use crate::policy::grc_instance;
    use crate::stable_paths::solve;
    use pan_topology::fixtures::{asn, fig1};

    #[test]
    fn disagree_is_safe_but_nondeterministic() {
        let report = explore(&gadgets::disagree(), 10_000);
        assert!(report.safe, "DISAGREE always converges");
        assert_eq!(
            report.reachable_sinks.len(),
            2,
            "…but to two different states"
        );
        assert!(!report.is_deterministically_convergent());
    }

    #[test]
    fn bad_gadget_is_unsafe() {
        let report = explore(&gadgets::bad_gadget(), 100_000);
        assert!(!report.safe, "BAD GADGET has an activation cycle");
        assert!(
            report.reachable_sinks.is_empty(),
            "and no reachable stable state"
        );
    }

    #[test]
    fn fig1_gadgets() {
        let wedgie = explore(&gadgets::fig1_wedgie(), 100_000);
        assert!(wedgie.safe);
        assert_eq!(wedgie.reachable_sinks.len(), 2);
        let bad = explore(&gadgets::fig1_bad_gadget(), 1_000_000);
        assert!(!bad.safe);
    }

    #[test]
    fn good_gadget_is_deterministically_convergent() {
        let report = explore(&gadgets::good_gadget(), 100_000);
        assert!(report.is_deterministically_convergent());
    }

    #[test]
    fn grc_instances_are_safe() {
        let g = fig1();
        for dest in ['A', 'H'] {
            // Bound path length to keep the state space tractable.
            let spp = grc_instance(&g, asn(dest), 4).unwrap();
            let report = explore(&spp, 5_000_000);
            assert!(report.safe, "GRC instance for {dest} must be safe");
            assert!(!report.reachable_sinks.is_empty());
        }
    }

    #[test]
    fn reachable_sinks_are_solver_solutions() {
        for instance in [gadgets::disagree(), gadgets::good_gadget()] {
            let report = explore(&instance, 100_000);
            let solutions = solve(&instance);
            for sink in &report.reachable_sinks {
                assert!(
                    solutions.contains(sink),
                    "explorer sink is not a solver solution"
                );
            }
        }
    }

    #[test]
    fn state_counts_are_reported() {
        let report = explore(&gadgets::disagree(), 10_000);
        assert!(report.states_explored >= 3);
    }
}
