//! Classic SPP gadgets (§II): DISAGREE, BAD GADGET, and the paper's
//! Fig. 1 wedgie.
//!
//! The convention follows Griffin–Wilfong: AS 0 is the origin; each AS's
//! permitted paths are listed most-preferred first.

use pan_topology::Asn;

use crate::{RoutePath, SppInstance};

fn a(n: u32) -> Asn {
    Asn::new(n)
}

fn path(hops: &[u32]) -> RoutePath {
    RoutePath::new(hops.iter().map(|&h| a(h)).collect()).expect("gadget paths are valid")
}

/// The DISAGREE gadget: two ASes each prefer the route through the other
/// over their direct route.
///
/// DISAGREE always converges, but **non-deterministically**: it has two
/// stable states ("BGP wedgie"), and which one is reached depends on
/// message timing.
#[must_use]
pub fn disagree() -> SppInstance {
    let mut spp = SppInstance::new(a(0));
    spp.set_permitted(a(1), vec![path(&[1, 2, 0]), path(&[1, 0])])
        .expect("valid");
    spp.set_permitted(a(2), vec![path(&[2, 1, 0]), path(&[2, 0])])
        .expect("valid");
    spp
}

/// The BAD GADGET: three ASes in a cyclic preference pattern (each
/// prefers the route through its clockwise neighbor). No stable state
/// exists and BGP oscillates forever.
#[must_use]
pub fn bad_gadget() -> SppInstance {
    let mut spp = SppInstance::new(a(0));
    spp.set_permitted(a(1), vec![path(&[1, 2, 0]), path(&[1, 0])])
        .expect("valid");
    spp.set_permitted(a(2), vec![path(&[2, 3, 0]), path(&[2, 0])])
        .expect("valid");
    spp.set_permitted(a(3), vec![path(&[3, 1, 0]), path(&[3, 0])])
        .expect("valid");
    spp
}

/// The GOOD GADGET: like BAD GADGET but with one preference reversed;
/// it is safe (converges under every schedule) and has a unique solution.
#[must_use]
pub fn good_gadget() -> SppInstance {
    let mut spp = SppInstance::new(a(0));
    spp.set_permitted(a(1), vec![path(&[1, 2, 0]), path(&[1, 0])])
        .expect("valid");
    spp.set_permitted(a(2), vec![path(&[2, 3, 0]), path(&[2, 0])])
        .expect("valid");
    spp.set_permitted(a(3), vec![path(&[3, 0]), path(&[3, 1, 0])])
        .expect("valid");
    spp
}

/// The Fig. 1 wedgie of §II: ASes `D` (4) and `E` (5) forward the routes
/// learned from their respective providers `A` (1) and `B` (2) to each
/// other — a GRC violation — and both prefer peer-learned routes.
///
/// Destination: a prefix in `A` (the origin is `A` itself, ASN 1).
/// `D` can reach it directly via its provider `A`; `E` via `B–A` (the two
/// tier-1s peer) or over the GRC-violating peer route `E–D–A`. `D`'s
/// alternative `D–E–B–A` makes the instance a DISAGREE-style wedgie.
#[must_use]
pub fn fig1_wedgie() -> SppInstance {
    let mut spp = SppInstance::new(a(1)); // origin A
                                          // B reaches A over the tier-1 peering.
    spp.set_permitted(a(2), vec![path(&[2, 1])]).expect("valid");
    // D prefers the peer route via E over its provider route via A.
    spp.set_permitted(a(4), vec![path(&[4, 5, 2, 1]), path(&[4, 1])])
        .expect("valid");
    // E prefers the peer route via D over its provider route via B.
    spp.set_permitted(a(5), vec![path(&[5, 4, 1]), path(&[5, 2, 1])])
        .expect("valid");
    spp
}

/// Extends [`fig1_wedgie`] with AS `C` (3) concluding similar
/// GRC-violating agreements with both `D` and `E` — the "single
/// additional AS" of §II that turns the wedgie into a BAD GADGET with
/// persistent oscillation.
///
/// `C` is given its own transit path to the destination (`C–A`) and the
/// cyclic peer preferences: `D` prefers via `E`, `E` via `C`, `C` via
/// `D`, each preferred path running over the next AS's direct route —
/// exactly the classic BAD GADGET structure.
#[must_use]
pub fn fig1_bad_gadget() -> SppInstance {
    let mut spp = SppInstance::new(a(1));
    spp.set_permitted(a(2), vec![path(&[2, 1])]).expect("valid");
    spp.set_permitted(a(4), vec![path(&[4, 5, 2, 1]), path(&[4, 1])])
        .expect("valid");
    spp.set_permitted(a(5), vec![path(&[5, 3, 1]), path(&[5, 2, 1])])
        .expect("valid");
    spp.set_permitted(a(3), vec![path(&[3, 4, 1]), path(&[3, 1])])
        .expect("valid");
    spp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable_paths::solve;
    use crate::{Engine, Schedule};

    #[test]
    fn disagree_has_exactly_two_solutions() {
        let solutions = solve(&disagree());
        assert_eq!(solutions.len(), 2, "DISAGREE is the classic wedgie");
    }

    #[test]
    fn bad_gadget_has_no_solution() {
        assert!(solve(&bad_gadget()).is_empty());
    }

    #[test]
    fn good_gadget_is_safe_and_unique() {
        assert_eq!(solve(&good_gadget()).len(), 1);
        for seed in 0..5 {
            let spp = good_gadget();
            let mut engine = Engine::new(&spp);
            assert!(engine.run(Schedule::random(seed), 1000).is_converged());
        }
    }

    #[test]
    fn fig1_wedgie_is_a_wedgie() {
        let solutions = solve(&fig1_wedgie());
        assert_eq!(
            solutions.len(),
            2,
            "the D–E sibling agreement creates a two-state wedgie"
        );
    }

    #[test]
    fn fig1_bad_gadget_oscillates() {
        let spp = fig1_bad_gadget();
        assert!(solve(&spp).is_empty(), "no stable state exists");
        let mut engine = Engine::new(&spp);
        assert!(!engine.run(Schedule::round_robin(), 5_000).is_converged());
    }
}
